//! Quickstart: the full PinSQL loop on a small synthetic instance.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a microservice workload, injects a poorly-written SQL deploy,
//! simulates the database instance, detects the anomaly on the active
//! session metric, and lets PinSQL pinpoint the root-cause template.

use pinsql::{PinSql, PinSqlConfig};
use pinsql_scenario::{generate_base, inject, materialize, AnomalyKind, ScenarioConfig};

fn main() {
    // 1. A 16-business workload with an unindexed-scan deploy at t=720 s.
    let cfg = ScenarioConfig::default().with_seed(7);
    let base = generate_base(&cfg);
    let scenario = inject(&base, &cfg, AnomalyKind::PoorSql);
    println!(
        "workload: {} businesses, {} SQL templates, {} tables",
        base.businesses.len(),
        scenario.workload.specs.len(),
        scenario.workload.tables.len()
    );

    // 2. Simulate, collect, detect, label (materialize does all four).
    let case = materialize(&scenario, 600);
    println!(
        "anomaly detected: {} ({}); window [{}, {}) s, {} templates aggregated",
        case.detected,
        case.anomaly_type,
        case.window.anomaly_start,
        case.window.anomaly_end,
        case.case.templates.len()
    );

    // 3. Diagnose.
    let pinsql = PinSql::new(PinSqlConfig::default());
    let d = pinsql.diagnose(&case.case, &case.window, &case.history, case.minutes_origin);

    println!("\ntop-5 High-impact SQLs (direct causes):");
    for (i, h) in d.hsqls.iter().take(5).enumerate() {
        let text = case.case.catalog.get(h.id).map(|t| t.text.clone()).unwrap_or_default();
        println!("  {}. [{}] impact={:+.3}  {}", i + 1, h.id.short(), h.score, text);
    }

    println!("\ntop-5 Root-cause SQLs:");
    for (i, r) in d.rsqls.iter().take(5).enumerate() {
        let text = case.case.catalog.get(r.id).map(|t| t.text.clone()).unwrap_or_default();
        println!("  {}. [{}] score={:+.3}  {}", i + 1, r.id.short(), r.score, text);
    }

    let truth = &case.truth.rsqls[0];
    let hit = d.rsqls.first().map(|r| r.id == *truth).unwrap_or(false);
    println!(
        "\ninjected root cause: [{}] — PinSQL top-1 {}",
        truth.short(),
        if hit { "CORRECT ✓" } else { "missed" }
    );
    println!(
        "stages: estimate {:.2}s, h-sql {:.2}s, clustering+verify {:.2}s (total {:.2}s)",
        d.timings.estimate_s, d.timings.hsql_s, d.timings.cluster_s, d.timings.total_s
    );
}
