//! The paper's motivating SALES example (§I, Challenge III), hand-built.
//!
//! ```text
//! cargo run --release --example lock_contention
//! ```
//!
//! A repricing batch job issues wide exclusive-row-lock `UPDATE`s on the
//! `sales` table while reading current prices through the shop's own
//! services (so its traffic couples with the shop's templates — the
//! microservice-DAG structure §VI's clustering relies on). Running
//! `SELECT`s are forced to wait behind the locks, so the *SELECTs* blow up
//! the active session — they are the H-SQLs — while the *UPDATE* is the
//! R-SQL. A Top-SQL product ranks by total response time and surfaces the
//! victims; PinSQL walks the propagation chain back to the batch UPDATE.

use pinsql::{PinSql, PinSqlConfig};
use pinsql_baselines::{rank_top, TopMetric};
use pinsql_collector::{aggregate_case, HistoryStore};
use pinsql_detect::{classify, detect_features, AnomalyWindow, DetectorConfig, PhenomenonConfig};
use pinsql_dbsim::{run_open_loop, SimConfig};
use pinsql_workload::dag::{Api, Call};
use pinsql_workload::{
    ApiDag, CostProfile, EventShape, RateEvent, SpecId, TableDef, TableId, TemplateSpec,
    TrafficPattern, Workload,
};

fn main() {
    let sales = TableId(0);
    let users = TableId(1);
    let specs = vec![
        // The victims: locking reads on sales (e.g. inventory checks).
        TemplateSpec::new(
            "SELECT qty FROM sales WHERE sku = 1 LOCK IN SHARE MODE",
            CostProfile::point_read(sales).with_shared_row_locks(1),
            "sales.check_stock",
        ),
        TemplateSpec::new(
            "SELECT price FROM sales WHERE sku = 2",
            CostProfile::point_read(sales),
            "sales.read_price",
        ),
        // Unrelated business on another table.
        TemplateSpec::new(
            "SELECT name FROM users WHERE uid = 3",
            CostProfile::point_read(users),
            "users.profile",
        ),
        // The root cause: a batch repricing job taking wide exclusive locks.
        TemplateSpec::new(
            "UPDATE sales SET price = 1 WHERE campaign = 2",
            CostProfile::batch_write(sales, 32, 700.0),
            "sales.batch_reprice",
        ),
    ];
    let mut dag = ApiDag::default();
    // The shop's inventory/pricing service (a child API the batch job can
    // also call).
    let inventory = dag.push(
        Api::named("inventory").query(Call::times(SpecId(0), 2)).query(Call::once(SpecId(1))),
    );
    let shop = dag
        .push(Api::named("shop").child(Call::once(inventory)).query(Call::once(SpecId(2))));
    // The repricing pipeline: occasionally fires the batch UPDATE and reads
    // prices through the shop's own inventory service (trend coupling).
    let repricer =
        dag.push(Api::named("repricer").query(Call::maybe(SpecId(3), 0.3)).child(Call::times(inventory, 2)));
    let workload = Workload {
        tables: vec![TableDef::new("sales", 5_000_000, 48), TableDef::new("users", 2_000_000, 48)],
        specs,
        dag,
        roots: vec![
            (shop, TrafficPattern::diurnal(8.0, 0.3, 900.0, 0.0)),
            // The batch job runs only during [300, 540).
            (
                repricer,
                TrafficPattern::steady(1e-4).with_noise(0.0).with_event(RateEvent {
                    start: 300,
                    end: 540,
                    multiplier: 3.2 / 1e-4,
                    shape: EventShape::Step,
                }),
            ),
        ],
    };

    println!("simulating 720 s of the SALES scenario...");
    let out = run_open_loop(&workload, &SimConfig::default().with_cores(2.0).with_seed(5), 0, 720);

    // Detect the anomaly on the instance metrics.
    let mut features = Vec::new();
    for (name, series) in out.metrics.iter_named() {
        let cfg = if name.contains("usage") {
            DetectorConfig::for_utilization()
        } else {
            DetectorConfig::default()
        };
        features.extend(detect_features(name, series, 0, &cfg));
    }
    let phenomena = classify(&features, &PhenomenonConfig::default());
    let p = phenomena.iter().max_by_key(|p| p.end - p.start).expect("anomaly detected");
    println!("detected {} over [{}, {}) s", p.anomaly_type, p.start, p.end);

    let window = AnomalyWindow::from_phenomenon(p, 240).clamped(0, 720);
    let case = aggregate_case(&out.log, &workload.specs, &out.metrics, window.ts(), window.te());

    // What a Top-SQL product shows the DBA:
    let top = rank_top(&case, &window, TopMetric::TotalResponseTime);
    println!("\nTop-RT view (what the DBA sees first):");
    for &(idx, v) in top.iter().take(3) {
        let t = &case.templates[idx];
        println!("  {:>12.0} ms total  {}", v, case.catalog.get(t.id).unwrap().label);
    }

    // What PinSQL concludes:
    let d = PinSql::new(PinSqlConfig::default()).diagnose(
        &case,
        &window,
        &HistoryStore::new(),
        1_000_000,
    );
    println!("\nPinSQL H-SQLs (victims driving the session):");
    for h in d.hsqls.iter().take(2) {
        println!("  impact {:+.2}  {}", h.score, h.label);
    }
    println!("PinSQL R-SQLs (the root cause):");
    for r in d.rsqls.iter().take(2) {
        println!("  score {:+.2}  {}", r.score, r.label);
    }
    assert_eq!(d.rsqls[0].label, "sales.batch_reprice", "the batch job must be pinpointed");
    println!("\n→ the batch repricing UPDATE is the R-SQL, as constructed ✓");
}
