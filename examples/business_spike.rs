//! Business-change anomaly + a look inside template clustering (§VI).
//!
//! ```text
//! cargo run --release --example business_spike
//! ```
//!
//! Shows how templates of one microservice DAG share an execution trend
//! and cluster together, how a sudden business spike is detected, and how
//! the spiking business's cluster carries the root cause.

use pinsql::{estimate_sessions, identify_rsqls, rank_hsqls, PinSql, PinSqlConfig};
use pinsql_scenario::{generate_base, inject, materialize, AnomalyKind, ScenarioConfig};

fn main() {
    let cfg = ScenarioConfig::default().with_seed(12).with_businesses(10);
    let base = generate_base(&cfg);
    let scenario = inject(&base, &cfg, AnomalyKind::BusinessSpike);
    println!("simulating a QPS spike (Double-11 style) on a 10-business instance...");
    let case = materialize(&scenario, 600);
    println!(
        "anomaly: {} [{}, {}) s",
        case.anomaly_type, case.window.anomaly_start, case.window.anomaly_end
    );

    // Look inside the R-SQL stage to show the clusters.
    let pcfg = PinSqlConfig::default();
    let est = estimate_sessions(&case.case, &pcfg);
    let hsql = rank_hsqls(&case.case, &est, &case.window, &pcfg);
    let out = identify_rsqls(
        &case.case,
        &est,
        &hsql,
        &case.window,
        &case.history,
        case.minutes_origin,
        &pcfg,
    );

    println!("\nbusiness clusters found: {}", out.clusters.len());
    for (ci, cluster) in out.clusters.iter().enumerate().take(6) {
        // Derive each cluster's dominant business from the labels
        // (`b<k>.<intent>` or `inject.<intent>`).
        let mut businesses: Vec<String> = cluster
            .iter()
            .filter_map(|&i| {
                case.case
                    .catalog
                    .get(case.case.templates[i].id)
                    .map(|info| info.label.split('.').next().unwrap_or("?").to_string())
            })
            .collect();
        businesses.sort();
        businesses.dedup();
        println!(
            "  cluster {ci}: {} templates, businesses {:?}{}",
            cluster.len(),
            businesses,
            if ci < out.selected_clusters { "  ← selected" } else { "" }
        );
    }

    let d = PinSql::new(pcfg).diagnose(&case.case, &case.window, &case.history, case.minutes_origin);
    println!("\nPinSQL top-3 R-SQLs:");
    for r in d.rsqls.iter().take(3) {
        println!("  score {:+.2}  {}", r.score, r.label);
    }
    let truth_hit = d
        .rsqls
        .first()
        .map(|r| case.truth.rsqls.contains(&r.id))
        .unwrap_or(false);
    println!(
        "injected spike templates: {:?} → top-1 {}",
        case.truth
            .rsqls
            .iter()
            .filter_map(|id| case.case.catalog.get(*id).map(|i| i.label.clone()))
            .collect::<Vec<_>>(),
        if truth_hit { "CORRECT ✓" } else { "missed" }
    );
}
