//! The collection pipeline in streaming form (§IV-A): collectors publish
//! query records through a bounded channel; an aggregation worker folds
//! them into per-template per-second counters the detector polls — the
//! in-process analogue of the paper's Kafka/Flink topology.
//!
//! ```text
//! cargo run --release --example streaming_collector
//! ```

use pinsql_collector::{LogStore, StreamAggregator, TemplateCatalog};
use pinsql_dbsim::{run_open_loop, SimConfig};
use pinsql_scenario::{generate_base, inject, AnomalyKind, ScenarioConfig};

fn main() {
    // Produce a real query log with the simulator.
    let cfg = ScenarioConfig::default().with_seed(3).with_businesses(6);
    let base = generate_base(&cfg);
    let scenario = inject(&base, &cfg, AnomalyKind::BusinessSpike);
    let out = run_open_loop(&scenario.workload, &SimConfig::default().with_seed(3), 0, 300);
    println!("simulated {} query records over 300 s", out.log.len());

    let catalog = TemplateCatalog::from_specs(&scenario.workload.specs);

    // Stream them through the pipeline from four "collector" threads.
    let agg = StreamAggregator::spawn(4096);
    let mut store = LogStore::with_default_retention();
    let mut sorted = out.log.clone();
    sorted.sort_by(|a, b| a.start_ms.total_cmp(&b.start_ms));
    for rec in &sorted {
        store.append(*rec);
    }
    println!("log store retains {} records (3-day retention)", store.len());

    let chunks: Vec<Vec<pinsql_dbsim::QueryRecord>> =
        out.log.chunks(out.log.len() / 4 + 1).map(<[_]>::to_vec).collect();
    let handles: Vec<_> = chunks
        .into_iter()
        .map(|chunk| {
            let tx = agg.sender();
            let catalog = catalog.clone();
            std::thread::spawn(move || {
                for rec in chunk {
                    let id = catalog.id_of_spec(rec.spec);
                    tx.send((id, rec)).expect("aggregator alive");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let aggregates = agg.finish();

    // Verify the streaming result agrees with the batch log.
    let total_streamed: f64 = aggregates.cells.values().map(|c| c.0).sum();
    assert_eq!(total_streamed as usize, out.log.len());
    println!(
        "streaming aggregation folded {} records into {} (template, second) cells",
        total_streamed as usize,
        aggregates.cells.len()
    );

    // Show one busy template's per-second counts.
    let busiest = aggregates
        .cells
        .iter()
        .max_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
        .map(|((id, _), _)| *id)
        .expect("cells");
    let label = catalog.get(busiest).map(|i| i.label.clone()).unwrap_or_default();
    print!("busiest template {label}: executions/s = ");
    for s in 100..110 {
        print!("{} ", aggregates.executions(busiest, s));
    }
    println!("…");
}
