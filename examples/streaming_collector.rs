//! The collection pipeline in streaming form (§IV-A): collector threads
//! publish [`TelemetryEvent`]s through a bounded channel; an aggregation
//! worker folds them into the same incremental per-template state the
//! synchronous engine path uses — the in-process analogue of the paper's
//! Kafka/Flink topology, with one aggregation algorithm behind two
//! drivers.
//!
//! ```text
//! cargo run --release --example streaming_collector
//! ```

use pinsql_collector::{aggregate_case, IncrementalConfig, LogStore, StreamAggregator};
use pinsql_dbsim::{interleave, TelemetryEvent};
use pinsql_scenario::{generate_base, inject, simulate_telemetry, AnomalyKind, ScenarioConfig};

fn main() {
    // Produce real telemetry with the simulator: a query log plus
    // per-second instance metrics.
    let cfg = ScenarioConfig::default().with_seed(3).with_businesses(6).with_window(300, 180, 240);
    let base = generate_base(&cfg);
    let scenario = inject(&base, &cfg, AnomalyKind::BusinessSpike);
    let (log, metrics) = simulate_telemetry(&scenario, None);
    let events = interleave(&log, &metrics);
    println!(
        "simulated {} query records + {} metric seconds → {} telemetry events",
        log.len(),
        metrics.active_session.len(),
        events.len()
    );

    // Keep the raw log in the 3-day store (the replay source for repair
    // experiments), as a real deployment would alongside aggregation.
    let mut store = LogStore::with_default_retention();
    let mut sorted = log.clone();
    sorted.sort_by(|a, b| a.start_ms.total_cmp(&b.start_ms));
    for rec in &sorted {
        store.append(*rec);
    }
    println!("log store retains {} records (3-day retention)", store.len());

    // Stream the events through the pipeline from four "collector"
    // threads: queries are sharded round-robin; one shard also carries the
    // metrics and clock ticks.
    let agg = StreamAggregator::spawn(&scenario.workload.specs, IncrementalConfig::default(), 4096);
    let shards: Vec<Vec<TelemetryEvent>> = (0..4)
        .map(|k| {
            events
                .iter()
                .filter(|ev| match ev {
                    TelemetryEvent::Query(rec) => (rec.start_ms as usize) % 4 == k,
                    _ => k == 0,
                })
                .cloned()
                .collect()
        })
        .collect();
    let handles: Vec<_> = shards
        .into_iter()
        .map(|shard| {
            let tx = agg.sender();
            std::thread::spawn(move || {
                for ev in shard {
                    tx.send(ev).expect("aggregator alive");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let mut out = agg.finish();
    let stats = out.stats();
    println!(
        "streaming aggregation folded {} events ({} queries) into {} retained seconds",
        stats.events,
        stats.queries,
        out.cell_seconds()
    );

    // Cross-thread arrival order is nondeterministic, but per-cell sums
    // commute: the snapshot's execution counts agree exactly with batch
    // aggregation over the same window.
    let (ts, te) = (0, scenario.cfg.window_s);
    let streamed = out.snapshot(ts, te);
    let batch = aggregate_case(&log, &scenario.workload.specs, &metrics, ts, te);
    assert_eq!(streamed.templates.len(), batch.templates.len());
    for (s, b) in streamed.templates.iter().zip(&batch.templates) {
        assert_eq!(s.id, b.id);
        assert_eq!(s.series.execution_count, b.series.execution_count);
    }
    println!(
        "snapshot [{ts}, {te}) matches batch aggregation across {} templates",
        streamed.templates.len()
    );

    // Show one busy template's per-second counts around the anomaly.
    let busiest = streamed
        .templates
        .iter()
        .max_by(|a, b| {
            let ea: f64 = a.series.execution_count.iter().sum();
            let eb: f64 = b.series.execution_count.iter().sum();
            ea.total_cmp(&eb)
        })
        .expect("templates");
    let label = out.catalog().get(busiest.id).map(|i| i.label.clone()).unwrap_or_default();
    print!("busiest template {label}: executions/s = ");
    for s in 180..190 {
        print!("{} ", out.executions(busiest.id, s));
    }
    println!("…");
}
