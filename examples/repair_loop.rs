//! The autonomous repair loop (§VII + Fig. 8): detect → pinpoint →
//! suggest → apply → verify recovery.
//!
//! ```text
//! cargo run --release --example repair_loop
//! ```

use pinsql::repair::{optimize_spec, suggest_actions, RepairConfig};
use pinsql::{PinSql, PinSqlConfig, RepairAction};
use pinsql_dbsim::run_open_loop;
use pinsql_scenario::{generate_base, inject, materialize, AnomalyKind, ScenarioConfig};

fn mean(v: &[f64], lo: usize, hi: usize) -> f64 {
    v[lo..hi.min(v.len())].iter().sum::<f64>() / (hi - lo) as f64
}

fn main() {
    // A bad deploy: unindexed scan saturating the CPU.
    let cfg = ScenarioConfig::default().with_seed(21);
    let base = generate_base(&cfg);
    let scenario = inject(&base, &cfg, AnomalyKind::PoorSql);
    let case = materialize(&scenario, 600);
    let (a_lo, a_hi) = (cfg.anomaly_start as usize, cfg.anomaly_end as usize);

    println!("1. anomaly detected: {} (type {})", case.detected, case.anomaly_type);
    let before = mean(&case.case.metrics.active_session, 0, case.case.metrics.len());

    // 2. Pinpoint.
    let pinsql = PinSql::new(PinSqlConfig::default());
    let d = pinsql.diagnose(&case.case, &case.window, &case.history, case.minutes_origin);
    let rsql = d.rsqls.first().expect("a root cause");
    println!("2. pinpointed R-SQL: {} (score {:+.2})", rsql.label, rsql.score);

    // 3. Rule-driven suggestion (Fig. 5-style configuration).
    let actions =
        suggest_actions(&d, &case.case, &case.window, &case.anomaly_type, &RepairConfig::default());
    println!("3. suggested actions:");
    for a in &actions {
        println!("   - {:?} on {} (auto={})", a.action, a.label, a.auto_execute);
    }
    let optimize = actions
        .iter()
        .find(|a| matches!(a.action, RepairAction::OptimizeQuery))
        .expect("optimization suggested for a CPU-bound poor SQL");

    // 4. Apply: rewrite the statement's cost profile (the index is built).
    let info = case.case.catalog.get(optimize.template).expect("catalog entry");
    let fixed = optimize_spec(&scenario.workload, info.specs[0]);
    println!(
        "4. applied optimization to `{}`: examined rows {:.0} → {:.0}",
        info.text,
        scenario.workload.specs[info.specs[0].0].cost.examined_rows,
        fixed.specs[info.specs[0].0].cost.examined_rows
    );

    // 5. Verify recovery on a fresh run of the same window.
    let out = run_open_loop(&fixed, &scenario.sim, 0, cfg.window_s);
    let anomaly_session_before =
        mean(case.case.metrics.by_name("active_session").unwrap(), a_lo.saturating_sub(case.window.ts() as usize), a_hi - case.window.ts() as usize);
    let anomaly_session_after = mean(&out.metrics.active_session, a_lo, a_hi);
    println!(
        "5. mean active session in the anomaly window: {:.1} → {:.1} (whole-window baseline {:.1})",
        anomaly_session_before, anomaly_session_after, before
    );
    assert!(
        anomaly_session_after < anomaly_session_before * 0.3,
        "optimizing the root cause must resolve the anomaly"
    );
    println!("→ anomaly resolved ✓");
}
