//! Property-based tests for the simulator substrates: processor-sharing
//! invariants, lock-manager safety, and integrator conservation.

use pinsql_dbsim::integrator::SecondIntegrator;
use pinsql_dbsim::locks::{LockKind, LockManager, QueryId};
use pinsql_dbsim::ps::PsResource;
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    /// Jobs depart in order of remaining work; everyone eventually departs;
    /// the busy integral never exceeds elapsed time.
    #[test]
    fn ps_everyone_departs_and_busy_bounded(
        capacity in 1.0f64..16.0,
        demands in prop::collection::vec(0.1f64..500.0, 1..40),
        gaps in prop::collection::vec(0.0f64..100.0, 1..40),
    ) {
        let mut r = PsResource::new(capacity);
        let mut t = 0.0;
        let mut expected: HashSet<u64> = HashSet::new();
        for (i, (&d, &g)) in demands.iter().zip(gaps.iter().cycle()).enumerate() {
            t += g;
            r.add(t, i as u64, d);
            expected.insert(i as u64);
        }
        let mut done: Vec<u64> = Vec::new();
        let mut guard = 0;
        while !r.is_empty() {
            let (at, _) = r.next_departure().expect("jobs remain");
            let at = at.max(t);
            r.pop_finished(at, 1e-6, &mut done);
            t = at + 1e-3;
            guard += 1;
            prop_assert!(guard < 10_000, "departure loop diverged");
        }
        let done_set: HashSet<u64> = done.iter().copied().collect();
        prop_assert_eq!(done_set, expected);
        prop_assert!(r.busy_ms() <= t + 1e-6);
        // Work conservation: total service delivered equals total demand,
        // and busy time is at least total demand / capacity.
        let total: f64 = demands.iter().sum();
        prop_assert!(r.busy_ms() * capacity >= total - 1e-3,
            "busy {} * cap {} < demand {}", r.busy_ms(), capacity, total);
    }

    /// The lock manager never grants conflicting holders and always grants
    /// every queued request exactly once after enough releases.
    #[test]
    fn lock_manager_safety_and_liveness(
        ops in prop::collection::vec((0u32..4, any::<bool>()), 1..200),
    ) {
        let mut m = LockManager::new(4);
        // Track state per (table): holders + queue mirror.
        #[derive(Default, Clone)]
        struct Mirror { shared: Vec<QueryId>, excl: Option<QueryId>, queued: Vec<(QueryId, LockKind)> }
        let mut mirror: Vec<Mirror> = vec![Mirror::default(); 4];
        let mut granted_buf = Vec::new();

        for (q, (table, exclusive)) in (0u64..).zip(ops.into_iter()) {
            let t = table as usize;
            let kind = if exclusive { LockKind::Exclusive } else { LockKind::Shared };
            if m.request_mdl(q, table, kind) {
                // Immediate grant: must be compatible with mirror state.
                prop_assert!(mirror[t].queued.is_empty(), "grant jumped the queue");
                match kind {
                    LockKind::Shared => {
                        prop_assert!(mirror[t].excl.is_none());
                        mirror[t].shared.push(q);
                    }
                    LockKind::Exclusive => {
                        prop_assert!(mirror[t].excl.is_none() && mirror[t].shared.is_empty());
                        mirror[t].excl = Some(q);
                    }
                }
            } else {
                mirror[t].queued.push((q, kind));
            }
            // Randomly release one holder (the first shared or the excl).
            if q.is_multiple_of(2) {
                granted_buf.clear();
                if let Some(h) = mirror[t].excl.take() {
                    let _ = h;
                    m.release_mdl(table, LockKind::Exclusive, &mut granted_buf);
                } else if !mirror[t].shared.is_empty() {
                    mirror[t].shared.remove(0);
                    m.release_mdl(table, LockKind::Shared, &mut granted_buf);
                }
                // Apply grants to the mirror in FIFO order.
                for &g in &granted_buf {
                    let pos = mirror[t]
                        .queued
                        .iter()
                        .position(|&(qq, _)| qq == g)
                        .expect("granted query was queued");
                    prop_assert_eq!(pos, 0, "grants must be FIFO");
                    let (qq, k) = mirror[t].queued.remove(0);
                    match k {
                        LockKind::Shared => {
                            prop_assert!(mirror[t].excl.is_none());
                            mirror[t].shared.push(qq);
                        }
                        LockKind::Exclusive => {
                            prop_assert!(
                                mirror[t].excl.is_none() && mirror[t].shared.is_empty()
                            );
                            mirror[t].excl = Some(qq);
                        }
                    }
                }
            }
        }
        // Waiter accounting agrees with the mirror.
        let queued_total: usize = mirror.iter().map(|m| m.queued.len()).sum();
        prop_assert_eq!(m.mdl_waiters(), queued_total);
    }

    /// Per-second means stay within the range of the observed values.
    #[test]
    fn integrator_means_bounded_by_values(
        steps in prop::collection::vec((1.0f64..3000.0, 0.0f64..50.0), 1..40),
    ) {
        let first = steps[0].1;
        let mut integ = SecondIntegrator::new(0.0, first);
        let mut t = 0.0;
        let mut lo = first;
        let mut hi = first;
        for &(dt, v) in &steps {
            t += dt;
            integ.set(t, v);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let end = t + 500.0;
        let out = integ.finish(end);
        for (i, &mean) in out.iter().enumerate() {
            prop_assert!(
                mean >= lo - 1e-9 && mean <= hi + 1e-9,
                "second {i}: mean {mean} outside [{lo}, {hi}]"
            );
        }
        prop_assert_eq!(out.len(), (end / 1000.0).ceil() as usize);
    }
}
