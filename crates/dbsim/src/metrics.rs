//! Per-second instance performance metrics (Definition II.4).
//!
//! The simulator emits the metric set PinSQL's default configuration
//! watches — active session, CPU usage, IOPS usage — plus the row-lock and
//! metadata-lock wait gauges used by phenomenon classification.

use crate::probe::ProbeLog;
use serde::{Deserialize, Serialize};

/// Canonical metric names, used as map keys by the detection layer.
pub mod names {
    pub const ACTIVE_SESSION: &str = "active_session";
    pub const CPU_USAGE: &str = "cpu_usage";
    pub const IOPS_USAGE: &str = "iops_usage";
    pub const ROW_LOCK_WAITS: &str = "innodb_row_lock_waits";
    pub const MDL_WAITS: &str = "mdl_waits";
    pub const THREADS_RUNNING: &str = "threads_running";
    pub const QPS: &str = "qps";
}

/// Per-second instance metrics over a simulation window starting at
/// `start_second`. All series have equal length.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct InstanceMetrics {
    pub start_second: i64,
    /// Active session via the randomly-timed probe (what production
    /// monitoring reports).
    pub active_session: Vec<f64>,
    /// CPU utilization in `[0, 1]` (per-second mean).
    pub cpu_usage: Vec<f64>,
    /// IO utilization in `[0, 1]` (per-second mean).
    pub iops_usage: Vec<f64>,
    /// Queries observed waiting on row locks (sampled each second).
    pub row_lock_waits: Vec<f64>,
    /// Queries observed waiting on metadata locks (sampled each second).
    pub mdl_waits: Vec<f64>,
    /// Completed queries per second.
    pub qps: Vec<f64>,
    /// The raw probe log (true instants kept for validation only).
    pub probes: ProbeLog,
}

impl InstanceMetrics {
    /// Number of seconds covered.
    pub fn len(&self) -> usize {
        self.active_session.len()
    }

    /// True when no samples were produced.
    pub fn is_empty(&self) -> bool {
        self.active_session.is_empty()
    }

    /// Looks a metric up by canonical name.
    pub fn by_name(&self, name: &str) -> Option<&[f64]> {
        match name {
            names::ACTIVE_SESSION | names::THREADS_RUNNING => Some(&self.active_session),
            names::CPU_USAGE => Some(&self.cpu_usage),
            names::IOPS_USAGE => Some(&self.iops_usage),
            names::ROW_LOCK_WAITS => Some(&self.row_lock_waits),
            names::MDL_WAITS => Some(&self.mdl_waits),
            names::QPS => Some(&self.qps),
            _ => None,
        }
    }

    /// Replaces every non-finite sample across all six series with `0.0`,
    /// returning how many samples were replaced.
    ///
    /// Degraded or synthetic telemetry must never carry NaN/Inf into the
    /// pipeline (or into a serialized trace — JSON has no NaN), so callers
    /// that perturb metrics post-hoc sanitize before handing them on. A
    /// blanked second reads as zero, matching what a monitoring gap looks
    /// like after gap-filling in production collectors.
    pub fn sanitize(&mut self) -> usize {
        let mut replaced = 0;
        for series in [
            &mut self.active_session,
            &mut self.cpu_usage,
            &mut self.iops_usage,
            &mut self.row_lock_waits,
            &mut self.mdl_waits,
            &mut self.qps,
        ] {
            for v in series.iter_mut() {
                if !v.is_finite() {
                    *v = 0.0;
                    replaced += 1;
                }
            }
        }
        replaced
    }

    /// All `(name, series)` pairs, for iteration by the detection layer.
    pub fn iter_named(&self) -> impl Iterator<Item = (&'static str, &[f64])> {
        [
            (names::ACTIVE_SESSION, self.active_session.as_slice()),
            (names::CPU_USAGE, self.cpu_usage.as_slice()),
            (names::IOPS_USAGE, self.iops_usage.as_slice()),
            (names::ROW_LOCK_WAITS, self.row_lock_waits.as_slice()),
            (names::MDL_WAITS, self.mdl_waits.as_slice()),
            (names::QPS, self.qps.as_slice()),
        ]
        .into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_name_resolves_all_series() {
        let m = InstanceMetrics {
            start_second: 0,
            active_session: vec![1.0],
            cpu_usage: vec![0.5],
            iops_usage: vec![0.2],
            row_lock_waits: vec![0.0],
            mdl_waits: vec![0.0],
            qps: vec![10.0],
            probes: ProbeLog::default(),
        };
        assert_eq!(m.by_name(names::ACTIVE_SESSION), Some(&[1.0][..]));
        assert_eq!(m.by_name(names::CPU_USAGE), Some(&[0.5][..]));
        assert_eq!(m.by_name(names::QPS), Some(&[10.0][..]));
        assert_eq!(m.by_name("bogus"), None);
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
        assert_eq!(m.iter_named().count(), 6);
    }

    #[test]
    fn sanitize_zeroes_non_finite_samples() {
        let mut m = InstanceMetrics {
            start_second: 0,
            active_session: vec![1.0, f64::NAN, 3.0],
            cpu_usage: vec![0.5, f64::INFINITY, 0.4],
            iops_usage: vec![0.2, 0.1, 0.3],
            row_lock_waits: vec![0.0, f64::NEG_INFINITY, 0.0],
            mdl_waits: vec![0.0, 0.0, 0.0],
            qps: vec![10.0, 11.0, 12.0],
            probes: ProbeLog::default(),
        };
        assert_eq!(m.sanitize(), 3);
        assert_eq!(m.active_session, vec![1.0, 0.0, 3.0]);
        assert_eq!(m.cpu_usage, vec![0.5, 0.0, 0.4]);
        assert_eq!(m.row_lock_waits, vec![0.0, 0.0, 0.0]);
        assert_eq!(m.sanitize(), 0);
    }
}
