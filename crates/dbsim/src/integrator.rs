//! Per-second integration of piecewise-constant signals.
//!
//! Utilization metrics (cpu_usage, iops_usage) are time integrals of
//! piecewise-constant functions (the value changes only at events). The
//! [`SecondIntegrator`] accumulates `value · dt` into per-second bins,
//! splitting segments that cross second boundaries exactly, and reports the
//! per-second mean at the end.

/// Integrates a piecewise-constant signal into per-second means.
#[derive(Debug)]
pub struct SecondIntegrator {
    /// Simulation time (ms) of the last observation.
    last_ms: f64,
    /// Value that has held since `last_ms`.
    value: f64,
    /// Accumulated integral per whole second.
    bins: Vec<f64>,
    /// Start of bin 0 in ms.
    origin_ms: f64,
}

impl SecondIntegrator {
    /// Creates an integrator starting at `origin_ms` with initial `value`.
    pub fn new(origin_ms: f64, value: f64) -> Self {
        Self { last_ms: origin_ms, value, bins: Vec::new(), origin_ms }
    }

    fn bin_of(&self, t_ms: f64) -> usize {
        (((t_ms - self.origin_ms) / 1000.0).floor().max(0.0)) as usize
    }

    /// Records that the signal changes to `new_value` at time `now_ms`,
    /// accumulating the old value over `[last, now)`.
    ///
    /// # Panics
    /// Panics if time moves backwards by more than 1 ns.
    pub fn set(&mut self, now_ms: f64, new_value: f64) {
        assert!(now_ms >= self.last_ms - 1e-6, "integrator time went backwards");
        let now_ms = now_ms.max(self.last_ms);
        let mut t = self.last_ms;
        while t < now_ms {
            let bin = self.bin_of(t);
            let bin_end = self.origin_ms + (bin as f64 + 1.0) * 1000.0;
            let seg_end = now_ms.min(bin_end);
            if self.bins.len() <= bin {
                self.bins.resize(bin + 1, 0.0);
            }
            self.bins[bin] += self.value * (seg_end - t);
            t = seg_end;
        }
        self.last_ms = now_ms;
        self.value = new_value;
    }

    /// Finalizes at `end_ms` and returns per-second means for each complete
    /// (or partial trailing) second in `[origin, end)`.
    pub fn finish(mut self, end_ms: f64) -> Vec<f64> {
        let value = self.value;
        self.set(end_ms, value);
        let total_secs = ((end_ms - self.origin_ms) / 1000.0).ceil().max(0.0) as usize;
        self.bins.resize(total_secs, 0.0);
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &integral)| {
                let bin_start = self.origin_ms + i as f64 * 1000.0;
                let width = (end_ms - bin_start).clamp(1e-9, 1000.0);
                integral / width
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_signal_yields_constant_means() {
        let integ = SecondIntegrator::new(0.0, 0.5);
        let out = integ.finish(3000.0);
        assert_eq!(out.len(), 3);
        for v in out {
            assert!((v - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn step_change_mid_second_averages() {
        let mut integ = SecondIntegrator::new(0.0, 0.0);
        integ.set(500.0, 1.0); // 0 for first half, 1 for second half
        let out = integ.finish(1000.0);
        assert_eq!(out.len(), 1);
        assert!((out[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn segment_spanning_multiple_seconds_splits_exactly() {
        let mut integ = SecondIntegrator::new(0.0, 2.0);
        integ.set(2500.0, 0.0);
        let out = integ.finish(4000.0);
        assert_eq!(out.len(), 4);
        assert!((out[0] - 2.0).abs() < 1e-9);
        assert!((out[1] - 2.0).abs() < 1e-9);
        assert!((out[2] - 1.0).abs() < 1e-9); // half the third second at 2.0
        assert!((out[3] - 0.0).abs() < 1e-9);
    }

    #[test]
    fn partial_trailing_second_normalizes_by_actual_width() {
        let integ = SecondIntegrator::new(0.0, 1.0);
        let out = integ.finish(1500.0);
        assert_eq!(out.len(), 2);
        assert!((out[0] - 1.0).abs() < 1e-9);
        assert!((out[1] - 1.0).abs() < 1e-9, "got {}", out[1]);
    }

    #[test]
    fn nonzero_origin_bins_align_to_origin() {
        let mut integ = SecondIntegrator::new(10_000.0, 1.0);
        integ.set(10_500.0, 3.0);
        let out = integ.finish(11_000.0);
        assert_eq!(out.len(), 1);
        assert!((out[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn repeated_sets_at_same_time_keep_last_value() {
        let mut integ = SecondIntegrator::new(0.0, 0.0);
        integ.set(0.0, 5.0);
        integ.set(0.0, 1.0);
        let out = integ.finish(1000.0);
        assert!((out[0] - 1.0).abs() < 1e-9);
    }
}
