//! Instance sizing and the Performance-Schema overhead model.

use serde::{Deserialize, Serialize};

/// The Performance-Schema configuration knobs of the Table IV study.
///
/// Overheads are modelled as a multiplicative CPU surcharge per query.
/// The coefficients were chosen so the *relative* QPS declines match the
/// shape of Table IV: `pfs` alone costs ~8–13 %, adding all instruments or
/// all consumers costs a few points more, and both together interact
/// super-additively to ~26–30 %.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct PfsConfig {
    /// `performance_schema = ON`.
    pub enabled: bool,
    /// All instrumentation switched on.
    pub instruments: bool,
    /// All consumers switched on.
    pub consumers: bool,
}

impl PfsConfig {
    /// Performance Schema off (the `normal` row of Table IV).
    pub const OFF: PfsConfig =
        PfsConfig { enabled: false, instruments: false, consumers: false };
    /// `pfs` row.
    pub const PFS: PfsConfig = PfsConfig { enabled: true, instruments: false, consumers: false };
    /// `pfs+ins` row.
    pub const PFS_INS: PfsConfig =
        PfsConfig { enabled: true, instruments: true, consumers: false };
    /// `pfs+con` row.
    pub const PFS_CON: PfsConfig =
        PfsConfig { enabled: true, instruments: false, consumers: true };
    /// `pfs+con+ins` row.
    pub const PFS_CON_INS: PfsConfig =
        PfsConfig { enabled: true, instruments: true, consumers: true };

    /// Multiplicative CPU overhead factor applied to every query.
    pub fn cpu_overhead_factor(&self) -> f64 {
        if !self.enabled {
            return 1.0;
        }
        let mut f: f64 = 1.10; // turning pfs on
        if self.instruments {
            f += 0.035;
        }
        if self.consumers {
            f += 0.045;
        }
        if self.instruments && self.consumers {
            // Events flow all the way from instrumentation points into
            // consumer tables: the combination is super-additive.
            f += 0.22;
        }
        f
    }

    /// The label used in Table IV.
    pub fn label(&self) -> &'static str {
        match (self.enabled, self.instruments, self.consumers) {
            (false, _, _) => "normal",
            (true, false, false) => "pfs",
            (true, true, false) => "pfs+ins",
            (true, false, true) => "pfs+con",
            (true, true, true) => "pfs+con+ins",
        }
    }
}

/// Database-instance sizing and simulator options.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// CPU cores (processor-sharing capacity of the CPU resource).
    pub cores: f64,
    /// Concurrent IO channels (capacity of the IO resource).
    pub io_channels: f64,
    /// Maximum concurrently admitted sessions; arrivals beyond this queue
    /// at admission. Keep high for open-loop anomaly studies.
    pub max_sessions: usize,
    /// Performance-Schema configuration.
    pub pfs: PfsConfig,
    /// RNG seed for cost sampling, slot selection, and the probe instant.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        // 16 cores / 8 IO channels approximates the paper's average
        // instance (15.9 cores).
        Self { cores: 16.0, io_channels: 8.0, max_sessions: 100_000, pfs: PfsConfig::OFF, seed: 0 }
    }
}

impl SimConfig {
    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style core-count override.
    pub fn with_cores(mut self, cores: f64) -> Self {
        self.cores = cores;
        self
    }

    /// Builder-style Performance-Schema override.
    pub fn with_pfs(mut self, pfs: PfsConfig) -> Self {
        self.pfs = pfs;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_ordering_matches_table_iv_shape() {
        let normal = PfsConfig::OFF.cpu_overhead_factor();
        let pfs = PfsConfig::PFS.cpu_overhead_factor();
        let ins = PfsConfig::PFS_INS.cpu_overhead_factor();
        let con = PfsConfig::PFS_CON.cpu_overhead_factor();
        let both = PfsConfig::PFS_CON_INS.cpu_overhead_factor();
        assert_eq!(normal, 1.0);
        assert!(pfs > 1.05 && pfs < 1.15);
        assert!(ins > pfs);
        assert!(con > pfs);
        assert!(both > 1.25 && both < 1.45, "super-additive: {both}");
    }

    #[test]
    fn labels_match_paper_rows() {
        assert_eq!(PfsConfig::OFF.label(), "normal");
        assert_eq!(PfsConfig::PFS.label(), "pfs");
        assert_eq!(PfsConfig::PFS_INS.label(), "pfs+ins");
        assert_eq!(PfsConfig::PFS_CON.label(), "pfs+con");
        assert_eq!(PfsConfig::PFS_CON_INS.label(), "pfs+con+ins");
    }

    #[test]
    fn default_config_is_reasonable() {
        let c = SimConfig::default();
        assert!(c.cores > 0.0);
        assert!(c.max_sessions > 1000);
        assert_eq!(c.pfs, PfsConfig::OFF);
        let c2 = c.with_seed(9).with_cores(4.0).with_pfs(PfsConfig::PFS);
        assert_eq!(c2.seed, 9);
        assert_eq!(c2.cores, 4.0);
        assert!(c2.pfs.enabled);
    }
}
