//! Query-log records — the raw material PinSQL's collector aggregates.
//!
//! Per §IV-A, the collector receives for each query: the SQL (identified
//! here by its spec/template), the response time `t_res`, the number of
//! examined rows, and the arrival timestamp in milliseconds. A query is
//! *active* during `[t(q), t(q) + t_res(q))` (§IV-C).

use pinsql_workload::SpecId;
use serde::{Deserialize, Serialize};

/// One executed query, as the log collector sees it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryRecord {
    /// The template spec that produced this query.
    pub spec: SpecId,
    /// Arrival timestamp in milliseconds since simulation start.
    pub start_ms: f64,
    /// Response time in milliseconds (queueing + lock waits + service).
    pub response_ms: f64,
    /// Rows examined.
    pub examined_rows: u64,
}

impl QueryRecord {
    /// End of the query's active interval in ms.
    #[inline]
    pub fn end_ms(&self) -> f64 {
        self.start_ms + self.response_ms
    }

    /// Length of the overlap between the query's active interval and
    /// `[from_ms, to_ms)`, in ms — the numerator of §IV-C's
    /// `P(observed(p, q))`.
    #[inline]
    pub fn overlap_ms(&self, from_ms: f64, to_ms: f64) -> f64 {
        let lo = self.start_ms.max(from_ms);
        let hi = self.end_ms().min(to_ms);
        (hi - lo).max(0.0)
    }

    /// `P(observed(p, q))` for the window `[from_ms, to_ms)`.
    #[inline]
    pub fn observed_probability(&self, from_ms: f64, to_ms: f64) -> f64 {
        let width = to_ms - from_ms;
        if width <= 0.0 {
            return 0.0;
        }
        self.overlap_ms(from_ms, to_ms) / width
    }

    /// True when the query is in flight at instant `t_ms`.
    #[inline]
    pub fn active_at(&self, t_ms: f64) -> bool {
        t_ms >= self.start_ms && t_ms < self.end_ms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(start: f64, rt: f64) -> QueryRecord {
        QueryRecord { spec: SpecId(0), start_ms: start, response_ms: rt, examined_rows: 1 }
    }

    #[test]
    fn active_interval_is_half_open() {
        let q = rec(100.0, 50.0);
        assert!(q.active_at(100.0));
        assert!(q.active_at(149.9));
        assert!(!q.active_at(150.0));
        assert!(!q.active_at(99.9));
    }

    #[test]
    fn overlap_clamps_to_window() {
        let q = rec(100.0, 50.0);
        assert_eq!(q.overlap_ms(0.0, 1000.0), 50.0);
        assert_eq!(q.overlap_ms(120.0, 130.0), 10.0);
        assert_eq!(q.overlap_ms(0.0, 100.0), 0.0);
        assert_eq!(q.overlap_ms(150.0, 200.0), 0.0);
        assert_eq!(q.overlap_ms(125.0, 300.0), 25.0);
    }

    #[test]
    fn observed_probability_matches_definition() {
        // P(observed(p,q)) = |p ∩ [t(q), t(q)+rt)| / |p|
        let q = rec(500.0, 250.0);
        assert!((q.observed_probability(0.0, 1000.0) - 0.25).abs() < 1e-12);
        assert!((q.observed_probability(500.0, 750.0) - 1.0).abs() < 1e-12);
        assert_eq!(q.observed_probability(0.0, 0.0), 0.0);
    }
}
