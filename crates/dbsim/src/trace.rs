//! Portable traces: (de)serializing simulation output.
//!
//! Real deployments of PinSQL analyze logs collected elsewhere; this
//! module gives the simulator the same decoupling — a [`Trace`] bundles
//! the query log and instance metrics and round-trips through JSON, so
//! workloads can be simulated once and diagnosed many times (or shipped
//! between machines, compared across versions, committed as fixtures).

use crate::engine::SimOutput;
use crate::metrics::InstanceMetrics;
use crate::record::QueryRecord;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};

/// Current trace-format version; bump on breaking changes.
pub const TRACE_VERSION: u32 = 1;

/// A self-contained simulation trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trace {
    pub version: u32,
    /// Free-form description (scenario, seed, …).
    pub label: String,
    pub metrics: InstanceMetrics,
    pub log: Vec<QueryRecord>,
}

impl Trace {
    /// Bundles a simulation output into a trace.
    pub fn from_output(label: impl Into<String>, output: &SimOutput) -> Self {
        Self {
            version: TRACE_VERSION,
            label: label.into(),
            metrics: output.metrics.clone(),
            log: output.log.clone(),
        }
    }

    /// Writes the trace as JSON lines: a header line (version, label,
    /// metrics) followed by one line per query record. Line-oriented so
    /// large logs stream without a giant in-memory JSON value.
    pub fn write_jsonl<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        #[derive(Serialize)]
        struct Header<'a> {
            version: u32,
            label: &'a str,
            metrics: &'a InstanceMetrics,
            n_records: usize,
        }
        let header = Header {
            version: self.version,
            label: &self.label,
            metrics: &self.metrics,
            n_records: self.log.len(),
        };
        serde_json::to_writer(&mut w, &header).map_err(std::io::Error::other)?;
        w.write_all(b"\n")?;
        for rec in &self.log {
            serde_json::to_writer(&mut w, rec).map_err(std::io::Error::other)?;
            w.write_all(b"\n")?;
        }
        Ok(())
    }

    /// Reads a trace written by [`Trace::write_jsonl`].
    ///
    /// Fails on version mismatch or malformed lines.
    pub fn read_jsonl<R: BufRead>(r: R) -> std::io::Result<Self> {
        #[derive(Deserialize)]
        struct Header {
            version: u32,
            label: String,
            metrics: InstanceMetrics,
            n_records: usize,
        }
        let mut lines = r.lines();
        let header_line = lines
            .next()
            .ok_or_else(|| std::io::Error::other("empty trace"))??;
        let header: Header =
            serde_json::from_str(&header_line).map_err(std::io::Error::other)?;
        if header.version != TRACE_VERSION {
            return Err(std::io::Error::other(format!(
                "trace version {} unsupported (expected {TRACE_VERSION})",
                header.version
            )));
        }
        let mut log = Vec::with_capacity(header.n_records);
        for line in lines {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            log.push(serde_json::from_str(&line).map_err(std::io::Error::other)?);
        }
        if log.len() != header.n_records {
            return Err(std::io::Error::other(format!(
                "record count mismatch: header {} vs {}",
                header.n_records,
                log.len()
            )));
        }
        Ok(Self { version: header.version, label: header.label, metrics: header.metrics, log })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::ProbeLog;
    use pinsql_workload::SpecId;

    fn sample_trace() -> Trace {
        Trace {
            version: TRACE_VERSION,
            label: "unit".into(),
            metrics: InstanceMetrics {
                start_second: 3,
                active_session: vec![1.0, 2.0],
                cpu_usage: vec![0.5, 0.6],
                iops_usage: vec![0.1, 0.2],
                row_lock_waits: vec![0.0, 1.0],
                mdl_waits: vec![0.0, 0.0],
                qps: vec![10.0, 12.0],
                probes: ProbeLog::default(),
            },
            log: vec![
                QueryRecord { spec: SpecId(0), start_ms: 3000.5, response_ms: 12.25, examined_rows: 7 },
                QueryRecord { spec: SpecId(3), start_ms: 3900.0, response_ms: 0.5, examined_rows: 0 },
            ],
        }
    }

    #[test]
    fn jsonl_round_trip() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        trace.write_jsonl(&mut buf).unwrap();
        let back = Trace::read_jsonl(&buf[..]).unwrap();
        assert_eq!(back.label, "unit");
        assert_eq!(back.log.len(), 2);
        assert_eq!(back.log[0].start_ms, 3000.5);
        assert_eq!(back.log[1].spec, SpecId(3));
        assert_eq!(back.metrics.active_session, vec![1.0, 2.0]);
        assert_eq!(back.metrics.start_second, 3);
    }

    #[test]
    fn empty_input_fails() {
        assert!(Trace::read_jsonl(&b""[..]).is_err());
    }

    #[test]
    fn version_mismatch_fails() {
        let mut trace = sample_trace();
        trace.version = 999;
        let mut buf = Vec::new();
        trace.write_jsonl(&mut buf).unwrap();
        let err = Trace::read_jsonl(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn truncated_input_fails() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        trace.write_jsonl(&mut buf).unwrap();
        // Drop the last line.
        let cut = buf.iter().rposition(|&b| b == b'\n').unwrap();
        let cut2 = buf[..cut].iter().rposition(|&b| b == b'\n').unwrap();
        let err = Trace::read_jsonl(&buf[..cut2 + 1]).unwrap_err();
        assert!(err.to_string().contains("mismatch"));
    }
}
