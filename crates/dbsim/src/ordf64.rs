//! A totally-ordered `f64` wrapper for use as a priority key.
//!
//! Simulation times and virtual service times are `f64` milliseconds; the
//! event queue and the processor-sharing job sets need them as ordered map
//! keys. `OrdF64` orders by `f64::total_cmp`, and construction asserts the
//! value is not NaN (a NaN event time is always a bug upstream).

/// A non-NaN `f64` with total ordering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrdF64(f64);

impl OrdF64 {
    /// Wraps a finite (or infinite, but not NaN) value.
    ///
    /// # Panics
    /// Panics on NaN.
    #[inline]
    pub fn new(v: f64) -> Self {
        assert!(!v.is_nan(), "NaN used as ordered key");
        Self(v)
    }

    /// The wrapped value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl From<f64> for OrdF64 {
    fn from(v: f64) -> Self {
        Self::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total_and_numeric() {
        let mut v = [OrdF64::new(3.0), OrdF64::new(-1.0), OrdF64::new(2.5)];
        v.sort();
        assert_eq!(v.iter().map(|x| x.get()).collect::<Vec<_>>(), vec![-1.0, 2.5, 3.0]);
    }

    #[test]
    fn negative_zero_sorts_before_positive_zero() {
        // total_cmp semantics; irrelevant for simulation but documented.
        assert!(OrdF64::new(-0.0) < OrdF64::new(0.0));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_panics() {
        let _ = OrdF64::new(f64::NAN);
    }
}
