//! The `SHOW STATUS`-style active-session probe.
//!
//! Real monitoring agents call `SHOW STATUS` once per second, but the exact
//! instant `t3` at which the server snapshots its session count is unknown
//! to the collector — it lands somewhere inside `[t, t+1)` (Fig. 3). The
//! simulator reproduces that: each second it draws a uniform sub-second
//! offset, counts in-flight queries at that instant, and records only the
//! per-second value. The true offset is retained *separately* for test
//! validation; PinSQL's estimator never reads it.

use serde::{Deserialize, Serialize};

/// One per-second probe sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbeSample {
    /// The second this sample is reported for.
    pub second: i64,
    /// Number of active sessions observed at the probe instant.
    pub active_sessions: u32,
    /// The true probe instant in ms — ground truth for validation only.
    /// The §IV-C estimator must not consume this field.
    pub true_instant_ms: f64,
}

/// The sequence of probe samples over a simulation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProbeLog {
    pub samples: Vec<ProbeSample>,
}

impl ProbeLog {
    /// The per-second active-session series (what the collector stores).
    pub fn session_series(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.active_sessions as f64).collect()
    }

    /// First recorded second, if any.
    pub fn start_second(&self) -> Option<i64> {
        self.samples.first().map(|s| s.second)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_extraction() {
        let log = ProbeLog {
            samples: vec![
                ProbeSample { second: 10, active_sessions: 3, true_instant_ms: 10_400.0 },
                ProbeSample { second: 11, active_sessions: 7, true_instant_ms: 11_950.0 },
            ],
        };
        assert_eq!(log.session_series(), vec![3.0, 7.0]);
        assert_eq!(log.start_second(), Some(10));
        assert_eq!(ProbeLog::default().start_second(), None);
    }
}
