//! The unified telemetry event stream.
//!
//! Production PinSQL never sees a complete trace: query logs stream through
//! Kafka/Flink and per-second metrics arrive from the monitoring agent, all
//! interleaved in time. [`TelemetryEvent`] is the single currency every
//! online component speaks — the incremental collector folds it into cells,
//! the online detectors watch the metric samples, and the fleet engine
//! multiplexes many instances' streams.
//!
//! ## Ordering contract
//!
//! A stream is *time-ordered*: events are sorted by [`TelemetryEvent::time_ms`],
//! with ties broken by original log order (stable). Within one second `s`
//! the order is: every [`TelemetryEvent::Query`] arriving in `[s, s+1)`,
//! then the [`TelemetryEvent::Metrics`] sample for `s`, then
//! [`TelemetryEvent::Tick`] for `s + 1`. A `Tick { second }` promises that
//! all telemetry with timestamps `< second` has been delivered — the
//! watermark consumers advance their clocks on.
//!
//! Query records are delivered at their *arrival* timestamp (a real
//! collector ships them at completion). Arrival-order delivery is what
//! makes the online path bit-identical to the batch path: per-cell
//! floating-point sums accumulate in exactly the order
//! [`aggregate_case`](../pinsql_collector/fn.aggregate_case.html) would add
//! them.

use crate::metrics::InstanceMetrics;
use crate::probe::ProbeSample;
use crate::record::QueryRecord;
use serde::{Deserialize, Serialize};

/// One second's worth of instance metrics, as the monitoring agent
/// publishes them (Definition II.4, one row at a time).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSample {
    /// The second this sample covers, `[second, second + 1)`.
    pub second: i64,
    pub active_session: f64,
    pub cpu_usage: f64,
    pub iops_usage: f64,
    pub row_lock_waits: f64,
    pub mdl_waits: f64,
    pub qps: f64,
    /// The raw active-session probe samples taken in this second (normally
    /// one; empty when the probe missed the second).
    pub probes: Vec<ProbeSample>,
}

impl MetricsSample {
    /// The six watched metric values in [`InstanceMetrics::iter_named`]
    /// order (`active_session, cpu_usage, iops_usage, row_lock_waits,
    /// mdl_waits, qps`) — the pre-resolved slot decode the online detector
    /// bank indexes by, instead of matching names per sample.
    #[inline]
    pub fn metric_values(&self) -> [f64; 6] {
        [
            self.active_session,
            self.cpu_usage,
            self.iops_usage,
            self.row_lock_waits,
            self.mdl_waits,
            self.qps,
        ]
    }

    /// The sample's value for a canonical metric name (see
    /// [`crate::metrics::names`]); `None` for unknown names.
    pub fn by_name(&self, name: &str) -> Option<f64> {
        use crate::metrics::names;
        match name {
            names::ACTIVE_SESSION | names::THREADS_RUNNING => Some(self.active_session),
            names::CPU_USAGE => Some(self.cpu_usage),
            names::IOPS_USAGE => Some(self.iops_usage),
            names::ROW_LOCK_WAITS => Some(self.row_lock_waits),
            names::MDL_WAITS => Some(self.mdl_waits),
            names::QPS => Some(self.qps),
            _ => None,
        }
    }
}

/// One event of an instance's telemetry stream.
///
/// The metrics sample is boxed: streams are overwhelmingly query records,
/// and an inline [`MetricsSample`] (with its probe `Vec`) would widen
/// *every* event to its size. Boxing the ~1/second cold variant keeps the
/// enum at `Query`'s footprint, so a million-event stream moves less than
/// half the memory through the ingest loop. `serde` treats `Box<T>`
/// transparently, so wire formats are unchanged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TelemetryEvent {
    /// A query-log record, delivered at its arrival timestamp.
    Query(QueryRecord),
    /// The per-second instance-metric sample for `[second, second + 1)`.
    Metrics(Box<MetricsSample>),
    /// Watermark: all telemetry with timestamps `< second` was delivered.
    Tick { second: i64 },
}

impl TelemetryEvent {
    /// The event's position on the stream clock, in milliseconds.
    ///
    /// A metrics sample for second `s` closes that second, so it sits at
    /// `(s + 1) * 1000`; a tick for `second` sits at `second * 1000`.
    pub fn time_ms(&self) -> f64 {
        match self {
            TelemetryEvent::Query(r) => r.start_ms,
            TelemetryEvent::Metrics(m) => (m.second + 1) as f64 * 1000.0,
            TelemetryEvent::Tick { second } => *second as f64 * 1000.0,
        }
    }
}

/// Interleaves a query log and instance metrics into one time-ordered
/// telemetry stream (the ordering contract in the module docs).
///
/// The log may be in any order (the simulator emits completion order); it
/// is stably sorted by arrival here, so tie order matches the batch
/// aggregator's `filter`-then-stable-sort. Records arriving before the
/// metric horizon's first second lead the stream; records at or past its
/// end trail it, before the final tick.
pub fn interleave(log: &[QueryRecord], metrics: &InstanceMetrics) -> Vec<TelemetryEvent> {
    let mut sorted: Vec<QueryRecord> = log.to_vec();
    sorted.sort_by(|a, b| a.start_ms.total_cmp(&b.start_ms));

    let n = metrics.len();
    let start = metrics.start_second;
    let mut events = Vec::with_capacity(sorted.len() + 2 * n + 1);
    let mut probe_cursor = 0usize;
    let mut rec_cursor = 0usize;

    for idx in 0..n {
        let second = start + idx as i64;
        let boundary = (second + 1) as f64 * 1000.0;
        while rec_cursor < sorted.len() && sorted[rec_cursor].start_ms < boundary {
            events.push(TelemetryEvent::Query(sorted[rec_cursor]));
            rec_cursor += 1;
        }
        let mut probes = Vec::new();
        while probe_cursor < metrics.probes.samples.len()
            && metrics.probes.samples[probe_cursor].second <= second
        {
            if metrics.probes.samples[probe_cursor].second == second {
                probes.push(metrics.probes.samples[probe_cursor]);
            }
            probe_cursor += 1;
        }
        events.push(TelemetryEvent::Metrics(Box::new(MetricsSample {
            second,
            active_session: metrics.active_session[idx],
            cpu_usage: metrics.cpu_usage[idx],
            iops_usage: metrics.iops_usage[idx],
            row_lock_waits: metrics.row_lock_waits[idx],
            mdl_waits: metrics.mdl_waits[idx],
            qps: metrics.qps[idx],
            probes,
        })));
        events.push(TelemetryEvent::Tick { second: second + 1 });
    }

    // Records past the metric horizon, then a final watermark covering them.
    if rec_cursor < sorted.len() {
        let last = sorted.last().expect("non-empty tail");
        let end_second = (last.start_ms / 1000.0).floor() as i64 + 1;
        events.extend(sorted[rec_cursor..].iter().map(|r| TelemetryEvent::Query(*r)));
        events.push(TelemetryEvent::Tick { second: end_second.max(start + n as i64) });
    }
    events
}

/// The maximal run of consecutive [`TelemetryEvent::Query`] events starting
/// at `events[from]` whose (finite) arrival timestamps all fall in one
/// attribution second — `(second, run length)`, or `None` when `events[from]`
/// is absent, not a query, or has a non-finite timestamp.
///
/// This is the chunking primitive of the ingest hot path: on a time-ordered
/// stream, consumers fold a whole run with one watermark check and one
/// cell-row lookup instead of one per record. On an unordered stream it
/// still yields correct (merely shorter) runs, so callers never need to
/// pre-sort.
pub fn query_run(events: &[TelemetryEvent], from: usize) -> Option<(i64, usize)> {
    let TelemetryEvent::Query(first) = events.get(from)? else { return None };
    if !first.start_ms.is_finite() {
        return None;
    }
    let second = (first.start_ms / 1000.0).floor() as i64;
    let mut len = 1;
    while let Some(TelemetryEvent::Query(r)) = events.get(from + len) {
        if !r.start_ms.is_finite() || (r.start_ms / 1000.0).floor() as i64 != second {
            break;
        }
        len += 1;
    }
    Some((second, len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::ProbeLog;
    use pinsql_workload::SpecId;

    fn rec(start_ms: f64) -> QueryRecord {
        QueryRecord { spec: SpecId(0), start_ms, response_ms: 1.0, examined_rows: 0 }
    }

    fn metrics(start: i64, n: usize) -> InstanceMetrics {
        InstanceMetrics {
            start_second: start,
            active_session: vec![1.0; n],
            cpu_usage: vec![0.1; n],
            iops_usage: vec![0.2; n],
            row_lock_waits: vec![0.0; n],
            mdl_waits: vec![0.0; n],
            qps: vec![5.0; n],
            probes: ProbeLog {
                samples: (0..n)
                    .map(|i| ProbeSample {
                        second: start + i as i64,
                        active_sessions: 1,
                        true_instant_ms: (start + i as i64) as f64 * 1000.0 + 500.0,
                    })
                    .collect(),
            },
        }
    }

    #[test]
    fn stream_is_time_ordered() {
        let log = vec![rec(2500.0), rec(100.0), rec(1999.0)];
        let events = interleave(&log, &metrics(0, 4));
        for pair in events.windows(2) {
            assert!(pair[0].time_ms() <= pair[1].time_ms(), "{pair:?}");
        }
        let queries: Vec<f64> = events
            .iter()
            .filter_map(|e| match e {
                TelemetryEvent::Query(r) => Some(r.start_ms),
                _ => None,
            })
            .collect();
        assert_eq!(queries, vec![100.0, 1999.0, 2500.0]);
    }

    #[test]
    fn seconds_close_with_metrics_then_tick() {
        let events = interleave(&[rec(500.0)], &metrics(0, 2));
        assert!(matches!(events[0], TelemetryEvent::Query(_)));
        assert!(matches!(&events[1], TelemetryEvent::Metrics(m) if m.second == 0));
        assert!(matches!(events[2], TelemetryEvent::Tick { second: 1 }));
        assert!(matches!(&events[3], TelemetryEvent::Metrics(m) if m.second == 1));
        assert!(matches!(events[4], TelemetryEvent::Tick { second: 2 }));
    }

    #[test]
    fn probes_ride_their_second() {
        let events = interleave(&[], &metrics(10, 3));
        let samples: Vec<&MetricsSample> = events
            .iter()
            .filter_map(|e| match e {
                TelemetryEvent::Metrics(m) => Some(m.as_ref()),
                _ => None,
            })
            .collect();
        assert_eq!(samples.len(), 3);
        for m in samples {
            assert_eq!(m.probes.len(), 1);
            assert_eq!(m.probes[0].second, m.second);
        }
    }

    #[test]
    fn trailing_records_precede_final_tick() {
        let events = interleave(&[rec(500.0), rec(7200.0)], &metrics(0, 2));
        let last = events.last().unwrap();
        assert!(matches!(last, TelemetryEvent::Tick { second: 8 }));
        assert!(matches!(events[events.len() - 2], TelemetryEvent::Query(r) if r.start_ms == 7200.0));
    }

    #[test]
    fn tie_order_is_stable() {
        // Two records at the same arrival keep log order — the tie rule the
        // batch aggregator's stable sort applies.
        let a = QueryRecord { spec: SpecId(1), start_ms: 100.0, response_ms: 1.0, examined_rows: 0 };
        let b = QueryRecord { spec: SpecId(2), start_ms: 100.0, response_ms: 2.0, examined_rows: 0 };
        let events = interleave(&[a, b], &metrics(0, 1));
        let specs: Vec<usize> = events
            .iter()
            .filter_map(|e| match e {
                TelemetryEvent::Query(r) => Some(r.spec.0),
                _ => None,
            })
            .collect();
        assert_eq!(specs, vec![1, 2]);
    }

    #[test]
    fn query_runs_chunk_by_attribution_second() {
        let events = interleave(
            &[rec(100.0), rec(900.0), rec(999.9), rec(1000.0), rec(2500.0)],
            &metrics(0, 3),
        );
        // Walk the whole stream through query_run the way a consumer does.
        let mut runs = Vec::new();
        let mut i = 0;
        while i < events.len() {
            if let Some((second, len)) = query_run(&events, i) {
                runs.push((second, len));
                i += len;
            } else {
                i += 1;
            }
        }
        assert_eq!(runs, vec![(0, 3), (1, 1), (2, 1)]);
    }

    #[test]
    fn query_run_rejects_non_queries_and_non_finite_starts() {
        let events = vec![
            TelemetryEvent::Tick { second: 1 },
            TelemetryEvent::Query(QueryRecord {
                spec: SpecId(0),
                start_ms: f64::NAN,
                response_ms: 1.0,
                examined_rows: 0,
            }),
            TelemetryEvent::Query(rec(1500.0)),
        ];
        assert_eq!(query_run(&events, 0), None, "tick is not a run head");
        assert_eq!(query_run(&events, 1), None, "non-finite start is not a run head");
        assert_eq!(query_run(&events, 2), Some((1, 1)));
        assert_eq!(query_run(&events, 3), None, "past the end");
    }

    #[test]
    fn query_run_splits_at_malformed_timestamps() {
        // A corrupted record mid-second must terminate the run so the
        // consumer's scalar path can classify it.
        let bad = QueryRecord { spec: SpecId(0), start_ms: f64::INFINITY, response_ms: 1.0, examined_rows: 0 };
        let events = vec![
            TelemetryEvent::Query(rec(100.0)),
            TelemetryEvent::Query(rec(200.0)),
            TelemetryEvent::Query(bad),
            TelemetryEvent::Query(rec(300.0)),
        ];
        assert_eq!(query_run(&events, 0), Some((0, 2)));
        assert_eq!(query_run(&events, 2), None);
        assert_eq!(query_run(&events, 3), Some((0, 1)));
    }

    #[test]
    fn by_name_matches_instance_metrics_names() {
        let events = interleave(&[], &metrics(0, 1));
        let TelemetryEvent::Metrics(m) = &events[0] else { panic!("metrics first") };
        assert_eq!(m.by_name("active_session"), Some(1.0));
        assert_eq!(m.by_name("cpu_usage"), Some(0.1));
        assert_eq!(m.by_name("qps"), Some(5.0));
        assert_eq!(m.by_name("nope"), None);
    }

    #[test]
    fn metric_values_decode_in_iter_named_order() {
        let m = MetricsSample {
            second: 0,
            active_session: 1.0,
            cpu_usage: 2.0,
            iops_usage: 3.0,
            row_lock_waits: 4.0,
            mdl_waits: 5.0,
            qps: 6.0,
            probes: Vec::new(),
        };
        let values = m.metric_values();
        let im = metrics(0, 1);
        for (slot, (name, _)) in im.iter_named().enumerate() {
            assert_eq!(values[slot], m.by_name(name).unwrap(), "{name}");
        }
        assert_eq!(values, [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn event_stays_query_sized_with_boxed_metrics() {
        // The ingest loop streams millions of events; the cold metrics
        // variant must not widen the enum past the query record.
        assert!(
            std::mem::size_of::<TelemetryEvent>()
                <= std::mem::size_of::<QueryRecord>() + 8,
            "TelemetryEvent grew: {} bytes",
            std::mem::size_of::<TelemetryEvent>()
        );
    }

    #[test]
    fn boxed_metrics_serialize_transparently() {
        let events = interleave(&[rec(100.0)], &metrics(0, 1));
        let json = serde_json::to_string(&events).unwrap();
        assert!(json.contains("\"Metrics\":{\"second\":0"), "{json}");
        let back: Vec<TelemetryEvent> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, events);
    }
}
