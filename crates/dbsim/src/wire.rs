//! Binary codec for [`TelemetryEvent`] — the unit the `PEVT` ingest wire
//! batches.
//!
//! Production telemetry crosses a process boundary on its way to the
//! diagnosis service, so the event stream needs a serialized form with
//! the same contract as every other wire in the workspace: little-endian,
//! every `f64` as raw IEEE-754 bits (non-finite timestamps are *data*
//! here — the robustness layer deliberately injects them, and the decode
//! must deliver them unchanged for the malformed-record counters to
//! agree), and typed [`WireError`]s for malformed input, never a panic.
//!
//! The codec lives in `pinsql-dbsim` because it owns [`TelemetryEvent`]:
//! the engine's frame envelope ([`pinsql_engine::wire`]) delegates here,
//! so a field added to an event variant is encoded and decoded in the
//! same crate that added it. Framing (magic, version, batching,
//! sequencing) is deliberately *not* here — one event encodes to a bare
//! tagged record, and the engine owns the envelope.

use crate::probe::ProbeSample;
use crate::record::QueryRecord;
use crate::telemetry::{MetricsSample, TelemetryEvent};
use pinsql_timeseries::{WireError, WireReader, WireWriter};
use pinsql_workload::SpecId;

/// Serialized size of one [`ProbeSample`]: second + sessions + instant.
const PROBE_BYTES: usize = 8 + 4 + 8;

/// Appends one event as a tagged record (no framing).
pub fn encode_event(w: &mut WireWriter, ev: &TelemetryEvent) {
    match ev {
        TelemetryEvent::Query(q) => {
            w.put_u8(1);
            w.put_u64(q.spec.0 as u64);
            w.put_f64(q.start_ms);
            w.put_f64(q.response_ms);
            w.put_u64(q.examined_rows);
        }
        TelemetryEvent::Metrics(m) => {
            w.put_u8(2);
            w.put_i64(m.second);
            w.put_f64(m.active_session);
            w.put_f64(m.cpu_usage);
            w.put_f64(m.iops_usage);
            w.put_f64(m.row_lock_waits);
            w.put_f64(m.mdl_waits);
            w.put_f64(m.qps);
            w.put_len(m.probes.len());
            for p in &m.probes {
                w.put_i64(p.second);
                w.put_u32(p.active_sessions);
                w.put_f64(p.true_instant_ms);
            }
        }
        TelemetryEvent::Tick { second } => {
            w.put_u8(3);
            w.put_i64(*second);
        }
    }
}

/// Decodes one tagged event record from untrusted bytes; never panics.
pub fn decode_event(r: &mut WireReader<'_>) -> Result<TelemetryEvent, WireError> {
    Ok(match r.get_u8()? {
        1 => TelemetryEvent::Query(QueryRecord {
            spec: SpecId(r.get_u64()? as usize),
            start_ms: r.get_f64()?,
            response_ms: r.get_f64()?,
            examined_rows: r.get_u64()?,
        }),
        2 => {
            let second = r.get_i64()?;
            let active_session = r.get_f64()?;
            let cpu_usage = r.get_f64()?;
            let iops_usage = r.get_f64()?;
            let row_lock_waits = r.get_f64()?;
            let mdl_waits = r.get_f64()?;
            let qps = r.get_f64()?;
            let n = r.get_len(PROBE_BYTES)?;
            let mut probes = Vec::with_capacity(n);
            for _ in 0..n {
                probes.push(ProbeSample {
                    second: r.get_i64()?,
                    active_sessions: r.get_u32()?,
                    true_instant_ms: r.get_f64()?,
                });
            }
            TelemetryEvent::Metrics(Box::new(MetricsSample {
                second,
                active_session,
                cpu_usage,
                iops_usage,
                row_lock_waits,
                mdl_waits,
                qps,
                probes,
            }))
        }
        3 => TelemetryEvent::Tick { second: r.get_i64()? },
        t => return Err(WireError::BadTag { what: "telemetry event tag", value: t as u64 }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TelemetryEvent> {
        vec![
            TelemetryEvent::Query(QueryRecord {
                spec: SpecId(3),
                start_ms: 1_500.25,
                response_ms: 12.5,
                examined_rows: 999,
            }),
            // Non-finite fields are legitimate chaos-layer payloads; the
            // codec must carry their exact bits.
            TelemetryEvent::Query(QueryRecord {
                spec: SpecId(0),
                start_ms: f64::NAN,
                response_ms: f64::INFINITY,
                examined_rows: 0,
            }),
            TelemetryEvent::Metrics(Box::new(MetricsSample {
                second: -5,
                active_session: 2.0,
                cpu_usage: 0.75,
                iops_usage: 0.5,
                row_lock_waits: 1.0,
                mdl_waits: 0.0,
                qps: 40.0,
                probes: vec![
                    ProbeSample { second: -5, active_sessions: 2, true_instant_ms: -4_600.0 },
                    ProbeSample { second: -5, active_sessions: 3, true_instant_ms: -4_200.0 },
                ],
            })),
            TelemetryEvent::Metrics(Box::new(MetricsSample::default())),
            TelemetryEvent::Tick { second: i64::MIN },
        ]
    }

    #[test]
    fn events_round_trip_exactly() {
        let events = sample_events();
        let mut w = WireWriter::new();
        for ev in &events {
            encode_event(&mut w, ev);
        }
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        for ev in &events {
            let back = decode_event(&mut r).unwrap();
            match (ev, &back) {
                // NaN != NaN under PartialEq; compare the raw bits.
                (TelemetryEvent::Query(a), TelemetryEvent::Query(b)) => {
                    assert_eq!(a.spec, b.spec);
                    assert_eq!(a.start_ms.to_bits(), b.start_ms.to_bits());
                    assert_eq!(a.response_ms.to_bits(), b.response_ms.to_bits());
                    assert_eq!(a.examined_rows, b.examined_rows);
                }
                _ => assert_eq!(ev, &back),
            }
        }
        r.finish("event stream").unwrap();
    }

    #[test]
    fn unknown_event_tag_is_typed() {
        let mut r = WireReader::new(&[9u8]);
        assert!(matches!(
            decode_event(&mut r),
            Err(WireError::BadTag { what: "telemetry event tag", value: 9 })
        ));
    }

    #[test]
    fn every_truncation_is_typed() {
        let mut w = WireWriter::new();
        for ev in sample_events() {
            encode_event(&mut w, &ev);
        }
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = WireReader::new(&bytes[..cut]);
            let res = (|| {
                for _ in 0..sample_events().len() {
                    decode_event(&mut r)?;
                }
                Ok(())
            })();
            assert!(matches!(res, Err(WireError::Truncated { .. })), "cut at {cut}: {res:?}");
        }
    }

    #[test]
    fn absurd_probe_length_fails_fast() {
        let mut w = WireWriter::new();
        encode_event(&mut w, &TelemetryEvent::Metrics(Box::new(MetricsSample::default())));
        let mut bytes = w.into_bytes();
        // The probe length prefix sits after tag + second + six metrics.
        let at = 1 + 8 + 6 * 8;
        bytes[at..at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let mut r = WireReader::new(&bytes);
        assert!(matches!(decode_event(&mut r), Err(WireError::Truncated { .. })));
    }
}
