//! The open-loop simulation engine.
//!
//! Queries arrive according to the workload's traffic patterns, pass
//! through admission, the metadata-lock manager, the row-lock manager, a
//! CPU processor-sharing phase and an IO phase, and emit a log record at
//! completion. Per-second metrics are sampled along the way, including the
//! randomly-timed active-session probe.
//!
//! ## Lifecycle
//!
//! ```text
//! arrival → admission → MDL (shared, or exclusive for DDL)
//!         → row slots (in ascending slot order, FIFO queues)
//!         → CPU phase (PS over `cores`)
//!         → IO phase  (PS over `io_channels`)
//!         → release locks, log record
//! ```
//!
//! Lock waits and queueing are all part of the measured response time, so
//! an anomaly's victims (H-SQLs) show inflated `t_res` and inflated active
//! session — the propagation chain PinSQL traces.
//!
//! ## Determinism
//!
//! All randomness flows from `SimConfig::seed`, so a `(workload, config)`
//! pair reproduces byte-identical output.

use crate::config::SimConfig;
use crate::locks::{LockKind, LockManager, QueryId};
use crate::metrics::InstanceMetrics;
use crate::probe::{ProbeLog, ProbeSample};
use crate::ps::PsResource;
use crate::record::QueryRecord;
use pinsql_workload::rng::{poisson, Zipf};
use pinsql_workload::{LockFootprint, LockMode, SpecId, Workload};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use crate::ordf64::OrdF64;

/// Numeric slack for departure detection, in ms.
const EPS_MS: f64 = 1e-6;

/// How long past the workload window the simulator keeps draining in-flight
/// queries before force-completing them, in seconds.
const DRAIN_CAP_S: i64 = 600;

/// Output of one open-loop run.
#[derive(Debug, Clone)]
pub struct SimOutput {
    /// Completed (or force-completed at drain cap) queries. Sorted by
    /// completion order, not arrival; use [`SimOutput::sort_log`] if arrival
    /// order is needed.
    pub log: Vec<QueryRecord>,
    /// Per-second instance metrics for `[start_s, end_s)`.
    pub metrics: InstanceMetrics,
}

impl SimOutput {
    /// Sorts the log by arrival time.
    pub fn sort_log(&mut self) {
        self.log.sort_by(|a, b| a.start_ms.total_cmp(&b.start_ms));
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    WaitingMdl,
    WaitingSlot(usize),
    Cpu,
    Io,
}

#[derive(Debug)]
struct QueryState {
    spec: SpecId,
    arrival_ms: f64,
    cpu_ms: f64,
    io_ms: f64,
    examined_rows: u64,
    lock: Option<LockFootprint>,
    /// Ascending, distinct slots to lock (row modes only).
    slots: Vec<u32>,
    acquired_slots: usize,
    holds_mdl: bool,
    phase: Phase,
}

struct Engine<'a> {
    workload: &'a Workload,
    cfg: &'a SimConfig,
    now: f64,
    seq: u64,
    events: BinaryHeap<Reverse<(OrdF64, u64, EventKindOrd)>>,
    cpu: PsResource,
    io: PsResource,
    locks: LockManager,
    states: HashMap<QueryId, QueryState>,
    admission_queue: VecDeque<QueryId>,
    admitted: usize,
    next_qid: QueryId,
    /// Pre-generated arrivals, ascending by time; `next_arrival` indexes it.
    arrivals: Vec<(f64, SpecId)>,
    next_arrival: usize,
    rng: StdRng,
    zipfs: Vec<Zipf>,
    log: Vec<QueryRecord>,
    // metric accumulation
    start_ms: f64,
    end_ms: f64,
    completed_this_second: u64,
    qps: Vec<f64>,
    row_waits: Vec<f64>,
    mdl_waits: Vec<f64>,
    cpu_usage: Vec<f64>,
    iops_usage: Vec<f64>,
    prev_cpu_busy: f64,
    prev_io_busy: f64,
    probes: ProbeLog,
    granted_buf: Vec<QueryId>,
    finished_buf: Vec<QueryId>,
}

/// Orderable event kinds (the kind only breaks ties after the sequence
/// number, which never happens in practice, but keeps `Ord` total).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKindOrd {
    Arrival,
    CpuDeparture(u64),
    IoDeparture(u64),
    Probe,
    SecondTick,
}

impl<'a> Engine<'a> {
    fn new(workload: &'a Workload, cfg: &'a SimConfig, start_s: i64, end_s: i64) -> Self {
        assert!(end_s > start_s, "empty simulation window");
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x9e37_79b9_7f4a_7c15);
        let arrivals = generate_arrivals(workload, start_s, end_s, &mut rng);
        let zipfs = workload
            .tables
            .iter()
            .map(|t| Zipf::new(t.hot_slots as usize, 0.8))
            .collect();
        Self {
            workload,
            cfg,
            now: start_s as f64 * 1000.0,
            seq: 0,
            events: BinaryHeap::new(),
            cpu: PsResource::new(cfg.cores),
            io: PsResource::new(cfg.io_channels),
            locks: LockManager::new(workload.tables.len()),
            states: HashMap::new(),
            admission_queue: VecDeque::new(),
            admitted: 0,
            next_qid: 0,
            arrivals,
            next_arrival: 0,
            rng,
            zipfs,
            log: Vec::new(),
            start_ms: start_s as f64 * 1000.0,
            end_ms: end_s as f64 * 1000.0,
            completed_this_second: 0,
            qps: Vec::new(),
            row_waits: Vec::new(),
            mdl_waits: Vec::new(),
            cpu_usage: Vec::new(),
            iops_usage: Vec::new(),
            prev_cpu_busy: 0.0,
            prev_io_busy: 0.0,
            probes: ProbeLog::default(),
            granted_buf: Vec::new(),
            finished_buf: Vec::new(),
        }
    }

    fn push_event(&mut self, at: f64, kind: EventKindOrd) {
        self.seq += 1;
        self.events.push(Reverse((OrdF64::new(at), self.seq, kind)));
    }

    fn run(mut self, start_s: i64, end_s: i64) -> SimOutput {
        // Resources start their clocks at the window start.
        self.cpu.advance(self.start_ms);
        self.io.advance(self.start_ms);
        // Seed per-second probe and tick events.
        for s in start_s..end_s {
            let offset: f64 = self.rng.random::<f64>() * 1000.0;
            self.push_event(s as f64 * 1000.0 + offset, EventKindOrd::Probe);
            self.push_event((s + 1) as f64 * 1000.0 - 1e-3, EventKindOrd::SecondTick);
        }
        if !self.arrivals.is_empty() {
            let at = self.arrivals[0].0;
            self.push_event(at, EventKindOrd::Arrival);
        }

        let drain_end = self.end_ms + DRAIN_CAP_S as f64 * 1000.0;
        while let Some(Reverse((at, _, kind))) = self.events.pop() {
            let at = at.get();
            if at > drain_end {
                break;
            }
            debug_assert!(at >= self.now - 1e-6, "event time regression");
            self.now = at.max(self.now);
            match kind {
                EventKindOrd::Arrival => self.on_arrival_batch(),
                EventKindOrd::CpuDeparture(gen) => self.on_cpu_departure(gen),
                EventKindOrd::IoDeparture(gen) => self.on_io_departure(gen),
                EventKindOrd::Probe => self.on_probe(),
                EventKindOrd::SecondTick => self.on_second_tick(),
            }
            // Stop early once the window is over and everything drained.
            if self.now >= self.end_ms && self.states.is_empty() && self.next_arrival >= self.arrivals.len()
            {
                break;
            }
        }

        // Force-complete whatever is still in flight at the drain cap (the
        // equivalent of killed sessions being written to the slow log).
        let remaining: Vec<QueryId> = self.states.keys().copied().collect();
        let final_now = self.now.max(self.end_ms);
        for qid in remaining {
            let st = self.states.remove(&qid).expect("state present");
            self.log.push(QueryRecord {
                spec: st.spec,
                start_ms: st.arrival_ms,
                response_ms: (final_now - st.arrival_ms).max(0.0),
                examined_rows: st.examined_rows,
            });
        }

        let n_secs = (end_s - start_s) as usize;
        self.qps.resize(n_secs, 0.0);
        self.row_waits.resize(n_secs, 0.0);
        self.mdl_waits.resize(n_secs, 0.0);
        self.cpu_usage.resize(n_secs, 0.0);
        self.iops_usage.resize(n_secs, 0.0);
        let mut active_session = vec![0.0; n_secs];
        for p in &self.probes.samples {
            let idx = (p.second - start_s) as usize;
            if idx < n_secs {
                active_session[idx] = p.active_sessions as f64;
            }
        }
        SimOutput {
            log: self.log,
            metrics: InstanceMetrics {
                start_second: start_s,
                active_session,
                cpu_usage: self.cpu_usage,
                iops_usage: self.iops_usage,
                row_lock_waits: self.row_waits,
                mdl_waits: self.mdl_waits,
                qps: self.qps,
                probes: self.probes,
            },
        }
    }

    /// Admits all arrivals due at the current instant, then schedules the
    /// next arrival event.
    fn on_arrival_batch(&mut self) {
        while self.next_arrival < self.arrivals.len()
            && self.arrivals[self.next_arrival].0 <= self.now + EPS_MS
        {
            let (at, spec) = self.arrivals[self.next_arrival];
            self.next_arrival += 1;
            self.spawn_query(at, spec);
        }
        if self.next_arrival < self.arrivals.len() {
            let at = self.arrivals[self.next_arrival].0;
            self.push_event(at, EventKindOrd::Arrival);
        }
    }

    fn spawn_query(&mut self, arrival_ms: f64, spec: SpecId) {
        let qid = self.next_qid;
        self.next_qid += 1;
        let profile = &self.workload.specs[spec.0].cost;
        let cost = profile.sample(&mut self.rng);
        let lock = profile.lock;
        let slots = match lock {
            Some(fp) if matches!(fp.mode, LockMode::SharedRows | LockMode::ExclusiveRows) => {
                sample_slots(&self.zipfs[fp.table.0], fp.slots, &mut self.rng)
            }
            _ => Vec::new(),
        };
        let st = QueryState {
            spec,
            arrival_ms,
            cpu_ms: cost.cpu_ms * self.cfg.pfs.cpu_overhead_factor(),
            io_ms: cost.io_ms,
            examined_rows: cost.examined_rows,
            lock,
            slots,
            acquired_slots: 0,
            holds_mdl: false,
            phase: Phase::WaitingMdl,
        };
        self.states.insert(qid, st);
        if self.admitted < self.cfg.max_sessions {
            self.admitted += 1;
            self.continue_acquisition(qid);
        } else {
            self.admission_queue.push_back(qid);
        }
    }

    /// Drives lock acquisition from the query's current progress; parks it
    /// when a lock is unavailable, otherwise starts the CPU phase.
    fn continue_acquisition(&mut self, qid: QueryId) {
        let (needs_mdl, mdl_kind, table) = {
            let st = &self.states[&qid];
            match st.lock {
                Some(fp) => {
                    let kind = if fp.mode == LockMode::ExclusiveTable {
                        LockKind::Exclusive
                    } else {
                        LockKind::Shared
                    };
                    (!st.holds_mdl, kind, fp.table.0 as u32)
                }
                None => (false, LockKind::Shared, 0),
            }
        };
        if needs_mdl {
            if !self.locks.request_mdl(qid, table, mdl_kind) {
                self.states.get_mut(&qid).expect("state").phase = Phase::WaitingMdl;
                return;
            }
            self.states.get_mut(&qid).expect("state").holds_mdl = true;
        }
        // Row slots, in ascending order (deadlock-free total order).
        loop {
            let (idx, slot, kind) = {
                let st = &self.states[&qid];
                if st.acquired_slots >= st.slots.len() {
                    break;
                }
                let fp = st.lock.expect("slots imply a footprint");
                let kind = if fp.mode == LockMode::SharedRows {
                    LockKind::Shared
                } else {
                    LockKind::Exclusive
                };
                (st.acquired_slots, st.slots[st.acquired_slots], kind)
            };
            if !self.locks.request_slot(qid, table, slot, kind) {
                self.states.get_mut(&qid).expect("state").phase = Phase::WaitingSlot(idx);
                return;
            }
            self.states.get_mut(&qid).expect("state").acquired_slots = idx + 1;
        }
        self.start_cpu(qid);
    }

    fn start_cpu(&mut self, qid: QueryId) {
        let cpu_ms = {
            let st = self.states.get_mut(&qid).expect("state");
            st.phase = Phase::Cpu;
            st.cpu_ms
        };
        self.cpu.add(self.now, qid, cpu_ms);
        self.schedule_cpu_departure();
    }

    fn start_io(&mut self, qid: QueryId) {
        let io_ms = {
            let st = self.states.get_mut(&qid).expect("state");
            st.phase = Phase::Io;
            st.io_ms
        };
        self.io.add(self.now, qid, io_ms);
        self.schedule_io_departure();
    }

    fn schedule_cpu_departure(&mut self) {
        if let Some((at, _)) = self.cpu.next_departure() {
            let gen = self.cpu.generation();
            self.push_event(at.max(self.now), EventKindOrd::CpuDeparture(gen));
        }
    }

    fn schedule_io_departure(&mut self) {
        if let Some((at, _)) = self.io.next_departure() {
            let gen = self.io.generation();
            self.push_event(at.max(self.now), EventKindOrd::IoDeparture(gen));
        }
    }

    fn on_cpu_departure(&mut self, gen: u64) {
        if gen != self.cpu.generation() {
            return; // stale event
        }
        let mut finished = std::mem::take(&mut self.finished_buf);
        finished.clear();
        self.cpu.pop_finished(self.now, EPS_MS, &mut finished);
        for qid in finished.drain(..) {
            let io_ms = self.states[&qid].io_ms;
            if io_ms > 0.0 {
                self.start_io(qid);
            } else {
                self.complete(qid);
            }
        }
        self.finished_buf = finished;
        self.schedule_cpu_departure();
    }

    fn on_io_departure(&mut self, gen: u64) {
        if gen != self.io.generation() {
            return;
        }
        let mut finished = std::mem::take(&mut self.finished_buf);
        finished.clear();
        self.io.pop_finished(self.now, EPS_MS, &mut finished);
        for qid in finished.drain(..) {
            self.complete(qid);
        }
        self.finished_buf = finished;
        self.schedule_io_departure();
    }

    fn complete(&mut self, qid: QueryId) {
        let st = self.states.remove(&qid).expect("completing unknown query");
        let mut granted = std::mem::take(&mut self.granted_buf);
        granted.clear();
        if let Some(fp) = st.lock {
            let table = fp.table.0 as u32;
            let slot_kind = if fp.mode == LockMode::SharedRows {
                LockKind::Shared
            } else {
                LockKind::Exclusive
            };
            for &slot in &st.slots[..st.acquired_slots] {
                self.locks.release_slot(table, slot, slot_kind, &mut granted);
            }
            if st.holds_mdl {
                let mdl_kind = if fp.mode == LockMode::ExclusiveTable {
                    LockKind::Exclusive
                } else {
                    LockKind::Shared
                };
                self.locks.release_mdl(table, mdl_kind, &mut granted);
            }
        }
        self.log.push(QueryRecord {
            spec: st.spec,
            start_ms: st.arrival_ms,
            response_ms: (self.now - st.arrival_ms).max(0.0),
            examined_rows: st.examined_rows,
        });
        self.completed_this_second += 1;
        self.admitted -= 1;
        if let Some(next) = self.admission_queue.pop_front() {
            self.admitted += 1;
            self.continue_acquisition(next);
        }
        // Resume queries that were waiting on the released locks.
        let grants: Vec<QueryId> = std::mem::take(&mut granted);
        self.granted_buf = granted;
        for g in grants {
            self.on_granted(g);
        }
    }

    fn on_granted(&mut self, qid: QueryId) {
        {
            let st = self.states.get_mut(&qid).expect("granted unknown query");
            match st.phase {
                Phase::WaitingMdl => st.holds_mdl = true,
                Phase::WaitingSlot(i) => st.acquired_slots = i + 1,
                other => unreachable!("grant delivered to query in phase {:?}", other),
            }
        }
        self.continue_acquisition(qid);
    }

    fn on_probe(&mut self) {
        // Active sessions = admitted, not-yet-completed statements,
        // including those blocked on locks (they occupy a thread).
        let second = (self.now / 1000.0).floor() as i64;
        self.probes.samples.push(ProbeSample {
            second,
            active_sessions: self.admitted as u32,
            true_instant_ms: self.now,
        });
    }

    fn on_second_tick(&mut self) {
        self.cpu.advance(self.now);
        self.io.advance(self.now);
        let cpu_busy = self.cpu.busy_ms();
        let io_busy = self.io.busy_ms();
        self.cpu_usage.push((cpu_busy - self.prev_cpu_busy) / 1000.0);
        self.iops_usage.push((io_busy - self.prev_io_busy) / 1000.0);
        self.prev_cpu_busy = cpu_busy;
        self.prev_io_busy = io_busy;
        self.qps.push(self.completed_this_second as f64);
        self.completed_this_second = 0;
        self.row_waits.push(self.locks.row_waiters() as f64);
        self.mdl_waits.push(self.locks.mdl_waiters() as f64);
    }
}

/// Samples `k` distinct hot slots, ascending.
fn sample_slots(zipf: &Zipf, k: u32, rng: &mut StdRng) -> Vec<u32> {
    let mut slots: Vec<u32> = Vec::with_capacity(k as usize);
    let mut attempts = 0;
    while slots.len() < k as usize && attempts < k as usize * 20 {
        let s = zipf.sample(rng) as u32;
        if !slots.contains(&s) {
            slots.push(s);
        }
        attempts += 1;
    }
    slots.sort_unstable();
    slots
}

/// Pre-generates all arrivals over `[start_s, end_s)`, ascending by time.
///
/// Per second and root: draw `Poisson(rate(t))` invocations, place each at
/// a uniform ms within the second, expand the DAG, and jitter each
/// resulting query by up to 40 ms (APIs execute sequentially after the
/// user request lands).
fn generate_arrivals(
    workload: &Workload,
    start_s: i64,
    end_s: i64,
    rng: &mut StdRng,
) -> Vec<(f64, SpecId)> {
    let mut arrivals: Vec<(f64, SpecId)> = Vec::new();
    let mut specs_buf: Vec<SpecId> = Vec::new();
    for s in start_s..end_s {
        for (root, pattern) in &workload.roots {
            let rate = pattern.sample_rate(s, rng);
            let n = poisson(rng, rate);
            for _ in 0..n {
                let at = s as f64 * 1000.0 + rng.random::<f64>() * 1000.0;
                specs_buf.clear();
                workload.dag.sample_invocation(*root, rng, &mut specs_buf);
                for &spec in &specs_buf {
                    let jitter = rng.random::<f64>() * 40.0;
                    arrivals.push((at + jitter, spec));
                }
            }
        }
    }
    arrivals.sort_by(|a, b| a.0.total_cmp(&b.0));
    arrivals
}

/// Runs the open-loop simulation of `workload` over `[start_s, end_s)`
/// seconds.
///
/// The returned log contains every query that *arrived* in the window
/// (queries still in flight at the end are drained for up to 10 simulated
/// minutes, then force-completed, mirroring session kills reaching the
/// slow log). Metrics cover exactly `[start_s, end_s)`.
pub fn run_open_loop(
    workload: &Workload,
    config: &SimConfig,
    start_s: i64,
    end_s: i64,
) -> SimOutput {
    let engine = Engine::new(workload, config, start_s, end_s);
    engine.run(start_s, end_s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinsql_workload::{
        Api, ApiDag, CostProfile, TableDef, TableId, TemplateSpec, TrafficPattern, Workload,
    };
    use pinsql_workload::dag::Call;

    fn tiny_workload(rate: f64) -> Workload {
        let t0 = TableId(0);
        let specs = vec![
            TemplateSpec::new(
                "SELECT * FROM orders WHERE id = 1",
                CostProfile::point_read(t0),
                "orders.read",
            ),
            TemplateSpec::new(
                "UPDATE orders SET qty = 1 WHERE id = 2",
                CostProfile::point_write(t0),
                "orders.write",
            ),
        ];
        let mut dag = ApiDag::default();
        let api = dag.push(
            Api::named("api").query(Call::once(SpecId(0))).query(Call::maybe(SpecId(1), 0.3)),
        );
        Workload {
            tables: vec![TableDef::new("orders", 1_000_000, 64)],
            specs,
            dag,
            roots: vec![(api, TrafficPattern::steady(rate))],
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let w = tiny_workload(20.0);
        let cfg = SimConfig::default().with_seed(7);
        let a = run_open_loop(&w, &cfg, 0, 30);
        let b = run_open_loop(&w, &cfg, 0, 30);
        assert_eq!(a.log.len(), b.log.len());
        assert_eq!(a.metrics.active_session, b.metrics.active_session);
        assert_eq!(a.log.first().map(|r| r.start_ms), b.log.first().map(|r| r.start_ms));
    }

    #[test]
    fn throughput_matches_offered_load() {
        let w = tiny_workload(50.0);
        let out = run_open_loop(&w, &SimConfig::default().with_seed(1), 0, 60);
        // Expected ~50 invocations/s × (1 + 0.3) queries = 65 QPS × 60 s.
        let n = out.log.len() as f64;
        assert!((n - 3900.0).abs() / 3900.0 < 0.1, "completed {n}");
        // The instance is far from saturation: response times are small.
        let mean_rt =
            out.log.iter().map(|r| r.response_ms).sum::<f64>() / out.log.len() as f64;
        assert!(mean_rt < 10.0, "mean rt {mean_rt}");
    }

    #[test]
    fn metrics_cover_exact_window() {
        let w = tiny_workload(10.0);
        let out = run_open_loop(&w, &SimConfig::default().with_seed(2), 5, 25);
        assert_eq!(out.metrics.len(), 20);
        assert_eq!(out.metrics.start_second, 5);
        assert_eq!(out.metrics.qps.len(), 20);
        assert_eq!(out.metrics.cpu_usage.len(), 20);
        assert_eq!(out.metrics.probes.samples.len(), 20);
        // Utilization is a fraction.
        for &u in &out.metrics.cpu_usage {
            assert!((0.0..=1.0 + 1e-9).contains(&u));
        }
    }

    #[test]
    fn probe_counts_in_flight_queries() {
        let w = tiny_workload(30.0);
        let out = run_open_loop(&w, &SimConfig::default().with_seed(3), 0, 30);
        // Cross-check each probe against the log: the number of log records
        // active at the true probe instant must equal the probe value.
        for p in &out.metrics.probes.samples {
            let from_log =
                out.log.iter().filter(|r| r.active_at(p.true_instant_ms)).count() as u32;
            assert_eq!(
                from_log, p.active_sessions,
                "probe at {} disagrees with log",
                p.true_instant_ms
            );
        }
    }

    #[test]
    fn ddl_blocks_everything_and_inflates_sessions() {
        // A DDL with 8 s of work arrives at t=10 on the same table the
        // regular traffic uses: active session must spike while it holds
        // the MDL, and recover afterwards.
        let mut w = tiny_workload(40.0);
        let t0 = TableId(0);
        w.specs.push(TemplateSpec::new(
            "ALTER TABLE orders ADD COLUMN note2 TEXT",
            CostProfile::ddl(t0, 8_000.0),
            "orders.ddl",
        ));
        let ddl_api = w.dag.push(Api::named("ddl").query(Call::once(SpecId(2))));
        w.roots.push((
            ddl_api,
            TrafficPattern::steady(0.0).with_noise(0.0).with_event(
                pinsql_workload::RateEvent {
                    start: 10,
                    end: 11,
                    multiplier: f64::INFINITY,
                    shape: pinsql_workload::EventShape::Step,
                },
            ),
        ));
        // The Step with infinite multiplier on a 0 base gives NaN; instead
        // use a tiny base and huge multiplier to get ~1 arrival.
        w.roots.last_mut().unwrap().1 = TrafficPattern::steady(0.001).with_noise(0.0).with_event(
            pinsql_workload::RateEvent {
                start: 10,
                end: 11,
                multiplier: 1000.0,
                shape: pinsql_workload::EventShape::Step,
            },
        );
        let out = run_open_loop(&w, &SimConfig::default().with_seed(4), 0, 60);
        let sess = &out.metrics.active_session;
        let calm: f64 = sess[..9].iter().sum::<f64>() / 9.0;
        let peak = sess[11..19].iter().cloned().fold(0.0, f64::max);
        assert!(
            peak > calm * 5.0 + 10.0,
            "DDL should pile sessions up: calm {calm}, peak {peak}"
        );
        // MDL waiters were observed.
        assert!(out.metrics.mdl_waits.iter().any(|&w| w > 0.0));
        // And the system recovered by the end.
        let tail: f64 = sess[45..].iter().sum::<f64>() / 15.0;
        assert!(tail < peak / 4.0, "should recover: tail {tail}, peak {peak}");
    }

    #[test]
    fn saturated_cpu_inflates_response_times() {
        let t0 = TableId(0);
        let specs = vec![TemplateSpec::new(
            "SELECT * FROM big_t WHERE note LIKE 'x'",
            CostProfile::poor_scan(t0, 100_000.0), // ~251 ms CPU each
            "scan",
        )];
        let mut dag = ApiDag::default();
        let api = dag.push(Api::named("a").query(Call::once(SpecId(0))));
        let w = Workload {
            tables: vec![TableDef::new("big_t", 10_000_000, 64)],
            specs,
            dag,
            roots: vec![(api, TrafficPattern::steady(120.0))], // >> capacity
        };
        let cfg = SimConfig::default().with_cores(4.0).with_seed(5);
        let out = run_open_loop(&w, &cfg, 0, 20);
        // Offered CPU load ≈ 120 × 0.25 s = 30 core-s per wall second on 4
        // cores: the system is overloaded, utilization pegs at ~1 and the
        // active session climbs over the window.
        let last_util = out.metrics.cpu_usage[10..].iter().sum::<f64>() / 10.0;
        assert!(last_util > 0.95, "cpu pegged: {last_util}");
        let first = out.metrics.active_session[2];
        let last = out.metrics.active_session[19];
        assert!(last > first + 50.0, "sessions should pile up: {first} -> {last}");
    }

    #[test]
    fn pfs_overhead_shows_up_in_cpu() {
        let w = tiny_workload(60.0);
        let normal = run_open_loop(&w, &SimConfig::default().with_seed(6), 0, 30);
        let pfs = run_open_loop(
            &w,
            &SimConfig::default().with_seed(6).with_pfs(crate::config::PfsConfig::PFS_CON_INS),
            0,
            30,
        );
        let cpu_normal: f64 = normal.metrics.cpu_usage.iter().sum();
        let cpu_pfs: f64 = pfs.metrics.cpu_usage.iter().sum();
        assert!(
            cpu_pfs > cpu_normal * 1.15,
            "pfs should raise CPU: {cpu_normal} -> {cpu_pfs}"
        );
    }

    #[test]
    fn empty_workload_produces_empty_log_and_flat_metrics() {
        let w = Workload {
            tables: vec![TableDef::new("t", 10, 1)],
            specs: vec![],
            dag: ApiDag::default(),
            roots: vec![],
        };
        let out = run_open_loop(&w, &SimConfig::default(), 0, 10);
        assert!(out.log.is_empty());
        assert_eq!(out.metrics.len(), 10);
        assert!(out.metrics.active_session.iter().all(|&v| v == 0.0));
        assert!(out.metrics.cpu_usage.iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "empty simulation window")]
    fn empty_window_panics() {
        let w = tiny_workload(1.0);
        let _ = run_open_loop(&w, &SimConfig::default(), 10, 10);
    }
}
