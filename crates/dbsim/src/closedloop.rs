//! Closed-loop saturation driver for the Table IV overhead study.
//!
//! The paper stress-tests Performance-Schema overhead with a 32-thread
//! sysbench run against a 4-core instance, measuring QPS at the CPU
//! bottleneck under different pfs configurations. This driver reproduces
//! that shape: `clients` virtual sessions each issue one query at a time,
//! drawn from a weighted template mix, with zero think time; completed
//! queries per second are counted after a warm-up.

use crate::config::SimConfig;
use crate::locks::{LockKind, LockManager, QueryId};
use crate::ordf64::OrdF64;
use crate::ps::PsResource;
use pinsql_workload::rng::Zipf;
use pinsql_workload::{LockMode, TemplateSpec, Workload};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Configuration of one closed-loop run.
#[derive(Debug, Clone)]
pub struct ClosedLoopConfig {
    /// Number of concurrent client sessions.
    pub clients: usize,
    /// Warm-up seconds excluded from the measurement.
    pub warmup_s: f64,
    /// Measured seconds.
    pub measure_s: f64,
    /// Weighted mix over `workload.specs` indices.
    pub mix: Vec<(usize, f64)>,
}

impl Default for ClosedLoopConfig {
    fn default() -> Self {
        Self { clients: 32, warmup_s: 5.0, measure_s: 30.0, mix: Vec::new() }
    }
}

/// Result of one closed-loop run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClosedLoopResult {
    /// Completed queries per second over the measurement window.
    pub qps: f64,
    /// Mean CPU utilization over the measurement window.
    pub cpu_utilization: f64,
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    spec: usize,
    io_ms: f64,
    slots_from: usize,
    slots_len: usize,
    holds_mdl: bool,
    next_slot: usize,
    phase: Phase,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    WaitMdl,
    WaitSlot,
    Cpu,
    Io,
}

/// Runs the closed loop and reports sustained QPS.
///
/// Only `workload.specs` and `workload.tables` are used (the DAG and
/// traffic patterns are open-loop concerns).
pub fn run_closed_loop(
    workload: &Workload,
    sim: &SimConfig,
    cfg: &ClosedLoopConfig,
) -> ClosedLoopResult {
    assert!(cfg.clients > 0, "need at least one client");
    assert!(!cfg.mix.is_empty(), "closed loop needs a non-empty mix");
    let total_weight: f64 = cfg.mix.iter().map(|(_, w)| w).sum();
    assert!(total_weight > 0.0, "mix weights must sum to a positive value");

    let mut rng = StdRng::seed_from_u64(sim.seed ^ 0xA5A5_5A5A_DEAD_BEEF);
    let mut cpu = PsResource::new(sim.cores);
    let mut io = PsResource::new(sim.io_channels);
    let mut locks = LockManager::new(workload.tables.len());
    let zipfs: Vec<Zipf> =
        workload.tables.iter().map(|t| Zipf::new(t.hot_slots as usize, 0.8)).collect();

    let mut states: HashMap<QueryId, InFlight> = HashMap::new();
    let mut slot_store: Vec<u32> = Vec::new(); // arena of slot lists
    let mut heap: BinaryHeap<Reverse<(OrdF64, u64, Dep)>> = BinaryHeap::new();
    let mut seq: u64 = 0;
    let mut next_qid: QueryId = 0;
    let mut now = 0.0f64;
    let end_ms = (cfg.warmup_s + cfg.measure_s) * 1000.0;
    let warm_ms = cfg.warmup_s * 1000.0;
    let mut completed_measured: u64 = 0;
    let mut cpu_busy_at_warm: Option<f64> = None;
    // CPU demands sampled for queries parked on locks, keyed by query id
    // (declared before the macros below so their bodies can bind it).
    let mut pending_cpu: HashMap<QueryId, f64> = HashMap::new();

    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    enum Dep {
        Cpu(u64),
        Io(u64),
    }

    // --- helpers (closures capture too much; use macros-by-function style) ---
    fn pick_spec(mix: &[(usize, f64)], total: f64, rng: &mut StdRng) -> usize {
        let mut u: f64 = rng.random::<f64>() * total;
        for &(spec, w) in mix {
            if u < w {
                return spec;
            }
            u -= w;
        }
        mix.last().expect("non-empty mix").0
    }

    struct Ctx<'a> {
        specs: &'a [TemplateSpec],
        pfs_factor: f64,
    }
    let ctx = Ctx { specs: &workload.specs, pfs_factor: sim.pfs.cpu_overhead_factor() };

    // Issues a fresh query for one client slot.
    macro_rules! issue {
        () => {{
            let spec_idx = pick_spec(&cfg.mix, total_weight, &mut rng);
            let spec = &ctx.specs[spec_idx];
            let cost = spec.cost.sample(&mut rng);
            let qid = next_qid;
            next_qid += 1;
            let (slots_from, slots_len) = match spec.cost.lock {
                Some(fp)
                    if matches!(fp.mode, LockMode::SharedRows | LockMode::ExclusiveRows) =>
                {
                    let from = slot_store.len();
                    let mut chosen: Vec<u32> = Vec::with_capacity(fp.slots as usize);
                    let mut tries = 0;
                    while chosen.len() < fp.slots as usize && tries < fp.slots * 20 {
                        let s = zipfs[fp.table.0].sample(&mut rng) as u32;
                        if !chosen.contains(&s) {
                            chosen.push(s);
                        }
                        tries += 1;
                    }
                    chosen.sort_unstable();
                    let len = chosen.len();
                    slot_store.extend_from_slice(&chosen);
                    (from, len)
                }
                _ => (slot_store.len(), 0),
            };
            states.insert(
                qid,
                InFlight {
                    spec: spec_idx,
                    io_ms: cost.io_ms,
                    slots_from,
                    slots_len,
                    holds_mdl: false,
                    next_slot: 0,
                    phase: Phase::WaitMdl,
                },
            );
            // Store sampled CPU in io_ms? No — drive acquisition inline.
            progress!(qid, cost.cpu_ms * ctx.pfs_factor);
        }};
    }

    // Drives lock acquisition then the CPU phase. `$cpu_ms` < 0 means "the
    // CPU demand was already recorded" (resumption after a lock grant).
    macro_rules! progress {
        ($qid:expr, $cpu_ms:expr) => {{
            let qid: QueryId = $qid;
            let cpu_ms: f64 = $cpu_ms;
            let st = states.get_mut(&qid).expect("state");
            let spec = &ctx.specs[st.spec];
            let mut parked = false;
            if let Some(fp) = spec.cost.lock {
                let table = fp.table.0 as u32;
                if !st.holds_mdl {
                    let kind = if fp.mode == LockMode::ExclusiveTable {
                        LockKind::Exclusive
                    } else {
                        LockKind::Shared
                    };
                    if locks.request_mdl(qid, table, kind) {
                        st.holds_mdl = true;
                    } else {
                        st.phase = Phase::WaitMdl;
                        parked = true;
                    }
                }
                if !parked {
                    while st.next_slot < st.slots_len {
                        let slot = slot_store[st.slots_from + st.next_slot];
                        let kind = if fp.mode == LockMode::SharedRows {
                            LockKind::Shared
                        } else {
                            LockKind::Exclusive
                        };
                        if locks.request_slot(qid, table, slot, kind) {
                            st.next_slot += 1;
                        } else {
                            st.phase = Phase::WaitSlot;
                            parked = true;
                            break;
                        }
                    }
                }
            }
            if !parked {
                st.phase = Phase::Cpu;
                cpu.add(now, qid, cpu_ms);
                if let Some((at, _)) = cpu.next_departure() {
                    seq += 1;
                    heap.push(Reverse((OrdF64::new(at.max(now)), seq, Dep::Cpu(cpu.generation()))));
                }
            } else {
                // Stash the sampled CPU demand for resumption.
                pending_cpu.insert(qid, cpu_ms);
            }
        }};
    }

    let mut finished: Vec<QueryId> = Vec::new();
    let mut granted: Vec<QueryId> = Vec::new();

    for _ in 0..cfg.clients {
        issue!();
    }

    while let Some(Reverse((at, _, dep))) = heap.pop() {
        now = at.get().max(now);
        if now >= end_ms {
            break;
        }
        match dep {
            Dep::Cpu(gen) => {
                if gen != cpu.generation() {
                    continue;
                }
                finished.clear();
                cpu.pop_finished(now, 1e-6, &mut finished);
                for &qid in &finished {
                    let st = states.get_mut(&qid).expect("state");
                    if st.io_ms > 0.0 {
                        st.phase = Phase::Io;
                        io.add(now, qid, st.io_ms);
                        if let Some((at, _)) = io.next_departure() {
                            seq += 1;
                            heap.push(Reverse((
                                OrdF64::new(at.max(now)),
                                seq,
                                Dep::Io(io.generation()),
                            )));
                        }
                    } else {
                        complete(
                            qid, &mut states, &slot_store, &mut locks, &mut granted, &ctx,
                        );
                        if now >= warm_ms {
                            completed_measured += 1;
                        }
                        issue!();
                    }
                }
                if let Some((at, _)) = cpu.next_departure() {
                    seq += 1;
                    heap.push(Reverse((OrdF64::new(at.max(now)), seq, Dep::Cpu(cpu.generation()))));
                }
            }
            Dep::Io(gen) => {
                if gen != io.generation() {
                    continue;
                }
                finished.clear();
                io.pop_finished(now, 1e-6, &mut finished);
                for &qid in &finished {
                    complete(qid, &mut states, &slot_store, &mut locks, &mut granted, &ctx);
                    if now >= warm_ms {
                        completed_measured += 1;
                    }
                    issue!();
                }
                if let Some((at, _)) = io.next_departure() {
                    seq += 1;
                    heap.push(Reverse((OrdF64::new(at.max(now)), seq, Dep::Io(io.generation()))));
                }
            }
        }
        // Resume lock-grant recipients.
        if !granted.is_empty() {
            let grants: Vec<QueryId> = std::mem::take(&mut granted);
            for g in grants {
                let cpu_ms = pending_cpu.remove(&g).expect("pending cpu demand");
                {
                    let st = states.get_mut(&g).expect("state");
                    match st.phase {
                        Phase::WaitMdl => st.holds_mdl = true,
                        Phase::WaitSlot => st.next_slot += 1,
                        other => unreachable!("grant in phase {:?}", other),
                    }
                }
                progress!(g, cpu_ms);
            }
        }
        // Snapshot CPU busy time at the warm-up boundary.
        if cpu_busy_at_warm.is_none() && now >= warm_ms {
            cpu.advance(now);
            cpu_busy_at_warm = Some(cpu.busy_ms());
        }
    }

    fn complete(
        qid: QueryId,
        states: &mut HashMap<QueryId, InFlight>,
        slot_store: &[u32],
        locks: &mut LockManager,
        granted: &mut Vec<QueryId>,
        ctx: &Ctx<'_>,
    ) {
        let st = states.remove(&qid).expect("completing unknown query");
        if let Some(fp) = ctx.specs[st.spec].cost.lock {
            let table = fp.table.0 as u32;
            let slot_kind = if fp.mode == LockMode::SharedRows {
                LockKind::Shared
            } else {
                LockKind::Exclusive
            };
            for i in 0..st.next_slot {
                locks.release_slot(table, slot_store[st.slots_from + i], slot_kind, granted);
            }
            if st.holds_mdl {
                let kind = if fp.mode == LockMode::ExclusiveTable {
                    LockKind::Exclusive
                } else {
                    LockKind::Shared
                };
                locks.release_mdl(table, kind, granted);
            }
        }
    }

    cpu.advance(end_ms.max(now));
    let busy = cpu.busy_ms() - cpu_busy_at_warm.unwrap_or(0.0);
    ClosedLoopResult {
        qps: completed_measured as f64 / cfg.measure_s,
        cpu_utilization: (busy / (cfg.measure_s * 1000.0)).min(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PfsConfig;
    use pinsql_workload::dag::ApiDag;
    use pinsql_workload::{CostProfile, TableDef, TableId, TemplateSpec, Workload};

    fn bench_workload() -> Workload {
        let tables: Vec<TableDef> =
            (0..4).map(|i| TableDef::new(format!("sbtest{i}"), 10_000_000, 256)).collect();
        let mut specs = Vec::new();
        for i in 0..4 {
            let t = TableId(i);
            specs.push(TemplateSpec::new(
                &format!("SELECT c FROM sbtest{i} WHERE id = 1"),
                CostProfile::point_read(t),
                format!("read{i}"),
            ));
            specs.push(TemplateSpec::new(
                &format!("UPDATE sbtest{i} SET k = k + 1 WHERE id = 1"),
                CostProfile::point_write(t),
                format!("write{i}"),
            ));
        }
        Workload { tables, specs, dag: ApiDag::default(), roots: vec![] }
    }

    fn mix_read_only() -> Vec<(usize, f64)> {
        (0..8).filter(|i| i % 2 == 0).map(|i| (i, 1.0)).collect()
    }

    fn mix_write_only() -> Vec<(usize, f64)> {
        (0..8).filter(|i| i % 2 == 1).map(|i| (i, 1.0)).collect()
    }

    #[test]
    fn closed_loop_saturates_cpu() {
        let w = bench_workload();
        let sim = SimConfig::default().with_cores(4.0).with_seed(21);
        let cfg = ClosedLoopConfig {
            clients: 32,
            warmup_s: 2.0,
            measure_s: 10.0,
            mix: mix_read_only(),
        };
        let res = run_closed_loop(&w, &sim, &cfg);
        assert!(res.qps > 1000.0, "qps {}", res.qps);
        assert!(res.cpu_utilization > 0.9, "util {}", res.cpu_utilization);
    }

    #[test]
    fn pfs_reduces_qps() {
        let w = bench_workload();
        let cfg = ClosedLoopConfig {
            clients: 32,
            warmup_s: 2.0,
            measure_s: 10.0,
            mix: mix_read_only(),
        };
        let base = run_closed_loop(&w, &SimConfig::default().with_cores(4.0).with_seed(3), &cfg);
        let heavy = run_closed_loop(
            &w,
            &SimConfig::default().with_cores(4.0).with_seed(3).with_pfs(PfsConfig::PFS_CON_INS),
            &cfg,
        );
        let decline = 1.0 - heavy.qps / base.qps;
        assert!(
            (0.15..0.45).contains(&decline),
            "pfs+con+ins decline should be ~25-30%: {decline}"
        );
    }

    #[test]
    fn write_mix_runs_with_lock_contention() {
        let w = bench_workload();
        let sim = SimConfig::default().with_cores(4.0).with_seed(5);
        let cfg = ClosedLoopConfig {
            clients: 32,
            warmup_s: 1.0,
            measure_s: 5.0,
            mix: mix_write_only(),
        };
        let res = run_closed_loop(&w, &sim, &cfg);
        assert!(res.qps > 500.0, "qps {}", res.qps);
    }

    #[test]
    #[should_panic(expected = "non-empty mix")]
    fn empty_mix_panics() {
        let w = bench_workload();
        let _ = run_closed_loop(
            &w,
            &SimConfig::default(),
            &ClosedLoopConfig { mix: vec![], ..Default::default() },
        );
    }
}
