//! Metadata (table) locks and row-slot locks with strict-FIFO queues.
//!
//! Two properties of MySQL locking matter for reproducing the paper's
//! anomaly categories, and both are modelled here:
//!
//! 1. **MDL fairness**: a *waiting* exclusive metadata-lock request (an
//!    `ALTER TABLE` behind long-running reads) blocks every *later* request,
//!    shared or not. That is why one DDL statement can pile up "millions of
//!    affected queries" (§II category 3-i) — the queue drains strictly in
//!    FIFO order.
//! 2. **Row-lock convoys**: writes take exclusive locks on hot row slots;
//!    conflicting statements queue FIFO per slot, so a slow batch write
//!    slows every later statement touching its slots (category 3-ii).

use std::collections::{HashMap, VecDeque};

/// Query identifier, assigned by the engine.
pub type QueryId = u64;

/// Lock strength for row slots and MDL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    Shared,
    Exclusive,
}

#[derive(Debug, Default)]
struct LockState {
    shared_holders: u32,
    exclusive_holder: bool,
    /// FIFO wait queue.
    queue: VecDeque<(QueryId, LockKind)>,
}

impl LockState {
    fn compatible(&self, kind: LockKind) -> bool {
        match kind {
            LockKind::Shared => !self.exclusive_holder,
            LockKind::Exclusive => !self.exclusive_holder && self.shared_holders == 0,
        }
    }

    /// Tries to grant immediately (strict FIFO: only when nobody queues).
    fn request(&mut self, q: QueryId, kind: LockKind) -> bool {
        if self.queue.is_empty() && self.compatible(kind) {
            self.hold(kind);
            true
        } else {
            self.queue.push_back((q, kind));
            false
        }
    }

    fn hold(&mut self, kind: LockKind) {
        match kind {
            LockKind::Shared => self.shared_holders += 1,
            LockKind::Exclusive => {
                debug_assert!(!self.exclusive_holder && self.shared_holders == 0);
                self.exclusive_holder = true;
            }
        }
    }

    fn release(&mut self, kind: LockKind, granted: &mut Vec<QueryId>) {
        match kind {
            LockKind::Shared => {
                debug_assert!(self.shared_holders > 0, "releasing un-held shared lock");
                self.shared_holders -= 1;
            }
            LockKind::Exclusive => {
                debug_assert!(self.exclusive_holder, "releasing un-held exclusive lock");
                self.exclusive_holder = false;
            }
        }
        self.drain_queue(granted);
    }

    /// Grants from the queue head while compatible.
    fn drain_queue(&mut self, granted: &mut Vec<QueryId>) {
        while let Some(&(q, kind)) = self.queue.front() {
            if !self.compatible(kind) {
                break;
            }
            self.queue.pop_front();
            self.hold(kind);
            granted.push(q);
            if kind == LockKind::Exclusive {
                break;
            }
        }
    }

    fn is_idle(&self) -> bool {
        self.shared_holders == 0 && !self.exclusive_holder && self.queue.is_empty()
    }

    fn waiters(&self) -> usize {
        self.queue.len()
    }
}

/// The instance-wide lock manager: one MDL per table plus row-slot locks.
#[derive(Debug)]
pub struct LockManager {
    mdl: Vec<LockState>,
    rows: HashMap<(u32, u32), LockState>,
    /// Cumulative number of requests that had to wait, split by kind.
    pub mdl_wait_events: u64,
    pub row_wait_events: u64,
}

impl LockManager {
    /// Creates a manager for `n_tables` tables.
    pub fn new(n_tables: usize) -> Self {
        Self {
            mdl: (0..n_tables).map(|_| LockState::default()).collect(),
            rows: HashMap::new(),
            mdl_wait_events: 0,
            row_wait_events: 0,
        }
    }

    /// Requests the metadata lock on `table`. Returns `true` when granted
    /// immediately; otherwise the query is queued and will appear in a
    /// later `release_mdl`'s grant list.
    pub fn request_mdl(&mut self, q: QueryId, table: u32, kind: LockKind) -> bool {
        let granted = self.mdl[table as usize].request(q, kind);
        if !granted {
            self.mdl_wait_events += 1;
        }
        granted
    }

    /// Releases the metadata lock on `table`, appending newly granted
    /// queries to `granted`.
    pub fn release_mdl(&mut self, table: u32, kind: LockKind, granted: &mut Vec<QueryId>) {
        self.mdl[table as usize].release(kind, granted);
    }

    /// Requests a row-slot lock. Semantics mirror [`Self::request_mdl`].
    pub fn request_slot(&mut self, q: QueryId, table: u32, slot: u32, kind: LockKind) -> bool {
        let state = self.rows.entry((table, slot)).or_default();
        let granted = state.request(q, kind);
        if !granted {
            self.row_wait_events += 1;
        }
        granted
    }

    /// Releases a row-slot lock, appending newly granted queries.
    pub fn release_slot(
        &mut self,
        table: u32,
        slot: u32,
        kind: LockKind,
        granted: &mut Vec<QueryId>,
    ) {
        let state = self.rows.get_mut(&(table, slot)).expect("releasing unknown slot lock");
        state.release(kind, granted);
        if state.is_idle() {
            self.rows.remove(&(table, slot));
        }
    }

    /// Number of queries currently queued on metadata locks.
    pub fn mdl_waiters(&self) -> usize {
        self.mdl.iter().map(LockState::waiters).sum()
    }

    /// Number of queries currently queued on row locks.
    pub fn row_waiters(&self) -> usize {
        self.rows.values().map(LockState::waiters).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: u32 = 0;

    #[test]
    fn shared_mdl_is_concurrent() {
        let mut m = LockManager::new(1);
        assert!(m.request_mdl(1, T, LockKind::Shared));
        assert!(m.request_mdl(2, T, LockKind::Shared));
        assert_eq!(m.mdl_waiters(), 0);
    }

    #[test]
    fn exclusive_mdl_waits_for_readers() {
        let mut m = LockManager::new(1);
        assert!(m.request_mdl(1, T, LockKind::Shared));
        assert!(!m.request_mdl(2, T, LockKind::Exclusive));
        assert_eq!(m.mdl_waiters(), 1);
        let mut granted = Vec::new();
        m.release_mdl(T, LockKind::Shared, &mut granted);
        assert_eq!(granted, vec![2]);
    }

    #[test]
    fn waiting_ddl_blocks_later_readers_fifo() {
        // The category-3(i) pile-up: reader holds MDL, DDL queues, and then
        // *new readers queue behind the DDL* even though they'd be
        // compatible with the current holder.
        let mut m = LockManager::new(1);
        assert!(m.request_mdl(1, T, LockKind::Shared));
        assert!(!m.request_mdl(2, T, LockKind::Exclusive));
        assert!(!m.request_mdl(3, T, LockKind::Shared));
        assert!(!m.request_mdl(4, T, LockKind::Shared));
        assert_eq!(m.mdl_waiters(), 3);

        let mut granted = Vec::new();
        m.release_mdl(T, LockKind::Shared, &mut granted);
        // Only the DDL is granted; readers stay behind it.
        assert_eq!(granted, vec![2]);
        assert_eq!(m.mdl_waiters(), 2);

        granted.clear();
        m.release_mdl(T, LockKind::Exclusive, &mut granted);
        // Both readers drain together once the DDL finishes.
        assert_eq!(granted, vec![3, 4]);
        assert_eq!(m.mdl_waiters(), 0);
    }

    #[test]
    fn row_slot_exclusive_conflicts() {
        let mut m = LockManager::new(1);
        assert!(m.request_slot(1, T, 5, LockKind::Exclusive));
        assert!(!m.request_slot(2, T, 5, LockKind::Exclusive));
        assert!(!m.request_slot(3, T, 5, LockKind::Shared));
        assert!(m.request_slot(4, T, 6, LockKind::Exclusive), "other slots unaffected");
        assert_eq!(m.row_waiters(), 2);
        let mut granted = Vec::new();
        m.release_slot(T, 5, LockKind::Exclusive, &mut granted);
        assert_eq!(granted, vec![2], "FIFO: the writer queued first");
    }

    #[test]
    fn shared_batch_grants_together() {
        let mut m = LockManager::new(1);
        assert!(m.request_slot(1, T, 0, LockKind::Exclusive));
        assert!(!m.request_slot(2, T, 0, LockKind::Shared));
        assert!(!m.request_slot(3, T, 0, LockKind::Shared));
        assert!(!m.request_slot(4, T, 0, LockKind::Exclusive));
        let mut granted = Vec::new();
        m.release_slot(T, 0, LockKind::Exclusive, &mut granted);
        assert_eq!(granted, vec![2, 3], "consecutive shared heads drain together");
        granted.clear();
        m.release_slot(T, 0, LockKind::Shared, &mut granted);
        assert!(granted.is_empty(), "writer still blocked by one shared holder");
        m.release_slot(T, 0, LockKind::Shared, &mut granted);
        assert_eq!(granted, vec![4]);
    }

    #[test]
    fn idle_slot_entries_are_reclaimed() {
        let mut m = LockManager::new(1);
        assert!(m.request_slot(1, T, 9, LockKind::Exclusive));
        let mut granted = Vec::new();
        m.release_slot(T, 9, LockKind::Exclusive, &mut granted);
        assert!(m.rows.is_empty(), "released slot entries must be freed");
    }

    #[test]
    fn wait_event_counters_accumulate() {
        let mut m = LockManager::new(1);
        m.request_mdl(1, T, LockKind::Exclusive);
        m.request_mdl(2, T, LockKind::Shared);
        m.request_slot(3, T, 0, LockKind::Exclusive);
        m.request_slot(4, T, 0, LockKind::Exclusive);
        assert_eq!(m.mdl_wait_events, 1);
        assert_eq!(m.row_wait_events, 1);
    }
}
