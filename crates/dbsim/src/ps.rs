//! Processor-sharing resources via virtual service time.
//!
//! `n` concurrent jobs on a resource of capacity `c` each progress at rate
//! `min(1, c/n)` (a job cannot use more than one server). The classic
//! virtual-time trick makes departures `O(log n)`: maintain a clock `V`
//! advancing at the common per-job rate; a job arriving at `V₀` with demand
//! `d` departs when `V = V₀ + d`. Jobs live in an ordered set keyed by
//! their target `V`, so the next departure is the first entry.

use crate::ordf64::OrdF64;
use std::collections::BTreeSet;

/// Identifier of a job on a resource (the engine uses query ids).
pub type JobId = u64;

/// A processor-sharing resource.
#[derive(Debug)]
pub struct PsResource {
    capacity: f64,
    /// Virtual service time.
    virt: f64,
    /// Wall-clock ms at which `virt` was last advanced.
    last: f64,
    /// Jobs keyed by (target virtual time, job id).
    jobs: BTreeSet<(OrdF64, JobId)>,
    /// Membership generation, bumped on add/remove; used by the engine to
    /// discard stale departure events.
    generation: u64,
    /// Busy integral accumulator: ∫ min(n, c)/c dt, i.e. utilization·time.
    busy_ms: f64,
}

impl PsResource {
    /// Creates a resource with the given capacity (number of servers).
    ///
    /// # Panics
    /// Panics unless `capacity > 0`.
    pub fn new(capacity: f64) -> Self {
        assert!(capacity > 0.0, "resource capacity must be positive");
        Self { capacity, virt: 0.0, last: 0.0, jobs: BTreeSet::new(), generation: 0, busy_ms: 0.0 }
    }

    /// Number of jobs currently in service.
    #[inline]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when no job is in service.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Current membership generation.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Per-job progress rate with `n` jobs.
    #[inline]
    fn rate(&self, n: usize) -> f64 {
        if n == 0 {
            1.0
        } else {
            (self.capacity / n as f64).min(1.0)
        }
    }

    /// Instantaneous utilization in `[0, 1]`.
    #[inline]
    pub fn utilization(&self) -> f64 {
        (self.jobs.len() as f64 / self.capacity).min(1.0)
    }

    /// Advances the virtual clock (and the busy integral) to wall time
    /// `now`.
    ///
    /// # Panics
    /// Panics if `now` precedes the last advance (time must be monotone).
    pub fn advance(&mut self, now: f64) {
        let dt = now - self.last;
        assert!(dt >= -1e-9, "time went backwards: {} -> {}", self.last, now);
        if dt > 0.0 {
            let n = self.jobs.len();
            self.virt += dt * self.rate(n);
            self.busy_ms += dt * (n as f64).min(self.capacity) / self.capacity;
            self.last = now;
        }
    }

    /// Adds a job with the given service demand (ms of dedicated-server
    /// time). Call after/with `advance(now)`.
    pub fn add(&mut self, now: f64, job: JobId, demand_ms: f64) {
        self.advance(now);
        let target = self.virt + demand_ms.max(0.0);
        self.jobs.insert((OrdF64::new(target), job));
        self.generation += 1;
    }

    /// Removes a job before completion (e.g. a kill). Returns true when the
    /// job was present. `O(n)` scan — kills are rare.
    pub fn remove(&mut self, now: f64, job: JobId) -> bool {
        self.advance(now);
        let found = self.jobs.iter().find(|(_, j)| *j == job).copied();
        match found {
            Some(key) => {
                self.jobs.remove(&key);
                self.generation += 1;
                true
            }
            None => false,
        }
    }

    /// The wall-clock time at which the next departure will occur if
    /// membership does not change, with the departing job id.
    pub fn next_departure(&self) -> Option<(f64, JobId)> {
        let (target, job) = self.jobs.first().copied()?;
        let rate = self.rate(self.jobs.len());
        let dt = (target.get() - self.virt).max(0.0) / rate;
        Some((self.last + dt, job))
    }

    /// Pops every job whose service is complete at wall time `now`
    /// (within `eps_ms` of slack, to absorb floating error), appending them
    /// to `out`. Advances the clock first.
    pub fn pop_finished(&mut self, now: f64, eps_ms: f64, out: &mut Vec<JobId>) {
        self.advance(now);
        let before = out.len();
        while let Some(&(target, job)) = self.jobs.first() {
            if target.get() <= self.virt + eps_ms {
                self.jobs.remove(&(target, job));
                out.push(job);
            } else {
                break;
            }
        }
        if out.len() != before {
            self.generation += 1;
        }
    }

    /// Total busy time (utilization integral) accumulated so far, in ms.
    pub fn busy_ms(&self) -> f64 {
        self.busy_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-6;

    #[test]
    fn single_job_runs_at_full_rate() {
        let mut r = PsResource::new(4.0);
        r.add(0.0, 1, 100.0);
        let (t, j) = r.next_departure().unwrap();
        assert!((t - 100.0).abs() < EPS);
        assert_eq!(j, 1);
        let mut out = Vec::new();
        r.pop_finished(100.0, EPS, &mut out);
        assert_eq!(out, vec![1]);
        assert!(r.is_empty());
    }

    #[test]
    fn jobs_within_capacity_do_not_slow_each_other() {
        let mut r = PsResource::new(4.0);
        r.add(0.0, 1, 100.0);
        r.add(0.0, 2, 50.0);
        // 2 jobs, 4 servers: both run at rate 1.
        let (t, j) = r.next_departure().unwrap();
        assert!((t - 50.0).abs() < EPS);
        assert_eq!(j, 2);
    }

    #[test]
    fn oversubscription_stretches_service() {
        let mut r = PsResource::new(1.0);
        r.add(0.0, 1, 100.0);
        r.add(0.0, 2, 100.0);
        // 2 jobs share 1 server: each runs at rate 0.5 → departs at 200.
        let (t, _) = r.next_departure().unwrap();
        assert!((t - 200.0).abs() < EPS);
        let mut out = Vec::new();
        r.pop_finished(200.0, EPS, &mut out);
        assert_eq!(out.len(), 2, "equal demands depart together");
    }

    #[test]
    fn late_arrival_shares_remaining_work() {
        let mut r = PsResource::new(1.0);
        r.add(0.0, 1, 100.0);
        // At t=50, job 1 has 50 ms of work left.
        r.add(50.0, 2, 50.0);
        // Both have 50 ms left at rate 0.5 → depart at t=150.
        let (t, _) = r.next_departure().unwrap();
        assert!((t - 150.0).abs() < EPS);
    }

    #[test]
    fn remove_mid_service_speeds_up_the_rest() {
        let mut r = PsResource::new(1.0);
        r.add(0.0, 1, 100.0);
        r.add(0.0, 2, 100.0);
        assert!(r.remove(50.0, 2));
        assert!(!r.remove(50.0, 2));
        // Job 1 did 25 ms of work in [0,50) at rate 0.5; 75 left at rate 1.
        let (t, j) = r.next_departure().unwrap();
        assert_eq!(j, 1);
        assert!((t - 125.0).abs() < EPS);
    }

    #[test]
    fn busy_integral_tracks_utilization() {
        let mut r = PsResource::new(2.0);
        r.add(0.0, 1, 100.0); // 1 job on 2 cores: util 0.5
        r.advance(100.0);
        assert!((r.busy_ms() - 50.0).abs() < EPS);
        let mut out = Vec::new();
        r.pop_finished(100.0, EPS, &mut out);
        r.advance(200.0); // idle
        assert!((r.busy_ms() - 50.0).abs() < EPS);
    }

    #[test]
    fn generation_bumps_on_membership_changes_only() {
        let mut r = PsResource::new(1.0);
        let g0 = r.generation();
        r.advance(10.0);
        assert_eq!(r.generation(), g0);
        r.add(10.0, 1, 5.0);
        assert_eq!(r.generation(), g0 + 1);
        let mut out = Vec::new();
        r.pop_finished(15.0, EPS, &mut out);
        assert_eq!(r.generation(), g0 + 2);
    }

    #[test]
    fn zero_demand_departs_immediately() {
        let mut r = PsResource::new(1.0);
        r.add(0.0, 7, 0.0);
        let mut out = Vec::new();
        r.pop_finished(0.0, EPS, &mut out);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn utilization_caps_at_one() {
        let mut r = PsResource::new(2.0);
        for j in 0..10 {
            r.add(0.0, j, 100.0);
        }
        assert_eq!(r.utilization(), 1.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = PsResource::new(0.0);
    }
}
