//! Discrete-event cloud database instance simulator.
//!
//! The paper's evaluation runs against Alibaba RDS MySQL instances; this
//! crate is the substitute substrate (see DESIGN.md). It reproduces the
//! *signals PinSQL consumes* — per-query log records and per-second
//! instance metrics — from first principles:
//!
//! * [`ps`] — processor-sharing resources (CPU, IO) with the virtual-time
//!   formulation: `n` concurrent jobs each progress at rate
//!   `min(1, capacity/n)`;
//! * [`locks`] — a strict-FIFO metadata-lock manager per table (so a
//!   waiting `ALTER TABLE` piles every later statement up behind it, the
//!   paper's category-3(i) anomaly) and shared/exclusive row-slot locks
//!   (category-3(ii));
//! * [`engine`] — the event loop: arrivals → MDL → row locks → CPU phase →
//!   IO phase → completion, emitting [`QueryRecord`]s;
//! * [`probe`] — the `SHOW STATUS`-style active-session probe taken at a
//!   *uniformly random sub-second instant* each second (Fig. 3's `t3`),
//!   which is exactly the ambiguity §IV-C's bucket estimation resolves;
//! * [`metrics`] — per-second instance metrics (cpu/iops utilization,
//!   active session, lock waits);
//! * [`telemetry`] — the unified [`TelemetryEvent`] stream (query record |
//!   metric sample | clock tick) that the online collector, detectors, and
//!   fleet engine consume;
//! * [`closedloop`] — a saturation driver (N clients issuing back-to-back
//!   queries) used for the Table IV Performance-Schema overhead study;
//! * [`config`] — instance sizing and the Performance-Schema overhead
//!   model.

pub mod closedloop;
pub mod config;
pub mod engine;
pub mod integrator;
pub mod locks;
pub mod metrics;
pub mod ordf64;
pub mod probe;
pub mod ps;
pub mod record;
pub mod telemetry;
pub mod trace;
pub mod wire;

pub use closedloop::{run_closed_loop, ClosedLoopConfig, ClosedLoopResult};
pub use config::{PfsConfig, SimConfig};
pub use engine::{run_open_loop, SimOutput};
pub use metrics::InstanceMetrics;
pub use record::QueryRecord;
pub use telemetry::{interleave, query_run, MetricsSample, TelemetryEvent};
pub use trace::Trace;
pub use wire::{decode_event, encode_event};
