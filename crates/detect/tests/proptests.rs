//! Property-based tests for the detection layer.

use pinsql_detect::{classify, detect_features, DetectorConfig, PhenomenonConfig};
use proptest::prelude::*;

proptest! {
    /// The detector never panics and every feature is a well-formed,
    /// in-bounds, non-overlapping segment.
    #[test]
    fn features_are_well_formed(
        series in prop::collection::vec(0.0f64..1e6, 0..500),
        start in -1000i64..1000,
    ) {
        let cfg = DetectorConfig::default();
        let feats = detect_features("m", &series, start, &cfg);
        let end = start + series.len() as i64;
        for f in &feats {
            prop_assert!(f.start >= start && f.end <= end, "{f:?}");
            prop_assert!(f.start < f.end, "{f:?}");
            prop_assert!(f.peak_z >= cfg.trigger_z, "{f:?}");
        }
        for pair in feats.windows(2) {
            prop_assert!(pair[0].end <= pair[1].start, "overlap: {pair:?}");
        }
    }

    /// A constant series (any level) never alarms.
    #[test]
    fn constant_series_never_alarms(level in 0.0f64..1e6, n in 0usize..400) {
        let series = vec![level; n];
        let feats = detect_features("m", &series, 0, &DetectorConfig::default());
        prop_assert!(feats.is_empty(), "{feats:?}");
    }

    /// Scaling a series and its detector floor together preserves the
    /// feature segmentation (the detector is scale-equivariant).
    #[test]
    fn detection_is_scale_equivariant(
        base in prop::collection::vec(5.0f64..15.0, 100..200),
        spike_at in 50usize..90,
        scale in 0.5f64..200.0,
    ) {
        let mut series = base;
        for v in series.iter_mut().skip(spike_at).take(8) {
            *v += 200.0;
        }
        let cfg = DetectorConfig { baseline_len: 40, warmup: 10, ..Default::default() };
        let scaled: Vec<f64> = series.iter().map(|v| v * scale).collect();
        let scaled_cfg = DetectorConfig { mad_floor: cfg.mad_floor * scale, ..cfg.clone() };
        let a = detect_features("m", &series, 0, &cfg);
        let b = detect_features("m", &scaled, 0, &scaled_cfg);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.start, y.start);
            prop_assert_eq!(x.end, y.end);
            prop_assert_eq!(x.kind, y.kind);
        }
    }

    /// Phenomenon classification output is sorted, merged (no same-type
    /// pair closer than the gap), and duration-filtered.
    #[test]
    fn phenomena_are_merged_and_filtered(
        feats in prop::collection::vec((0i64..1000, 1i64..120), 0..30),
    ) {
        use pinsql_detect::{Feature, FeatureKind};
        let features: Vec<Feature> = feats
            .iter()
            .map(|&(start, len)| Feature {
                metric: "active_session".into(),
                kind: FeatureKind::SpikeUp,
                start,
                end: start + len,
                peak_z: 10.0,
            })
            .collect();
        let cfg = PhenomenonConfig::default();
        let out = classify(&features, &cfg);
        for p in &out {
            prop_assert!(p.duration() >= cfg.min_duration_s);
        }
        for pair in out.windows(2) {
            prop_assert!(pair[0].start <= pair[1].start, "not sorted");
            if pair[0].anomaly_type == pair[1].anomaly_type {
                prop_assert!(
                    pair[1].start > pair[0].end + cfg.merge_gap_s,
                    "unmerged same-type phenomena: {pair:?}"
                );
            }
        }
    }
}
