//! Anomalous-feature types produced by the Basic Perception Layer.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The anomalous feature kinds of §II: spike = sudden change that recovers;
/// level shift = sudden change that persists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureKind {
    SpikeUp,
    SpikeDown,
    LevelShiftUp,
    LevelShiftDown,
}

impl FeatureKind {
    /// True for upward anomalies.
    pub fn is_up(&self) -> bool {
        matches!(self, FeatureKind::SpikeUp | FeatureKind::LevelShiftUp)
    }

    /// True for spikes (recovering anomalies).
    pub fn is_spike(&self) -> bool {
        matches!(self, FeatureKind::SpikeUp | FeatureKind::SpikeDown)
    }

    /// The configuration-string suffix (`"spike"` / `"levelshift"` with
    /// direction), e.g. `active_session.spike_up`.
    pub fn suffix(&self) -> &'static str {
        match self {
            FeatureKind::SpikeUp => "spike_up",
            FeatureKind::SpikeDown => "spike_down",
            FeatureKind::LevelShiftUp => "levelshift_up",
            FeatureKind::LevelShiftDown => "levelshift_down",
        }
    }
}

impl fmt::Display for FeatureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

/// One detected anomalous feature on a metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Feature {
    /// Canonical metric name (see `pinsql_dbsim::metrics::names`).
    pub metric: String,
    pub kind: FeatureKind,
    /// Segment start (second, inclusive).
    pub start: i64,
    /// Segment end (second, exclusive).
    pub end: i64,
    /// Peak robust z-score observed inside the segment.
    pub peak_z: f64,
}

impl Feature {
    /// Duration of the feature in seconds.
    pub fn duration(&self) -> i64 {
        self.end - self.start
    }

    /// True when two features overlap in time or sit within `gap` seconds
    /// of each other.
    pub fn near(&self, other: &Feature, gap: i64) -> bool {
        self.start <= other.end + gap && other.start <= self.end + gap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feat(start: i64, end: i64) -> Feature {
        Feature { metric: "m".into(), kind: FeatureKind::SpikeUp, start, end, peak_z: 10.0 }
    }

    #[test]
    fn kind_predicates() {
        assert!(FeatureKind::SpikeUp.is_up());
        assert!(FeatureKind::LevelShiftUp.is_up());
        assert!(!FeatureKind::SpikeDown.is_up());
        assert!(FeatureKind::SpikeDown.is_spike());
        assert!(!FeatureKind::LevelShiftDown.is_spike());
        assert_eq!(FeatureKind::SpikeUp.to_string(), "spike_up");
    }

    #[test]
    fn nearness_with_gap() {
        let a = feat(10, 20);
        assert!(a.near(&feat(18, 25), 0));
        assert!(!a.near(&feat(25, 30), 0));
        assert!(a.near(&feat(25, 30), 5));
        assert!(feat(25, 30).near(&a, 5), "symmetric");
        assert_eq!(a.duration(), 10);
    }
}
