//! The Phenomenon Perception Layer: typed anomalies from feature combos.
//!
//! Users configure which feature combinations constitute an anomaly (Fig. 5
//! shows `[cpu_usage.spike]` gating a repair action). A
//! [`PhenomenonRule`] names an anomaly type and lists the features that
//! must co-occur; detected phenomena of the same type that lie close in
//! time are merged (§IV-B), and those shorter than a minimum duration are
//! dropped.

use crate::features::{Feature, FeatureKind};
use serde::{Deserialize, Serialize};

/// A required feature: metric plus an acceptable set of kinds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricFeature {
    pub metric: String,
    /// Any of these kinds satisfies the requirement.
    pub kinds: Vec<FeatureKind>,
}

impl MetricFeature {
    /// `metric.spike` (up only — performance anomalies are upward for
    /// session/usage metrics).
    pub fn spike_up(metric: &str) -> Self {
        Self { metric: metric.to_string(), kinds: vec![FeatureKind::SpikeUp] }
    }

    /// Any upward anomaly on the metric.
    pub fn any_up(metric: &str) -> Self {
        Self {
            metric: metric.to_string(),
            kinds: vec![FeatureKind::SpikeUp, FeatureKind::LevelShiftUp],
        }
    }

    fn matches(&self, f: &Feature) -> bool {
        f.metric == self.metric && self.kinds.contains(&f.kind)
    }
}

/// One rule: all listed features must co-occur (within the merge gap).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhenomenonRule {
    /// Anomaly type this rule produces, e.g. `"active_session_anomaly"`.
    pub anomaly_type: String,
    pub all_of: Vec<MetricFeature>,
}

/// Configuration of the phenomenon layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhenomenonConfig {
    pub rules: Vec<PhenomenonRule>,
    /// Phenomena of the same type closer than this merge into one (s).
    pub merge_gap_s: i64,
    /// Phenomena shorter than this are ignored (s).
    pub min_duration_s: i64,
}

impl Default for PhenomenonConfig {
    fn default() -> Self {
        // The paper's default watches active session, CPU usage, and IOPS
        // usage.
        use pinsql_dbsim::metrics::names;
        Self {
            rules: vec![
                PhenomenonRule {
                    anomaly_type: "active_session_anomaly".into(),
                    all_of: vec![MetricFeature::any_up(names::ACTIVE_SESSION)],
                },
                PhenomenonRule {
                    anomaly_type: "cpu_usage_anomaly".into(),
                    all_of: vec![MetricFeature::any_up(names::CPU_USAGE)],
                },
                PhenomenonRule {
                    anomaly_type: "iops_usage_anomaly".into(),
                    all_of: vec![MetricFeature::any_up(names::IOPS_USAGE)],
                },
            ],
            merge_gap_s: 60,
            min_duration_s: 5,
        }
    }
}

/// A typed anomalous phenomenon over `[start, end)` seconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phenomenon {
    pub anomaly_type: String,
    pub start: i64,
    pub end: i64,
}

impl Phenomenon {
    /// Duration in seconds.
    pub fn duration(&self) -> i64 {
        self.end - self.start
    }
}

/// Applies the rule table to a set of detected features.
pub fn classify(features: &[Feature], cfg: &PhenomenonConfig) -> Vec<Phenomenon> {
    let mut out: Vec<Phenomenon> = Vec::new();
    for rule in &cfg.rules {
        // Candidate instances: every feature matching the first
        // requirement anchors a window; remaining requirements must have a
        // feature near it.
        let Some(first_req) = rule.all_of.first() else { continue };
        for anchor in features.iter().filter(|f| first_req.matches(f)) {
            let mut start = anchor.start;
            let mut end = anchor.end;
            let mut ok = true;
            for req in &rule.all_of[1..] {
                match features
                    .iter()
                    .filter(|f| req.matches(f) && f.near(anchor, cfg.merge_gap_s))
                    .min_by_key(|f| (f.start - anchor.start).abs())
                {
                    Some(f) => {
                        start = start.min(f.start);
                        end = end.max(f.end);
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                out.push(Phenomenon { anomaly_type: rule.anomaly_type.clone(), start, end });
            }
        }
    }
    merge_and_filter(out, cfg)
}

/// Merges same-type phenomena closer than the gap and drops short ones.
fn merge_and_filter(mut phenomena: Vec<Phenomenon>, cfg: &PhenomenonConfig) -> Vec<Phenomenon> {
    phenomena.sort_by(|a, b| (a.anomaly_type.as_str(), a.start).cmp(&(b.anomaly_type.as_str(), b.start)));
    let mut merged: Vec<Phenomenon> = Vec::with_capacity(phenomena.len());
    for p in phenomena {
        match merged.last_mut() {
            Some(last)
                if last.anomaly_type == p.anomaly_type && p.start <= last.end + cfg.merge_gap_s =>
            {
                last.end = last.end.max(p.end);
            }
            _ => merged.push(p),
        }
    }
    merged.retain(|p| p.duration() >= cfg.min_duration_s);
    merged.sort_by_key(|p| p.start);
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feat(metric: &str, kind: FeatureKind, start: i64, end: i64) -> Feature {
        Feature { metric: metric.into(), kind, start, end, peak_z: 10.0 }
    }

    fn cfg_one_rule() -> PhenomenonConfig {
        PhenomenonConfig {
            rules: vec![PhenomenonRule {
                anomaly_type: "session".into(),
                all_of: vec![MetricFeature::any_up("active_session")],
            }],
            merge_gap_s: 30,
            min_duration_s: 5,
        }
    }

    #[test]
    fn single_feature_rule_fires() {
        let feats = vec![feat("active_session", FeatureKind::SpikeUp, 100, 160)];
        let ph = classify(&feats, &cfg_one_rule());
        assert_eq!(ph, vec![Phenomenon { anomaly_type: "session".into(), start: 100, end: 160 }]);
    }

    #[test]
    fn wrong_metric_or_kind_does_not_fire() {
        let feats = vec![
            feat("cpu_usage", FeatureKind::SpikeUp, 100, 160),
            feat("active_session", FeatureKind::SpikeDown, 200, 260),
        ];
        assert!(classify(&feats, &cfg_one_rule()).is_empty());
    }

    #[test]
    fn short_phenomena_are_dropped() {
        let feats = vec![feat("active_session", FeatureKind::SpikeUp, 100, 103)];
        assert!(classify(&feats, &cfg_one_rule()).is_empty());
    }

    #[test]
    fn close_phenomena_merge() {
        let feats = vec![
            feat("active_session", FeatureKind::SpikeUp, 100, 130),
            feat("active_session", FeatureKind::SpikeUp, 150, 180),
            feat("active_session", FeatureKind::SpikeUp, 400, 430),
        ];
        let ph = classify(&feats, &cfg_one_rule());
        assert_eq!(ph.len(), 2);
        assert_eq!((ph[0].start, ph[0].end), (100, 180));
        assert_eq!((ph[1].start, ph[1].end), (400, 430));
    }

    #[test]
    fn multi_metric_rule_requires_co_occurrence() {
        let cfg = PhenomenonConfig {
            rules: vec![PhenomenonRule {
                anomaly_type: "cpu_bound_session".into(),
                all_of: vec![
                    MetricFeature::any_up("active_session"),
                    MetricFeature::any_up("cpu_usage"),
                ],
            }],
            merge_gap_s: 30,
            min_duration_s: 5,
        };
        // Co-occurring pair fires; lone session anomaly at t=500 does not.
        let feats = vec![
            feat("active_session", FeatureKind::SpikeUp, 100, 160),
            feat("cpu_usage", FeatureKind::LevelShiftUp, 110, 170),
            feat("active_session", FeatureKind::SpikeUp, 500, 560),
        ];
        let ph = classify(&feats, &cfg);
        assert_eq!(ph.len(), 1);
        assert_eq!((ph[0].start, ph[0].end), (100, 170));
    }

    #[test]
    fn default_config_watches_three_metrics() {
        let cfg = PhenomenonConfig::default();
        assert_eq!(cfg.rules.len(), 3);
        let feats = vec![feat("active_session", FeatureKind::LevelShiftUp, 10, 100)];
        let ph = classify(&feats, &cfg);
        assert_eq!(ph.len(), 1);
        assert_eq!(ph[0].anomaly_type, "active_session_anomaly");
    }
}
