//! Anomaly detection (§IV-B of the paper).
//!
//! Two layers, mirroring the production design:
//!
//! * **Basic Perception** ([`features`], [`detector`]) — robust streaming
//!   detectors that turn each performance-metric series into *anomalous
//!   features*: spike up/down and level-shift up/down segments. The
//!   [`online`] module hosts the sample-at-a-time formulation of the same
//!   algorithm (bounded rolling state, bit-identical features) for the
//!   event-driven engine.
//! * **Phenomenon Perception** ([`phenomenon`]) — a configurable rule table
//!   combining features of different metrics into typed anomalous
//!   *phenomena* (e.g. `[active_session.spike]`), merging phenomena of the
//!   same type that occur close together and dropping those shorter than a
//!   configurable minimum duration. The result is the anomaly case window
//!   `[a_s, a_e)` that triggers root-cause analysis.
//!
//! (The paper plugs iSQUAD in for phenomenon typing; the rule table here
//! reproduces the part PinSQL depends on — building typed anomaly cases —
//! without the Bayesian case model.)

pub mod case;
pub mod confirm;
pub mod detector;
pub mod features;
pub mod online;
pub mod phenomenon;

pub use case::AnomalyWindow;
pub use confirm::{confirm_level_shifts, ConfirmConfig};
pub use detector::{detect_features, DetectorConfig};
pub use features::{Feature, FeatureKind};
pub use online::{OnlineDetectorBank, OnlineFeatureDetector};
pub use pinsql_timeseries::{CutKind, KernelKind};
pub use phenomenon::{classify, MetricFeature, Phenomenon, PhenomenonConfig, PhenomenonRule};
