//! Change-point confirmation of level-shift features.
//!
//! The Basic Perception Layer's streaming detector is deliberately eager;
//! §IV-B describes integrating multiple methods ([9], [20], [28]–[30]),
//! among them Pettitt's non-parametric change-point test. This layer
//! re-examines each *level-shift* feature over a context window around its
//! start: a genuine shift exhibits a statistically significant change
//! point there; an eager false positive (e.g. a slow ramp that tripped the
//! z-threshold) does not. Spikes are passed through untouched — they
//! recover by definition, so a change-point test is the wrong instrument.

use crate::features::{Feature, FeatureKind};
use pinsql_timeseries::changepoint::pettitt;
use serde::{Deserialize, Serialize};

/// Confirmation tuning.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfirmConfig {
    /// Context seconds taken before the feature start (clamped to data).
    pub context_before_s: i64,
    /// Context seconds taken after the feature start (clamped to data).
    pub context_after_s: i64,
    /// Required significance of the Pettitt statistic.
    pub alpha: f64,
    /// How far (seconds) the Pettitt change point may sit from the
    /// feature's reported start and still confirm it.
    pub max_offset_s: i64,
}

impl Default for ConfirmConfig {
    fn default() -> Self {
        Self { context_before_s: 120, context_after_s: 120, alpha: 0.01, max_offset_s: 30 }
    }
}

/// Filters `features`, keeping spikes unconditionally and level shifts
/// only when a significant, correctly-located, correctly-signed change
/// point confirms them. `series` is the metric the features came from,
/// starting at `start_second`.
pub fn confirm_level_shifts(
    series: &[f64],
    start_second: i64,
    features: Vec<Feature>,
    cfg: &ConfirmConfig,
) -> Vec<Feature> {
    features
        .into_iter()
        .filter(|f| {
            if f.kind.is_spike() {
                return true;
            }
            shift_is_confirmed(series, start_second, f, cfg)
        })
        .collect()
}

fn shift_is_confirmed(
    series: &[f64],
    start_second: i64,
    feature: &Feature,
    cfg: &ConfirmConfig,
) -> bool {
    let n = series.len() as i64;
    let fstart = feature.start - start_second; // index of the shift start
    let lo = (fstart - cfg.context_before_s).clamp(0, n);
    let hi = (fstart + cfg.context_after_s).clamp(lo, n);
    let window = &series[lo as usize..hi as usize];
    let Some(p) = pettitt(window) else {
        return false;
    };
    if p.p_value >= cfg.alpha {
        return false;
    }
    // Location: the change point must sit near the reported start.
    let cp_abs = lo + p.index as i64;
    if (cp_abs - fstart).abs() > cfg.max_offset_s {
        return false;
    }
    // Direction must agree.
    let up = feature.kind == FeatureKind::LevelShiftUp;
    (p.direction > 0) == up
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{detect_features, DetectorConfig};

    fn base(n: usize) -> Vec<f64> {
        (0..n).map(|i| 10.0 + ((i * 5) % 4) as f64 * 0.4).collect()
    }

    fn det_cfg() -> DetectorConfig {
        DetectorConfig { baseline_len: 60, warmup: 15, ..Default::default() }
    }

    #[test]
    fn genuine_shift_is_confirmed() {
        let mut s = base(400);
        for v in s.iter_mut().skip(200) {
            *v += 50.0;
        }
        let feats = detect_features("m", &s, 0, &det_cfg());
        assert!(!feats.is_empty());
        let confirmed = confirm_level_shifts(&s, 0, feats.clone(), &ConfirmConfig::default());
        assert_eq!(confirmed.len(), feats.len(), "a clean shift must survive");
        assert!(confirmed.iter().any(|f| f.kind == FeatureKind::LevelShiftUp));
    }

    #[test]
    fn spikes_pass_through_unconditionally() {
        let mut s = base(400);
        for v in s.iter_mut().skip(200).take(8) {
            *v += 60.0;
        }
        let feats = detect_features("m", &s, 0, &det_cfg());
        assert!(feats.iter().any(|f| f.kind == FeatureKind::SpikeUp));
        let confirmed = confirm_level_shifts(&s, 0, feats.clone(), &ConfirmConfig::default());
        assert_eq!(confirmed, feats);
    }

    #[test]
    fn fabricated_shift_on_stationary_data_is_rejected() {
        // Hand a bogus level-shift feature over stationary data to the
        // confirmer: no significant change point exists → rejected.
        let s = base(400);
        let bogus = Feature {
            metric: "m".into(),
            kind: FeatureKind::LevelShiftUp,
            start: 200,
            end: 400,
            peak_z: 10.0,
        };
        let confirmed = confirm_level_shifts(&s, 0, vec![bogus], &ConfirmConfig::default());
        assert!(confirmed.is_empty());
    }

    #[test]
    fn mislocated_shift_is_rejected() {
        // A real change point exists at t=200, but the feature claims the
        // shift started at t=320 — outside max_offset_s.
        let mut s = base(400);
        for v in s.iter_mut().skip(200) {
            *v += 50.0;
        }
        let mislocated = Feature {
            metric: "m".into(),
            kind: FeatureKind::LevelShiftUp,
            start: 320,
            end: 400,
            peak_z: 10.0,
        };
        let confirmed = confirm_level_shifts(&s, 0, vec![mislocated], &ConfirmConfig::default());
        assert!(confirmed.is_empty());
    }

    #[test]
    fn wrong_direction_is_rejected() {
        let mut s = base(400);
        for v in s.iter_mut().skip(200) {
            *v += 50.0; // the level goes UP
        }
        let wrong = Feature {
            metric: "m".into(),
            kind: FeatureKind::LevelShiftDown,
            start: 200,
            end: 400,
            peak_z: 10.0,
        };
        let confirmed = confirm_level_shifts(&s, 0, vec![wrong], &ConfirmConfig::default());
        assert!(confirmed.is_empty());
    }

    #[test]
    fn nonzero_start_second_offsets_are_handled() {
        let mut s = base(400);
        for v in s.iter_mut().skip(200) {
            *v += 50.0;
        }
        // The series starts at absolute second 5 000.
        let feats = detect_features("m", &s, 5_000, &det_cfg());
        let confirmed = confirm_level_shifts(&s, 5_000, feats.clone(), &ConfirmConfig::default());
        assert_eq!(confirmed.len(), feats.len());
    }
}
