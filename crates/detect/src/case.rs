//! Anomaly-case windows (Definition II.2).
//!
//! An anomaly case `C = (M, Q, a_s, a_e)` binds metric and template data to
//! the detected anomaly period. The root-cause modules additionally look
//! back `δ_s` seconds before `a_s` because R-SQLs usually *precede* the
//! anomaly they cause; the collection window is `[t_s, t_e) =
//! [a_s − δ_s, a_e)`.

use crate::phenomenon::Phenomenon;
use serde::{Deserialize, Serialize};

/// The time geometry of one anomaly case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnomalyWindow {
    /// Anomaly start `a_s` (s).
    pub anomaly_start: i64,
    /// Anomaly end `a_e` (s, exclusive).
    pub anomaly_end: i64,
    /// Look-back offset `δ_s` (s).
    pub delta_s: i64,
}

impl AnomalyWindow {
    /// Builds the window from a detected phenomenon and a look-back.
    ///
    /// # Panics
    /// Panics if the phenomenon is empty or `delta_s` is negative.
    pub fn from_phenomenon(p: &Phenomenon, delta_s: i64) -> Self {
        assert!(p.end > p.start, "empty phenomenon");
        assert!(delta_s >= 0, "negative look-back");
        Self { anomaly_start: p.start, anomaly_end: p.end, delta_s }
    }

    /// Collection start `t_s = a_s − δ_s`.
    #[inline]
    pub fn ts(&self) -> i64 {
        self.anomaly_start - self.delta_s
    }

    /// Collection end `t_e = a_e`.
    #[inline]
    pub fn te(&self) -> i64 {
        self.anomaly_end
    }

    /// Anomaly duration (s).
    #[inline]
    pub fn anomaly_len(&self) -> i64 {
        self.anomaly_end - self.anomaly_start
    }

    /// Collection-window duration (s).
    #[inline]
    pub fn window_len(&self) -> i64 {
        self.te() - self.ts()
    }

    /// Clamps the collection window to available data `[data_start, data_end)`.
    pub fn clamped(&self, data_start: i64, data_end: i64) -> AnomalyWindow {
        let a_s = self.anomaly_start.clamp(data_start, data_end);
        let a_e = self.anomaly_end.clamp(a_s, data_end);
        let delta = self.delta_s.min(a_s - data_start);
        AnomalyWindow { anomaly_start: a_s, anomaly_end: a_e, delta_s: delta }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let w = AnomalyWindow { anomaly_start: 1000, anomaly_end: 1300, delta_s: 600 };
        assert_eq!(w.ts(), 400);
        assert_eq!(w.te(), 1300);
        assert_eq!(w.anomaly_len(), 300);
        assert_eq!(w.window_len(), 900);
    }

    #[test]
    fn from_phenomenon() {
        let p = Phenomenon { anomaly_type: "x".into(), start: 50, end: 90 };
        let w = AnomalyWindow::from_phenomenon(&p, 30);
        assert_eq!(w.ts(), 20);
        assert_eq!(w.te(), 90);
    }

    #[test]
    fn clamp_to_data() {
        let w = AnomalyWindow { anomaly_start: 100, anomaly_end: 400, delta_s: 300 };
        let c = w.clamped(0, 350);
        assert_eq!(c.ts(), 0);
        assert_eq!(c.anomaly_start, 100);
        assert_eq!(c.te(), 350);
    }

    #[test]
    #[should_panic(expected = "empty phenomenon")]
    fn empty_phenomenon_panics() {
        let p = Phenomenon { anomaly_type: "x".into(), start: 5, end: 5 };
        let _ = AnomalyWindow::from_phenomenon(&p, 0);
    }
}
