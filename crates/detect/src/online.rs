//! Online basic perception: sample-at-a-time feature detection.
//!
//! [`detect_features`](crate::detect_features) scans a complete series;
//! the online engine only ever has *the next sample*. This module hosts the
//! streaming formulation with bounded rolling state:
//!
//! * [`OnlineFeatureDetector`] — one metric's detector. Internally it is the
//!   batch algorithm's state machine made explicit: a *baseline* mode
//!   (rolling median/MAD over normal samples, warm-up gated) and a *segment*
//!   mode (frozen baseline statistics, peak-z tracking, recovery-run
//!   counting). Memory is `O(baseline_len + recover_len)` regardless of
//!   stream length.
//! * [`OnlineDetectorBank`] — the six instance metrics' detectors driven
//!   from one [`MetricsSample`] stream, collecting closed features
//!   per-metric so the case layer sees them in exactly the order the batch
//!   detection loop produces.
//!
//! ## Replay equivalence
//!
//! Pushing a series sample-by-sample and then calling `finish` yields the
//! *same features, bit-for-bit*, as one `detect_features` call over the
//! whole series. The one subtle point is segment close: the batch scanner
//! resumes at `seg_end`, *re-processing* the recovery-run samples through
//! the baseline path. The online detector reproduces that by buffering the
//! current recovery run (at most `recover_len` samples) and replaying it
//! through its own baseline mode when the segment closes — pushing the same
//! values into the same rolling window in the same order.

use crate::detector::DetectorConfig;
use crate::features::{Feature, FeatureKind};
use pinsql_dbsim::metrics::names;
use pinsql_dbsim::MetricsSample;
use pinsql_timeseries::rolling::{robust_z, RollingWindow};
use pinsql_timeseries::{KernelKind, WireError, WireReader, WireWriter};

/// Detection state for one metric.
#[derive(Debug, Clone)]
enum State {
    /// Tracking the baseline; no anomaly open.
    Baseline,
    /// Inside an anomalous segment opened at `seg_start`, judged against the
    /// baseline statistics frozen when the segment opened.
    Segment {
        med: f64,
        mad: f64,
        up: bool,
        seg_start: usize,
        peak_z: f64,
        /// The current run of consecutive recovered samples `(index, value)`;
        /// replayed through baseline mode when the segment closes.
        run: Vec<(usize, f64)>,
    },
}

/// Streaming spike / level-shift detector for a single metric.
#[derive(Debug, Clone)]
pub struct OnlineFeatureDetector {
    metric: String,
    cfg: DetectorConfig,
    start_second: i64,
    baseline: RollingWindow,
    /// Samples accepted so far (index of the next sample).
    n: usize,
    state: State,
}

impl OnlineFeatureDetector {
    /// Creates a detector for `metric` whose first sample will be at
    /// `start_second` (1-second sampling).
    pub fn new(metric: &str, start_second: i64, cfg: DetectorConfig) -> Self {
        let baseline = RollingWindow::new(cfg.baseline_len.max(2));
        Self { metric: metric.to_string(), cfg, start_second, baseline, n: 0, state: State::Baseline }
    }

    /// The metric this detector watches.
    pub fn metric(&self) -> &str {
        &self.metric
    }

    /// Number of samples consumed so far.
    pub fn samples_seen(&self) -> usize {
        self.n
    }

    /// True while an anomalous segment is open (not yet recovered).
    pub fn in_segment(&self) -> bool {
        matches!(self.state, State::Segment { .. })
    }

    /// The second the open segment started at, if one is open.
    pub fn open_segment_start(&self) -> Option<i64> {
        match &self.state {
            State::Segment { seg_start, .. } => Some(self.start_second + *seg_start as i64),
            State::Baseline => None,
        }
    }

    /// Consumes the next sample; returns any features that *closed* on it
    /// (usually none, at most one plus whatever the recovery replay opens).
    pub fn push(&mut self, x: f64) -> Vec<Feature> {
        let mut out = Vec::new();
        self.push_into(x, &mut out);
        out
    }

    /// [`push`](Self::push) appending closed features into `out` — the
    /// allocation-free form the detector bank drives per second.
    pub fn push_into(&mut self, x: f64, out: &mut Vec<Feature>) {
        let idx = self.n;
        self.n += 1;
        self.step(idx, x, out);
    }

    /// Ends the stream: an unrecovered open segment is emitted as a level
    /// shift running to the end of data, exactly like the batch scanner.
    /// The detector is left in baseline mode.
    pub fn finish(&mut self) -> Option<Feature> {
        match std::mem::replace(&mut self.state, State::Baseline) {
            State::Baseline => None,
            State::Segment { up, seg_start, peak_z, .. } => {
                let kind = if up { FeatureKind::LevelShiftUp } else { FeatureKind::LevelShiftDown };
                Some(Feature {
                    metric: self.metric.clone(),
                    kind,
                    start: self.start_second + seg_start as i64,
                    end: self.start_second + self.n as i64,
                    peak_z,
                })
            }
        }
    }

    /// One batch-loop iteration for the sample at `idx`. Recovery replay
    /// recurses at most one level: a replayed sample can open a new segment
    /// but can never complete a `recover_len` run inside the (shorter)
    /// replay buffer.
    fn step(&mut self, idx: usize, x: f64, out: &mut Vec<Feature>) {
        match std::mem::replace(&mut self.state, State::Baseline) {
            State::Baseline => {
                if self.baseline.len() < self.cfg.warmup.max(2) {
                    self.baseline.push(x);
                    return;
                }
                // With `capacity >= 2` a warm baseline always has a median,
                // but degenerate input must never panic (the PR 2
                // graceful-degradation contract): keep warming instead.
                let Some((med, mad)) = self.baseline.median_mad(self.cfg.kernel) else {
                    self.baseline.push(x);
                    return;
                };
                let z = robust_z(x, med, mad, self.cfg.mad_floor);
                if z.abs() < self.cfg.trigger_z {
                    self.baseline.push(x);
                    return;
                }
                self.state = State::Segment {
                    med,
                    mad,
                    up: z > 0.0,
                    seg_start: idx,
                    peak_z: z.abs(),
                    run: Vec::new(),
                };
            }
            State::Segment { med, mad, up, seg_start, mut peak_z, mut run } => {
                let z = robust_z(x, med, mad, self.cfg.mad_floor);
                peak_z = peak_z.max(z.abs());
                if z.abs() < self.cfg.recover_z {
                    run.push((idx, x));
                    if run.len() >= self.cfg.recover_len {
                        let seg_end = idx + 1 - run.len();
                        let duration = (seg_end - seg_start) as i64;
                        let kind = match (duration <= self.cfg.spike_max_s, up) {
                            (true, true) => FeatureKind::SpikeUp,
                            (true, false) => FeatureKind::SpikeDown,
                            (false, true) => FeatureKind::LevelShiftUp,
                            (false, false) => FeatureKind::LevelShiftDown,
                        };
                        out.push(Feature {
                            metric: self.metric.clone(),
                            kind,
                            start: self.start_second + seg_start as i64,
                            end: self.start_second + seg_end as i64,
                            peak_z,
                        });
                        // Replay the recovery run through baseline mode —
                        // the batch scanner's `i = seg_end` resume.
                        for (k, v) in run {
                            self.step(k, v, out);
                        }
                        return;
                    }
                } else {
                    run.clear();
                }
                self.state = State::Segment { med, mad, up, seg_start, peak_z, run };
            }
        }
    }
}

/// The six instance-metric detectors driven from one sample stream.
#[derive(Debug, Clone)]
pub struct OnlineDetectorBank {
    detectors: Vec<OnlineFeatureDetector>,
    /// Closed features per metric, in the same slot order as `detectors`.
    closed: Vec<Vec<Feature>>,
    start_second: Option<i64>,
    finished: bool,
    kernel: KernelKind,
}

/// The instance metrics watched, in [`InstanceMetrics::iter_named`]
/// (`pinsql_dbsim::InstanceMetrics::iter_named`) order — the order the
/// batch detection loop visits them, which phenomenon classification's
/// tie-breaking depends on.
pub const WATCHED_METRICS: [&str; 6] = [
    names::ACTIVE_SESSION,
    names::CPU_USAGE,
    names::IOPS_USAGE,
    names::ROW_LOCK_WAITS,
    names::MDL_WAITS,
    names::QPS,
];

impl Default for OnlineDetectorBank {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineDetectorBank {
    /// Creates a bank with each metric's standard configuration (see
    /// [`DetectorConfig::for_metric`]). The time origin latches to the
    /// first observed sample's second.
    pub fn new() -> Self {
        Self::with_kernel(KernelKind::default())
    }

    /// [`new`](Self::new) with an explicit statistics kernel for every
    /// detector (the equivalence suites run both kinds).
    pub fn with_kernel(kernel: KernelKind) -> Self {
        Self {
            detectors: Vec::new(),
            closed: Vec::new(),
            start_second: None,
            finished: false,
            kernel,
        }
    }

    /// Feeds one per-second metrics sample to all six detectors.
    ///
    /// Non-finite values are read as `0.0`, matching the sanitize pass the
    /// batch path applies before detection. Samples must arrive in second
    /// order, one per second.
    ///
    /// The six metric slots are pre-resolved: detectors sit in
    /// [`WATCHED_METRICS`] order and the sample decodes to the same order
    /// through [`MetricsSample::metric_values`], so the per-second loop is
    /// six array reads — no name matching, no per-push feature `Vec`.
    pub fn observe(&mut self, sample: &MetricsSample) {
        assert!(!self.finished, "bank already finished");
        if self.start_second.is_none() {
            let start = sample.second;
            self.start_second = Some(start);
            let kernel = self.kernel;
            self.detectors = WATCHED_METRICS
                .iter()
                .map(|m| {
                    OnlineFeatureDetector::new(
                        m,
                        start,
                        DetectorConfig::for_metric(m).with_kernel(kernel),
                    )
                })
                .collect();
            self.closed = vec![Vec::new(); WATCHED_METRICS.len()];
        }
        debug_assert!(self
            .detectors
            .iter()
            .zip(WATCHED_METRICS)
            .all(|(d, m)| d.metric() == m));
        let values = sample.metric_values();
        for (slot, det) in self.detectors.iter_mut().enumerate() {
            let v = values[slot];
            let v = if v.is_finite() { v } else { 0.0 };
            det.push_into(v, &mut self.closed[slot]);
        }
    }

    /// Ends the stream: flushes every open segment (idempotent).
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        for (slot, det) in self.detectors.iter_mut().enumerate() {
            if let Some(f) = det.finish() {
                self.closed[slot].push(f);
            }
        }
    }

    /// True while any metric has an open anomalous segment.
    pub fn any_open(&self) -> bool {
        self.detectors.iter().any(|d| d.in_segment())
    }

    /// Number of metric detectors currently inside an anomalous segment
    /// (0 ..= [`WATCHED_METRICS`] count).
    pub fn open_segments(&self) -> usize {
        self.detectors.iter().filter(|d| d.in_segment()).count()
    }

    /// Samples each detector has consumed (all six advance in lockstep;
    /// 0 before the first sample).
    pub fn samples_seen(&self) -> usize {
        self.detectors.first().map_or(0, OnlineFeatureDetector::samples_seen)
    }

    /// All features so far, grouped by metric in [`WATCHED_METRICS`] order
    /// and time-ordered within each metric — the exact list the batch
    /// detection loop hands to `classify`.
    pub fn features(&self) -> Vec<Feature> {
        self.closed.iter().flatten().cloned().collect()
    }

    /// Number of features detected so far (closed only).
    pub fn feature_count(&self) -> usize {
        self.closed.iter().map(Vec::len).sum()
    }

    /// The statistics kernel every detector in this bank runs.
    pub fn kernel(&self) -> KernelKind {
        self.kernel
    }

    /// Swaps the statistics kernel on a *live* bank — the config-push
    /// path's kernel hot-swap. Safe mid-stream because baselines hold raw
    /// samples (median/MAD are computed on demand per push) and both
    /// kernel kinds are bit-identical, so every subsequent sample folds
    /// exactly as it would have under a cold start with `kernel`.
    pub fn set_kernel(&mut self, kernel: KernelKind) {
        self.kernel = kernel;
        for det in &mut self.detectors {
            det.cfg.kernel = kernel;
        }
    }

    /// Serializes the bank's complete streaming state into `w` (the
    /// checkpoint body — the engine wraps it in a magic/version envelope).
    ///
    /// Per detector slot ([`WATCHED_METRICS`] order): sample count, the
    /// baseline window in arrival order, the state machine (frozen segment
    /// statistics and the recovery replay buffer included), and the closed
    /// features. Detector configurations are *not* serialized: the bank
    /// always derives them as `DetectorConfig::for_metric(m)` with its
    /// kernel, so restore rebuilds them deterministically — one fewer way
    /// for a snapshot to disagree with the code that replays it.
    pub fn write_snapshot(&self, w: &mut WireWriter) {
        w.put_u8(match self.kernel {
            KernelKind::Reference => 0,
            KernelKind::Fast => 1,
        });
        w.put_bool(self.finished);
        w.put_bool(self.start_second.is_some());
        w.put_i64(self.start_second.unwrap_or(0));
        if self.start_second.is_none() {
            return;
        }
        debug_assert_eq!(self.detectors.len(), WATCHED_METRICS.len());
        for (slot, det) in self.detectors.iter().enumerate() {
            w.put_u64(det.n as u64);
            let baseline = det.baseline.arrival_values();
            w.put_len(baseline.len());
            for &v in &baseline {
                w.put_f64(v);
            }
            match &det.state {
                State::Baseline => w.put_u8(0),
                State::Segment { med, mad, up, seg_start, peak_z, run } => {
                    w.put_u8(1);
                    w.put_f64(*med);
                    w.put_f64(*mad);
                    w.put_bool(*up);
                    w.put_u64(*seg_start as u64);
                    w.put_f64(*peak_z);
                    w.put_len(run.len());
                    for &(idx, v) in run {
                        w.put_u64(idx as u64);
                        w.put_f64(v);
                    }
                }
            }
            w.put_len(self.closed[slot].len());
            for f in &self.closed[slot] {
                w.put_u8(match f.kind {
                    FeatureKind::SpikeUp => 0,
                    FeatureKind::SpikeDown => 1,
                    FeatureKind::LevelShiftUp => 2,
                    FeatureKind::LevelShiftDown => 3,
                });
                w.put_i64(f.start);
                w.put_i64(f.end);
                w.put_f64(f.peak_z);
            }
        }
    }

    /// Decodes a [`write_snapshot`](Self::write_snapshot) body back into a
    /// live bank. The restored bank continues the stream bit-identically:
    /// baselines are replayed in arrival order into identically-configured
    /// windows, segment statistics come back as their exact frozen bits,
    /// and the recovery replay buffer resumes mid-run.
    pub fn read_snapshot(r: &mut WireReader) -> Result<Self, WireError> {
        let kernel = match r.get_u8()? {
            0 => KernelKind::Reference,
            1 => KernelKind::Fast,
            v => return Err(WireError::BadTag { what: "kernel kind", value: v as u64 }),
        };
        let mut bank = Self::with_kernel(kernel);
        bank.finished = r.get_bool()?;
        let has_start = r.get_bool()?;
        let start = r.get_i64()?;
        if !has_start {
            return Ok(bank);
        }
        bank.start_second = Some(start);
        for metric in WATCHED_METRICS {
            let cfg = DetectorConfig::for_metric(metric).with_kernel(kernel);
            let mut det = OnlineFeatureDetector::new(metric, start, cfg);
            det.n = r.get_u64()? as usize;
            let n_base = r.get_len(8)?;
            if n_base > det.baseline.capacity() {
                return Err(WireError::Mismatch {
                    what: "baseline window",
                    detail: format!(
                        "{n_base} samples exceed the {} capacity for {metric}",
                        det.baseline.capacity()
                    ),
                });
            }
            for _ in 0..n_base {
                let v = r.get_f64()?;
                if v.is_nan() {
                    return Err(WireError::Mismatch {
                        what: "baseline sample",
                        detail: format!("NaN in {metric} baseline"),
                    });
                }
                det.baseline.push(v);
            }
            det.state = match r.get_u8()? {
                0 => State::Baseline,
                1 => {
                    let med = r.get_f64()?;
                    let mad = r.get_f64()?;
                    let up = r.get_bool()?;
                    let seg_start = r.get_u64()? as usize;
                    let peak_z = r.get_f64()?;
                    let n_run = r.get_len(16)?;
                    let mut run = Vec::with_capacity(n_run);
                    for _ in 0..n_run {
                        run.push((r.get_u64()? as usize, r.get_f64()?));
                    }
                    State::Segment { med, mad, up, seg_start, peak_z, run }
                }
                v => return Err(WireError::BadTag { what: "detector state", value: v as u64 }),
            };
            let n_closed = r.get_len(25)?;
            let mut closed = Vec::with_capacity(n_closed);
            for _ in 0..n_closed {
                let kind = match r.get_u8()? {
                    0 => FeatureKind::SpikeUp,
                    1 => FeatureKind::SpikeDown,
                    2 => FeatureKind::LevelShiftUp,
                    3 => FeatureKind::LevelShiftDown,
                    v => return Err(WireError::BadTag { what: "feature kind", value: v as u64 }),
                };
                closed.push(Feature {
                    metric: metric.to_string(),
                    kind,
                    start: r.get_i64()?,
                    end: r.get_i64()?,
                    peak_z: r.get_f64()?,
                });
            }
            bank.detectors.push(det);
            bank.closed.push(closed);
        }
        Ok(bank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::detect_features;

    fn cfg() -> DetectorConfig {
        DetectorConfig { baseline_len: 40, warmup: 10, spike_max_s: 30, ..Default::default() }
    }

    fn online(series: &[f64], start: i64, cfg: &DetectorConfig) -> Vec<Feature> {
        let mut det = OnlineFeatureDetector::new("m", start, cfg.clone());
        let mut out = Vec::new();
        for &x in series {
            out.extend(det.push(x));
        }
        out.extend(det.finish());
        out
    }

    fn assert_matches_batch(series: &[f64], start: i64, cfg: &DetectorConfig) {
        let batch = detect_features("m", series, start, cfg);
        let stream = online(series, start, cfg);
        assert_eq!(stream, batch, "online/batch divergence on {} samples", series.len());
    }

    fn flat(n: usize, level: f64) -> Vec<f64> {
        (0..n).map(|i| level + ((i * 7) % 3) as f64 * 0.3).collect()
    }

    #[test]
    fn equivalent_on_quiet_series() {
        assert_matches_batch(&flat(200, 10.0), 0, &cfg());
        assert_matches_batch(&flat(5, 10.0), 0, &cfg());
        assert_matches_batch(&[], 0, &cfg());
    }

    #[test]
    fn bank_health_accessors_track_stream_state() {
        let mut bank = OnlineDetectorBank::new();
        assert_eq!(bank.samples_seen(), 0);
        assert_eq!(bank.open_segments(), 0);
        // A quiet warm-up then a sustained active-session surge: at least
        // that metric's detector must be inside a segment mid-surge.
        for s in 0..120i64 {
            let surge = s >= 80;
            bank.observe(&MetricsSample {
                second: s,
                active_session: if surge { 400.0 } else { 2.0 + (s % 3) as f64 * 0.2 },
                ..Default::default()
            });
        }
        assert_eq!(bank.samples_seen(), 120, "all detectors advance in lockstep");
        assert!(bank.open_segments() >= 1, "surge opens a segment");
        assert!(bank.any_open());
        assert!(bank.open_segments() <= WATCHED_METRICS.len());
        bank.finish();
        assert_eq!(bank.open_segments(), 0, "finish flushes open segments");
        assert!(bank.feature_count() >= 1);
    }

    #[test]
    fn equivalent_on_spike() {
        let mut s = flat(200, 10.0);
        for v in s.iter_mut().skip(100).take(10) {
            *v = 60.0;
        }
        assert_matches_batch(&s, 1000, &cfg());
    }

    #[test]
    fn equivalent_on_level_shift() {
        let mut s = flat(300, 10.0);
        for v in s.iter_mut().skip(100) {
            *v += 70.0;
        }
        assert_matches_batch(&s, 0, &cfg());
    }

    #[test]
    fn equivalent_on_double_spike_and_end_anomaly() {
        let mut s = flat(400, 10.0);
        for v in s.iter_mut().skip(100).take(6) {
            *v = 70.0;
        }
        for v in s.iter_mut().skip(250).take(6) {
            *v = 70.0;
        }
        for v in s.iter_mut().skip(390) {
            *v = 90.0; // runs to end of data
        }
        assert_matches_batch(&s, 0, &cfg());
    }

    #[test]
    fn equivalent_on_interrupted_recovery() {
        // Recovery runs that reset (anomalous sample inside the run)
        // exercise the replay-buffer clearing path.
        let mut s = flat(300, 10.0);
        for v in s.iter_mut().skip(100).take(5) {
            *v = 70.0;
        }
        s[107] = 70.0; // breaks the first recovery run
        for v in s.iter_mut().skip(150).take(40) {
            *v = 70.0;
        }
        assert_matches_batch(&s, 0, &cfg());
    }

    #[test]
    fn equivalent_on_pseudorandom_noise() {
        // A deterministic LCG drives amplitude-varied noise with occasional
        // bursts — a broad sweep across trigger/recover boundaries.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for trial in 0..8 {
            let n = 150 + trial * 37;
            let series: Vec<f64> = (0..n)
                .map(|i| {
                    let base = 10.0 + 2.0 * next();
                    if next() < 0.04 {
                        base + 40.0 + 30.0 * next()
                    } else if i % 97 == 0 {
                        base - 8.0
                    } else {
                        base
                    }
                })
                .collect();
            assert_matches_batch(&series, trial as i64 * 100, &cfg());
            assert_matches_batch(&series, 0, &DetectorConfig::default());
        }
    }

    #[test]
    fn degenerate_configs_return_to_warmup_instead_of_panicking() {
        // Regression for the old `expect("warm baseline")` in `step`: a
        // detector whose baseline cannot produce statistics must keep
        // warming up, never panic — the graceful-degradation contract.
        for warmup in [0usize, 1, 2] {
            for kernel in [KernelKind::Reference, KernelKind::Fast] {
                let cfg = DetectorConfig {
                    warmup,
                    baseline_len: 1, // clamped to 2 internally
                    kernel,
                    ..Default::default()
                };
                // Constant, tiny, and empty streams all stay feature-free.
                assert_matches_batch(&[], 0, &cfg);
                assert_matches_batch(&[5.0], 0, &cfg);
                assert_matches_batch(&vec![5.0; 50], 0, &cfg);
                // A stream that triggers immediately after the minimal
                // warm-up still closes cleanly.
                let mut s = vec![1.0, 1.0, 1.0];
                s.extend(std::iter::repeat(500.0).take(10));
                s.extend(std::iter::repeat(1.0).take(20));
                assert_matches_batch(&s, 0, &cfg);
            }
        }
    }

    #[test]
    fn kernel_kinds_are_bit_identical_on_noise() {
        let mut state = 0xDEADBEEFCAFEu64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        let series: Vec<f64> = (0..600)
            .map(|i| {
                let base = 10.0 + 2.0 * next();
                if next() < 0.03 {
                    base + 50.0 * next()
                } else if i % 89 == 0 {
                    base - 9.0
                } else {
                    base
                }
            })
            .collect();
        for base in [cfg(), DetectorConfig::default(), DetectorConfig::for_utilization()] {
            let fast = online(&series, 7, &base.clone().with_kernel(KernelKind::Fast));
            let reference = online(&series, 7, &base.with_kernel(KernelKind::Reference));
            assert_eq!(fast, reference);
        }
    }

    #[test]
    fn open_segment_is_visible() {
        let mut det = OnlineFeatureDetector::new("m", 0, cfg());
        for &x in &flat(100, 10.0) {
            det.push(x);
        }
        assert!(!det.in_segment());
        det.push(90.0);
        assert!(det.in_segment());
        assert_eq!(det.open_segment_start(), Some(100));
    }

    #[test]
    fn bank_matches_per_metric_batch_loop() {
        use pinsql_dbsim::probe::ProbeLog;
        use pinsql_dbsim::{interleave, InstanceMetrics, TelemetryEvent};
        let n = 400;
        let mut m = InstanceMetrics {
            start_second: 0,
            active_session: flat(n, 4.0),
            cpu_usage: (0..n).map(|i| 0.3 + ((i % 5) as f64) * 0.002).collect(),
            iops_usage: vec![0.2; n],
            row_lock_waits: vec![0.0; n],
            mdl_waits: vec![0.0; n],
            qps: flat(n, 50.0),
            probes: ProbeLog::default(),
        };
        for v in m.active_session.iter_mut().skip(200).take(30) {
            *v = 60.0;
        }
        for v in m.cpu_usage.iter_mut().skip(200).take(30) {
            *v = 0.95;
        }

        // The batch loop, as materialize runs it.
        let mut batch = Vec::new();
        for (name, series) in m.iter_named() {
            let c = DetectorConfig::for_metric(name);
            batch.extend(detect_features(name, series, m.start_second, &c));
        }

        let mut bank = OnlineDetectorBank::new();
        for ev in interleave(&[], &m) {
            if let TelemetryEvent::Metrics(sample) = ev {
                bank.observe(&sample);
            }
        }
        bank.finish();
        assert!(!batch.is_empty(), "test scenario should trigger features");
        assert_eq!(bank.features(), batch);
    }
    #[test]
    fn bank_snapshot_round_trip_is_bit_exact() {
        use pinsql_timeseries::{WireReader, WireWriter};
        // A stream with a mid-surge split: the snapshot lands inside an
        // open segment with a partially-filled recovery run.
        let n = 300usize;
        let sample_at = |s: i64| {
            let surge = (120..180).contains(&s);
            MetricsSample {
                second: s,
                active_session: if surge { 300.0 } else { 3.0 + (s % 4) as f64 * 0.3 },
                cpu_usage: if surge { 0.97 } else { 0.3 + (s % 3) as f64 * 0.01 },
                iops_usage: 0.2,
                qps: 40.0 + (s % 5) as f64,
                ..Default::default()
            }
        };
        for kernel in [KernelKind::Reference, KernelKind::Fast] {
            for split in [0usize, 1, 60, 130, 150, 182, 299] {
                let mut live = OnlineDetectorBank::with_kernel(kernel);
                let mut pre = OnlineDetectorBank::with_kernel(kernel);
                for s in 0..split as i64 {
                    live.observe(&sample_at(s));
                    pre.observe(&sample_at(s));
                }
                let mut w = WireWriter::new();
                pre.write_snapshot(&mut w);
                let bytes = w.into_bytes();
                let mut r = WireReader::new(&bytes);
                let mut restored = OnlineDetectorBank::read_snapshot(&mut r).unwrap();
                r.finish("bank").unwrap();

                // Re-serialization of the restored bank is byte-identical.
                let mut w2 = WireWriter::new();
                restored.write_snapshot(&mut w2);
                assert_eq!(w2.into_bytes(), bytes, "split {split}");

                for s in split as i64..n as i64 {
                    live.observe(&sample_at(s));
                    restored.observe(&sample_at(s));
                }
                live.finish();
                restored.finish();
                assert_eq!(live.features(), restored.features(), "split {split} {kernel:?}");
                assert_eq!(live.samples_seen(), restored.samples_seen());
            }
        }
    }

    #[test]
    fn bank_snapshot_rejects_corrupt_input_with_typed_errors() {
        use pinsql_timeseries::{WireError, WireReader, WireWriter};
        let mut bank = OnlineDetectorBank::new();
        for s in 0..90i64 {
            bank.observe(&MetricsSample {
                second: s,
                active_session: if s >= 80 { 400.0 } else { 2.0 + (s % 3) as f64 * 0.2 },
                ..Default::default()
            });
        }
        let mut w = WireWriter::new();
        bank.write_snapshot(&mut w);
        let bytes = w.into_bytes();

        let mut corrupt = bytes.clone();
        corrupt[0] = 9; // kernel tag
        assert!(matches!(
            OnlineDetectorBank::read_snapshot(&mut WireReader::new(&corrupt)),
            Err(WireError::BadTag { what: "kernel kind", .. })
        ));
        for cut in 0..bytes.len() {
            assert!(
                OnlineDetectorBank::read_snapshot(&mut WireReader::new(&bytes[..cut])).is_err()
                    || cut >= bytes.len(),
                "cut {cut} decoded"
            );
        }

        // An un-started bank round-trips too (fresh instance checkpointed
        // before its first metrics sample).
        let empty = OnlineDetectorBank::with_kernel(KernelKind::Fast);
        let mut w = WireWriter::new();
        empty.write_snapshot(&mut w);
        let bytes = w.into_bytes();
        let restored = OnlineDetectorBank::read_snapshot(&mut WireReader::new(&bytes)).unwrap();
        assert_eq!(restored.samples_seen(), 0);
        assert_eq!(restored.kernel(), KernelKind::Fast);
    }
}
