//! The Basic Perception Layer: robust streaming feature detection.
//!
//! For each metric the detector keeps a trailing baseline (rolling median +
//! MAD over "normal" samples only) and flags samples whose robust z-score
//! crosses a trigger threshold. Consecutive flagged samples form a
//! segment; a segment that recovers to baseline within `spike_max_s`
//! seconds is a *spike*, otherwise it is a *level shift* — after which the
//! baseline is re-seeded at the new level so detection continues (and so a
//! later recovery registers as a shift back, not as one endless anomaly).

use crate::features::{Feature, FeatureKind};
use pinsql_timeseries::rolling::{robust_z, RollingWindow};
use pinsql_timeseries::KernelKind;
use serde::{Deserialize, Serialize};

/// Detector tuning.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Baseline window length in samples.
    pub baseline_len: usize,
    /// Robust z-score that opens an anomaly segment.
    pub trigger_z: f64,
    /// Robust z-score below which the metric counts as recovered.
    pub recover_z: f64,
    /// Consecutive recovered samples that close a segment.
    pub recover_len: usize,
    /// Max seconds a recovering segment may last and still be a spike.
    pub spike_max_s: i64,
    /// MAD floor, in metric units, to keep flat baselines from exploding
    /// the z-score on trivial jitter.
    pub mad_floor: f64,
    /// Minimum samples before detection starts (baseline warm-up).
    pub warmup: usize,
    /// Which median/MAD implementation the baseline uses. Both kinds are
    /// bit-identical (see `pinsql_timeseries::kernels`); the knob exists
    /// for the equivalence suites and as an escape hatch.
    #[serde(default)]
    pub kernel: KernelKind,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            baseline_len: 120,
            trigger_z: 6.0,
            recover_z: 3.0,
            recover_len: 5,
            spike_max_s: 60,
            mad_floor: 1.0,
            warmup: 20,
            kernel: KernelKind::default(),
        }
    }
}

impl DetectorConfig {
    /// A floor appropriate for fraction-valued metrics (cpu/iops usage).
    pub fn for_utilization() -> Self {
        Self { mad_floor: 0.02, ..Self::default() }
    }

    /// The standard configuration for a metric by canonical name:
    /// utilization metrics (fraction-valued, `*_usage`) get the lower MAD
    /// floor, everything else the default. This is the single mapping both
    /// the batch detection loop and the online detector bank use.
    pub fn for_metric(name: &str) -> Self {
        if name.contains("usage") {
            Self::for_utilization()
        } else {
            Self::default()
        }
    }

    /// Builder-style kernel override.
    pub fn with_kernel(mut self, kernel: KernelKind) -> Self {
        self.kernel = kernel;
        self
    }
}

/// Detects anomalous features in `series`, whose first sample is at
/// `start_second` (1-second sampling).
pub fn detect_features(
    metric: &str,
    series: &[f64],
    start_second: i64,
    cfg: &DetectorConfig,
) -> Vec<Feature> {
    let mut features = Vec::new();
    let mut baseline = RollingWindow::new(cfg.baseline_len.max(2));
    let mut i = 0usize;
    while i < series.len() {
        let x = series[i];
        if baseline.len() < cfg.warmup.max(2) {
            baseline.push(x);
            i += 1;
            continue;
        }
        // `capacity >= 2` makes an empty post-warm-up baseline impossible,
        // but the graceful-degradation contract says degenerate input never
        // panics: an unwarm baseline keeps warming instead.
        let Some((med, mad)) = baseline.median_mad(cfg.kernel) else {
            baseline.push(x);
            i += 1;
            continue;
        };
        let z = robust_z(x, med, mad, cfg.mad_floor);
        if z.abs() < cfg.trigger_z {
            baseline.push(x);
            i += 1;
            continue;
        }
        // A segment opens at i. Scan forward until recovery or end.
        let up = z > 0.0;
        let seg_start = i;
        let mut peak_z: f64 = z.abs();
        let mut recovered_run = 0usize;
        let mut j = i + 1;
        let mut seg_end = series.len(); // exclusive index; trimmed on recovery
        while j < series.len() {
            let zj = robust_z(series[j], med, mad, cfg.mad_floor);
            peak_z = peak_z.max(zj.abs());
            let back = zj.abs() < cfg.recover_z;
            if back {
                recovered_run += 1;
                if recovered_run >= cfg.recover_len {
                    seg_end = j + 1 - recovered_run;
                    break;
                }
            } else {
                recovered_run = 0;
            }
            j += 1;
        }
        let recovered = seg_end < series.len();
        let duration = (seg_end - seg_start) as i64;
        let kind = match (recovered && duration <= cfg.spike_max_s, up) {
            (true, true) => FeatureKind::SpikeUp,
            (true, false) => FeatureKind::SpikeDown,
            (false, true) => FeatureKind::LevelShiftUp,
            (false, false) => FeatureKind::LevelShiftDown,
        };
        features.push(Feature {
            metric: metric.to_string(),
            kind,
            start: start_second + seg_start as i64,
            end: start_second + seg_end as i64,
            peak_z,
        });
        if recovered {
            // Resume just after the segment; the baseline stays valid.
            i = seg_end;
        } else if j >= series.len() && seg_end == series.len() {
            // Ran to the end of data.
            break;
        } else {
            // Level shift: re-seed the baseline at the new level.
            let reseed_from = seg_end.min(series.len());
            baseline = RollingWindow::new(cfg.baseline_len.max(2));
            for &v in &series[seg_start..reseed_from] {
                baseline.push(v);
            }
            i = reseed_from;
        }
    }
    features
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(n: usize, level: f64) -> Vec<f64> {
        (0..n).map(|i| level + ((i * 7) % 3) as f64 * 0.3).collect()
    }

    fn cfg() -> DetectorConfig {
        DetectorConfig { baseline_len: 40, warmup: 10, spike_max_s: 30, ..Default::default() }
    }

    #[test]
    fn quiet_series_yields_nothing() {
        let s = flat(200, 10.0);
        assert!(detect_features("m", &s, 0, &cfg()).is_empty());
    }

    #[test]
    fn detects_spike_up() {
        let mut s = flat(200, 10.0);
        for v in s.iter_mut().skip(100).take(10) {
            *v = 60.0;
        }
        let feats = detect_features("m", &s, 1000, &cfg());
        assert_eq!(feats.len(), 1);
        let f = &feats[0];
        assert_eq!(f.kind, FeatureKind::SpikeUp);
        assert_eq!(f.metric, "m");
        assert!(f.start >= 1098 && f.start <= 1101, "start {}", f.start);
        assert!(f.end >= 1109 && f.end <= 1112, "end {}", f.end);
        assert!(f.peak_z > 6.0);
    }

    #[test]
    fn detects_spike_down() {
        let mut s = flat(200, 50.0);
        for v in s.iter_mut().skip(120).take(8) {
            *v = 0.0;
        }
        let feats = detect_features("m", &s, 0, &cfg());
        assert_eq!(feats.len(), 1);
        assert_eq!(feats[0].kind, FeatureKind::SpikeDown);
    }

    #[test]
    fn detects_level_shift_up_and_recovery_shift() {
        let mut s = flat(300, 10.0);
        for v in s.iter_mut().skip(100) {
            *v += 70.0; // permanent shift
        }
        let feats = detect_features("m", &s, 0, &cfg());
        assert!(!feats.is_empty());
        assert_eq!(feats[0].kind, FeatureKind::LevelShiftUp);
        assert_eq!(feats[0].start, 100);
        // After re-baselining at the new level, no further anomalies.
        assert_eq!(feats.len(), 1, "{feats:?}");
    }

    #[test]
    fn long_slow_anomaly_is_level_shift_not_spike() {
        let mut s = flat(400, 10.0);
        // 120-second plateau, longer than spike_max_s.
        for v in s.iter_mut().skip(100).take(120) {
            *v = 80.0;
        }
        let feats = detect_features("m", &s, 0, &cfg());
        assert!(!feats.is_empty());
        assert_eq!(feats[0].kind, FeatureKind::LevelShiftUp);
    }

    #[test]
    fn two_separate_spikes_are_two_features() {
        let mut s = flat(400, 10.0);
        for v in s.iter_mut().skip(100).take(6) {
            *v = 70.0;
        }
        for v in s.iter_mut().skip(250).take(6) {
            *v = 70.0;
        }
        let feats = detect_features("m", &s, 0, &cfg());
        assert_eq!(feats.len(), 2, "{feats:?}");
        assert!(feats.iter().all(|f| f.kind == FeatureKind::SpikeUp));
    }

    #[test]
    fn anomaly_running_to_end_of_data_is_reported() {
        let mut s = flat(150, 10.0);
        for v in s.iter_mut().skip(130) {
            *v = 90.0;
        }
        let feats = detect_features("m", &s, 0, &cfg());
        assert_eq!(feats.len(), 1);
        assert_eq!(feats[0].end, 150);
    }

    #[test]
    fn baseline_is_not_poisoned_by_anomaly() {
        // A spike then a second identical spike: the second must still be
        // detected, which fails if the spike values entered the baseline.
        let mut s = flat(300, 10.0);
        for v in s.iter_mut().skip(100).take(20) {
            *v = 70.0;
        }
        for v in s.iter_mut().skip(200).take(20) {
            *v = 70.0;
        }
        let feats = detect_features("m", &s, 0, &cfg());
        assert_eq!(feats.len(), 2);
    }

    #[test]
    fn short_series_never_warm_enough() {
        let s = flat(5, 10.0);
        assert!(detect_features("m", &s, 0, &cfg()).is_empty());
        assert!(detect_features("m", &[], 0, &cfg()).is_empty());
    }

    #[test]
    fn utilization_floor_avoids_jitter_alerts() {
        let s: Vec<f64> = (0..200).map(|i| 0.30 + ((i % 5) as f64) * 0.002).collect();
        let feats = detect_features("cpu", &s, 0, &DetectorConfig::for_utilization());
        assert!(feats.is_empty(), "{feats:?}");
    }
}
