//! Cross-process ingest transport benchmark: socketed events/sec and
//! per-frame sink latency vs `PEVT` batch size.
//!
//! For every batch size this bin replays the same four-scenario fleet
//! twice:
//!
//! * over the in-memory loopback transport — `run_source` against a
//!   `serve_agent`-hosted [`IngestSink`], credits and all — reporting
//!   end-to-end events/sec (best of `reps`, frame planning excluded);
//! * through a direct `handle_event_frame` loop with an `Instant`
//!   around every frame, reporting the mean and p99 apply latency. The
//!   tail is dominated by the pressure folds the `Advance` marks and
//!   the credit regulator trigger — exactly the stall a real agent's
//!   connection would see.
//!
//! Every wired run is cross-checked against an uninterrupted
//! `FleetEngine::run_full` of the same fleet (the cheap in-bench guard;
//! the byte-level matrix lives in `tests/transport_equivalence.rs`).
//!
//! Usage: `cargo run -p pinsql-bench --release --bin transport [-- BATCH_CSV [BUSINESSES [SEED [REPS]]]]`
//! Defaults: batches `16,64,256,1024`, businesses 6, seed 12000,
//! best of 3. Writes `results/transport.json`.
//!
//! `--gate` runs the default batch size only and exits non-zero if the
//! wired outcomes diverge from `run_full`, an event is lost, a
//! watermark regresses, the memory bound breaks, or the p99 frame
//! latency blows a generous sanity bound — the
//! `scripts/ci.sh transport_smoke` hook.

use pinsql::{PinSqlConfig, TransportPolicy};
use pinsql_detect::{CutKind, KernelKind};
use pinsql_engine::{
    pipe_pair, plan_frames, run_source, serve_agent, EventFrame, FleetConfig, FleetDaemon,
    FleetEngine, IngestSink, SourcePlan, SourceStats,
};
use pinsql_scenario::{
    generate_base, inject, inject_none, materialize_events, AnomalyKind, Scenario, ScenarioConfig,
};
use serde::Serialize;
use std::time::Instant;

const WINDOW_S: i64 = 600;
const ANOMALY: (i64, i64) = (360, 480);
const DELTA_S: i64 = 300;
/// Event-time cadence of the source's `Advance` marks.
const ADVANCE_EVERY_S: i64 = 60;

/// `--gate` sanity bound: generous enough for a slow CI host under the
/// reference kernel, tight enough to catch a fold accidentally gone
/// quadratic. The folds *are* the tail — a frame that lands on a
/// pressure fold pays for the whole drained span.
const GATE_MAX_P99_MS: f64 = 1_000.0;

#[derive(Serialize)]
struct TransportCell {
    batch_events: usize,
    frames: usize,
    /// Length-prefixed bytes of the whole planned stream.
    wire_bytes: u64,
    events_total: u64,
    /// Best-of-reps wall time of the threaded loopback run.
    wall_s: f64,
    events_per_sec: f64,
    /// Direct-apply latency per frame at the sink, all reps pooled.
    mean_frame_us: f64,
    p99_frame_us: f64,
    credit_stalls: u64,
    acks: u64,
    max_inflight_events: u64,
    peak_buffered: usize,
    /// Wired outcomes identical to an uninterrupted `run_full`.
    equivalent: bool,
}

#[derive(Serialize)]
struct TransportSweep {
    git_rev: String,
    seed: u64,
    businesses: usize,
    window_s: i64,
    delta_s: i64,
    advance_every_s: i64,
    queue_capacity: usize,
    cells: Vec<TransportCell>,
}

fn scenarios(businesses: usize, seed: u64) -> Vec<Scenario> {
    let kinds = [
        Some(AnomalyKind::BusinessSpike),
        Some(AnomalyKind::PoorSql),
        Some(AnomalyKind::RowLock),
        None,
    ];
    kinds
        .iter()
        .enumerate()
        .map(|(i, kind)| {
            let cfg = ScenarioConfig::default()
                .with_seed(seed + i as u64)
                .with_businesses(businesses)
                .with_window(WINDOW_S, ANOMALY.0, ANOMALY.1);
            let base = generate_base(&cfg);
            match kind {
                Some(kind) => inject(&base, &cfg, *kind),
                None => inject_none(&base, &cfg),
            }
        })
        .collect()
}

fn fleet_config() -> FleetConfig {
    FleetConfig {
        delta_s: DELTA_S,
        pinsql: PinSqlConfig::default().with_cut(CutKind::Incremental),
        fanout: 1,
        shards: 2,
        kernel: KernelKind::Fast,
        ..FleetConfig::default()
    }
}

/// Byte-comparable view of a run's outcomes (timings stripped).
fn outcome_key(run: &pinsql_engine::FleetRun) -> String {
    run.report
        .outcomes
        .iter()
        .map(|o| {
            format!(
                "{}|{}|{}|{}|{}|{}|{}|{}",
                o.instance,
                o.kind,
                o.detected,
                o.anomaly_type,
                o.n_events,
                o.n_templates,
                o.n_reported,
                o.top_rsql.clone().unwrap_or_default()
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// One threaded loopback run: wall time, source stats, sink peak, and
/// the finished run for the equivalence cross-check.
fn run_wire(
    frames: Vec<EventFrame>,
    scen: &[Scenario],
    policy: TransportPolicy,
) -> (f64, SourceStats, usize, pinsql_engine::FleetRun) {
    let mut plan = SourcePlan::new(frames);
    let mut sink = IngestSink::new(FleetDaemon::spawn_hollow(fleet_config(), scen), policy);
    let (mut source_conn, mut agent_conn) = pipe_pair(policy.max_frame_bytes);
    let sink_ref = &mut sink;
    let t0 = Instant::now();
    std::thread::scope(|s| {
        let agent = s.spawn(move || serve_agent(&mut agent_conn, sink_ref));
        run_source(&mut source_conn, &mut plan).expect("source completes");
        drop(source_conn);
        agent.join().expect("agent thread").expect("agent clean close");
    });
    let wall = t0.elapsed().as_secs_f64();
    assert!(plan.finished() && sink.fin_received(), "stream must drain to Fin");
    let peak = sink.peak_buffered();
    (wall, plan.stats.clone(), peak, sink.finish())
}

/// Direct-apply latencies: every planned frame through
/// `handle_event_frame`, one `Instant` each. The plan order is exactly
/// what a credit-respecting source sends, so the sink's own pressure
/// folds keep it inside the queue bound without a peer.
fn frame_latencies_us(frames: &[EventFrame], scen: &[Scenario], policy: TransportPolicy) -> Vec<f64> {
    let mut sink = IngestSink::new(FleetDaemon::spawn_hollow(fleet_config(), scen), policy);
    let mut out = Vec::with_capacity(frames.len());
    for frame in frames {
        let bytes = frame.to_bytes();
        let t0 = Instant::now();
        sink.handle_event_frame(&bytes).expect("planned frame applies");
        out.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    out
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

fn run_cell(batch_events: usize, scen: &[Scenario], reps: usize) -> TransportCell {
    let policy = TransportPolicy::default().with_batch_events(batch_events);
    policy.validate().expect("sweep policy is valid");
    let streams: Vec<_> = scen.iter().map(|s| materialize_events(s, None)).collect();
    let events_total: u64 = streams.iter().map(|s| s.len() as u64).sum();

    let frames = plan_frames(&streams, &policy, ADVANCE_EVERY_S);
    let wire_bytes: u64 = frames.iter().map(|f| 4 + f.to_bytes().len() as u64).sum();

    let direct_key = outcome_key(&FleetEngine::new(fleet_config()).run_full(scen));

    let mut best: Option<(f64, SourceStats, usize)> = None;
    let mut equivalent = true;
    for _ in 0..reps.max(1) {
        let (wall, stats, peak, run) = run_wire(frames.clone(), scen, policy);
        equivalent &= outcome_key(&run) == direct_key;
        if best.as_ref().map_or(true, |(w, ..)| wall < *w) {
            best = Some((wall, stats, peak));
        }
    }
    let (wall_s, stats, peak_buffered) = best.expect("at least one rep");

    let mut lat = Vec::new();
    for _ in 0..reps.max(1) {
        lat.extend(frame_latencies_us(&frames, scen, policy));
    }
    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let mean_frame_us = lat.iter().sum::<f64>() / lat.len() as f64;
    let p99_frame_us = percentile(&lat, 0.99);

    TransportCell {
        batch_events,
        frames: frames.len(),
        wire_bytes,
        events_total,
        wall_s,
        events_per_sec: events_total as f64 / wall_s.max(1e-9),
        mean_frame_us,
        p99_frame_us,
        credit_stalls: stats.credit_stalls,
        acks: stats.acks,
        max_inflight_events: stats.max_inflight_events,
        peak_buffered,
        equivalent,
    }
}

fn gate_mode(businesses: usize, seed: u64) -> ! {
    let scen = scenarios(businesses, seed);
    let cell = run_cell(TransportPolicy::default().batch_events, &scen, 1);
    let capacity = TransportPolicy::default().queue_capacity;
    let mut failures = Vec::new();
    if !cell.equivalent {
        failures.push("wired outcomes diverged from the uninterrupted run".to_string());
    }
    if cell.peak_buffered > capacity {
        failures.push(format!(
            "sink buffered {} of a {capacity}-event queue — the credit bound broke",
            cell.peak_buffered
        ));
    }
    if cell.max_inflight_events > capacity as u64 {
        failures.push(format!(
            "source kept {} events in flight against a {capacity}-event grant",
            cell.max_inflight_events
        ));
    }
    if cell.p99_frame_us > GATE_MAX_P99_MS * 1_000.0 {
        failures.push(format!(
            "p99 frame latency {:.1} ms (> {} ms) — a fold has gone quadratic",
            cell.p99_frame_us / 1_000.0,
            GATE_MAX_P99_MS
        ));
    }
    eprintln!(
        "transport_smoke: {:.0} events/s over loopback, p99 frame {:.0} us, {} stalls, \
         peak {}/{capacity}, equivalent: {}",
        cell.events_per_sec, cell.p99_frame_us, cell.credit_stalls, cell.peak_buffered,
        cell.equivalent
    );
    if failures.is_empty() {
        eprintln!("transport_smoke: OK");
        std::process::exit(0);
    }
    for f in &failures {
        eprintln!("transport_smoke FAILED: {f}");
    }
    std::process::exit(1);
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}

fn write_json<T: Serialize>(path: &str, value: &T) {
    if let Err(e) = std::fs::create_dir_all("results")
        .map_err(|e| e.to_string())
        .and_then(|_| serde_json::to_string_pretty(value).map_err(|e| e.to_string()))
        .and_then(|json| std::fs::write(path, json + "\n").map_err(|e| e.to_string()))
    {
        eprintln!("failed to write {path}: {e}");
    } else {
        eprintln!("wrote {path}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let businesses: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(6);
    let seed: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(12000);
    if args.iter().any(|a| a == "--gate") {
        gate_mode(businesses, seed);
    }
    let batches: Vec<usize> = args
        .get(1)
        .map(|s| s.split(',').filter_map(|x| x.trim().parse().ok()).collect::<Vec<_>>())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![16, 64, 256, 1024]);
    let reps: usize = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(3);

    let scen = scenarios(businesses, seed);
    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>12} {:>10} {:>8} {:>6}",
        "batch", "frames", "wire bytes", "events/s", "mean us", "p99 us", "stalls", "equal"
    );
    let mut cells = Vec::new();
    for &batch in &batches {
        let cell = run_cell(batch, &scen, reps);
        println!(
            "{:>6} {:>8} {:>12} {:>12.0} {:>12.1} {:>10.1} {:>8} {:>6}",
            cell.batch_events,
            cell.frames,
            cell.wire_bytes,
            cell.events_per_sec,
            cell.mean_frame_us,
            cell.p99_frame_us,
            cell.credit_stalls,
            cell.equivalent,
        );
        assert!(cell.equivalent, "wired outcomes diverged at batch {batch}");
        cells.push(cell);
    }
    let sweep = TransportSweep {
        git_rev: git_rev(),
        seed,
        businesses,
        window_s: WINDOW_S,
        delta_s: DELTA_S,
        advance_every_s: ADVANCE_EVERY_S,
        queue_capacity: TransportPolicy::default().queue_capacity,
        cells,
    };
    write_json("results/transport.json", &sweep);
}
