//! Checkpoint/reshard cost sweep: snapshot size and handoff latency vs
//! instance count.
//!
//! For every (instances, businesses) cell this bin:
//!
//! * cuts a whole-fleet checkpoint mid-anomaly and reports serialized
//!   bytes per instance plus the checkpoint wall time;
//! * times a bare restore of every snapshot (the latency an instance is
//!   unavailable during a handoff, excluding tail replay);
//! * replays the fleet under an assignment-reversing [`ReshardPlan`] with
//!   a `RecordingObserver` and reports the recorded [`Stage::Reshard`]
//!   span and snapshot counters;
//! * cross-checks that the resharded outcomes match the uninterrupted
//!   run (the cheap in-bench guard; the real matrix lives in
//!   `tests/reshard_equivalence.rs`).
//!
//! Usage: `cargo run -p pinsql-bench --release --bin reshard [-- INSTANCES_CSV [BUSINESSES [SEED]]]`
//! Defaults: instances `2,4,8`, businesses 6, seed 9000. Writes
//! `results/reshard.json`.
//!
//! `--gate` runs the smallest cell only and exits non-zero if the
//! equivalence cross-check fails or the snapshot-size / restore-latency
//! sanity bounds are blown — the `scripts/ci.sh snapshot_smoke` hook.

use pinsql::PinSqlConfig;
use pinsql_engine::{FleetConfig, FleetEngine, OnlineInstance, ReshardPlan};
use pinsql_obs::{Counter, RecordingObserver, Stage};
use pinsql_scenario::{generate_base, inject, inject_none, AnomalyKind, Scenario, ScenarioConfig};
use serde::Serialize;
use std::time::Instant;

const WINDOW_S: i64 = 600;
const ANOMALY: (i64, i64) = (360, 480);
const DELTA_S: i64 = 240;
const RESHARD_AT: i64 = 420;

/// Sanity bounds for `--gate`: a per-instance snapshot of the default
/// bench scenario should be far inside these whatever the host.
const GATE_MIN_BYTES_PER_INSTANCE: usize = 1 << 10; // 1 KiB
const GATE_MAX_BYTES_PER_INSTANCE: usize = 64 << 20; // 64 MiB
const GATE_MAX_RESTORE_MS_PER_INSTANCE: f64 = 2_000.0;

#[derive(Serialize)]
struct ReshardCell {
    instances: usize,
    businesses: usize,
    events_total: u64,
    snapshot_bytes_total: usize,
    snapshot_bytes_per_instance: usize,
    checkpoint_wall_s: f64,
    restore_wall_s: f64,
    restore_ms_per_instance: f64,
    /// Wall time of the recorded `Stage::Reshard` handoff span (quiesce +
    /// regroup on the coordinating thread).
    handoff_span_ms: f64,
    snapshots_written: u64,
    snapshots_restored: u64,
    instances_resharded: u64,
    /// Resharded outcomes byte-identical to the uninterrupted run.
    equivalent: bool,
}

#[derive(Serialize)]
struct ReshardSweep {
    seed: u64,
    window_s: i64,
    delta_s: i64,
    reshard_at: i64,
    cells: Vec<ReshardCell>,
}

fn scenarios(n: usize, businesses: usize, seed: u64) -> Vec<Scenario> {
    let kinds = [
        Some(AnomalyKind::BusinessSpike),
        Some(AnomalyKind::PoorSql),
        Some(AnomalyKind::MdlLock),
        Some(AnomalyKind::RowLock),
        None,
    ];
    (0..n)
        .map(|i| {
            let cfg = ScenarioConfig::default()
                .with_seed(seed + i as u64)
                .with_businesses(businesses)
                .with_window(WINDOW_S, ANOMALY.0, ANOMALY.1);
            let base = generate_base(&cfg);
            match kinds[i % kinds.len()] {
                Some(kind) => inject(&base, &cfg, kind),
                None => inject_none(&base, &cfg),
            }
        })
        .collect()
}

fn engine(shards: usize) -> FleetEngine {
    FleetEngine::new(FleetConfig {
        delta_s: DELTA_S,
        pinsql: PinSqlConfig::default(),
        fanout: 0,
        shards,
        ..FleetConfig::default()
    })
}

/// Byte-comparable view of a run's outcomes (timings stripped).
fn outcome_key(run: &pinsql_engine::FleetRun) -> String {
    run.report
        .outcomes
        .iter()
        .map(|o| {
            format!(
                "{}|{}|{}|{}|{}|{}|{}|{}",
                o.instance,
                o.kind,
                o.detected,
                o.anomaly_type,
                o.n_events,
                o.n_templates,
                o.n_reported,
                o.top_rsql.clone().unwrap_or_default()
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn run_cell(n: usize, businesses: usize, seed: u64) -> ReshardCell {
    let scen = scenarios(n, businesses, seed);
    let shards = 2.min(n);

    // Checkpoint cost: whole-fleet snapshot mid-anomaly.
    let t0 = Instant::now();
    let ckpt = engine(shards).checkpoint_at(&scen, RESHARD_AT);
    let checkpoint_wall_s = t0.elapsed().as_secs_f64();
    let snapshot_bytes_total = ckpt.total_bytes();

    // Bare restore cost: rebuild every instance from its blob.
    let t1 = Instant::now();
    for (i, snap) in ckpt.snapshots.iter().enumerate() {
        let inst = OnlineInstance::restore(&scen[i], snap).expect("own checkpoint restores");
        assert!(inst.watermark() >= 0);
        std::hint::black_box(&inst);
    }
    let restore_wall_s = t1.elapsed().as_secs_f64();

    // Observed reshard run vs uninterrupted run.
    let baseline = engine(shards).run_full(&scen);
    let reversed: Vec<usize> = (0..n).map(|i| shards - 1 - (i * shards / n).min(shards - 1)).collect();
    let rec = RecordingObserver::new();
    let resharded = engine(shards)
        .run_resharded_observed(&scen, &ReshardPlan::single(RESHARD_AT, reversed), &rec)
        .expect("handoff decodes");
    let reg = rec.registry();
    let equivalent = outcome_key(&baseline) == outcome_key(&resharded);

    ReshardCell {
        instances: n,
        businesses,
        events_total: baseline.report.events_total,
        snapshot_bytes_total,
        snapshot_bytes_per_instance: snapshot_bytes_total / n.max(1),
        checkpoint_wall_s,
        restore_wall_s,
        restore_ms_per_instance: restore_wall_s * 1000.0 / n.max(1) as f64,
        handoff_span_ms: reg.span_hist(Stage::Reshard).total_ns() as f64 / 1e6,
        snapshots_written: reg.counter(Counter::SnapshotsWritten),
        snapshots_restored: reg.counter(Counter::SnapshotsRestored),
        instances_resharded: reg.counter(Counter::InstancesResharded),
        equivalent,
    }
}

fn parse_csv(arg: Option<String>, default: &[usize]) -> Vec<usize> {
    arg.map(|s| s.split(',').filter_map(|x| x.trim().parse().ok()).collect::<Vec<_>>())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

fn gate_mode() -> ! {
    let cell = run_cell(2, 4, 9000);
    let mut failures = Vec::new();
    if !cell.equivalent {
        failures.push("resharded outcomes diverged from the uninterrupted run".to_string());
    }
    if cell.snapshot_bytes_per_instance < GATE_MIN_BYTES_PER_INSTANCE {
        failures.push(format!(
            "snapshot implausibly small: {} B/instance (< {} B) — state is being dropped",
            cell.snapshot_bytes_per_instance, GATE_MIN_BYTES_PER_INSTANCE
        ));
    }
    if cell.snapshot_bytes_per_instance > GATE_MAX_BYTES_PER_INSTANCE {
        failures.push(format!(
            "snapshot blew up: {} B/instance (> {} B)",
            cell.snapshot_bytes_per_instance, GATE_MAX_BYTES_PER_INSTANCE
        ));
    }
    if cell.restore_ms_per_instance > GATE_MAX_RESTORE_MS_PER_INSTANCE {
        failures.push(format!(
            "restore too slow: {:.1} ms/instance (> {} ms)",
            cell.restore_ms_per_instance, GATE_MAX_RESTORE_MS_PER_INSTANCE
        ));
    }
    if cell.snapshots_restored < cell.instances as u64 {
        failures.push(format!(
            "reshard restored only {} of {} instances",
            cell.snapshots_restored, cell.instances
        ));
    }
    eprintln!(
        "snapshot_smoke: {} B/instance, checkpoint {:.1} ms, restore {:.2} ms/instance, \
         handoff span {:.1} ms, equivalent: {}",
        cell.snapshot_bytes_per_instance,
        cell.checkpoint_wall_s * 1000.0,
        cell.restore_ms_per_instance,
        cell.handoff_span_ms,
        cell.equivalent
    );
    if failures.is_empty() {
        eprintln!("snapshot_smoke: OK");
        std::process::exit(0);
    }
    for f in &failures {
        eprintln!("snapshot_smoke FAILED: {f}");
    }
    std::process::exit(1);
}

fn write_json<T: Serialize>(path: &str, value: &T) {
    if let Err(e) = std::fs::create_dir_all("results")
        .map_err(|e| e.to_string())
        .and_then(|_| serde_json::to_string_pretty(value).map_err(|e| e.to_string()))
        .and_then(|json| std::fs::write(path, json).map_err(|e| e.to_string()))
    {
        eprintln!("failed to write {path}: {e}");
    } else {
        eprintln!("wrote {path}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--gate") {
        gate_mode();
    }
    let instance_counts = parse_csv(args.get(1).cloned(), &[2, 4, 8]);
    let businesses: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(6);
    let seed: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(9000);

    println!(
        "{:>9} {:>12} {:>14} {:>12} {:>14} {:>12} {:>6}",
        "instances", "events", "KiB/instance", "ckpt ms", "restore ms/i", "handoff ms", "equal"
    );
    let mut cells = Vec::new();
    for &n in &instance_counts {
        let cell = run_cell(n, businesses, seed);
        println!(
            "{:>9} {:>12} {:>14.1} {:>12.1} {:>14.3} {:>12.1} {:>6}",
            cell.instances,
            cell.events_total,
            cell.snapshot_bytes_per_instance as f64 / 1024.0,
            cell.checkpoint_wall_s * 1000.0,
            cell.restore_ms_per_instance,
            cell.handoff_span_ms,
            cell.equivalent,
        );
        assert!(cell.equivalent, "resharded outcomes diverged at {n} instances");
        cells.push(cell);
    }
    let sweep =
        ReshardSweep { seed, window_s: WINDOW_S, delta_s: DELTA_S, reshard_at: RESHARD_AT, cells };
    write_json("results/reshard.json", &sweep);
}
