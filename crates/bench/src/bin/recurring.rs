//! Extension: recurring-decoy study (the value of History Trend
//! Verification under recurring batch workloads).
//!
//! Usage: `cargo run -p pinsql-bench --release --bin recurring [-- N_CASES [SEED]]`

use pinsql_eval::caseset::CaseSetConfig;
use pinsql_eval::experiments::recurring;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(24);
    let seed: u64 = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(2600);
    let cfg = CaseSetConfig::default().with_seed(seed);
    eprintln!("recurring-decoy study over {n} cases (seed {seed})...");
    println!("{}", recurring::run(&cfg, n));
}
