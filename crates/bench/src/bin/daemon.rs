//! Resident-daemon cost sweep: steady-state ingest throughput, config-push
//! pause, and restart-recovery time vs fleet size.
//!
//! For every (instances, businesses) cell this bin drives a
//! [`FleetServer`]-steered [`FleetDaemon`] through a realistic day in the
//! life of a resident fleet:
//!
//! * ingest to event-time watermarks in fixed steps (the steady state),
//!   reporting aggregate events/sec across all advances;
//! * push a versioned config delta mid-anomaly (kernel swap + region
//!   remap) and report the wall-clock pause — the quiesce + whole-fleet
//!   snapshot handoff + apply;
//! * gracefully restart the daemon with detector segments open and report
//!   the recovery time;
//! * stop, and cross-check the outcomes against an uninterrupted
//!   `FleetEngine::run_full` under the final config (the cheap in-bench
//!   guard; the real byte-level matrix lives in
//!   `tests/daemon_equivalence.rs`).
//!
//! Usage: `cargo run -p pinsql-bench --release --bin daemon [-- INSTANCES_CSV [BUSINESSES [SEED]]]`
//! Defaults: instances `2,4,8`, businesses 6, seed 11000. Writes
//! `results/daemon.json`.
//!
//! `--gate` runs the smallest cell only and exits non-zero if the
//! equivalence cross-check fails, the control counters disagree with the
//! driven lifecycle, or the push-pause / restart-latency sanity bounds
//! are blown — the `scripts/ci.sh daemon_smoke` hook.

use pinsql::PinSqlConfig;
use pinsql_detect::KernelKind;
use pinsql_engine::{FleetConfig, FleetDaemon, FleetDelta, FleetEngine, FleetServer};
use pinsql_obs::{Counter, RecordingObserver, Stage};
use pinsql_scenario::{generate_base, inject, inject_none, AnomalyKind, Scenario, ScenarioConfig};
use serde::Serialize;
use std::time::Instant;

const WINDOW_S: i64 = 600;
const ANOMALY: (i64, i64) = (360, 480);
const DELTA_S: i64 = 240;
/// Event-time watermark step for the steady-state phase.
const STEP_S: i64 = 60;
/// Config push lands mid-anomaly, restart shortly after — both with open
/// detector segments, the most state-heavy moment.
const PUSH_AT: i64 = 420;
const RESTART_AT: i64 = 480;

/// Sanity bounds for `--gate`: generous enough for a slow CI host, tight
/// enough to catch an accidental full replay hiding in the handoff.
const GATE_MAX_PUSH_PAUSE_MS: f64 = 5_000.0;
const GATE_MAX_RESTART_MS: f64 = 5_000.0;

#[derive(Serialize)]
struct DaemonCell {
    instances: usize,
    businesses: usize,
    events_total: u64,
    /// Wall time spent inside `advance_to` calls (steady-state ingest).
    ingest_wall_s: f64,
    events_per_sec: f64,
    /// Wall-clock pause of the mid-anomaly config push (quiesce +
    /// snapshot handoff + apply, measured at the server).
    push_pause_ms: f64,
    /// Wall-clock recovery time of the graceful restart.
    restart_ms: f64,
    /// Agent-side span totals for the same two operations.
    config_apply_span_ms: f64,
    restart_span_ms: f64,
    config_pushes: u64,
    daemon_restarts: u64,
    control_frames: u64,
    final_epoch: u64,
    /// Daemon outcomes identical to an uninterrupted run under the final
    /// config.
    equivalent: bool,
}

#[derive(Serialize)]
struct DaemonSweep {
    seed: u64,
    window_s: i64,
    delta_s: i64,
    push_at: i64,
    restart_at: i64,
    cells: Vec<DaemonCell>,
}

fn scenarios(n: usize, businesses: usize, seed: u64) -> Vec<Scenario> {
    let kinds = [
        Some(AnomalyKind::BusinessSpike),
        Some(AnomalyKind::PoorSql),
        Some(AnomalyKind::MdlLock),
        Some(AnomalyKind::RowLock),
        None,
    ];
    (0..n)
        .map(|i| {
            let cfg = ScenarioConfig::default()
                .with_seed(seed + i as u64)
                .with_businesses(businesses)
                .with_window(WINDOW_S, ANOMALY.0, ANOMALY.1);
            let base = generate_base(&cfg);
            match kinds[i % kinds.len()] {
                Some(kind) => inject(&base, &cfg, kind),
                None => inject_none(&base, &cfg),
            }
        })
        .collect()
}

/// The daemon spawns under the reference kernel; the mid-stream push
/// swaps to the fast kernel and remaps the rollup regions, so the final
/// config is `final_config` and the handoff has real work to do.
fn initial_config(shards: usize) -> FleetConfig {
    FleetConfig {
        delta_s: DELTA_S,
        pinsql: PinSqlConfig::default(),
        fanout: 0,
        shards,
        kernel: KernelKind::Reference,
        regions: 1,
    }
}

fn final_config(shards: usize) -> FleetConfig {
    FleetConfig { kernel: KernelKind::Fast, regions: 2, ..initial_config(shards) }
}

fn push_delta() -> FleetDelta {
    FleetDelta {
        kernel: Some(KernelKind::Fast),
        regions: Some(2),
        ..FleetDelta::default()
    }
}

/// Byte-comparable view of a run's outcomes (timings stripped).
fn outcome_key(run: &pinsql_engine::FleetRun) -> String {
    run.report
        .outcomes
        .iter()
        .map(|o| {
            format!(
                "{}|{}|{}|{}|{}|{}|{}|{}",
                o.instance,
                o.kind,
                o.detected,
                o.anomaly_type,
                o.n_events,
                o.n_templates,
                o.n_reported,
                o.top_rsql.clone().unwrap_or_default()
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn run_cell(n: usize, businesses: usize, seed: u64) -> DaemonCell {
    let scen = scenarios(n, businesses, seed);
    let shards = 2.min(n);

    let rec = RecordingObserver::new();
    let mut server =
        FleetServer::with_agent(FleetDaemon::spawn_observed(initial_config(shards), &scen, rec.clone()));

    // Steady state: fold to each watermark in turn.
    let mut ingest_wall_s = 0.0;
    let mut advance = |server: &mut FleetServer<'_, RecordingObserver>, to: i64| {
        let t = Instant::now();
        server.advance_to(to);
        ingest_wall_s += t.elapsed().as_secs_f64();
    };
    let mut at = STEP_S;
    while at <= PUSH_AT {
        advance(&mut server, at);
        at += STEP_S;
    }

    // Mid-anomaly config push: the pause the fleet actually observes.
    let t_push = Instant::now();
    let epoch = server.push_config(push_delta()).expect("config push acked");
    let push_pause_ms = t_push.elapsed().as_secs_f64() * 1000.0;

    advance(&mut server, RESTART_AT);

    // Graceful restart with open segments: the crash drill.
    let t_restart = Instant::now();
    server.restart().expect("graceful restart acked");
    let restart_ms = t_restart.elapsed().as_secs_f64() * 1000.0;

    // Drain the tail inside the timed window, then stop.
    advance(&mut server, WINDOW_S + DELTA_S);
    let run = server.stop().expect("daemon drains and stops");

    let baseline = FleetEngine::new(final_config(shards)).run_full(&scen);
    let equivalent = outcome_key(&baseline) == outcome_key(&run);

    let reg = rec.registry();
    DaemonCell {
        instances: n,
        businesses,
        events_total: run.report.events_total,
        ingest_wall_s,
        events_per_sec: run.report.events_total as f64 / ingest_wall_s.max(1e-9),
        push_pause_ms,
        restart_ms,
        config_apply_span_ms: reg.span_hist(Stage::ConfigApply).total_ns() as f64 / 1e6,
        restart_span_ms: reg.span_hist(Stage::DaemonRestart).total_ns() as f64 / 1e6,
        config_pushes: reg.counter(Counter::ConfigPushes),
        daemon_restarts: reg.counter(Counter::DaemonRestarts),
        control_frames: reg.counter(Counter::ControlFrames),
        final_epoch: epoch.0,
        equivalent,
    }
}

fn parse_csv(arg: Option<String>, default: &[usize]) -> Vec<usize> {
    arg.map(|s| s.split(',').filter_map(|x| x.trim().parse().ok()).collect::<Vec<_>>())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

fn gate_mode() -> ! {
    let cell = run_cell(2, 4, 11000);
    let mut failures = Vec::new();
    if !cell.equivalent {
        failures.push(
            "daemon outcomes diverged from the uninterrupted run under the final config"
                .to_string(),
        );
    }
    if cell.push_pause_ms > GATE_MAX_PUSH_PAUSE_MS {
        failures.push(format!(
            "config push paused {:.1} ms (> {} ms) — the handoff is replaying, not snapshotting",
            cell.push_pause_ms, GATE_MAX_PUSH_PAUSE_MS
        ));
    }
    if cell.restart_ms > GATE_MAX_RESTART_MS {
        failures.push(format!(
            "restart took {:.1} ms (> {} ms)",
            cell.restart_ms, GATE_MAX_RESTART_MS
        ));
    }
    if cell.config_pushes != 1 || cell.daemon_restarts != 1 {
        failures.push(format!(
            "lifecycle counters disagree with the driven run: {} pushes, {} restarts (expected 1 each)",
            cell.config_pushes, cell.daemon_restarts
        ));
    }
    if cell.final_epoch != 1 {
        failures.push(format!("first push minted epoch {}, expected 1", cell.final_epoch));
    }
    eprintln!(
        "daemon_smoke: {:.0} events/s steady state, push pause {:.1} ms, restart {:.1} ms, \
         {} control frames, equivalent: {}",
        cell.events_per_sec, cell.push_pause_ms, cell.restart_ms, cell.control_frames, cell.equivalent
    );
    if failures.is_empty() {
        eprintln!("daemon_smoke: OK");
        std::process::exit(0);
    }
    for f in &failures {
        eprintln!("daemon_smoke FAILED: {f}");
    }
    std::process::exit(1);
}

fn write_json<T: Serialize>(path: &str, value: &T) {
    if let Err(e) = std::fs::create_dir_all("results")
        .map_err(|e| e.to_string())
        .and_then(|_| serde_json::to_string_pretty(value).map_err(|e| e.to_string()))
        .and_then(|json| std::fs::write(path, json).map_err(|e| e.to_string()))
    {
        eprintln!("failed to write {path}: {e}");
    } else {
        eprintln!("wrote {path}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--gate") {
        gate_mode();
    }
    let instance_counts = parse_csv(args.get(1).cloned(), &[2, 4, 8]);
    let businesses: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(6);
    let seed: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(11000);

    println!(
        "{:>9} {:>12} {:>12} {:>12} {:>12} {:>10} {:>6}",
        "instances", "events", "events/s", "push ms", "restart ms", "frames", "equal"
    );
    let mut cells = Vec::new();
    for &n in &instance_counts {
        let cell = run_cell(n, businesses, seed);
        println!(
            "{:>9} {:>12} {:>12.0} {:>12.1} {:>12.1} {:>10} {:>6}",
            cell.instances,
            cell.events_total,
            cell.events_per_sec,
            cell.push_pause_ms,
            cell.restart_ms,
            cell.control_frames,
            cell.equivalent,
        );
        assert!(cell.equivalent, "daemon outcomes diverged at {n} instances");
        cells.push(cell);
    }
    let sweep = DaemonSweep {
        seed,
        window_s: WINDOW_S,
        delta_s: DELTA_S,
        push_at: PUSH_AT,
        restart_at: RESTART_AT,
        cells,
    };
    write_json("results/daemon.json", &sweep);
}
