//! Extension: hyper-parameter sensitivity sweeps (τ, τ_c, k_s, K).
//!
//! Usage: `cargo run -p pinsql-bench --release --bin sensitivity [-- N_CASES [SEED]]`

use pinsql_eval::caseset::CaseSetConfig;
use pinsql_eval::experiments::sensitivity;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(16);
    let seed: u64 = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(3100);
    let cfg = CaseSetConfig::default().with_cases(n).with_seed(seed);
    eprintln!("sweeping 4 knobs over {n} cases (seed {seed})...");
    println!("{}", sensitivity::run(&cfg));
}
