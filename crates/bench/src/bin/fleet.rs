//! Fleet-engine throughput sweep: instance count × event rate.
//!
//! For every (instances, businesses-per-instance) cell, builds that many
//! scenarios (anomaly kinds cycled, plus a negative every fifth instance),
//! multiplexes their telemetry through one [`FleetEngine`] run, and
//! records sustained ingest throughput plus per-case diagnosis latency.
//!
//! Usage: `cargo run -p pinsql-bench --release --bin fleet [-- INSTANCES_CSV [BUSINESSES_CSV [SEED [FANOUT [SHARDS_CSV]]]]]`
//! Defaults: instances `2,4,8`, businesses `6,12`, seed 5000, fanout 0
//! (all cores), shards `1,2,4`. Event rate scales with the businesses
//! knob — more businesses means more templates and a proportionally
//! denser query stream per instance.
//!
//! Two sweeps run back to back:
//!
//! * the throughput sweep (instances × businesses at 1 shard) →
//!   `results/fleet.json`, unchanged shape from earlier revisions;
//! * the **scaling sweep** (shards × instances at the first businesses
//!   value) → `results/fleet_scaling.json`, reporting each cell's ingest
//!   throughput and its speedup over the 1-shard run of the same fleet.
//!   Outcomes are bit-identical across shard counts (pinned by the
//!   `shard_equivalence` suite), so the sweep reports timing only.
//!
//! A final **traced run** repeats the largest fleet under a
//! `RecordingObserver` and exports the per-stage timeline as
//! `results/trace_fleet.json` (chrome://tracing / Perfetto format) plus
//! flat per-stage histograms, counters, and the fleet health roll-up as
//! `results/fleet_metrics.json`.

use pinsql::PinSqlConfig;
use pinsql_engine::{FleetConfig, FleetEngine, FleetReport};
use pinsql_obs::export::{chrome_trace, metrics_export, MetricsExport};
use pinsql_obs::{FleetHealth, RecordingObserver, Stage};
use pinsql_scenario::{generate_base, inject, inject_none, AnomalyKind, Scenario, ScenarioConfig};
use serde::Serialize;

const WINDOW_S: i64 = 600;
const ANOMALY: (i64, i64) = (360, 480);
const DELTA_S: i64 = 240;

#[derive(Serialize)]
struct SweepCell {
    instances: usize,
    businesses: usize,
    report: FleetReport,
}

#[derive(Serialize)]
struct FleetSweep {
    seed: u64,
    fanout: usize,
    window_s: i64,
    delta_s: i64,
    cells: Vec<SweepCell>,
}

#[derive(Serialize)]
struct ScalingCell {
    instances: usize,
    shards: usize,
    events_total: u64,
    ingest_wall_s: f64,
    events_per_sec: f64,
    /// This cell's ingest throughput over the 1-shard cell of the same
    /// fleet (1.0 when this *is* the 1-shard cell).
    speedup_vs_1shard: f64,
    diagnose_mean_s: f64,
    diagnose_max_s: f64,
}

/// `results/fleet_metrics.json`: the traced run's flat metrics view.
#[derive(Serialize)]
struct FleetMetrics {
    instances: usize,
    businesses: usize,
    shards: usize,
    fanout: usize,
    /// Per-stage latency histograms, counters, and gauges.
    metrics: MetricsExport,
    /// Per-instance health snapshots plus fleet totals.
    health: FleetHealth,
}

#[derive(Serialize)]
struct ScalingSweep {
    seed: u64,
    fanout: usize,
    businesses: usize,
    window_s: i64,
    delta_s: i64,
    /// Cores visible to the process — shard speedups cannot exceed this.
    available_cores: usize,
    cells: Vec<ScalingCell>,
}

fn scenarios(n: usize, businesses: usize, seed: u64) -> Vec<Scenario> {
    let kinds = [
        Some(AnomalyKind::BusinessSpike),
        Some(AnomalyKind::PoorSql),
        Some(AnomalyKind::MdlLock),
        Some(AnomalyKind::RowLock),
        None,
    ];
    (0..n)
        .map(|i| {
            let cfg = ScenarioConfig::default()
                .with_seed(seed + i as u64)
                .with_businesses(businesses)
                .with_window(WINDOW_S, ANOMALY.0, ANOMALY.1);
            let base = generate_base(&cfg);
            match kinds[i % kinds.len()] {
                Some(kind) => inject(&base, &cfg, kind),
                None => inject_none(&base, &cfg),
            }
        })
        .collect()
}

fn parse_csv(arg: Option<String>, default: &[usize]) -> Vec<usize> {
    arg.map(|s| s.split(',').filter_map(|x| x.trim().parse().ok()).collect::<Vec<_>>())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

fn write_json<T: Serialize>(path: &str, value: &T) {
    if let Err(e) = std::fs::create_dir_all("results")
        .map_err(|e| e.to_string())
        .and_then(|_| serde_json::to_string_pretty(value).map_err(|e| e.to_string()))
        .and_then(|json| std::fs::write(path, json).map_err(|e| e.to_string()))
    {
        eprintln!("failed to write {path}: {e}");
    } else {
        eprintln!("wrote {path}");
    }
}

fn main() {
    let instance_counts = parse_csv(std::env::args().nth(1), &[2, 4, 8]);
    let business_counts = parse_csv(std::env::args().nth(2), &[6, 12]);
    let seed: u64 = std::env::args().nth(3).and_then(|s| s.parse().ok()).unwrap_or(5000);
    let fanout: usize = std::env::args().nth(4).and_then(|s| s.parse().ok()).unwrap_or(0);
    let shard_counts = parse_csv(std::env::args().nth(5), &[1, 2, 4]);

    let engine = FleetEngine::new(FleetConfig {
        delta_s: DELTA_S,
        pinsql: PinSqlConfig::default(),
        fanout,
        shards: 1,
        ..FleetConfig::default()
    });

    println!(
        "{:>9} {:>10} {:>10} {:>12} {:>11} {:>11} {:>9}",
        "instances", "businesses", "events", "events/sec", "diag mean s", "diag max s", "hits"
    );
    let mut cells = Vec::new();
    for &bz in &business_counts {
        for &n in &instance_counts {
            let scen = scenarios(n, bz, seed);
            let report = engine.run(&scen);
            let hits = report.outcomes.iter().filter(|o| o.truth_hit).count();
            let with_truth =
                report.outcomes.iter().filter(|o| o.kind != "none").count();
            println!(
                "{:>9} {:>10} {:>10} {:>12.0} {:>11.4} {:>11.4} {:>6}/{}",
                n,
                bz,
                report.events_total,
                report.events_per_sec,
                report.diagnose_mean_s,
                report.diagnose_max_s,
                hits,
                with_truth,
            );
            cells.push(SweepCell { instances: n, businesses: bz, report });
        }
    }

    let sweep = FleetSweep { seed, fanout, window_s: WINDOW_S, delta_s: DELTA_S, cells };
    write_json("results/fleet.json", &sweep);

    // Scaling sweep: shards × instances at the first businesses value.
    let businesses = business_counts[0];
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!();
    println!(
        "{:>9} {:>7} {:>10} {:>12} {:>9} {:>11} {:>11}",
        "instances", "shards", "events", "events/sec", "speedup", "diag mean s", "diag max s"
    );
    let mut scaling_cells = Vec::new();
    for &n in &instance_counts {
        let scen = scenarios(n, businesses, seed);
        let mut baseline_eps = 0.0f64;
        for &shards in &shard_counts {
            let engine = FleetEngine::new(FleetConfig {
                delta_s: DELTA_S,
                pinsql: PinSqlConfig::default(),
                fanout,
                shards,
                ..FleetConfig::default()
            });
            let report = engine.run(&scen);
            if shards == 1 || baseline_eps == 0.0 {
                baseline_eps = report.events_per_sec;
            }
            let speedup =
                if baseline_eps > 0.0 { report.events_per_sec / baseline_eps } else { 0.0 };
            println!(
                "{:>9} {:>7} {:>10} {:>12.0} {:>9.2} {:>11.4} {:>11.4}",
                n,
                report.shards,
                report.events_total,
                report.events_per_sec,
                speedup,
                report.diagnose_mean_s,
                report.diagnose_max_s,
            );
            scaling_cells.push(ScalingCell {
                instances: n,
                shards: report.shards,
                events_total: report.events_total,
                ingest_wall_s: report.ingest_wall_s,
                events_per_sec: report.events_per_sec,
                speedup_vs_1shard: speedup,
                diagnose_mean_s: report.diagnose_mean_s,
                diagnose_max_s: report.diagnose_max_s,
            });
        }
    }
    let scaling = ScalingSweep {
        seed,
        fanout,
        businesses,
        window_s: WINDOW_S,
        delta_s: DELTA_S,
        available_cores: cores,
        cells: scaling_cells,
    };
    write_json("results/fleet_scaling.json", &scaling);

    // Traced run: the largest fleet once more, recording. The diagnosis
    // outputs are identical to the untraced runs (obs_equivalence pins
    // this); what this adds is the cross-thread stage timeline.
    let n = *instance_counts.last().unwrap_or(&2);
    let shards = *shard_counts.last().unwrap_or(&1);
    let scen = scenarios(n, businesses, seed);
    let obs = RecordingObserver::new();
    let run = FleetEngine::new(FleetConfig {
        delta_s: DELTA_S,
        pinsql: PinSqlConfig::default(),
        fanout,
        shards,
        ..FleetConfig::default()
    })
    .run_full_observed(&scen, &obs);

    let registry = obs.registry();
    println!();
    println!("traced run: {n} instances, {shards} shards");
    println!("{:>17} {:>9} {:>12} {:>12} {:>12}", "stage", "spans", "mean us", "p99 us", "max us");
    for stage in Stage::ALL {
        let h = registry.span_hist(stage);
        if h.count() == 0 {
            continue;
        }
        println!(
            "{:>17} {:>9} {:>12.1} {:>12.1} {:>12.1}",
            stage.name(),
            h.count(),
            h.mean_ns() / 1000.0,
            h.quantile_upper_ns(0.99) as f64 / 1000.0,
            h.max_ns() as f64 / 1000.0,
        );
    }

    if let Err(e) = std::fs::create_dir_all("results")
        .map_err(|e| e.to_string())
        .and_then(|_| {
            std::fs::write("results/trace_fleet.json", chrome_trace(&registry, &obs.lanes()))
                .map_err(|e| e.to_string())
        })
    {
        eprintln!("failed to write results/trace_fleet.json: {e}");
    } else {
        eprintln!("wrote results/trace_fleet.json (open in chrome://tracing or ui.perfetto.dev)");
    }
    let metrics = FleetMetrics {
        instances: n,
        businesses,
        shards,
        fanout,
        metrics: metrics_export(&registry),
        health: run.health,
    };
    write_json("results/fleet_metrics.json", &metrics);
}
