//! Fleet-engine throughput sweep: instance count × event rate.
//!
//! For every (instances, businesses-per-instance) cell, builds that many
//! scenarios (anomaly kinds cycled, plus a negative every fifth instance),
//! multiplexes their telemetry through one [`FleetEngine`] run, and
//! records sustained ingest throughput plus per-case diagnosis latency.
//!
//! Usage: `cargo run -p pinsql-bench --release --bin fleet [-- INSTANCES_CSV [BUSINESSES_CSV [SEED [FANOUT]]]]`
//! Defaults: instances `2,4,8`, businesses `6,12`, seed 5000, fanout 0
//! (all cores). Event rate scales with the businesses knob — more
//! businesses means more templates and a proportionally denser query
//! stream per instance.
//!
//! Besides the printed table, writes the full structure to
//! `results/fleet.json`.

use pinsql::PinSqlConfig;
use pinsql_engine::{FleetConfig, FleetEngine, FleetReport};
use pinsql_scenario::{generate_base, inject, inject_none, AnomalyKind, Scenario, ScenarioConfig};
use serde::Serialize;

const WINDOW_S: i64 = 600;
const ANOMALY: (i64, i64) = (360, 480);
const DELTA_S: i64 = 240;

#[derive(Serialize)]
struct SweepCell {
    instances: usize,
    businesses: usize,
    report: FleetReport,
}

#[derive(Serialize)]
struct FleetSweep {
    seed: u64,
    fanout: usize,
    window_s: i64,
    delta_s: i64,
    cells: Vec<SweepCell>,
}

fn scenarios(n: usize, businesses: usize, seed: u64) -> Vec<Scenario> {
    let kinds = [
        Some(AnomalyKind::BusinessSpike),
        Some(AnomalyKind::PoorSql),
        Some(AnomalyKind::MdlLock),
        Some(AnomalyKind::RowLock),
        None,
    ];
    (0..n)
        .map(|i| {
            let cfg = ScenarioConfig::default()
                .with_seed(seed + i as u64)
                .with_businesses(businesses)
                .with_window(WINDOW_S, ANOMALY.0, ANOMALY.1);
            let base = generate_base(&cfg);
            match kinds[i % kinds.len()] {
                Some(kind) => inject(&base, &cfg, kind),
                None => inject_none(&base, &cfg),
            }
        })
        .collect()
}

fn parse_csv(arg: Option<String>, default: &[usize]) -> Vec<usize> {
    arg.map(|s| s.split(',').filter_map(|x| x.trim().parse().ok()).collect::<Vec<_>>())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

fn main() {
    let instance_counts = parse_csv(std::env::args().nth(1), &[2, 4, 8]);
    let business_counts = parse_csv(std::env::args().nth(2), &[6, 12]);
    let seed: u64 = std::env::args().nth(3).and_then(|s| s.parse().ok()).unwrap_or(5000);
    let fanout: usize = std::env::args().nth(4).and_then(|s| s.parse().ok()).unwrap_or(0);

    let engine = FleetEngine::new(FleetConfig {
        delta_s: DELTA_S,
        pinsql: PinSqlConfig::default(),
        fanout,
    });

    println!(
        "{:>9} {:>10} {:>10} {:>12} {:>11} {:>11} {:>9}",
        "instances", "businesses", "events", "events/sec", "diag mean s", "diag max s", "hits"
    );
    let mut cells = Vec::new();
    for &bz in &business_counts {
        for &n in &instance_counts {
            let scen = scenarios(n, bz, seed);
            let report = engine.run(&scen);
            let hits = report.outcomes.iter().filter(|o| o.truth_hit).count();
            let with_truth =
                report.outcomes.iter().filter(|o| o.kind != "none").count();
            println!(
                "{:>9} {:>10} {:>10} {:>12.0} {:>11.4} {:>11.4} {:>6}/{}",
                n,
                bz,
                report.events_total,
                report.events_per_sec,
                report.diagnose_mean_s,
                report.diagnose_max_s,
                hits,
                with_truth,
            );
            cells.push(SweepCell { instances: n, businesses: bz, report });
        }
    }

    let sweep = FleetSweep { seed, fanout, window_s: WINDOW_S, delta_s: DELTA_S, cells };
    let out = "results/fleet.json";
    if let Err(e) = std::fs::create_dir_all("results")
        .map_err(|e| e.to_string())
        .and_then(|_| serde_json::to_string_pretty(&sweep).map_err(|e| e.to_string()))
        .and_then(|json| std::fs::write(out, json).map_err(|e| e.to_string()))
    {
        eprintln!("failed to write {out}: {e}");
    } else {
        eprintln!("wrote {out}");
    }
}
