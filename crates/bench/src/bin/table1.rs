//! Regenerates Table I: overall R-SQL / H-SQL identification quality.
//!
//! Usage: `cargo run -p pinsql-bench --release --bin table1 [-- N_CASES [SEED [PARALLELISM]]]`
//! Defaults to the paper's 168 cases (several minutes); pass a smaller
//! count for a quick look. PARALLELISM `0` (default) uses all cores for
//! the per-case fan-out, `1` forces the pre-parallelism serial path; the
//! quality rows are identical either way.
//!
//! Besides the printed table, writes the full structure (including the
//! per-stage timing decomposition of the PinSQL row) to
//! `results/bench_table1.json`.

use pinsql_eval::caseset::CaseSetConfig;
use pinsql_eval::experiments::table1;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(168);
    let seed: u64 = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(1000);
    let parallelism: usize =
        std::env::args().nth(3).and_then(|s| s.parse().ok()).unwrap_or(0);
    let cfg = CaseSetConfig::default().with_cases(n).with_seed(seed);
    eprintln!("generating and scoring {n} cases (seed {seed}, parallelism {parallelism})...");
    let t = table1::run_par(&cfg, parallelism);
    println!("{t}");

    let out = "results/bench_table1.json";
    if let Err(e) = std::fs::create_dir_all("results")
        .map_err(|e| e.to_string())
        .and_then(|_| serde_json::to_string_pretty(&t).map_err(|e| e.to_string()))
        .and_then(|json| std::fs::write(out, json).map_err(|e| e.to_string()))
    {
        eprintln!("failed to write {out}: {e}");
    } else {
        eprintln!("wrote {out}");
    }
}
