//! Regenerates Table I: overall R-SQL / H-SQL identification quality.
//!
//! Usage: `cargo run -p pinsql-bench --release --bin table1 [-- N_CASES [SEED]]`
//! Defaults to the paper's 168 cases (several minutes); pass a smaller
//! count for a quick look.

use pinsql_eval::caseset::CaseSetConfig;
use pinsql_eval::experiments::table1;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(168);
    let seed: u64 = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(1000);
    let cfg = CaseSetConfig::default().with_cases(n).with_seed(seed);
    eprintln!("generating and scoring {n} cases (seed {seed})...");
    let t = table1::run(&cfg);
    println!("{t}");
}
