//! Regenerates Fig. 6: the ablation study.
//!
//! Usage: `cargo run -p pinsql-bench --release --bin fig6 [-- N_CASES [SEED]]`

use pinsql_eval::caseset::CaseSetConfig;
use pinsql_eval::experiments::fig6;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(48);
    let seed: u64 = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(1000);
    let cfg = CaseSetConfig::default().with_cases(n).with_seed(seed);
    eprintln!("running 9 PinSQL variants over {n} cases (seed {seed})...");
    let f = fig6::run(&cfg);
    println!("{f}");
}
