//! Extension: per-category R-SQL breakdown (PinSQL vs Top-RT).
//!
//! Usage: `cargo run -p pinsql-bench --release --bin breakdown [-- N_CASES [SEED]]`

use pinsql_eval::caseset::CaseSetConfig;
use pinsql_eval::experiments::breakdown;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(48);
    let seed: u64 = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(1000);
    let cfg = CaseSetConfig::default().with_cases(n).with_seed(seed);
    eprintln!("per-category breakdown over {n} cases (seed {seed})...");
    println!("{}", breakdown::run(&cfg));
}
