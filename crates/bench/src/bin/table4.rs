//! Regenerates Table IV: Performance-Schema overhead (QPS decline).
//!
//! Usage: `cargo run -p pinsql-bench --release --bin table4 [-- MEASURE_S [SEED]]`

use pinsql_eval::experiments::table4;

fn main() {
    let measure_s: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(20.0);
    let seed: u64 = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(99);
    eprintln!("closed-loop saturation: 5 configs x 3 mixes x {measure_s}s...");
    let t = table4::run(measure_s, seed);
    println!("{t}");
}
