//! Regenerates Table III: individual active-session estimation accuracy.
//!
//! Usage: `cargo run -p pinsql-bench --release --bin table3 [-- N_CASES [SEED]]`

use pinsql_eval::caseset::CaseSetConfig;
use pinsql_eval::experiments::table3;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(12);
    let seed: u64 = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(777);
    let cfg = CaseSetConfig::default().with_seed(seed);
    eprintln!("evaluating 3 estimators + bucket sweep over {n} cases...");
    let t = table3::run(&cfg, n);
    println!("{t}");
}
