//! Regenerates the robustness sweep: PinSQL accuracy vs. telemetry
//! degradation, per anomaly kind (plus an overlapping-anomaly group) and
//! over pure-noise negative cases.
//!
//! Usage: `cargo run -p pinsql-bench --release --bin robustness [-- CASES_PER_CELL [SEED [PARALLELISM]]]`
//! Defaults to 8 cases per (group, intensity) cell over intensities
//! 0 / 0.25 / 0.5 / 0.75 / 1.0 — five groups and the negatives, so
//! 8 × (5 × 5 + 5) = 240 diagnoses (several minutes; pass a smaller count
//! for a quick look). PARALLELISM `0` (default) uses all cores; the curves
//! are identical for every value.
//!
//! Besides the printed curves, writes the full structure to
//! `results/robustness.json`.

use pinsql_eval::caseset::CaseSetConfig;
use pinsql_eval::experiments::robustness::{self, RobustnessConfig};

fn main() {
    let per_cell: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let seed: u64 = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(1000);
    let parallelism: usize =
        std::env::args().nth(3).and_then(|s| s.parse().ok()).unwrap_or(0);
    let cfg = RobustnessConfig {
        base: CaseSetConfig::default().with_seed(seed),
        cases_per_cell: per_cell,
        negative_cases: per_cell,
        ..RobustnessConfig::default()
    };
    eprintln!(
        "sweeping {} intensities × 5 groups + negatives, {per_cell} cases/cell \
         (seed {seed}, parallelism {parallelism})...",
        cfg.intensities.len()
    );
    let r = robustness::run_par(&cfg, parallelism);
    println!("{r}");

    let out = "results/robustness.json";
    if let Err(e) = std::fs::create_dir_all("results")
        .map_err(|e| e.to_string())
        .and_then(|_| serde_json::to_string_pretty(&r).map_err(|e| e.to_string()))
        .and_then(|json| std::fs::write(out, json).map_err(|e| e.to_string()))
    {
        eprintln!("failed to write {out}: {e}");
    } else {
        eprintln!("wrote {out}");
    }
}
