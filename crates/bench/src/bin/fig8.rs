//! Regenerates Fig. 8: the repairing case study.
//!
//! Usage: `cargo run -p pinsql-bench --release --bin fig8 [-- SEED]`

use pinsql_eval::caseset::CaseSetConfig;
use pinsql_eval::experiments::fig8;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(fig8::fig8_showcase_seed);
    let cfg = CaseSetConfig::default().with_seed(seed);
    eprintln!("replaying the repair storyline (seed {seed}, 5 phase simulations)...");
    let f = fig8::run(&cfg);
    println!("{f}");
}
