//! Regenerates Fig. 7: computing time vs template count / anomaly length.
//!
//! Usage: `cargo run -p pinsql-bench --release --bin fig7 [-- SCALE]`
//! (SCALE 1.0 = the paper-sized sweep up to 6000 templates / 4800 s.)

use pinsql_eval::experiments::fig7;

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1.0);
    eprintln!("running scalability sweeps at scale {scale}...");
    let f = fig7::run(scale);
    println!("{f}");
}
