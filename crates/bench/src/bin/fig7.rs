//! Regenerates Fig. 7: computing time vs template count / anomaly length.
//!
//! Usage: `cargo run -p pinsql-bench --release --bin fig7 [-- SCALE [PARALLELISM]]`
//! (SCALE 1.0 = the paper-sized sweep up to 6000 templates / 4800 s.)
//! PARALLELISM sets the *measured* diagnoser's worker count (`1` default
//! serial; `0` = all cores) — the sweep loop itself always runs serially
//! so each point is timed on an otherwise idle machine.
//!
//! Besides the printed sweeps, writes the full structure to
//! `results/bench_fig7.json`.

use pinsql_eval::experiments::fig7;

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let parallelism: usize =
        std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    eprintln!("running scalability sweeps at scale {scale} (parallelism {parallelism})...");
    let f = fig7::run_par(scale, parallelism);
    println!("{f}");

    let out = "results/bench_fig7.json";
    if let Err(e) = std::fs::create_dir_all("results")
        .map_err(|e| e.to_string())
        .and_then(|_| serde_json::to_string_pretty(&f).map_err(|e| e.to_string()))
        .and_then(|json| std::fs::write(out, json).map_err(|e| e.to_string()))
    {
        eprintln!("failed to write {out}: {e}");
    } else {
        eprintln!("wrote {out}");
    }
}
