//! Fleet-scale ingest-rate benchmark with a committed-summary gate.
//!
//! Replays a [`pinsql_bench::synth`] telemetry stream (default: 3000
//! templates — the paper's ~10^3-templates-per-instance regime) through
//! the incremental collector + online detector bank, once per
//! `CellStoreKind` × `KernelKind`, and reports the *ingest slice*: the
//! time spent folding query runs, metric samples, and ticks. Detector
//! bank observation and the final snapshot are timed separately — the
//! kernel knob's detector-side cost shows up in the `micro_primitives`
//! criterion bench; here it mainly certifies that both kernels sustain
//! the rate while producing bit-identical snapshots (asserted via
//! fingerprint on every run).
//!
//! Modes:
//!
//! * default — measure, print, and write `results/ingest_rate.json`
//!   (gitignored; distilled into the committed `BENCH_ingest_loop.json`
//!   by `scripts/bench_summary.sh`).
//!   Args: `[templates] [qps] [dur_s] [reps] [retention_s]`.
//! * `--check <BENCH_ingest_loop.json>` — CI kernel-smoke gate: re-runs
//!   the committed smoke workload and fails (exit 1) if the measured
//!   dense-fast over hashed-reference throughput ratio regresses more
//!   than 20% below the committed one. The ratio is machine-neutral —
//!   absolute events/sec vary with the host, the relative win of the
//!   shared-position-table dense store over the hashed reference store
//!   should not.

use pinsql_bench::synth::{synthetic_specs, synthetic_stream};
use pinsql_collector::{CaseData, CellStoreKind, IncrementalAggregator, IncrementalConfig};
use pinsql_dbsim::{query_run, TelemetryEvent};
use pinsql_detect::OnlineDetectorBank;
use pinsql_timeseries::KernelKind;
use pinsql_workload::TemplateSpec;
use std::time::Instant;

/// FNV-1a over the snapshot's structure and raw f64 bits — byte-stable
/// equivalence check across store kinds and kernel kinds.
fn fingerprint(case: &CaseData) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x100000001b3);
    };
    mix(case.records.len() as u64);
    for t in &case.templates {
        mix(t.id.0 as u64);
        mix(t.record_idx.len() as u64);
        for &r in &t.record_idx {
            mix(r as u64);
        }
        for v in t.series.execution_count.iter().chain(&t.series.total_rt_ms).chain(&t.series.examined_rows) {
            mix(v.to_bits());
        }
    }
    for v in case.metrics.active_session.iter().chain(&case.metrics.qps) {
        mix(v.to_bits());
    }
    h
}

struct RunResult {
    /// Seconds spent in the collector's ingest slice (query runs +
    /// metric samples + ticks; excludes detector bank and snapshot).
    ingest_s: f64,
    /// Wall-clock for the whole replay including bank and snapshot.
    elapsed_s: f64,
    fingerprint: u64,
}

fn run_once(
    specs: &[TemplateSpec],
    events: &[TelemetryEvent],
    dur_s: i64,
    retention_s: i64,
    kind: CellStoreKind,
    kernel: KernelKind,
) -> RunResult {
    // The engine drains events by value; clone outside the timed region.
    let mut stream: Vec<TelemetryEvent> = events.to_vec();
    let t0 = Instant::now();
    let mut agg = IncrementalAggregator::new(
        specs,
        IncrementalConfig::default().with_retention(retention_s).with_cell_store(kind),
    );
    let mut bank = OnlineDetectorBank::with_kernel(kernel);
    let mut ingest_s = 0.0f64;
    let mut i = 0;
    while i < stream.len() {
        if let Some((second, len)) = query_run(&stream, i) {
            let s0 = Instant::now();
            agg.ingest_query_run(second, &stream[i..i + len]);
            ingest_s += s0.elapsed().as_secs_f64();
            i += len;
        } else {
            if let TelemetryEvent::Metrics(sample) = &stream[i] {
                bank.observe(sample);
            }
            let ev = std::mem::replace(&mut stream[i], TelemetryEvent::Tick { second: i64::MIN });
            let s0 = Instant::now();
            agg.ingest(ev);
            ingest_s += s0.elapsed().as_secs_f64();
            i += 1;
        }
    }
    bank.finish();
    let snap = agg.snapshot(dur_s - 300, dur_s);
    RunResult { ingest_s, elapsed_s: t0.elapsed().as_secs_f64(), fingerprint: fingerprint(&snap) }
}

/// Best-of-`reps` ingest slice for one configuration.
fn measure(
    specs: &[TemplateSpec],
    events: &[TelemetryEvent],
    dur_s: i64,
    retention_s: i64,
    kind: CellStoreKind,
    kernel: KernelKind,
    reps: usize,
) -> RunResult {
    let mut best: Option<RunResult> = None;
    for _ in 0..reps.max(1) {
        let r = run_once(specs, events, dur_s, retention_s, kind, kernel);
        if let Some(b) = &best {
            assert_eq!(r.fingerprint, b.fingerprint, "non-deterministic replay");
        }
        let better = best.as_ref().map_or(true, |b| r.ingest_s < b.ingest_s);
        if better {
            best = Some(r);
        }
    }
    best.expect("at least one rep")
}

fn store_label(kind: CellStoreKind) -> &'static str {
    match kind {
        CellStoreKind::Dense => "dense",
        CellStoreKind::Hashed => "hashed",
    }
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}

fn check_mode(committed_path: &str, reps: usize) -> ! {
    let text = std::fs::read_to_string(committed_path)
        .unwrap_or_else(|e| panic!("cannot read {committed_path}: {e}"));
    let committed: serde_json::Value =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("bad JSON in {committed_path}: {e}"));
    let smoke = &committed["smoke"];
    let w = &smoke["workload"];
    let (templates, qps, dur_s, retention_s) = (
        w["templates"].as_u64().expect("smoke.workload.templates") as usize,
        w["qps"].as_u64().expect("smoke.workload.qps") as usize,
        w["duration_s"].as_i64().expect("smoke.workload.duration_s"),
        w["retention_s"].as_i64().expect("smoke.workload.retention_s"),
    );
    let committed_ratio = smoke["dense_fast_over_hashed_reference"]
        .as_f64()
        .expect("smoke.dense_fast_over_hashed_reference");

    let specs = synthetic_specs(templates);
    let events = synthetic_stream(templates, qps, dur_s, 0xC0FFEE);
    let fast = measure(&specs, &events, dur_s, retention_s, CellStoreKind::Dense, KernelKind::Fast, reps);
    let reference =
        measure(&specs, &events, dur_s, retention_s, CellStoreKind::Hashed, KernelKind::Reference, reps);
    assert_eq!(
        fast.fingerprint, reference.fingerprint,
        "dense/fast and hashed/reference snapshots diverged"
    );

    let measured_ratio = reference.ingest_s / fast.ingest_s;
    let floor = 0.8 * committed_ratio;
    eprintln!(
        "kernel_smoke: dense/fast {:.2}ms, hashed/reference {:.2}ms -> ratio {measured_ratio:.2} \
         (committed {committed_ratio:.2}, floor {floor:.2})",
        fast.ingest_s * 1e3,
        reference.ingest_s * 1e3,
    );
    if measured_ratio < floor {
        eprintln!(
            "kernel_smoke: FAIL — dense-store ingest advantage regressed >20% vs {committed_path}"
        );
        std::process::exit(1);
    }
    eprintln!("kernel_smoke: OK");
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(p) = args.iter().position(|a| a == "--check") {
        let path = args.get(p + 1).expect("--check needs a committed summary path").clone();
        let reps = args.get(p + 2).and_then(|s| s.parse().ok()).unwrap_or(5);
        check_mode(&path, reps);
    }

    let templates: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(3000);
    let qps: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(25);
    let dur_s: i64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1800);
    let reps: usize = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(7);
    let retention_s: i64 = args.get(5).and_then(|s| s.parse().ok()).unwrap_or(420);

    let specs = synthetic_specs(templates);
    let events = synthetic_stream(templates, qps, dur_s, 0xC0FFEE);
    eprintln!(
        "{} events ({templates} templates, {qps} qps, {dur_s}s, retention {retention_s}s, best of {reps})",
        events.len()
    );

    let mut entries = Vec::new();
    let mut fp = None;
    for kind in [CellStoreKind::Dense, CellStoreKind::Hashed] {
        for kernel in [KernelKind::Fast, KernelKind::Reference] {
            let r = measure(&specs, &events, dur_s, retention_s, kind, kernel, reps);
            assert_eq!(*fp.get_or_insert(r.fingerprint), r.fingerprint, "snapshot divergence");
            let eps = events.len() as f64 / r.ingest_s;
            println!(
                "{}/{}: ingest {:.2}ms -> {:.0} ev/s (total {:.3}s, fingerprint {:#x})",
                store_label(kind),
                kernel.label(),
                r.ingest_s * 1e3,
                eps,
                r.elapsed_s,
                r.fingerprint
            );
            entries.push(serde_json::json!({
                "cell_store": store_label(kind),
                "kernel_kind": kernel.label(),
                "ingest_ms": (r.ingest_s * 1e5).round() / 100.0,
                "events_per_sec": eps.round(),
            }));
        }
    }

    let out = serde_json::json!({
        "bench": "ingest_loop",
        "git_rev": git_rev(),
        "workload": {
            "templates": templates,
            "qps": qps,
            "duration_s": dur_s,
            "retention_s": retention_s,
        },
        "events": events.len(),
        "entries": entries,
    });
    std::fs::create_dir_all("results").expect("create results dir");
    let path = "results/ingest_rate.json";
    std::fs::write(path, serde_json::to_string_pretty(&out).expect("serialize") + "\n")
        .unwrap_or_else(|e| panic!("write {path}: {e}"));
    eprintln!("wrote {path}");
}
