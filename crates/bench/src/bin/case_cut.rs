//! Window-cut assembly benchmark with a committed-summary gate.
//!
//! Replays a [`pinsql_bench::synth`] telemetry stream through the
//! incremental collector once per [`CutKind`], then measures the
//! *cut-assembly slice*: the work between "the case closed" and "the
//! diagnosis has its normalized minute matrix and template↔session
//! gate". Under [`CutKind::Reference`] that slice re-derives every
//! template's 1-minute row (`TemplateSeries::per_minute`), normalizes
//! the matrix, and computes one Pearson per template over the window's
//! seconds — O(templates × window). Under [`CutKind::Incremental`] the
//! rows and gate were maintained as running moments at ingest, so the
//! slice is just the normalization over rows the snapshot already
//! carries — O(templates) beyond the matrix itself.
//!
//! Every sweep point asserts the two paths are **fingerprint-identical**:
//! the incremental rows' raw f64 bits must equal the reference
//! derivation's, and both aggregators must fold the identical case, so
//! the diagnosis downstream of the cut cannot diverge.
//!
//! Modes:
//!
//! * default — sweep templates × window, print, and write
//!   `results/case_cut.json` (gitignored; distilled into the committed
//!   `BENCH_case_cut.json` by `scripts/bench_summary.sh`).
//!   Args: `[qps] [reps]`.
//! * `--gate <BENCH_case_cut.json>` — CI case-cut smoke gate: re-runs
//!   the committed smoke workload and fails (exit 1) if the measured
//!   reference-over-incremental assembly speedup regresses more than
//!   20% below the committed one. The ratio is machine-neutral —
//!   absolute latencies vary with the host, the structural win of
//!   carrying the rows over re-deriving them should not.

use pinsql_bench::synth::{synthetic_specs, synthetic_stream};
use pinsql_collector::{CaseData, IncrementalAggregator, IncrementalConfig, WindowCut};
use pinsql_dbsim::{query_run, TelemetryEvent};
use pinsql_detect::CutKind;
use pinsql_timeseries::{pearson, NormalizedMatrix};
use pinsql_workload::TemplateSpec;
use std::time::Instant;

/// FNV-1a over a row set's raw f64 bits.
fn fingerprint_rows(rows: &[Vec<f64>]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x100000001b3);
    };
    mix(rows.len() as u64);
    for row in rows {
        mix(row.len() as u64);
        for v in row {
            mix(v.to_bits());
        }
    }
    h
}

/// FNV-1a over the case structure the diagnosis reads (ids, series bits,
/// metrics bits) — byte-stable equivalence across the two cut paths.
fn fingerprint_case(case: &CaseData) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x100000001b3);
    };
    mix(case.records.len() as u64);
    for t in &case.templates {
        mix(t.id.0 as u64);
        for v in t.series.execution_count.iter().chain(&t.series.total_rt_ms) {
            mix(v.to_bits());
        }
    }
    for v in case.metrics.active_session.iter().chain(&case.metrics.qps) {
        mix(v.to_bits());
    }
    h
}

struct Replay {
    case: CaseData,
    /// Seconds spent in the collector's ingest slice.
    ingest_s: f64,
}

/// Folds the stream under one cut kind and closes the window
/// `[dur_s - window_s, dur_s]`.
fn replay(
    specs: &[TemplateSpec],
    events: &[TelemetryEvent],
    dur_s: i64,
    window_s: i64,
    cut: CutKind,
) -> Replay {
    let mut stream: Vec<TelemetryEvent> = events.to_vec();
    let mut agg = IncrementalAggregator::new(
        specs,
        IncrementalConfig::default().with_retention(window_s.max(60)).with_cut(cut),
    );
    let mut ingest_s = 0.0f64;
    let mut i = 0;
    while i < stream.len() {
        if let Some((second, len)) = query_run(&stream, i) {
            let s0 = Instant::now();
            agg.ingest_query_run(second, &stream[i..i + len]);
            ingest_s += s0.elapsed().as_secs_f64();
            i += len;
        } else {
            let ev = std::mem::replace(&mut stream[i], TelemetryEvent::Tick { second: i64::MIN });
            let s0 = Instant::now();
            agg.ingest(ev);
            ingest_s += s0.elapsed().as_secs_f64();
            i += 1;
        }
    }
    Replay { case: agg.snapshot(dur_s - window_s, dur_s), ingest_s }
}

/// The reference assembly: re-derive every row, normalize, gate via one
/// Pearson per template over the window's seconds.
fn assemble_reference(case: &CaseData) -> (Vec<Vec<f64>>, Vec<f64>, usize) {
    let rows: Vec<Vec<f64>> = case.templates.iter().map(|t| t.series.per_minute()).collect();
    let refs: Vec<&[f64]> = rows.iter().map(|v| v.as_slice()).collect();
    let matrix = NormalizedMatrix::from_series(&refs);
    let gate: Vec<f64> = case
        .templates
        .iter()
        .map(|t| pearson(&t.series.execution_count, &case.metrics.active_session))
        .collect();
    (rows, gate, matrix.row_len())
}

/// The incremental assembly: normalize the rows the snapshot already
/// carries; the gate is already there.
fn assemble_incremental(cut: &WindowCut) -> usize {
    NormalizedMatrix::from_series(&cut.row_refs()).row_len()
}

struct SweepPoint {
    reference_ms: f64,
    incremental_ms: f64,
    speedup: f64,
    ingest_reference_ms: f64,
    ingest_incremental_ms: f64,
    moments_pushed: u64,
    moments_evicted: u64,
}

/// One sweep point: replay under both cut kinds, assert the paths are
/// fingerprint-identical, and time the assembly slice best-of-`reps`.
fn measure(
    specs: &[TemplateSpec],
    events: &[TelemetryEvent],
    dur_s: i64,
    window_s: i64,
    reps: usize,
) -> SweepPoint {
    let inc = replay(specs, events, dur_s, window_s, CutKind::Incremental);
    let reference = replay(specs, events, dur_s, window_s, CutKind::Reference);
    assert_eq!(
        fingerprint_case(&inc.case),
        fingerprint_case(&reference.case),
        "the cut kinds folded different cases"
    );
    let cut = inc.case.cut.as_deref().expect("incremental replay carries a cut");
    assert!(reference.case.cut.is_none(), "reference replay must not carry a cut");

    let mut reference_s = f64::INFINITY;
    let mut incremental_s = f64::INFINITY;
    let mut ref_rows_fp = 0u64;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let (rows, gate, row_len) = assemble_reference(&reference.case);
        reference_s = reference_s.min(t0.elapsed().as_secs_f64());
        assert_eq!(gate.len(), rows.len());
        ref_rows_fp = fingerprint_rows(&rows);

        let t0 = Instant::now();
        let inc_row_len = assemble_incremental(cut);
        incremental_s = incremental_s.min(t0.elapsed().as_secs_f64());
        assert_eq!(inc_row_len, row_len, "matrix shapes diverged");
    }
    assert_eq!(
        fingerprint_rows(&cut.minute_rows),
        ref_rows_fp,
        "incremental rows diverged from the reference derivation"
    );

    SweepPoint {
        reference_ms: reference_s * 1e3,
        incremental_ms: incremental_s * 1e3,
        speedup: reference_s / incremental_s,
        ingest_reference_ms: reference.ingest_s * 1e3,
        ingest_incremental_ms: inc.ingest_s * 1e3,
        moments_pushed: cut.moments_pushed,
        moments_evicted: cut.moments_evicted,
    }
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}

fn gate_mode(committed_path: &str, reps: usize) -> ! {
    let text = std::fs::read_to_string(committed_path)
        .unwrap_or_else(|e| panic!("cannot read {committed_path}: {e}"));
    let committed: serde_json::Value =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("bad JSON in {committed_path}: {e}"));
    let smoke = &committed["smoke"];
    let w = &smoke["workload"];
    let (templates, qps, dur_s, window_s) = (
        w["templates"].as_u64().expect("smoke.workload.templates") as usize,
        w["qps"].as_u64().expect("smoke.workload.qps") as usize,
        w["duration_s"].as_i64().expect("smoke.workload.duration_s"),
        w["window_s"].as_i64().expect("smoke.workload.window_s"),
    );
    let committed_speedup =
        smoke["incremental_speedup"].as_f64().expect("smoke.incremental_speedup");

    let specs = synthetic_specs(templates);
    let events = synthetic_stream(templates, qps, dur_s, 0xC0FFEE);
    let p = measure(&specs, &events, dur_s, window_s, reps);
    let floor = 0.8 * committed_speedup;
    eprintln!(
        "case_cut_smoke: reference {:.3}ms, incremental {:.3}ms -> speedup {:.2} \
         (committed {committed_speedup:.2}, floor {floor:.2})",
        p.reference_ms, p.incremental_ms, p.speedup,
    );
    if p.speedup < floor {
        eprintln!(
            "case_cut_smoke: FAIL — incremental cut-assembly advantage regressed >20% vs \
             {committed_path}"
        );
        std::process::exit(1);
    }
    eprintln!("case_cut_smoke: OK");
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(p) = args.iter().position(|a| a == "--gate") {
        let path = args.get(p + 1).expect("--gate needs a committed summary path").clone();
        let reps = args.get(p + 2).and_then(|s| s.parse().ok()).unwrap_or(5);
        gate_mode(&path, reps);
    }

    let qps: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(25);
    let reps: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(7);

    let mut entries = Vec::new();
    for templates in [500usize, 1500, 3000] {
        let specs = synthetic_specs(templates);
        for window_s in [180i64, 420] {
            // Run past the window so retention actually evicts.
            let dur_s = window_s + 240;
            let events = synthetic_stream(templates, qps, dur_s, 0xC0FFEE);
            let p = measure(&specs, &events, dur_s, window_s, reps);
            println!(
                "{templates} templates x {window_s}s: reference {:.3}ms, incremental {:.3}ms \
                 -> speedup {:.1}x (ingest {:.2}ms vs {:.2}ms, {} pushed / {} evicted)",
                p.reference_ms,
                p.incremental_ms,
                p.speedup,
                p.ingest_reference_ms,
                p.ingest_incremental_ms,
                p.moments_pushed,
                p.moments_evicted,
            );
            entries.push(serde_json::json!({
                "templates": templates,
                "window_s": window_s,
                "reference_cut_ms": (p.reference_ms * 1e3).round() / 1e3,
                "incremental_cut_ms": (p.incremental_ms * 1e3).round() / 1e3,
                "speedup": (p.speedup * 10.0).round() / 10.0,
                "ingest_reference_ms": (p.ingest_reference_ms * 1e2).round() / 1e2,
                "ingest_incremental_ms": (p.ingest_incremental_ms * 1e2).round() / 1e2,
                "moments_pushed": p.moments_pushed,
                "moments_evicted": p.moments_evicted,
            }));
        }
    }

    let out = serde_json::json!({
        "bench": "case_cut",
        "git_rev": git_rev(),
        "workload": { "qps": qps, "reps": reps },
        "entries": entries,
    });
    std::fs::create_dir_all("results").expect("create results dir");
    let path = "results/case_cut.json";
    std::fs::write(path, serde_json::to_string_pretty(&out).expect("serialize") + "\n")
        .unwrap_or_else(|e| panic!("write {path}: {e}"));
    eprintln!("wrote {path}");
}
