//! Regenerates Table II: optimization gains, R-SQLs vs slow SQLs.
//!
//! Usage: `cargo run -p pinsql-bench --release --bin table2 [-- N_CASES [SEED]]`

use pinsql_eval::caseset::CaseSetConfig;
use pinsql_eval::experiments::table2;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(32);
    let seed: u64 = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(4242);
    let cfg = CaseSetConfig::default().with_seed(seed);
    eprintln!("optimizing across {n} cases (each case re-simulates twice)...");
    let t = table2::run(&cfg, n);
    println!("{t}");
}
