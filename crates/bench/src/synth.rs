//! Synthetic fleet-scale ingest workload for the ingest-rate benches.
//!
//! A deterministic stream of `qps` query records per second over
//! `n_templates` templates (80% of traffic on the hottest 10% — the
//! skew a production instance's template population shows), with one
//! metrics sample and one tick per second and a 60 s active-session
//! surge in the final third. Everything derives from one LCG seed, so
//! two runs — or two cell-store/kernel configurations — fold the exact
//! same bits and their snapshots can be compared byte-for-byte.

use pinsql_dbsim::{MetricsSample, QueryRecord, TelemetryEvent};
use pinsql_workload::{CostProfile, SpecId, TableId, TemplateSpec};

/// Small deterministic LCG (same constants as the test suites).
pub struct Lcg(pub u64);

impl Lcg {
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 11
    }
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() & ((1 << 53) - 1)) as f64 / (1u64 << 53) as f64
    }
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// `n` point-read template specs; `SpecId(i)` maps to the `i`-th spec.
pub fn synthetic_specs(n: usize) -> Vec<TemplateSpec> {
    (0..n)
        .map(|i| {
            TemplateSpec::new(
                &format!("SELECT c{i} FROM bench_t{i} WHERE id = ?"),
                CostProfile::point_read(TableId(0)),
                format!("synth{i}"),
            )
        })
        .collect()
}

/// A time-ordered telemetry stream: per second, `qps` skewed query
/// records (sorted by sub-second arrival), one metrics sample, one tick.
pub fn synthetic_stream(n_templates: usize, qps: usize, dur_s: i64, seed: u64) -> Vec<TelemetryEvent> {
    let mut rng = Lcg(seed);
    let mut events = Vec::with_capacity(qps * dur_s as usize + 2 * dur_s as usize);
    for s in 0..dur_s {
        let base = s as f64 * 1000.0;
        let mut offs: Vec<f64> = (0..qps).map(|_| rng.next_f64() * 999.0).collect();
        offs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for off in offs {
            let t = if rng.next_f64() < 0.8 {
                rng.below((n_templates / 10).max(1))
            } else {
                rng.below(n_templates)
            };
            events.push(TelemetryEvent::Query(QueryRecord {
                spec: SpecId(t),
                start_ms: base + off,
                response_ms: 1.0 + rng.next_f64() * 20.0,
                examined_rows: (rng.next_u64() % 50) as u64,
            }));
        }
        let surge = s >= dur_s * 2 / 3 && s < dur_s * 2 / 3 + 60;
        events.push(TelemetryEvent::Metrics(Box::new(MetricsSample {
            second: s,
            active_session: if surge { 80.0 + rng.next_f64() } else { 4.0 + rng.next_f64() * 2.0 },
            cpu_usage: 0.3 + rng.next_f64() * 0.05 + if surge { 0.5 } else { 0.0 },
            iops_usage: 0.2 + rng.next_f64() * 0.02,
            row_lock_waits: rng.next_f64().floor(),
            mdl_waits: 0.0,
            qps: qps as f64 + rng.next_f64(),
            probes: Vec::new(),
        })));
        events.push(TelemetryEvent::Tick { second: s + 1 });
    }
    events
}
