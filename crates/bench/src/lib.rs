//! Shared helpers for the bench binaries and criterion benches.
//!
//! The table/figure binaries drive full scenarios; [`synth`] provides the
//! lighter fleet-scale ingest workload (thousands of templates, Zipf-ish
//! skew, per-second metrics + ticks) that the ingest-rate benches and the
//! CI kernel-smoke gate share, so "the committed number" and "the number
//! the gate re-measures" come from the same generator.

pub mod synth;
