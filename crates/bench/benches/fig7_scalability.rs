//! Criterion bench for Fig. 7: diagnosis cost as the template count and
//! the anomaly length grow (synthetic timing cases, fixed total traffic).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pinsql::{PinSql, PinSqlConfig};
use pinsql_collector::HistoryStore;
use pinsql_eval::experiments::fig7::timing_case;
use std::hint::black_box;

fn bench_by_templates(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7/by_templates");
    group.sample_size(10);
    for n_templates in [250usize, 1000, 4000] {
        let (case, window) = timing_case(n_templates, 180, 31);
        group.throughput(Throughput::Elements(case.records.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(n_templates),
            &n_templates,
            |b, _| {
                let pinsql = PinSql::new(PinSqlConfig::default());
                let history = HistoryStore::new();
                b.iter(|| black_box(pinsql.diagnose(&case, &window, &history, 1_000_000)))
            },
        );
    }
    group.finish();
}

fn bench_by_anomaly_len(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7/by_anomaly_len");
    group.sample_size(10);
    for len_s in [120i64, 480, 1200] {
        let (case, window) = timing_case(500, len_s, 32);
        group.throughput(Throughput::Elements(case.records.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(len_s), &len_s, |b, _| {
            let pinsql = PinSql::new(PinSqlConfig::default());
            let history = HistoryStore::new();
            b.iter(|| black_box(pinsql.diagnose(&case, &window, &history, 1_000_000)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_by_templates, bench_by_anomaly_len);
criterion_main!(benches);
