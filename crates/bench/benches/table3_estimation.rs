//! Criterion bench for the Table III estimators: cost of reconstructing
//! individual active sessions with each variant (the paper reports the
//! estimation stage dominating PinSQL's 14.94 s at 8.01 s).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pinsql::{estimate_sessions, EstimatorKind, PinSqlConfig};
use pinsql_eval::experiments::fig7::timing_case;
use std::hint::black_box;

fn bench_estimators(c: &mut Criterion) {
    let (case, _) = timing_case(1000, 300, 77);
    let mut group = c.benchmark_group("table3/estimators");
    group.sample_size(10);
    for (name, kind, k) in [
        ("by_rt", EstimatorKind::ByRt, 10usize),
        ("no_buckets", EstimatorKind::NoBuckets, 1),
        ("buckets_k10", EstimatorKind::Buckets, 10),
        ("buckets_k20", EstimatorKind::Buckets, 20),
    ] {
        let cfg = PinSqlConfig::default().with_estimator(kind).with_buckets(k);
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| black_box(estimate_sessions(&case, cfg)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_estimators);
criterion_main!(benches);
