//! Micro-benchmarks of the hot primitives: Pearson / weighted Pearson
//! correlation, template clustering (connected components over a
//! correlation graph), the normalized-matrix graph kernel vs the naive
//! scalar pair loop, and SQL fingerprinting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pinsql_timeseries::{
    connected_components, connected_components_par, pearson, sigmoid_window_weights,
    weighted_pearson, NormalizedMatrix,
};
use std::hint::black_box;

fn series(n: usize, seed: u64) -> Vec<f64> {
    let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    (0..n)
        .map(|i| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (i as f64 / 25.0).sin() * 10.0 + (x % 1000) as f64 / 100.0
        })
        .collect()
}

fn bench_correlation(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives/correlation");
    for n in [600usize, 2400] {
        let a = series(n, 1);
        let b = series(n, 2);
        let w = sigmoid_window_weights(0, n as i64, 1, n as i64 / 2, n as i64 * 3 / 4, 30.0);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("pearson", n), &n, |bench, _| {
            bench.iter(|| black_box(pearson(&a, &b)))
        });
        group.bench_with_input(BenchmarkId::new("weighted_pearson", n), &n, |bench, _| {
            bench.iter(|| black_box(weighted_pearson(&a, &b, &w)))
        });
    }
    group.finish();
}

fn bench_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives/clustering");
    group.sample_size(10);
    for n_series in [200usize, 1000, 3000] {
        let data: Vec<Vec<f64>> = (0..n_series).map(|i| series(40, i as u64)).collect();
        let refs: Vec<&[f64]> = data.iter().map(Vec::as_slice).collect();
        group.throughput(Throughput::Elements(n_series as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n_series), &n_series, |b, _| {
            b.iter(|| black_box(connected_components(&refs, 0.8)))
        });
    }
    group.finish();
}

/// The ISSUE's headline comparison: building the τ-thresholded pairwise
/// correlation graph with (a) the naive O(n²·L) scalar `pearson` pair
/// loop, (b) the `NormalizedMatrix` dot-product kernel (moments hoisted,
/// contiguous rows), and (c) the kernel fanned out across all cores.
fn bench_graph_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives/graph_build");
    group.sample_size(10);
    const L: usize = 40;
    const TAU: f64 = 0.8;
    for n_series in [100usize, 1000, 3000] {
        let data: Vec<Vec<f64>> = (0..n_series).map(|i| series(L, i as u64)).collect();
        let refs: Vec<&[f64]> = data.iter().map(Vec::as_slice).collect();
        group.throughput(Throughput::Elements((n_series * n_series) as u64 / 2));
        group.bench_with_input(
            BenchmarkId::new("scalar_pair_loop", n_series),
            &n_series,
            |b, &n| {
                b.iter(|| {
                    let mut edges = 0usize;
                    for i in 0..n {
                        for j in (i + 1)..n {
                            if pearson(refs[i], refs[j]) > TAU {
                                edges += 1;
                            }
                        }
                    }
                    black_box(edges)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("normalized_matrix", n_series),
            &n_series,
            |b, _| b.iter(|| black_box(connected_components(&refs, TAU))),
        );
        group.bench_with_input(
            BenchmarkId::new("normalized_matrix_par", n_series),
            &n_series,
            |b, _| b.iter(|| black_box(connected_components_par(&refs, TAU, 0))),
        );
        group.bench_with_input(
            BenchmarkId::new("matrix_build_only", n_series),
            &n_series,
            |b, _| b.iter(|| black_box(NormalizedMatrix::from_series(&refs))),
        );
    }
    group.finish();
}

fn bench_fingerprint(c: &mut Criterion) {
    let sqls = [
        "SELECT * FROM user_table WHERE uid = 123456",
        "UPDATE sales SET qty = qty - 1, updated_at = '2022-01-01' WHERE sku = 'A-42' AND region IN (1,2,3,4,5)",
        "SELECT o.id, o.total, c.name FROM orders o JOIN customers c ON o.cid = c.id WHERE o.ts > 1640000000 AND o.status = 'open' ORDER BY o.ts DESC LIMIT 50",
    ];
    let mut group = c.benchmark_group("primitives/fingerprint");
    for (i, sql) in sqls.iter().enumerate() {
        group.throughput(Throughput::Bytes(sql.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(i), sql, |b, sql| {
            b.iter(|| black_box(pinsql_sqlkit::fingerprint(sql)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_correlation,
    bench_clustering,
    bench_graph_build,
    bench_fingerprint
);
criterion_main!(benches);
