//! Micro-benchmark of the fleet engine's per-event ingest loop.
//!
//! Measures one instance's telemetry stream flowing through the
//! incremental collector end to end, comparing:
//!
//! * `scalar_dense` — one `ingest` call per event (the pre-chunking hot
//!   path) over the dense slab store;
//! * `chunked_dense` — `ingest_drain`, which folds same-second query runs
//!   with one watermark check and one cell-row lookup per run;
//! * `chunked_hashed` — the chunked path over the hashed reference store,
//!   isolating what the direct-indexed slab buys.
//!
//! All three produce bit-identical aggregator state (pinned by unit and
//! property tests); only the cost differs. Streams are cloned per
//! iteration (`iter_batched`) because ingestion consumes events by value.
//!
//! A second group compares the full `OnlineInstance` pipeline with
//! observability disabled (`NoopObserver`, the default — instrumentation
//! must compile to nothing; `obs_smoke` asserts the factor) and enabled
//! (`RecordingObserver` — the price of per-event span recording).
//!
//! A third group, `ingest_loop_fleet`, replays the 3000-template
//! synthetic fleet workload (the committed `BENCH_ingest_loop.json`
//! shape, shortened for criterion) across `CellStoreKind` ×
//! `KernelKind`, collector and detector bank together — the matrix the
//! `ingest_rate` binary measures at full length.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use pinsql_bench::synth::{synthetic_specs, synthetic_stream};
use pinsql_collector::{CellStoreKind, IncrementalAggregator, IncrementalConfig};
use pinsql_detect::OnlineDetectorBank;
use pinsql_engine::OnlineInstance;
use pinsql_obs::{Observer, RecordingObserver};
use pinsql_scenario::{generate_base, inject, materialize_events, AnomalyKind, ScenarioConfig};
use pinsql_timeseries::KernelKind;

fn bench_ingest(c: &mut Criterion) {
    let cfg = ScenarioConfig::default().with_seed(77).with_businesses(8).with_window(300, 180, 240);
    let base = generate_base(&cfg);
    let scenario = inject(&base, &cfg, AnomalyKind::BusinessSpike);
    let events = materialize_events(&scenario, None);
    let specs = &scenario.workload.specs;

    let mut group = c.benchmark_group("ingest_loop");
    group.throughput(Throughput::Elements(events.len() as u64));

    group.bench_function("scalar_dense", |b| {
        b.iter_batched(
            || events.clone(),
            |evs| {
                let mut agg = IncrementalAggregator::new(specs, IncrementalConfig::default());
                for ev in evs {
                    agg.ingest(ev);
                }
                agg
            },
            BatchSize::LargeInput,
        )
    });

    group.bench_function("chunked_dense", |b| {
        b.iter_batched(
            || events.clone(),
            |mut evs| {
                let mut agg = IncrementalAggregator::new(specs, IncrementalConfig::default());
                agg.ingest_drain(&mut evs);
                agg
            },
            BatchSize::LargeInput,
        )
    });

    group.bench_function("chunked_hashed", |b| {
        b.iter_batched(
            || events.clone(),
            |mut evs| {
                let mut agg = IncrementalAggregator::new(
                    specs,
                    IncrementalConfig::default().with_cell_store(CellStoreKind::Hashed),
                );
                agg.ingest_drain(&mut evs);
                agg
            },
            BatchSize::LargeInput,
        )
    });

    group.finish();
}

fn bench_fleet_scale(c: &mut Criterion) {
    let templates = 3000;
    let (qps, dur_s, retention_s) = (25, 600, 420);
    let specs = synthetic_specs(templates);
    let events = synthetic_stream(templates, qps, dur_s, 0xC0FFEE);

    let mut group = c.benchmark_group("ingest_loop_fleet");
    group.throughput(Throughput::Elements(events.len() as u64));
    group.sample_size(10);

    for kind in [CellStoreKind::Dense, CellStoreKind::Hashed] {
        for kernel in [KernelKind::Fast, KernelKind::Reference] {
            let name = format!("{kind:?}_{}", kernel.label()).to_lowercase();
            group.bench_function(&name, |b| {
                b.iter_batched(
                    || events.clone(),
                    |mut evs| {
                        let mut agg = IncrementalAggregator::new(
                            &specs,
                            IncrementalConfig::default()
                                .with_retention(retention_s)
                                .with_cell_store(kind),
                        );
                        let mut bank = OnlineDetectorBank::with_kernel(kernel);
                        for ev in &evs {
                            if let pinsql_dbsim::TelemetryEvent::Metrics(sample) = ev {
                                bank.observe(sample);
                            }
                        }
                        agg.ingest_drain(&mut evs);
                        bank.finish();
                        (agg, bank)
                    },
                    BatchSize::LargeInput,
                )
            });
        }
    }

    group.finish();
}

fn bench_observed_instance(c: &mut Criterion) {
    let cfg = ScenarioConfig::default().with_seed(77).with_businesses(8).with_window(300, 180, 240);
    let base = generate_base(&cfg);
    let scenario = inject(&base, &cfg, AnomalyKind::BusinessSpike);
    let events = materialize_events(&scenario, None);

    let mut group = c.benchmark_group("instance_ingest");
    group.throughput(Throughput::Elements(events.len() as u64));

    group.bench_function("noop_observer", |b| {
        b.iter_batched(
            || events.clone(),
            |evs| {
                let mut inst = OnlineInstance::new(&scenario, 180);
                inst.ingest_stream(evs);
                inst.events_ingested()
            },
            BatchSize::LargeInput,
        )
    });

    group.bench_function("recording_observer", |b| {
        b.iter_batched(
            || events.clone(),
            |evs| {
                let obs = RecordingObserver::new();
                let mut inst = OnlineInstance::with_observer(&scenario, 180, obs.fork("bench"));
                inst.ingest_stream(evs);
                inst.events_ingested()
            },
            BatchSize::LargeInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_ingest, bench_fleet_scale, bench_observed_instance);
criterion_main!(benches);
