//! Criterion bench for the Table I `Time` column: per-case wall time of
//! the full PinSQL diagnosis vs the Top-SQL sort, on one representative
//! generated case per anomaly kind.

use criterion::{criterion_group, criterion_main, Criterion};
use pinsql::{PinSql, PinSqlConfig};
use pinsql_baselines::{rank_top, TopMetric};
use pinsql_eval::caseset::{build_case, CaseSetConfig};
use std::hint::black_box;

fn bench_table1_time(c: &mut Criterion) {
    let cfg = CaseSetConfig::default().with_cases(4).with_seed(9001);
    // One case per kind (round-robin order).
    let cases: Vec<_> = (0..4).map(|i| build_case(&cfg, i)).collect();
    let mut group = c.benchmark_group("table1_time");
    group.sample_size(10);

    for (i, case) in cases.iter().enumerate() {
        let kind = format!("{:?}", case.kind).to_lowercase();
        group.bench_function(format!("pinsql_diagnose/{kind}_{i}"), |b| {
            let pinsql = PinSql::new(PinSqlConfig::default());
            b.iter(|| {
                black_box(pinsql.diagnose(
                    &case.case,
                    &case.window,
                    &case.history,
                    case.minutes_origin,
                ))
            })
        });
        group.bench_function(format!("top_rt_sort/{kind}_{i}"), |b| {
            b.iter(|| black_box(rank_top(&case.case, &case.window, TopMetric::TotalResponseTime)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1_time);
criterion_main!(benches);
