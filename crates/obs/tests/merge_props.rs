//! Property tests for registry/histogram merge algebra.
//!
//! The fleet engine merges per-shard registries in whatever order shards
//! finish, so the merge must be associative and commutative, and bucket
//! counts must sum exactly across arbitrary shard splits. These are
//! deterministic property tests over an explicit LCG (no external
//! dependency, seeds printed in failures), sweeping many random workloads
//! and split shapes per property.

use pinsql_obs::{Counter, Gauge, LatencyHistogram, Registry, Stage};

/// Deterministic 64-bit LCG (MMIX constants) — reproducible workloads.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493))
    }
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0
    }
    fn below(&mut self, n: u64) -> u64 {
        // Top bits have the longest period.
        (self.next() >> 11) % n.max(1)
    }
}

/// A random span workload: durations spread across the full log2 range
/// (including 0 and huge values) so every bucket shape gets exercised.
fn random_durations(rng: &mut Lcg, n: usize) -> Vec<u64> {
    (0..n)
        .map(|_| {
            let magnitude = rng.below(64);
            if magnitude == 0 { 0 } else { rng.next() >> (64 - magnitude.min(63)) }
        })
        .collect()
}

fn hist_of(durations: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &d in durations {
        h.record(d);
    }
    h
}

/// Applies one random op stream to a registry (spans + counters + gauges).
fn apply_ops(reg: &mut Registry, rng: &mut Lcg, n: usize) {
    for _ in 0..n {
        match rng.below(3) {
            0 => {
                let stage = Stage::ALL[rng.below(Stage::COUNT as u64) as usize];
                let start = rng.below(1 << 40);
                let dur = rng.below(1 << 30);
                reg.record_span(stage, rng.below(4) as u32, start, start + dur);
            }
            1 => {
                let c = Counter::ALL[rng.below(Counter::COUNT as u64) as usize];
                reg.add(c, rng.below(1000));
            }
            _ => {
                let g = Gauge::ALL[rng.below(Gauge::COUNT as u64) as usize];
                reg.gauge(g, rng.below(1 << 20));
            }
        }
    }
}

fn assert_registry_eq(a: &Registry, b: &Registry, ctx: &str) {
    for s in Stage::ALL {
        assert_eq!(a.span_hist(s), b.span_hist(s), "{ctx}: stage {}", s.name());
    }
    for c in Counter::ALL {
        assert_eq!(a.counter(c), b.counter(c), "{ctx}: counter {}", c.name());
    }
    for g in Gauge::ALL {
        assert_eq!(a.gauge_value(g), b.gauge_value(g), "{ctx}: gauge {}", g.name());
    }
}

#[test]
fn histogram_bucket_counts_sum_exactly_over_arbitrary_splits() {
    for seed in 0..200u64 {
        let mut rng = Lcg::new(seed);
        let n = 1 + rng.below(500) as usize;
        let durations = random_durations(&mut rng, n);
        let whole = hist_of(&durations);

        // A random shard split: each duration assigned to one of k parts.
        let k = 1 + rng.below(8) as usize;
        let mut parts = vec![LatencyHistogram::new(); k];
        for &d in &durations {
            parts[rng.below(k as u64) as usize].record(d);
        }
        let mut merged = LatencyHistogram::new();
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(merged, whole, "seed {seed}: split-merge must equal bulk");
        assert_eq!(
            merged.buckets().iter().sum::<u64>(),
            n as u64,
            "seed {seed}: every duration lands in exactly one bucket"
        );
        assert_eq!(merged.count(), n as u64, "seed {seed}");
    }
}

#[test]
fn histogram_merge_is_commutative_and_associative() {
    for seed in 0..200u64 {
        let mut rng = Lcg::new(0xABCD ^ seed);
        let sized = |rng: &mut Lcg| {
            let n = 1 + rng.below(200) as usize;
            hist_of(&random_durations(rng, n))
        };
        let a = sized(&mut rng);
        let b = sized(&mut rng);
        let c = sized(&mut rng);

        // a ⊕ b == b ⊕ a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "seed {seed}: commutativity");

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "seed {seed}: associativity");

        // Identity: merging an empty histogram changes nothing.
        let mut a_id = a.clone();
        a_id.merge(&LatencyHistogram::new());
        assert_eq!(a_id, a, "seed {seed}: identity");
    }
}

#[test]
fn registry_merge_is_commutative_and_associative() {
    for seed in 0..100u64 {
        let mut rng = Lcg::new(0xFEED ^ seed);
        let mut a = Registry::new();
        let mut b = Registry::new();
        let mut c = Registry::new();
        for reg in [&mut a, &mut b, &mut c] {
            let n = 1 + rng.below(300) as usize;
            apply_ops(reg, &mut rng, n);
        }

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        // Traces concatenate in merge order (order is presentation, not
        // data), so commutativity is over histograms/counters/gauges.
        assert_registry_eq(&ab, &ba, &format!("seed {seed} commutativity"));
        assert_eq!(ab.trace().len(), ba.trace().len(), "seed {seed}");

        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_registry_eq(&ab_c, &a_bc, &format!("seed {seed} associativity"));
    }
}

#[test]
fn registry_split_merge_equals_single_stream() {
    // One op stream applied whole vs. round-robined across k registries
    // then merged: counters and histograms must agree exactly.
    for seed in 0..60u64 {
        let mut rng = Lcg::new(0xC0FFEE ^ seed);
        let n_ops = 1 + rng.below(400) as usize;
        let k = 1 + rng.below(6) as usize;

        // Re-derive the identical op stream from a cloned rng state.
        let mut whole = Registry::new();
        let mut rng_whole = Lcg(rng.0);
        apply_ops(&mut whole, &mut rng_whole, n_ops);

        let mut parts = vec![Registry::new(); k];
        let mut rng_parts = Lcg(rng.0);
        for i in 0..n_ops {
            apply_ops(&mut parts[i % k], &mut rng_parts, 1);
        }

        let mut merged = Registry::new();
        for p in &parts {
            merged.merge(p);
        }
        assert_registry_eq(&merged, &whole, &format!("seed {seed} split/whole"));
    }
}
