//! Deterministic observability for the online fleet engine.
//!
//! Production PinSQL (§VII) runs unattended over hundreds of instances;
//! when a fleet stalls, the first question is *where the time goes* and
//! *whether the pipeline is healthy* — without perturbing the diagnosis
//! itself. This crate is that layer, built around three hard constraints:
//!
//! 1. **Statically zero-cost when off.** Instrumented code is generic
//!    over [`Observer`]; the default [`NoopObserver`] is a ZST whose
//!    associated `const ENABLED: bool = false` guards every call site, so
//!    monomorphization dead-strips the entire layer — no branch, no time
//!    read, no atomic — from the uninstrumented build. The workspace's
//!    `obs_smoke` suite guards this.
//! 2. **Provably inert when on.** Observers only *watch*: they never
//!    touch pipeline data, so diagnoses are byte-identical with recording
//!    enabled or disabled, at every shard/fan-out combination
//!    (`obs_equivalence` pins this against the golden corpus).
//! 3. **Mergeable across threads.** Stage latencies land in log2-bucketed
//!    [`LatencyHistogram`]s and counters are plain monotone sums, so
//!    per-shard registries merge associatively and commutatively
//!    (`merge_props` pins this) and a fleet-level roll-up is exact.
//!
//! What the layer captures:
//!
//! * [`Stage`] **spans** — one per pipeline stage (ingest merge, cell
//!   fold, detector step, window cut, session estimation, H-SQL, R-SQL,
//!   repair), each feeding a per-stage histogram and a capped trace-event
//!   ring for chrome-trace export ([`export::chrome_trace`]).
//! * [`Counter`]s / [`Gauge`]s — monotone pipeline counters (events,
//!   queries, drops, evictions, cases) and resident-state gauges (queue
//!   depths, templates tracked).
//! * [`HealthSnapshot`] — a cheap point-in-time health read of one
//!   instance, aggregated fleet-wide into [`FleetHealth`].

pub mod export;
mod health;
mod hist;
mod observer;
mod registry;

pub use health::{FleetHealth, FleetRollup, HealthRollup, HealthSnapshot, RegionRollup};
pub use hist::LatencyHistogram;
pub use observer::{NoopObserver, Observer, RecordingObserver};
pub use registry::{Registry, TraceEvent};

/// One pipeline stage a span can cover, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// One shard's whole k-way merge loop over its instance slice.
    IngestMerge,
    /// Folding telemetry into the incremental aggregator (scalar event or
    /// chunked same-second query run).
    CellFold,
    /// Driving the online detector bank with one metrics sample.
    DetectorStep,
    /// Case close: window selection plus the `CaseData` snapshot cut.
    WindowCut,
    /// Just the `CaseData` snapshot cut — assembling the retained rings
    /// (and, on the incremental path, the precomputed minute rows and
    /// gate scores) into the diagnosis input. A sub-span of
    /// [`WindowCut`](Stage::WindowCut).
    CaseCut,
    /// §IV-C individual active-session estimation.
    SessionEstimate,
    /// §V H-SQL impact ranking.
    Hsql,
    /// §VI R-SQL clustering, correlation, and history verification.
    Rsql,
    /// Repairing-module action suggestion.
    Repair,
    /// Serializing one instance's online state into a checkpoint blob.
    SnapshotWrite,
    /// Rebuilding one instance's online state from a checkpoint blob.
    SnapshotRestore,
    /// One reshard handoff: quiesce, snapshot the fleet, re-seat every
    /// instance on its new shard.
    Reshard,
    /// One daemon config push: quiesce at the watermark, snapshot, apply
    /// the delta, restore under the new configuration.
    ConfigApply,
    /// One graceful daemon restart: drain, serialize, rebuild the fleet
    /// from bytes.
    DaemonRestart,
    /// Decoding and applying one `PEVT` ingest frame at the sink (batch
    /// buffering, watermark folds, ack minting).
    IngestWire,
}

impl Stage {
    /// All stages, pipeline order (index = discriminant).
    pub const ALL: [Stage; 15] = [
        Stage::IngestMerge,
        Stage::CellFold,
        Stage::DetectorStep,
        Stage::WindowCut,
        Stage::CaseCut,
        Stage::SessionEstimate,
        Stage::Hsql,
        Stage::Rsql,
        Stage::Repair,
        Stage::SnapshotWrite,
        Stage::SnapshotRestore,
        Stage::Reshard,
        Stage::ConfigApply,
        Stage::DaemonRestart,
        Stage::IngestWire,
    ];
    pub const COUNT: usize = Self::ALL.len();

    /// Stable snake_case name (JSON keys, chrome-trace event names).
    pub fn name(self) -> &'static str {
        match self {
            Stage::IngestMerge => "ingest_merge",
            Stage::CellFold => "cell_fold",
            Stage::DetectorStep => "detector_step",
            Stage::WindowCut => "window_cut",
            Stage::CaseCut => "case_cut",
            Stage::SessionEstimate => "session_estimate",
            Stage::Hsql => "hsql_rank",
            Stage::Rsql => "rsql_identify",
            Stage::Repair => "repair_suggest",
            Stage::SnapshotWrite => "snapshot_write",
            Stage::SnapshotRestore => "snapshot_restore",
            Stage::Reshard => "reshard",
            Stage::ConfigApply => "config_apply",
            Stage::DaemonRestart => "daemon_restart",
            Stage::IngestWire => "ingest_wire",
        }
    }

    pub(crate) fn index(self) -> usize {
        self as usize
    }
}

/// A monotone counter. Merging registries sums them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Counter {
    /// Telemetry events ingested (all variants).
    EventsIngested,
    /// Query records folded into cells.
    QueriesIngested,
    /// Records dropped for non-finite fields.
    MalformedDropped,
    /// Events behind the retention horizon, dropped on arrival.
    LateDropped,
    /// Per-second cell rows materialized in the ring.
    CellsFolded,
    /// Cells, records, and metric samples evicted by retention.
    RetentionEvictions,
    /// Complete minutes folded into the in-line history feed.
    HistoryMinutes,
    /// Detector-bank transitions into an open anomalous segment.
    CasesOpened,
    /// Cases closed into a labelled `CaseData`.
    CasesClosed,
    /// Features closed by the detector bank.
    FeaturesClosed,
    /// Instance checkpoints serialized.
    SnapshotsWritten,
    /// Instances rebuilt from a checkpoint.
    SnapshotsRestored,
    /// Total serialized checkpoint bytes.
    SnapshotBytes,
    /// Instance handoffs performed by reshard steps (instances moved to a
    /// *different* shard; an instance that keeps its shard is not counted).
    InstancesResharded,
    /// Config pushes accepted and applied by the daemon.
    ConfigPushes,
    /// Config pushes rejected (stale epoch, invalid delta, wrong state).
    ConfigRejected,
    /// Graceful daemon restarts completed.
    DaemonRestarts,
    /// Control-wire frames decoded by the agent.
    ControlFrames,
    /// Per-second samples pushed into the running cut moments.
    CutMomentsPushed,
    /// Samples evicted from the running cut moments (retention or
    /// delta-update replacement).
    CutMomentsEvicted,
    /// `PEVT` ingest-wire frames decoded by the sink.
    EventFrames,
    /// Telemetry events that arrived over the ingest wire.
    EventsWired,
    /// Source reconnects resumed from a sink `Hello` (the unacked window
    /// was replayed).
    TransportResumes,
}

impl Counter {
    pub const ALL: [Counter; 23] = [
        Counter::EventsIngested,
        Counter::QueriesIngested,
        Counter::MalformedDropped,
        Counter::LateDropped,
        Counter::CellsFolded,
        Counter::RetentionEvictions,
        Counter::HistoryMinutes,
        Counter::CasesOpened,
        Counter::CasesClosed,
        Counter::FeaturesClosed,
        Counter::SnapshotsWritten,
        Counter::SnapshotsRestored,
        Counter::SnapshotBytes,
        Counter::InstancesResharded,
        Counter::ConfigPushes,
        Counter::ConfigRejected,
        Counter::DaemonRestarts,
        Counter::ControlFrames,
        Counter::CutMomentsPushed,
        Counter::CutMomentsEvicted,
        Counter::EventFrames,
        Counter::EventsWired,
        Counter::TransportResumes,
    ];
    pub const COUNT: usize = Self::ALL.len();

    /// Stable snake_case name (JSON keys).
    pub fn name(self) -> &'static str {
        match self {
            Counter::EventsIngested => "events_ingested",
            Counter::QueriesIngested => "queries_ingested",
            Counter::MalformedDropped => "malformed_dropped",
            Counter::LateDropped => "late_dropped",
            Counter::CellsFolded => "cells_folded",
            Counter::RetentionEvictions => "retention_evictions",
            Counter::HistoryMinutes => "history_minutes",
            Counter::CasesOpened => "cases_opened",
            Counter::CasesClosed => "cases_closed",
            Counter::FeaturesClosed => "features_closed",
            Counter::SnapshotsWritten => "snapshots_written",
            Counter::SnapshotsRestored => "snapshots_restored",
            Counter::SnapshotBytes => "snapshot_bytes",
            Counter::InstancesResharded => "instances_resharded",
            Counter::ConfigPushes => "config_pushes",
            Counter::ConfigRejected => "config_rejected",
            Counter::DaemonRestarts => "daemon_restarts",
            Counter::ControlFrames => "control_frames",
            Counter::CutMomentsPushed => "cut_moments_pushed",
            Counter::CutMomentsEvicted => "cut_moments_evicted",
            Counter::EventFrames => "event_frames",
            Counter::EventsWired => "events_wired",
            Counter::TransportResumes => "transport_resumes",
        }
    }

    pub(crate) fn index(self) -> usize {
        self as usize
    }
}

/// A resident-state gauge. Merging registries keeps the maximum — the
/// fleet-level value of a queue-depth gauge is its high-water mark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Gauge {
    /// Per-second cell rows currently resident (queue depth).
    CellSeconds,
    /// Raw records currently retained (queue depth).
    RecordsResident,
    /// Metric samples currently retained (queue depth).
    MetricSeconds,
    /// Templates the catalog tracks.
    TemplatesTracked,
}

impl Gauge {
    pub const ALL: [Gauge; 4] = [
        Gauge::CellSeconds,
        Gauge::RecordsResident,
        Gauge::MetricSeconds,
        Gauge::TemplatesTracked,
    ];
    pub const COUNT: usize = Self::ALL.len();

    /// Stable snake_case name (JSON keys).
    pub fn name(self) -> &'static str {
        match self {
            Gauge::CellSeconds => "cell_seconds",
            Gauge::RecordsResident => "records_resident",
            Gauge::MetricSeconds => "metric_seconds",
            Gauge::TemplatesTracked => "templates_tracked",
        }
    }

    pub(crate) fn index(self) -> usize {
        self as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_tables_are_consistent() {
        for (i, s) in Stage::ALL.into_iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        for (i, c) in Counter::ALL.into_iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, g) in Gauge::ALL.into_iter().enumerate() {
            assert_eq!(g.index(), i);
        }
        // Names are unique across each table (they become JSON keys).
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Stage::COUNT);
        let mut cnames: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        cnames.sort_unstable();
        cnames.dedup();
        assert_eq!(cnames.len(), Counter::COUNT);
    }
}
