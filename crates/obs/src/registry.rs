//! The mergeable recording state behind a [`RecordingObserver`]
//! (`crate::RecordingObserver`): per-stage histograms, counters, gauges,
//! and a capped trace-event buffer.

use crate::hist::LatencyHistogram;
use crate::{Counter, Gauge, Stage};

/// Trace events kept per registry before dropping (drops are counted, so
/// a truncated trace is visible rather than silent).
pub const TRACE_CAP: usize = 65_536;

/// One completed span, for chrome-trace export. `lane` indexes the
/// observer's lane table (shards, diagnosis workers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    pub stage: Stage,
    pub lane: u32,
    pub start_ns: u64,
    pub end_ns: u64,
}

/// All recorded observability state. Merging two registries (shards,
/// threads) is exact: histogram buckets and counters sum, gauges keep the
/// maximum, traces concatenate up to [`TRACE_CAP`].
#[derive(Debug, Clone)]
pub struct Registry {
    spans: Vec<LatencyHistogram>,
    counters: Vec<u64>,
    gauges: Vec<u64>,
    trace: Vec<TraceEvent>,
    trace_dropped: u64,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    pub fn new() -> Self {
        Self {
            spans: (0..Stage::COUNT).map(|_| LatencyHistogram::new()).collect(),
            counters: vec![0; Counter::COUNT],
            gauges: vec![0; Gauge::COUNT],
            trace: Vec::new(),
            trace_dropped: 0,
        }
    }

    /// Records one completed span into the stage's histogram and, capacity
    /// permitting, the trace buffer.
    pub fn record_span(&mut self, stage: Stage, lane: u32, start_ns: u64, end_ns: u64) {
        self.spans[stage.index()].record(end_ns.saturating_sub(start_ns));
        if self.trace.len() < TRACE_CAP {
            self.trace.push(TraceEvent { stage, lane, start_ns, end_ns });
        } else {
            self.trace_dropped += 1;
        }
    }

    pub fn add(&mut self, counter: Counter, delta: u64) {
        self.counters[counter.index()] += delta;
    }

    pub fn gauge(&mut self, gauge: Gauge, value: u64) {
        let g = &mut self.gauges[gauge.index()];
        *g = (*g).max(value);
    }

    pub fn span_hist(&self, stage: Stage) -> &LatencyHistogram {
        &self.spans[stage.index()]
    }

    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter.index()]
    }

    pub fn gauge_value(&self, gauge: Gauge) -> u64 {
        self.gauges[gauge.index()]
    }

    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    pub fn trace_dropped(&self) -> u64 {
        self.trace_dropped
    }

    /// Folds another registry in (see type docs for the merge semantics).
    pub fn merge(&mut self, other: &Registry) {
        for (a, b) in self.spans.iter_mut().zip(&other.spans) {
            a.merge(b);
        }
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            *a += b;
        }
        for (a, b) in self.gauges.iter_mut().zip(&other.gauges) {
            *a = (*a).max(*b);
        }
        let room = TRACE_CAP - self.trace.len();
        let take = other.trace.len().min(room);
        self.trace.extend_from_slice(&other.trace[..take]);
        self.trace_dropped += other.trace_dropped + (other.trace.len() - take) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_counters_and_maxes_gauges() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        a.add(Counter::EventsIngested, 3);
        b.add(Counter::EventsIngested, 4);
        a.gauge(Gauge::CellSeconds, 10);
        b.gauge(Gauge::CellSeconds, 7);
        a.record_span(Stage::CellFold, 0, 100, 250);
        b.record_span(Stage::CellFold, 1, 0, 50);
        a.merge(&b);
        assert_eq!(a.counter(Counter::EventsIngested), 7);
        assert_eq!(a.gauge_value(Gauge::CellSeconds), 10);
        assert_eq!(a.span_hist(Stage::CellFold).count(), 2);
        assert_eq!(a.span_hist(Stage::CellFold).total_ns(), 200);
        assert_eq!(a.trace().len(), 2);
        assert_eq!(a.trace_dropped(), 0);
    }

    #[test]
    fn trace_cap_counts_drops_across_merge() {
        let mut a = Registry::new();
        for i in 0..TRACE_CAP {
            a.record_span(Stage::CellFold, 0, i as u64, i as u64 + 1);
        }
        a.record_span(Stage::CellFold, 0, 0, 1);
        assert_eq!(a.trace().len(), TRACE_CAP);
        assert_eq!(a.trace_dropped(), 1);
        let mut b = Registry::new();
        b.record_span(Stage::Hsql, 0, 0, 9);
        a.merge(&b);
        assert_eq!(a.trace_dropped(), 2, "merge overflow is counted, not silent");
        // The histogram still saw every span.
        assert_eq!(a.span_hist(Stage::CellFold).count(), TRACE_CAP as u64 + 1);
        assert_eq!(a.span_hist(Stage::Hsql).count(), 1);
    }
}
