//! Exporters: chrome-trace JSON and a flat metrics document.
//!
//! [`chrome_trace`] renders a registry's trace buffer in the Chrome
//! Trace Event format (the JSON array flavour wrapped in an object), so
//! a fleet run can be opened directly in `chrome://tracing` / Perfetto:
//! one row (`tid`) per lane, one complete (`"X"`) event per span.
//! [`metrics_export`] flattens counters, gauges, and per-stage histogram
//! summaries into the JSON document the `fleet` bench writes next to its
//! sweep results. [`validate_chrome_trace`] is the schema check CI's
//! `obs_smoke` step runs over the written file.

use crate::hist::LatencyHistogram;
use crate::registry::Registry;
use crate::{Counter, Gauge, Stage};
use serde::Serialize;
use std::collections::BTreeMap;

/// One Chrome Trace Event. Only the fields the viewers require.
#[derive(Debug, Serialize)]
struct ChromeEvent {
    name: String,
    cat: &'static str,
    ph: &'static str,
    /// Microseconds since the observer's origin.
    ts: f64,
    #[serde(skip_serializing_if = "Option::is_none")]
    dur: Option<f64>,
    pid: u64,
    tid: u64,
    #[serde(skip_serializing_if = "Option::is_none")]
    args: Option<BTreeMap<&'static str, String>>,
}

#[derive(Debug, Serialize)]
struct ChromeTrace {
    #[serde(rename = "traceEvents")]
    trace_events: Vec<ChromeEvent>,
    #[serde(rename = "displayTimeUnit")]
    display_time_unit: &'static str,
    /// Spans dropped by the trace cap (0 = the trace is complete).
    trace_dropped: u64,
}

/// Renders the registry's trace buffer as chrome-trace JSON. `lanes` is
/// the observer's lane table (see
/// [`RecordingObserver::lanes`](crate::RecordingObserver::lanes)); each
/// lane becomes one named thread row.
pub fn chrome_trace(registry: &Registry, lanes: &[String]) -> String {
    let mut events: Vec<ChromeEvent> = lanes
        .iter()
        .enumerate()
        .map(|(tid, label)| ChromeEvent {
            name: "thread_name".to_string(),
            cat: "__metadata",
            ph: "M",
            ts: 0.0,
            dur: None,
            pid: 1,
            tid: tid as u64,
            args: Some(BTreeMap::from([("name", label.clone())])),
        })
        .collect();
    for ev in registry.trace() {
        events.push(ChromeEvent {
            name: ev.stage.name().to_string(),
            cat: "pinsql",
            ph: "X",
            ts: ev.start_ns as f64 / 1000.0,
            dur: Some((ev.end_ns.saturating_sub(ev.start_ns)) as f64 / 1000.0),
            pid: 1,
            tid: ev.lane as u64,
            args: None,
        });
    }
    let doc = ChromeTrace {
        trace_events: events,
        display_time_unit: "ms",
        trace_dropped: registry.trace_dropped(),
    };
    serde_json::to_string(&doc).expect("chrome trace serializes")
}

/// Per-stage histogram summary in the flat metrics document.
#[derive(Debug, Clone, Serialize)]
pub struct StageSummary {
    pub count: u64,
    pub total_ns: u64,
    pub mean_ns: f64,
    pub max_ns: u64,
    /// Upper-bound estimates from the log2 buckets.
    pub p50_ns: u64,
    pub p99_ns: u64,
    pub buckets: Vec<u64>,
}

impl StageSummary {
    fn of(h: &LatencyHistogram) -> Self {
        Self {
            count: h.count(),
            total_ns: h.total_ns(),
            mean_ns: h.mean_ns(),
            max_ns: h.max_ns(),
            p50_ns: h.quantile_upper_ns(0.5),
            p99_ns: h.quantile_upper_ns(0.99),
            buckets: h.buckets().to_vec(),
        }
    }
}

/// The flat metrics document (`results/fleet_metrics.json`).
#[derive(Debug, Clone, Serialize)]
pub struct MetricsExport {
    pub counters: BTreeMap<&'static str, u64>,
    pub gauges: BTreeMap<&'static str, u64>,
    /// Stages that recorded at least one span.
    pub stages: BTreeMap<&'static str, StageSummary>,
    pub trace_events: usize,
    pub trace_dropped: u64,
}

/// Flattens a registry into the metrics document.
pub fn metrics_export(registry: &Registry) -> MetricsExport {
    MetricsExport {
        counters: Counter::ALL.iter().map(|&c| (c.name(), registry.counter(c))).collect(),
        gauges: Gauge::ALL.iter().map(|&g| (g.name(), registry.gauge_value(g))).collect(),
        stages: Stage::ALL
            .iter()
            .filter(|&&s| registry.span_hist(s).count() > 0)
            .map(|&s| (s.name(), StageSummary::of(registry.span_hist(s))))
            .collect(),
        trace_events: registry.trace().len(),
        trace_dropped: registry.trace_dropped(),
    }
}

/// Validates a chrome-trace document produced by [`chrome_trace`]:
/// object root, `traceEvents` array, every event carrying a string
/// `name`, a known `ph`, numeric `pid`/`tid`/`ts`, and `dur` on complete
/// events. Returns the number of complete (`"X"`) events.
pub fn validate_chrome_trace(json: &str) -> Result<usize, String> {
    let doc: serde_json::Value =
        serde_json::from_str(json).map_err(|e| format!("not JSON: {e}"))?;
    if !doc.is_object() {
        return Err("root must be an object".to_string());
    }
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or_else(|| "missing traceEvents array".to_string())?;
    let known_stages: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
    let mut complete = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let name = ev
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: missing string name"))?;
        let ph = ev
            .get("ph")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        for field in ["pid", "tid"] {
            if ev.get(field).and_then(|v| v.as_u64()).is_none() {
                return Err(format!("event {i}: missing numeric {field}"));
            }
        }
        if ev.get("ts").and_then(|v| v.as_f64()).is_none() {
            return Err(format!("event {i}: missing numeric ts"));
        }
        match ph {
            "X" => {
                let dur = ev
                    .get("dur")
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| format!("event {i}: X event without dur"))?;
                if dur < 0.0 {
                    return Err(format!("event {i}: negative dur"));
                }
                if !known_stages.contains(&name) {
                    return Err(format!("event {i}: unknown stage name {name:?}"));
                }
                complete += 1;
            }
            "M" => {}
            other => return Err(format!("event {i}: unexpected ph {other:?}")),
        }
    }
    Ok(complete)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> (Registry, Vec<String>) {
        let mut reg = Registry::new();
        reg.record_span(Stage::IngestMerge, 1, 0, 5_000);
        reg.record_span(Stage::CellFold, 1, 100, 400);
        reg.record_span(Stage::Hsql, 2, 6_000, 9_000);
        reg.add(Counter::EventsIngested, 12);
        reg.gauge(Gauge::CellSeconds, 30);
        (reg, vec!["main".into(), "shard0".into(), "diag0".into()])
    }

    #[test]
    fn chrome_trace_roundtrips_validation() {
        let (reg, lanes) = sample_registry();
        let json = chrome_trace(&reg, &lanes);
        assert_eq!(validate_chrome_trace(&json), Ok(3));
        // Sanity on the raw shape: named rows plus complete events.
        let doc: serde_json::Value = serde_json::from_str(&json).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 3 + 3, "three metadata rows, three spans");
        assert_eq!(doc.get("trace_dropped").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn validation_rejects_malformed_documents() {
        assert!(validate_chrome_trace("[]").is_err(), "root array");
        assert!(validate_chrome_trace("{}").is_err(), "no traceEvents");
        assert!(validate_chrome_trace(
            r#"{"traceEvents":[{"name":"cell_fold","ph":"X","ts":1.0,"pid":1,"tid":0}]}"#
        )
        .is_err(), "X without dur");
        assert!(validate_chrome_trace(
            r#"{"traceEvents":[{"name":"nope","ph":"X","ts":1.0,"dur":2.0,"pid":1,"tid":0}]}"#
        )
        .is_err(), "unknown stage");
    }

    #[test]
    fn metrics_export_flattens_only_recorded_stages() {
        let (reg, _) = sample_registry();
        let m = metrics_export(&reg);
        assert_eq!(m.counters["events_ingested"], 12);
        assert_eq!(m.gauges["cell_seconds"], 30);
        assert_eq!(m.stages.len(), 3);
        assert!(m.stages.contains_key("hsql_rank"));
        assert!(!m.stages.contains_key("repair_suggest"));
        assert_eq!(m.trace_events, 3);
        let json = serde_json::to_string_pretty(&m).unwrap();
        assert!(json.contains("\"p99_ns\""));
    }
}
