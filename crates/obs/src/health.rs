//! Point-in-time health of one instance pipeline and its fleet roll-up.
//!
//! A [`HealthSnapshot`] is a plain read of counters and queue depths the
//! pipeline already maintains — taking one is cheap enough to do
//! mid-ingest (no locks, no scans over retained data) and never perturbs
//! state. The engine crate exposes `OnlineInstance::health_snapshot` and
//! folds shard snapshots into a [`FleetHealth`] on every fleet run.

use serde::{Deserialize, Serialize};

/// One instance's pipeline health. Counter fields are monotone over the
/// instance's lifetime; `*_resident` / `*_seconds` fields are current
/// queue depths bounded by the retention configuration (the `obs_health`
/// suite pins both invariants under chaos-perturbed telemetry).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HealthSnapshot {
    /// Events ingested (all variants).
    pub events_ingested: u64,
    /// Query records folded into cells.
    pub queries_ingested: u64,
    /// Records dropped for non-finite fields.
    pub malformed_dropped: u64,
    /// Events behind the retention horizon, dropped on arrival.
    pub late_dropped: u64,
    /// Per-second cell rows materialized since birth.
    pub cells_folded: u64,
    /// Cells, records, and metric samples evicted by retention.
    pub retention_evictions: u64,
    /// Complete minutes folded into the in-line history feed.
    pub history_minutes: u64,
    /// Cell rows currently resident (bounded by retention).
    pub cell_seconds: usize,
    /// Raw records currently retained (bounded by retention).
    pub records_resident: usize,
    /// Metric samples currently retained (bounded by retention).
    pub metric_seconds: usize,
    /// Templates the catalog tracks.
    pub templates_tracked: usize,
    /// Collector watermark (`i64::MIN` before any event).
    pub watermark: i64,
    /// Samples consumed by each metric detector.
    pub detector_samples: usize,
    /// Metric detectors currently inside an anomalous segment.
    pub open_segments: usize,
    /// Features closed by the detector bank so far.
    pub features_closed: usize,
    /// Transitions of the bank into an open anomaly (case opens).
    pub cases_opened: u64,
    /// True while any metric has an open anomalous segment.
    pub anomaly_open: bool,
}

/// Fleet-level health: per-instance snapshots (instance-id order) plus
/// exact totals.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetHealth {
    pub instances: Vec<HealthSnapshot>,
    pub events_total: u64,
    pub queries_total: u64,
    pub malformed_total: u64,
    pub late_total: u64,
    pub evictions_total: u64,
    pub cases_opened_total: u64,
    /// Highest per-instance records-resident depth at snapshot time.
    pub max_records_resident: usize,
    /// Highest per-instance cell-seconds depth at snapshot time.
    pub max_cell_seconds: usize,
}

impl FleetHealth {
    /// Rolls instance snapshots (taken at case close) into fleet totals.
    pub fn from_instances(instances: Vec<HealthSnapshot>) -> Self {
        let mut out = FleetHealth { instances, ..FleetHealth::default() };
        for h in &out.instances {
            out.events_total += h.events_ingested;
            out.queries_total += h.queries_ingested;
            out.malformed_total += h.malformed_dropped;
            out.late_total += h.late_dropped;
            out.evictions_total += h.retention_evictions;
            out.cases_opened_total += h.cases_opened;
            out.max_records_resident = out.max_records_resident.max(h.records_resident);
            out.max_cell_seconds = out.max_cell_seconds.max(h.cell_seconds);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_rollup_totals() {
        let a = HealthSnapshot {
            events_ingested: 10,
            queries_ingested: 7,
            records_resident: 5,
            cell_seconds: 3,
            cases_opened: 1,
            ..HealthSnapshot::default()
        };
        let b = HealthSnapshot {
            events_ingested: 20,
            queries_ingested: 9,
            records_resident: 2,
            cell_seconds: 8,
            retention_evictions: 4,
            ..HealthSnapshot::default()
        };
        let fleet = FleetHealth::from_instances(vec![a, b]);
        assert_eq!(fleet.events_total, 30);
        assert_eq!(fleet.queries_total, 16);
        assert_eq!(fleet.evictions_total, 4);
        assert_eq!(fleet.cases_opened_total, 1);
        assert_eq!(fleet.max_records_resident, 5);
        assert_eq!(fleet.max_cell_seconds, 8);
        assert_eq!(fleet.instances.len(), 2);
    }
}
