//! Point-in-time health of one instance pipeline and its fleet roll-up.
//!
//! A [`HealthSnapshot`] is a plain read of counters and queue depths the
//! pipeline already maintains — taking one is cheap enough to do
//! mid-ingest (no locks, no scans over retained data) and never perturbs
//! state. The engine crate exposes `OnlineInstance::health_snapshot` and
//! folds shard snapshots into a [`FleetHealth`] on every fleet run.
//!
//! ## Hierarchical roll-ups
//!
//! [`FleetHealth`] keeps one snapshot per instance — fine for a bench
//! fleet, hopeless for production's millions of instances. The resident
//! daemon instead folds each instance snapshot into a constant-size
//! [`HealthRollup`] the moment it is read, then merges roll-ups up a
//! shard → region → fleet tree ([`FleetRollup`]): a shard worker ships
//! one roll-up per region it touches, a region is one merged roll-up,
//! and the control-plane server holds O(regions) state however many
//! instances report. The merge is exact (integer sums, max/min — no
//! averaging), associative, and commutative, so any merge order and any
//! grouping give the identical summary (`merge_props` pins this).

use serde::{Deserialize, Serialize};

/// One instance's pipeline health. Counter fields are monotone over the
/// instance's lifetime; `*_resident` / `*_seconds` fields are current
/// queue depths bounded by the retention configuration (the `obs_health`
/// suite pins both invariants under chaos-perturbed telemetry).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HealthSnapshot {
    /// Events ingested (all variants).
    pub events_ingested: u64,
    /// Query records folded into cells.
    pub queries_ingested: u64,
    /// Records dropped for non-finite fields.
    pub malformed_dropped: u64,
    /// Events behind the retention horizon, dropped on arrival.
    pub late_dropped: u64,
    /// Per-second cell rows materialized since birth.
    pub cells_folded: u64,
    /// Cells, records, and metric samples evicted by retention.
    pub retention_evictions: u64,
    /// Complete minutes folded into the in-line history feed.
    pub history_minutes: u64,
    /// Cell rows currently resident (bounded by retention).
    pub cell_seconds: usize,
    /// Raw records currently retained (bounded by retention).
    pub records_resident: usize,
    /// Metric samples currently retained (bounded by retention).
    pub metric_seconds: usize,
    /// Templates the catalog tracks.
    pub templates_tracked: usize,
    /// Collector watermark (`i64::MIN` before any event).
    pub watermark: i64,
    /// Samples consumed by each metric detector.
    pub detector_samples: usize,
    /// Metric detectors currently inside an anomalous segment.
    pub open_segments: usize,
    /// Features closed by the detector bank so far.
    pub features_closed: usize,
    /// Transitions of the bank into an open anomaly (case opens).
    pub cases_opened: u64,
    /// True while any metric has an open anomalous segment.
    pub anomaly_open: bool,
}

/// Fleet-level health: per-instance snapshots (instance-id order) plus
/// exact totals.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetHealth {
    pub instances: Vec<HealthSnapshot>,
    pub events_total: u64,
    pub queries_total: u64,
    pub malformed_total: u64,
    pub late_total: u64,
    pub evictions_total: u64,
    pub cases_opened_total: u64,
    /// Highest per-instance records-resident depth at snapshot time.
    pub max_records_resident: usize,
    /// Highest per-instance cell-seconds depth at snapshot time.
    pub max_cell_seconds: usize,
}

impl FleetHealth {
    /// Rolls instance snapshots (taken at case close) into fleet totals.
    pub fn from_instances(instances: Vec<HealthSnapshot>) -> Self {
        let mut out = FleetHealth { instances, ..FleetHealth::default() };
        for h in &out.instances {
            out.events_total += h.events_ingested;
            out.queries_total += h.queries_ingested;
            out.malformed_total += h.malformed_dropped;
            out.late_total += h.late_dropped;
            out.evictions_total += h.retention_evictions;
            out.cases_opened_total += h.cases_opened;
            out.max_records_resident = out.max_records_resident.max(h.records_resident);
            out.max_cell_seconds = out.max_cell_seconds.max(h.cell_seconds);
        }
        out
    }
}

/// A constant-size, exactly-mergeable aggregate of [`HealthSnapshot`]s.
///
/// The identity element is `HealthRollup::default()` (zero instances);
/// [`merge`](Self::merge) is associative and commutative, so a tree of
/// merges — per-shard, per-region, fleet-wide — yields the same summary
/// as folding every snapshot directly. `watermark_min` tracks the
/// *laggiest* member (the fleet's effective progress); `max_*` fields are
/// high-water queue depths.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthRollup {
    /// Snapshots folded in.
    pub instances: u64,
    pub events_total: u64,
    pub queries_total: u64,
    pub malformed_total: u64,
    pub late_total: u64,
    pub evictions_total: u64,
    pub cases_opened_total: u64,
    /// Detector segments currently open, summed.
    pub open_segments_total: u64,
    /// Instances with an anomaly currently open.
    pub anomalies_open: u64,
    /// Highest per-instance records-resident depth.
    pub max_records_resident: u64,
    /// Highest per-instance cell-seconds depth.
    pub max_cell_seconds: u64,
    /// Lowest member watermark — the laggiest instance's clock
    /// (`i64::MAX` for the empty roll-up, so it is the merge identity).
    pub watermark_min: i64,
}

impl Default for HealthRollup {
    fn default() -> Self {
        Self {
            instances: 0,
            events_total: 0,
            queries_total: 0,
            malformed_total: 0,
            late_total: 0,
            evictions_total: 0,
            cases_opened_total: 0,
            open_segments_total: 0,
            anomalies_open: 0,
            max_records_resident: 0,
            max_cell_seconds: 0,
            watermark_min: i64::MAX,
        }
    }
}

impl HealthRollup {
    /// Folds one instance snapshot into the roll-up.
    pub fn observe(&mut self, h: &HealthSnapshot) {
        self.instances += 1;
        self.events_total += h.events_ingested;
        self.queries_total += h.queries_ingested;
        self.malformed_total += h.malformed_dropped;
        self.late_total += h.late_dropped;
        self.evictions_total += h.retention_evictions;
        self.cases_opened_total += h.cases_opened;
        self.open_segments_total += h.open_segments as u64;
        self.anomalies_open += h.anomaly_open as u64;
        self.max_records_resident = self.max_records_resident.max(h.records_resident as u64);
        self.max_cell_seconds = self.max_cell_seconds.max(h.cell_seconds as u64);
        self.watermark_min = self.watermark_min.min(h.watermark);
    }

    /// A roll-up of exactly one snapshot.
    pub fn of(h: &HealthSnapshot) -> Self {
        let mut r = Self::default();
        r.observe(h);
        r
    }

    /// Exact merge: sums for counters, max for depths, min for the
    /// watermark. `default()` is the identity; the operation is
    /// associative and commutative.
    pub fn merge(&mut self, other: &Self) {
        self.instances += other.instances;
        self.events_total += other.events_total;
        self.queries_total += other.queries_total;
        self.malformed_total += other.malformed_total;
        self.late_total += other.late_total;
        self.evictions_total += other.evictions_total;
        self.cases_opened_total += other.cases_opened_total;
        self.open_segments_total += other.open_segments_total;
        self.anomalies_open += other.anomalies_open;
        self.max_records_resident = self.max_records_resident.max(other.max_records_resident);
        self.max_cell_seconds = self.max_cell_seconds.max(other.max_cell_seconds);
        self.watermark_min = self.watermark_min.min(other.watermark_min);
    }
}

/// One region's merged roll-up inside a [`FleetRollup`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionRollup {
    /// Region id (stable, dense, assigned by the fleet's region map).
    pub region: u32,
    pub rollup: HealthRollup,
}

/// The shard → region → fleet roll-up tree, flattened to its two
/// aggregate levels: one [`HealthRollup`] per region (sorted by region
/// id) plus the fleet total. Server-side state is O(regions) no matter
/// how many instances the agents watch.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetRollup {
    /// Per-region roll-ups, ascending region id, empty regions omitted.
    pub regions: Vec<RegionRollup>,
    /// The merge of every region (= of every instance).
    pub total: HealthRollup,
}

impl FleetRollup {
    /// Builds the tree from instance snapshots and a region map
    /// (`region_of(i)` = region of instance `i`).
    pub fn from_assigned(
        instances: &[HealthSnapshot],
        mut region_of: impl FnMut(usize) -> u32,
    ) -> Self {
        let mut out = FleetRollup::default();
        for (i, h) in instances.iter().enumerate() {
            out.observe(region_of(i), h);
        }
        out
    }

    /// Folds one instance snapshot into its region and the total.
    pub fn observe(&mut self, region: u32, h: &HealthSnapshot) {
        self.region_mut(region).observe(h);
        self.total.observe(h);
    }

    /// Merges another tree in (region-wise + totals) — the fleet-level
    /// reduce over per-shard trees. Exact whatever the grouping: merging
    /// per-shard trees equals building one tree from all instances.
    pub fn merge(&mut self, other: &Self) {
        for r in &other.regions {
            self.region_mut(r.region).merge(&r.rollup);
        }
        self.total.merge(&other.total);
    }

    /// Instances folded in.
    pub fn instances(&self) -> u64 {
        self.total.instances
    }

    /// The tree invariant: the total equals the merge of the regions.
    pub fn is_consistent(&self) -> bool {
        let mut folded = HealthRollup::default();
        for r in &self.regions {
            folded.merge(&r.rollup);
        }
        folded == self.total && self.regions.windows(2).all(|w| w[0].region < w[1].region)
    }

    fn region_mut(&mut self, region: u32) -> &mut HealthRollup {
        let at = match self.regions.binary_search_by_key(&region, |r| r.region) {
            Ok(i) => i,
            Err(i) => {
                self.regions
                    .insert(i, RegionRollup { region, rollup: HealthRollup::default() });
                i
            }
        };
        &mut self.regions[at].rollup
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_rollup_totals() {
        let a = HealthSnapshot {
            events_ingested: 10,
            queries_ingested: 7,
            records_resident: 5,
            cell_seconds: 3,
            cases_opened: 1,
            ..HealthSnapshot::default()
        };
        let b = HealthSnapshot {
            events_ingested: 20,
            queries_ingested: 9,
            records_resident: 2,
            cell_seconds: 8,
            retention_evictions: 4,
            ..HealthSnapshot::default()
        };
        let fleet = FleetHealth::from_instances(vec![a, b]);
        assert_eq!(fleet.events_total, 30);
        assert_eq!(fleet.queries_total, 16);
        assert_eq!(fleet.evictions_total, 4);
        assert_eq!(fleet.cases_opened_total, 1);
        assert_eq!(fleet.max_records_resident, 5);
        assert_eq!(fleet.max_cell_seconds, 8);
        assert_eq!(fleet.instances.len(), 2);
    }

    fn snap(i: u64) -> HealthSnapshot {
        HealthSnapshot {
            events_ingested: 10 * i,
            queries_ingested: 3 * i,
            retention_evictions: i % 3,
            cases_opened: i % 2,
            open_segments: (i % 4) as usize,
            anomaly_open: i % 2 == 1,
            records_resident: (7 * i % 13) as usize,
            cell_seconds: (5 * i % 11) as usize,
            watermark: 100 - i as i64,
            ..HealthSnapshot::default()
        }
    }

    #[test]
    fn rollup_matches_direct_fold_and_merge_has_identity() {
        let snaps: Vec<HealthSnapshot> = (1..=9).map(snap).collect();

        // One shot vs. incremental observe.
        let mut direct = HealthRollup::default();
        for h in &snaps {
            direct.observe(h);
        }
        assert_eq!(direct.instances, 9);
        assert_eq!(direct.events_total, (1..=9u64).map(|i| 10 * i).sum::<u64>());
        assert_eq!(direct.watermark_min, 91);
        assert_eq!(direct.anomalies_open, 5);

        // Identity and singleton composition.
        let mut folded = HealthRollup::default();
        for h in &snaps {
            folded.merge(&HealthRollup::of(h));
        }
        assert_eq!(folded, direct);
        let mut with_identity = direct.clone();
        with_identity.merge(&HealthRollup::default());
        assert_eq!(with_identity, direct);
    }

    #[test]
    fn rollup_tree_is_grouping_independent_and_consistent() {
        let snaps: Vec<HealthSnapshot> = (1..=12).map(snap).collect();
        let region_of = |i: usize| (i % 3) as u32;

        // Built directly from all instances...
        let whole = FleetRollup::from_assigned(&snaps, region_of);
        assert!(whole.is_consistent());
        assert_eq!(whole.instances(), 12);
        assert_eq!(whole.regions.len(), 3);

        // ...vs. per-shard trees merged at the server (arbitrary split).
        let mut merged = FleetRollup::default();
        for chunk in [(0usize, 5usize), (5, 7), (7, 12)] {
            let mut shard = FleetRollup::default();
            for i in chunk.0..chunk.1 {
                shard.observe(region_of(i), &snaps[i]);
            }
            merged.merge(&shard);
        }
        assert_eq!(merged, whole, "shard-grouped merge equals direct build");

        // Serde round-trip (the control wire and FleetReport carry these).
        let json = serde_json::to_string(&whole).unwrap();
        assert_eq!(serde_json::from_str::<FleetRollup>(&json).unwrap(), whole);
    }
}
