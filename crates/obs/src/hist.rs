//! Log2-bucketed latency histograms.
//!
//! Bucket `i` holds durations `d` (nanoseconds) with `bucket_of(d) == i`:
//! bucket 0 is `d == 0`, bucket `i ≥ 1` is `2^(i-1) <= d < 2^i`, and the
//! last bucket absorbs everything above. With fixed bucket edges the merge
//! is an elementwise sum — associative and commutative — so per-shard and
//! per-thread histograms roll up into fleet totals exactly, in any order.

use serde::{Deserialize, Serialize};

/// Number of buckets: 0, then one per power of two up to `2^62`+.
pub const N_BUCKETS: usize = 64;

/// A mergeable latency histogram with exact count / sum / max side-stats.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Occupancy per log2 bucket (see module docs for the edges).
    buckets: Vec<u64>,
    count: u64,
    total_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a duration (see module docs).
pub fn bucket_of(ns: u64) -> usize {
    ((u64::BITS - ns.leading_zeros()) as usize).min(N_BUCKETS - 1)
}

/// Inclusive upper edge of a bucket (`u64::MAX` for the last).
pub fn bucket_upper_ns(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= N_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        Self { buckets: vec![0; N_BUCKETS], count: 0, total_ns: 0, max_ns: 0 }
    }

    /// Records one duration.
    pub fn record(&mut self, ns: u64) {
        self.buckets[bucket_of(ns)] += 1;
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Folds another histogram in (exact: bucket sums, count sum, max).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn total_ns(&self) -> u64 {
        self.total_ns
    }

    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }

    /// The bucket occupancies (length [`N_BUCKETS`]).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0 ..= 1.0`): the upper
    /// edge of the first bucket whose cumulative count reaches `q·count`.
    /// Exact to within one power of two; 0 on an empty histogram.
    pub fn quantile_upper_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= target {
                // Never report past the observed maximum (the last occupied
                // bucket's edge can wildly overshoot it).
                return bucket_upper_ns(i).min(self.max_ns);
            }
        }
        self.max_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), N_BUCKETS - 1);
        // Every bucket's upper edge maps back into the bucket.
        for i in 0..N_BUCKETS - 1 {
            assert_eq!(bucket_of(bucket_upper_ns(i)), i, "bucket {i}");
        }
    }

    #[test]
    fn record_and_merge_agree_with_bulk() {
        let ds = [0u64, 1, 5, 17, 900, 1024, 65_000, 1_000_000];
        let mut whole = LatencyHistogram::new();
        let mut left = LatencyHistogram::new();
        let mut right = LatencyHistogram::new();
        for (i, &d) in ds.iter().enumerate() {
            whole.record(d);
            if i % 2 == 0 { left.record(d) } else { right.record(d) }
        }
        let mut merged = left.clone();
        merged.merge(&right);
        assert_eq!(merged, whole);
        assert_eq!(whole.count(), ds.len() as u64);
        assert_eq!(whole.total_ns(), ds.iter().sum::<u64>());
        assert_eq!(whole.max_ns(), 1_000_000);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let mut h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record(100); // bucket 7, upper edge 127
        }
        for _ in 0..10 {
            h.record(10_000); // bucket 14, upper edge 16383
        }
        assert_eq!(h.quantile_upper_ns(0.5), 127);
        assert!(h.quantile_upper_ns(0.99) >= 10_000);
        assert_eq!(h.quantile_upper_ns(1.0), 10_000, "capped at the observed max");
        assert_eq!(LatencyHistogram::new().quantile_upper_ns(0.5), 0);
    }
}
