//! The [`Observer`] trait and its two implementations.
//!
//! Instrumented code is generic over `O: Observer` and guards every
//! instrumentation site with `if O::ENABLED { ... }`. For
//! [`NoopObserver`] that constant is `false`, so the guard folds to dead
//! code at monomorphization and the compiled hot path is byte-for-byte
//! the uninstrumented one. [`RecordingObserver`] shares one
//! [`Registry`] across clones/forks behind a mutex — recording is a
//! debugging mode, not a hot-path citizen, and pays for itself only when
//! switched on.

use crate::registry::Registry;
use crate::{Counter, Gauge, Stage};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A sink for spans, counters, and gauges. Implementations must be pure
/// observers: nothing they do may influence pipeline outputs (the
/// `obs_equivalence` suite enforces this for the shipped ones).
pub trait Observer: Clone + Send + Sync {
    /// Statically known on/off switch; instrumentation sites guard on it.
    const ENABLED: bool;

    /// Monotonic nanoseconds since an arbitrary per-observer origin
    /// (shared across forks of one observer).
    fn now_ns(&self) -> u64;

    /// Records a completed span of `stage` over `[start_ns, end_ns]`.
    fn span(&self, stage: Stage, start_ns: u64, end_ns: u64);

    /// Adds to a monotone counter.
    fn add(&self, counter: Counter, delta: u64);

    /// Reports a resident-state gauge value (merge keeps the maximum).
    fn gauge(&self, gauge: Gauge, value: u64);

    /// A handle recording into the same state under a new lane label
    /// (one lane per shard / diagnosis worker in chrome-trace output).
    fn fork(&self, lane: &str) -> Self;
}

/// The default observer: a ZST that compiles to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl Observer for NoopObserver {
    const ENABLED: bool = false;

    #[inline(always)]
    fn now_ns(&self) -> u64 {
        0
    }

    #[inline(always)]
    fn span(&self, _stage: Stage, _start_ns: u64, _end_ns: u64) {}

    #[inline(always)]
    fn add(&self, _counter: Counter, _delta: u64) {}

    #[inline(always)]
    fn gauge(&self, _gauge: Gauge, _value: u64) {}

    #[inline(always)]
    fn fork(&self, _lane: &str) -> Self {
        NoopObserver
    }
}

#[derive(Debug)]
struct Shared {
    registry: Registry,
    /// Lane labels; a [`TraceEvent`](crate::TraceEvent)'s `lane` indexes
    /// this table.
    lanes: Vec<String>,
}

/// An observer that records everything into a shared [`Registry`].
///
/// Clones and [`fork`](Observer::fork)s share the registry and the time
/// origin; forks additionally register a new lane label so trace events
/// from different shards / workers land on distinct chrome-trace rows.
#[derive(Debug, Clone)]
pub struct RecordingObserver {
    origin: Instant,
    lane: u32,
    shared: Arc<Mutex<Shared>>,
}

impl Default for RecordingObserver {
    fn default() -> Self {
        Self::new()
    }
}

impl RecordingObserver {
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
            lane: 0,
            shared: Arc::new(Mutex::new(Shared {
                registry: Registry::new(),
                lanes: vec!["main".to_string()],
            })),
        }
    }

    /// This handle's lane index.
    pub fn lane(&self) -> u32 {
        self.lane
    }

    /// A copy of the recorded state so far.
    pub fn registry(&self) -> Registry {
        self.shared.lock().expect("obs registry poisoned").registry.clone()
    }

    /// The lane labels registered so far (index = lane id).
    pub fn lanes(&self) -> Vec<String> {
        self.shared.lock().expect("obs registry poisoned").lanes.clone()
    }
}

impl Observer for RecordingObserver {
    const ENABLED: bool = true;

    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    fn span(&self, stage: Stage, start_ns: u64, end_ns: u64) {
        self.shared
            .lock()
            .expect("obs registry poisoned")
            .registry
            .record_span(stage, self.lane, start_ns, end_ns);
    }

    fn add(&self, counter: Counter, delta: u64) {
        self.shared.lock().expect("obs registry poisoned").registry.add(counter, delta);
    }

    fn gauge(&self, gauge: Gauge, value: u64) {
        self.shared.lock().expect("obs registry poisoned").registry.gauge(gauge, value);
    }

    fn fork(&self, lane: &str) -> Self {
        let mut shared = self.shared.lock().expect("obs registry poisoned");
        let id = shared.lanes.len() as u32;
        shared.lanes.push(lane.to_string());
        drop(shared);
        Self { origin: self.origin, lane: id, shared: Arc::clone(&self.shared) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_accumulates_across_forks() {
        let obs = RecordingObserver::new();
        let shard = obs.fork("shard0");
        let diag = obs.fork("diag0");
        obs.add(Counter::EventsIngested, 1);
        shard.add(Counter::EventsIngested, 2);
        let t0 = diag.now_ns();
        diag.span(Stage::Hsql, t0, diag.now_ns());
        shard.gauge(Gauge::RecordsResident, 42);

        let reg = obs.registry();
        assert_eq!(reg.counter(Counter::EventsIngested), 3);
        assert_eq!(reg.span_hist(Stage::Hsql).count(), 1);
        assert_eq!(reg.gauge_value(Gauge::RecordsResident), 42);
        assert_eq!(obs.lanes(), vec!["main", "shard0", "diag0"]);
        assert_eq!(reg.trace()[0].lane, diag.lane());
    }

    // The zero-cost contract is compile-time: the noop observer must
    // report disabled (and the recorder enabled) in every build.
    const _: () = assert!(!NoopObserver::ENABLED);
    const _: () = assert!(RecordingObserver::ENABLED);

    #[test]
    fn noop_is_inert_and_forkable() {
        let obs = NoopObserver;
        assert_eq!(obs.now_ns(), 0);
        let f = obs.fork("anything");
        f.span(Stage::CellFold, 0, 10);
        f.add(Counter::CasesClosed, 1);
        f.gauge(Gauge::CellSeconds, 9);
    }
}
