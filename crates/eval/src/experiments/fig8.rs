//! Fig. 8 — the real-world repairing case study, replayed.
//!
//! The storyline from §VIII-E, phase by phase:
//!
//! 1. **baseline** — normal operation;
//! 2. **anomaly** — a batch job's row-lock stream degrades the instance;
//!    the user receives a warning and waits it out (it doesn't recover);
//! 3. **throttle Top-1** — the user throttles the Top-RT SQL (a *victim*):
//!    metrics improve but stay above normal, and the throttled business is
//!    sabotaged;
//! 4. **throttle off** — the anomaly phenomenon reappears;
//! 5. **optimize R-SQL** — PinSQL pinpoints the batch statement; applying
//!    the recommended optimization returns the metrics to normal.
//!
//! Each phase is simulated with the appropriate workload variant; the
//! per-phase mean active session is the series the figure plots.

use crate::caseset::CaseSetConfig;
use pinsql::repair::{optimize_spec, throttle_spec};
use pinsql::{PinSql, PinSqlConfig};
use pinsql_baselines::{rank_top, TopMetric};
use pinsql_scenario::{generate_base, inject, materialize, AnomalyKind};
use pinsql_workload::{SpecId, Workload};
use serde::{Deserialize, Serialize};

/// One phase of the storyline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Phase {
    pub name: String,
    pub mean_active_session: f64,
    pub mean_cpu_usage: f64,
    pub mean_iops_usage: f64,
    /// Completed QPS of the throttled template's business (shows the
    /// throttling side effect).
    pub victim_qps: f64,
}

/// The replayed case study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8 {
    pub phases: Vec<Phase>,
    /// Label of the template the user throttled (Top-RT).
    pub throttled: String,
    /// Label of the template PinSQL pinpointed and optimized.
    pub optimized: String,
    /// Whether the Top-RT template differed from the R-SQL (the crux of
    /// the story).
    pub top_rt_is_not_rsql: bool,
}

/// Simulates one phase and summarizes its metrics.
fn run_phase(
    name: &str,
    workload: &Workload,
    scenario: &pinsql_scenario::Scenario,
    victim_spec: SpecId,
) -> Phase {
    let out = pinsql_dbsim::run_open_loop(workload, &scenario.sim, 0, scenario.cfg.window_s);
    // Summarize over the anomaly segment of the phase window (the part the
    // injection covers), so phases are comparable.
    let lo = scenario.cfg.anomaly_start as usize;
    let hi = scenario.cfg.anomaly_end as usize;
    let mean = |v: &[f64]| v[lo..hi.min(v.len())].iter().sum::<f64>() / (hi - lo) as f64;
    let victim_execs = out
        .log
        .iter()
        .filter(|r| {
            r.spec == victim_spec
                && r.start_ms >= lo as f64 * 1000.0
                && r.start_ms < hi as f64 * 1000.0
        })
        .count() as f64;
    Phase {
        name: name.to_string(),
        mean_active_session: mean(&out.metrics.active_session),
        mean_cpu_usage: mean(&out.metrics.cpu_usage),
        mean_iops_usage: mean(&out.metrics.iops_usage),
        victim_qps: victim_execs / (hi - lo) as f64,
    }
}

/// A seed whose row-lock case PinSQL diagnoses correctly — the case study
/// showcases the repair path, so it replays one of the (majority of)
/// successfully diagnosed cases.
pub fn fig8_showcase_seed() -> u64 {
    104
}

/// Replays the storyline on a row-lock scenario.
pub fn run(cfg: &CaseSetConfig) -> Fig8 {
    let scenario_cfg = cfg.scenario.clone().with_seed(cfg.seed);
    let base = generate_base(&scenario_cfg);
    let scenario = inject(&base, &scenario_cfg, AnomalyKind::RowLock);
    let case = materialize(&scenario, cfg.delta_s);

    // The user's view: Top-RT during the anomaly.
    let top_rt = rank_top(&case.case, &case.window, TopMetric::TotalResponseTime);
    let top_rt_id = case.case.templates[top_rt[0].0].id;
    let top_rt_info = case.case.catalog.get(top_rt_id).expect("catalog entry");
    let throttled_spec = top_rt_info.specs[0];

    // PinSQL's view: the R-SQL.
    let pinsql = PinSql::new(PinSqlConfig::default());
    let d = pinsql.diagnose(&case.case, &case.window, &case.history, case.minutes_origin);
    let rsql = d.rsqls.first().expect("a root cause");
    let rsql_info = case.case.catalog.get(rsql.id).expect("catalog entry");
    let rsql_spec = rsql_info.specs[0];

    // Phase workloads.
    let clean = &scenario.base_workload;
    let anomalous = &scenario.workload;
    let throttled_w = throttle_spec(anomalous, throttled_spec, 0.05);
    let optimized_w = optimize_spec(anomalous, rsql_spec);

    let phases = vec![
        run_phase("baseline (no anomaly)", clean, &scenario, throttled_spec),
        run_phase("anomaly, user waits", anomalous, &scenario, throttled_spec),
        run_phase("user throttles Top-1 (Top-RT)", &throttled_w, &scenario, throttled_spec),
        run_phase("throttle switched off", anomalous, &scenario, throttled_spec),
        run_phase("PinSQL optimizes the R-SQL", &optimized_w, &scenario, throttled_spec),
    ];

    Fig8 {
        phases,
        throttled: top_rt_info.label.clone(),
        optimized: rsql_info.label.clone(),
        top_rt_is_not_rsql: top_rt_id != rsql.id,
    }
}

impl std::fmt::Display for Fig8 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Fig. 8 — repairing case study (per-phase means over the anomaly window)")?;
        writeln!(f, "throttled (user, Top-RT): {}", self.throttled)?;
        writeln!(f, "optimized (PinSQL, R-SQL): {}", self.optimized)?;
        writeln!(f, "Top-RT differs from R-SQL: {}", self.top_rt_is_not_rsql)?;
        writeln!(
            f,
            "{:<34} {:>10} {:>8} {:>8} {:>12}",
            "Phase", "session", "cpu", "iops", "victim QPS"
        )?;
        writeln!(f, "{}", "-".repeat(76))?;
        for p in &self.phases {
            writeln!(
                f,
                "{:<34} {:>10.1} {:>8.2} {:>8.2} {:>12.1}",
                p.name, p.mean_active_session, p.mean_cpu_usage, p.mean_iops_usage, p.victim_qps
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storyline_shape_holds() {
        let cfg = CaseSetConfig::default().with_seed(fig8_showcase_seed());
        let fig = run(&cfg);
        let s = |i: usize| fig.phases[i].mean_active_session;
        let baseline = s(0);
        let anomaly = s(1);
        let throttled = s(2);
        let reappears = s(3);
        let fixed = s(4);
        assert!(anomaly > baseline * 3.0 + 5.0, "anomaly must inflate sessions: {fig}");
        assert!(throttled < anomaly, "throttling Top-1 helps partially: {fig}");
        assert!(
            reappears > throttled,
            "switching the throttle off brings the anomaly back: {fig}"
        );
        assert!(
            fixed < anomaly * 0.5,
            "optimizing the R-SQL must fundamentally resolve it: {fig}"
        );
        assert!(
            fixed < throttled,
            "fixing the root cause beats throttling a victim: {fig}"
        );
        // The throttling side effect: the victim's business lost traffic.
        assert!(fig.phases[2].victim_qps < fig.phases[1].victim_qps * 0.5, "{fig}");
    }
}
