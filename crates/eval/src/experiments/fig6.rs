//! Fig. 6 — ablation study on identifying R-SQLs and H-SQLs.
//!
//! Each variant disables exactly one component of PinSQL; all variants run
//! on the same case set so the deltas are paired.

use crate::caseset::{build_cases_par, CaseSetConfig};
use crate::methods::{rank_with, split_parallelism, Method};
use crate::metrics::{first_hit_rank, RankSummary};
use pinsql::{Ablation, PinSqlConfig};
use pinsql_scenario::LabeledCase;
use pinsql_timeseries::par_map;
use serde::{Deserialize, Serialize};

/// One ablation variant's scores.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Variant {
    pub name: String,
    pub rsql: RankSummary,
    pub hsql: RankSummary,
}

/// The full ablation figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6 {
    pub variants: Vec<Variant>,
    pub n_cases: usize,
}

/// The paper's eight ablations plus the full system.
pub fn variants() -> Vec<(String, Ablation)> {
    let mut v: Vec<(String, Ablation)> = vec![("PinSQL".into(), Ablation::default())];
    let mut add = |name: &str, ab: Ablation| v.push((name.to_string(), ab));
    add("w/o Estimate Session", Ablation { no_estimate_session: true, ..Default::default() });
    add("w/o Trend-level Score", Ablation { no_trend_level: true, ..Default::default() });
    add("w/o Scale-level Score", Ablation { no_scale_level: true, ..Default::default() });
    add(
        "w/o Trend-scale-level Score",
        Ablation { no_scale_trend_level: true, ..Default::default() },
    );
    add("w/o Weighted Final Score", Ablation { no_weighted_final: true, ..Default::default() });
    add(
        "w/o Cumulative Threshold",
        Ablation { no_cumulative_threshold: true, ..Default::default() },
    );
    add(
        "w/o Direct Cause SQL Ranking",
        Ablation { no_direct_cause_ranking: true, ..Default::default() },
    );
    add(
        "w/o History Trend Verification",
        Ablation { no_history_verification: true, ..Default::default() },
    );
    v
}

/// Runs the ablation study over a freshly generated case set (all cores).
pub fn run(cfg: &CaseSetConfig) -> Fig6 {
    run_par(cfg, 0)
}

/// [`run`] with an explicit parallelism knob (`0` = all cores, `1` =
/// serial). Scores are identical for every value.
pub fn run_par(cfg: &CaseSetConfig, parallelism: usize) -> Fig6 {
    let (workers, _) = split_parallelism(parallelism);
    let cases = build_cases_par(cfg, workers);
    run_on_par(&cases, parallelism)
}

/// Runs the ablation study on pre-built cases (all cores).
pub fn run_on(cases: &[LabeledCase]) -> Fig6 {
    run_on_par(cases, 0)
}

/// [`run_on`] with an explicit parallelism knob.
pub fn run_on_par(cases: &[LabeledCase], parallelism: usize) -> Fig6 {
    let (workers, inner) = split_parallelism(parallelism);
    let mut out = Vec::new();
    for (name, ablation) in variants() {
        let method = Method::PinSql(
            PinSqlConfig::default().with_ablation(ablation).with_parallelism(inner),
        );
        let per_case = par_map(cases.len(), workers, |i| {
            let case = &cases[i];
            let rk = rank_with(&method, case);
            (
                first_hit_rank(&rk.rsqls, &case.truth.rsqls),
                first_hit_rank(&rk.hsqls, &case.truth.hsqls),
                rk.time_s,
            )
        });
        let r_ranks: Vec<_> = per_case.iter().map(|c| c.0).collect();
        let h_ranks: Vec<_> = per_case.iter().map(|c| c.1).collect();
        let times: Vec<_> = per_case.iter().map(|c| c.2).collect();
        out.push(Variant {
            name,
            rsql: RankSummary::from_ranks(&r_ranks, &times),
            hsql: RankSummary::from_ranks(&h_ranks, &times),
        });
    }
    Fig6 { variants: out, n_cases: cases.len() }
}

impl std::fmt::Display for Fig6 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Fig. 6 — ablation over {} cases (H@k in %)", self.n_cases)?;
        writeln!(
            f,
            "{:<32} | {:>6} {:>6} {:>6} | {:>6} {:>6} {:>6}",
            "Variant", "R-H@1", "R-H@5", "R-MRR", "H-H@1", "H-H@5", "H-MRR"
        )?;
        writeln!(f, "{}", "-".repeat(86))?;
        for v in &self.variants {
            writeln!(
                f,
                "{:<32} | {:>6.1} {:>6.1} {:>6.2} | {:>6.1} {:>6.1} {:>6.2}",
                v.name,
                v.rsql.hits_at_1 * 100.0,
                v.rsql.hits_at_5 * 100.0,
                v.rsql.mrr,
                v.hsql.hits_at_1 * 100.0,
                v.hsql.hits_at_5 * 100.0,
                v.hsql.mrr,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_list_matches_paper() {
        let v = variants();
        assert_eq!(v.len(), 9);
        assert_eq!(v[0].0, "PinSQL");
        assert_eq!(v[0].1, Ablation::default());
        // Every non-full variant disables exactly one component.
        for (name, ab) in &v[1..] {
            let count = [
                ab.no_estimate_session,
                ab.no_trend_level,
                ab.no_scale_level,
                ab.no_scale_trend_level,
                ab.no_weighted_final,
                ab.no_cumulative_threshold,
                ab.no_direct_cause_ranking,
                ab.no_history_verification,
            ]
            .iter()
            .filter(|&&b| b)
            .count();
            assert_eq!(count, 1, "{name}");
        }
    }

    #[test]
    fn full_system_is_not_dominated() {
        // On a small paired case set the full system should at least match
        // the strongest ablation on R-SQL MRR (ties allowed — some
        // components only matter for rarer case shapes).
        let cfg = CaseSetConfig::default().with_cases(8).with_seed(321);
        let fig = run(&cfg);
        let full = &fig.variants[0];
        let best_ablated = fig.variants[1..]
            .iter()
            .map(|v| v.rsql.mrr)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            full.rsql.mrr >= best_ablated - 0.15,
            "full {} vs best ablated {}",
            full.rsql.mrr,
            best_ablated
        );
        // The session estimator matters: w/o it H-SQL quality drops.
        let no_est = fig.variants.iter().find(|v| v.name == "w/o Estimate Session").unwrap();
        assert!(full.hsql.mrr >= no_est.hsql.mrr);
    }
}
