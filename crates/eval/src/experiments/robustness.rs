//! Robustness — accuracy vs. telemetry-degradation intensity.
//!
//! Production telemetry is never as clean as a simulator's: collectors
//! drop and duplicate log records, agents blank out seconds of metrics,
//! clocks skew. This experiment degrades materialized telemetry through
//! the scenario chaos layer at increasing intensity and re-runs the full
//! PinSQL pipeline, producing one accuracy-vs-intensity curve per anomaly
//! kind plus an overlapping-anomaly group, and a false-positive curve over
//! pure-noise negative cases. Ground truth always comes from the scenario
//! (what was injected), so the curves measure exactly how much observation
//! damage the diagnosis survives.
//!
//! Cases are paired across intensities: cell `(group, i)` reuses the same
//! scenario seed at every intensity and only the perturbation seed varies,
//! so a curve's decay is attributable to degradation, not case variance.

use crate::caseset::{build_case_with, CaseSetConfig};
use crate::methods::split_parallelism;
use crate::metrics::{first_hit_rank, RankSummary};
use pinsql::{PinSql, PinSqlConfig};
use pinsql_scenario::{AnomalyKind, PerturbConfig};
use pinsql_sqlkit::SqlId;
use pinsql_timeseries::par_map;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Sizing and sweep shape.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RobustnessConfig {
    /// Scenario template, base seed, and δ_s (the `n_cases` field is
    /// ignored; sizing comes from `cases_per_cell`).
    pub base: CaseSetConfig,
    /// Cases per (group, intensity) cell.
    pub cases_per_cell: usize,
    /// Degradation intensities swept, in `[0, 1]` (0 = clean telemetry).
    pub intensities: Vec<f64>,
    /// Pure-noise negative cases per intensity.
    pub negative_cases: usize,
    /// Also sweep an overlapping-anomaly group (spike + row locks).
    pub overlap: bool,
}

impl Default for RobustnessConfig {
    fn default() -> Self {
        Self {
            base: CaseSetConfig::default(),
            cases_per_cell: 8,
            intensities: vec![0.0, 0.25, 0.5, 0.75, 1.0],
            negative_cases: 8,
            overlap: true,
        }
    }
}

/// One point of an accuracy-vs-intensity curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CurvePoint {
    pub intensity: f64,
    pub n_cases: usize,
    pub rsql: RankSummary,
    pub hsql: RankSummary,
    /// Fraction of cases where the detector (not the injected hint) found
    /// the anomaly window in the degraded metrics.
    pub detected_rate: f64,
    /// Fraction of cases where PinSQL asserted at least one R-SQL (the
    /// `reported_rsqls` gate, not the evaluation-only full ranking).
    pub reported_rate: f64,
}

/// One anomaly group's curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Curve {
    /// `AnomalyKind::label()` for single kinds, `"overlap"` for the
    /// two-anomaly group.
    pub kind: String,
    pub points: Vec<CurvePoint>,
}

/// False-positive behaviour on pure-noise cases at one intensity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NegativePoint {
    pub intensity: f64,
    pub n_cases: usize,
    /// Fraction where the detector fired despite no injected anomaly.
    pub detect_fp_rate: f64,
    /// Fraction where PinSQL *asserted* an R-SQL despite no injected
    /// anomaly — the headline false-positive number.
    pub report_fp_rate: f64,
}

/// The full experiment output (`results/robustness.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Robustness {
    pub curves: Vec<Curve>,
    pub negatives: Vec<NegativePoint>,
    pub cases_per_cell: usize,
    /// Resolved per-case fan-out the sweep was produced with.
    #[serde(default)]
    pub parallelism: usize,
}

/// The anomaly groups swept: the four single kinds, plus an overlap group.
fn groups(cfg: &RobustnessConfig) -> Vec<(String, Vec<AnomalyKind>)> {
    let mut out: Vec<(String, Vec<AnomalyKind>)> = AnomalyKind::ALL
        .iter()
        .map(|k| (k.label().to_string(), vec![*k]))
        .collect();
    if cfg.overlap {
        out.push((
            "overlap".to_string(),
            vec![AnomalyKind::BusinessSpike, AnomalyKind::RowLock],
        ));
    }
    out
}

/// Perturbation seed for cell `(group g, intensity ii, case ci)` — distinct
/// from every scenario seed and from every other cell's.
fn perturb_seed(base_seed: u64, g: usize, ii: usize, ci: usize) -> u64 {
    base_seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(((g * 131 + ii) * 131 + ci) as u64)
}

/// Runs the sweep using all available cores.
pub fn run(cfg: &RobustnessConfig) -> Robustness {
    run_par(cfg, 0)
}

/// [`run`] with an explicit parallelism knob (`0` = all cores, `1` =
/// serial). Cells are independent and merged by index, so the output is
/// identical for every value.
pub fn run_par(cfg: &RobustnessConfig, parallelism: usize) -> Robustness {
    let (workers, inner) = split_parallelism(parallelism);
    let pin_cfg = PinSqlConfig::default().with_parallelism(inner);
    let groups = groups(cfg);
    let n_int = cfg.intensities.len();
    let cases = cfg.cases_per_cell;

    // --- Positive cells, flattened: index = (g * n_int + ii) * cases + ci.
    let per_case = par_map(groups.len() * n_int * cases, workers, |idx| {
        let ci = idx % cases;
        let ii = (idx / cases) % n_int;
        let g = idx / (cases * n_int);
        let p = PerturbConfig::at_intensity(
            perturb_seed(cfg.base.seed, g, ii, ci),
            cfg.intensities[ii],
        );
        // Scenario seed depends on (g, ci) only — paired across intensities.
        let lc = build_case_with(&cfg.base, g * cases + ci, &groups[g].1, Some(&p));
        let t0 = Instant::now();
        let d = PinSql::new(pin_cfg.clone()).diagnose(
            &lc.case,
            &lc.window,
            &lc.history,
            lc.minutes_origin,
        );
        let time_s = t0.elapsed().as_secs_f64();
        let rids: Vec<SqlId> = d.rsqls.iter().map(|r| r.id).collect();
        let hids: Vec<SqlId> = d.hsqls.iter().map(|r| r.id).collect();
        (
            first_hit_rank(&rids, &lc.truth.rsqls),
            first_hit_rank(&hids, &lc.truth.hsqls),
            time_s,
            lc.detected,
            !d.reported_rsqls.is_empty(),
        )
    });

    let mut curves = Vec::new();
    for (g, (name, _)) in groups.iter().enumerate() {
        let mut points = Vec::new();
        for (ii, &intensity) in cfg.intensities.iter().enumerate() {
            let lo = (g * n_int + ii) * cases;
            let cell = &per_case[lo..lo + cases];
            let r_ranks: Vec<_> = cell.iter().map(|c| c.0).collect();
            let h_ranks: Vec<_> = cell.iter().map(|c| c.1).collect();
            let times: Vec<_> = cell.iter().map(|c| c.2).collect();
            let frac = |pred: &dyn Fn(&(Option<usize>, Option<usize>, f64, bool, bool)) -> bool| {
                cell.iter().filter(|c| pred(c)).count() as f64 / cases.max(1) as f64
            };
            points.push(CurvePoint {
                intensity,
                n_cases: cases,
                rsql: RankSummary::from_ranks(&r_ranks, &times),
                hsql: RankSummary::from_ranks(&h_ranks, &times),
                detected_rate: frac(&|c| c.3),
                reported_rate: frac(&|c| c.4),
            });
        }
        curves.push(Curve { kind: name.clone(), points });
    }

    // --- Negative cells, flattened: index = ii * negs + ci.
    let negs = cfg.negative_cases;
    let per_neg = par_map(n_int * negs, workers, |idx| {
        let ci = idx % negs;
        let ii = idx / negs;
        let p = PerturbConfig::at_intensity(
            perturb_seed(cfg.base.seed, groups.len(), ii, ci),
            cfg.intensities[ii],
        );
        // Scenario seeds continue past the positive groups' range.
        let lc = build_case_with(&cfg.base, groups.len() * cases + ci, &[], Some(&p));
        let d = PinSql::new(pin_cfg.clone()).diagnose(
            &lc.case,
            &lc.window,
            &lc.history,
            lc.minutes_origin,
        );
        (lc.detected, !d.reported_rsqls.is_empty())
    });
    let negatives = cfg
        .intensities
        .iter()
        .enumerate()
        .map(|(ii, &intensity)| {
            let cell = &per_neg[ii * negs..(ii + 1) * negs];
            NegativePoint {
                intensity,
                n_cases: negs,
                detect_fp_rate: cell.iter().filter(|c| c.0).count() as f64 / negs.max(1) as f64,
                report_fp_rate: cell.iter().filter(|c| c.1).count() as f64 / negs.max(1) as f64,
            }
        })
        .collect();

    Robustness { curves, negatives, cases_per_cell: cases, parallelism: workers }
}

impl std::fmt::Display for Robustness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Robustness — PinSQL accuracy vs. telemetry degradation ({} cases/cell)",
            self.cases_per_cell
        )?;
        writeln!(
            f,
            "{:<16} {:>5} | {:>6} {:>6} {:>6} | {:>6} {:>6} | {:>5} {:>5}",
            "Kind", "int", "R-H@1", "R-H@5", "R-MRR", "H-H@1", "H-MRR", "det%", "rep%"
        )?;
        writeln!(f, "{}", "-".repeat(78))?;
        for c in &self.curves {
            for p in &c.points {
                writeln!(
                    f,
                    "{:<16} {:>5.2} | {:>6.1} {:>6.1} {:>6.2} | {:>6.1} {:>6.2} | {:>5.0} {:>5.0}",
                    c.kind,
                    p.intensity,
                    p.rsql.hits_at_1 * 100.0,
                    p.rsql.hits_at_5 * 100.0,
                    p.rsql.mrr,
                    p.hsql.hits_at_1 * 100.0,
                    p.hsql.mrr,
                    p.detected_rate * 100.0,
                    p.reported_rate * 100.0,
                )?;
            }
        }
        writeln!(f, "Negative (no-anomaly) cases:")?;
        for n in &self.negatives {
            writeln!(
                f,
                "{:<16} {:>5.2} | detect-FP {:>5.1}%  report-FP {:>5.1}%  (n = {})",
                "negative", n.intensity, n.detect_fp_rate * 100.0, n.report_fp_rate * 100.0, n.n_cases
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinsql_scenario::ScenarioConfig;

    #[test]
    fn robustness_smoke() {
        // Tiny sweep: 1 case per cell, two intensities, small scenario.
        // Checks structure and finiteness, not accuracy — the full-size
        // sweep lives behind the bench binary.
        let cfg = RobustnessConfig {
            base: CaseSetConfig {
                n_cases: 0,
                seed: 4200,
                scenario: ScenarioConfig::default()
                    .with_businesses(6)
                    .with_window(600, 360, 480),
                delta_s: 240,
            },
            cases_per_cell: 1,
            intensities: vec![0.0, 0.75],
            negative_cases: 1,
            overlap: true,
        };
        let r = run(&cfg);
        assert_eq!(r.curves.len(), 5, "four kinds plus the overlap group");
        let kinds: Vec<_> = r.curves.iter().map(|c| c.kind.as_str()).collect();
        assert!(kinds.contains(&"business_spike"));
        assert!(kinds.contains(&"overlap"));
        for c in &r.curves {
            assert_eq!(c.points.len(), 2);
            for p in &c.points {
                assert!((0.0..=1.0).contains(&p.rsql.hits_at_1), "{}: {:?}", c.kind, p);
                assert!((0.0..=1.0).contains(&p.hsql.hits_at_1));
                assert!(p.rsql.mrr.is_finite() && p.hsql.mrr.is_finite());
                assert!((0.0..=1.0).contains(&p.detected_rate));
                assert!((0.0..=1.0).contains(&p.reported_rate));
            }
        }
        assert_eq!(r.negatives.len(), 2);
        for n in &r.negatives {
            assert!((0.0..=1.0).contains(&n.detect_fp_rate));
            assert!((0.0..=1.0).contains(&n.report_fp_rate));
        }
        // Round-trips through serde (the bench binary writes JSON).
        let json = serde_json::to_string(&r).unwrap();
        let back: Robustness = serde_json::from_str(&json).unwrap();
        assert_eq!(back.curves.len(), r.curves.len());
        let shown = r.to_string();
        assert!(shown.contains("business_spike"));
        assert!(shown.contains("negative"));
    }

    #[test]
    fn sweep_is_deterministic_across_parallelism() {
        let cfg = RobustnessConfig {
            base: CaseSetConfig {
                n_cases: 0,
                seed: 4300,
                scenario: ScenarioConfig::default()
                    .with_businesses(6)
                    .with_window(600, 360, 480),
                delta_s: 240,
            },
            cases_per_cell: 1,
            intensities: vec![0.5],
            negative_cases: 1,
            overlap: false,
        };
        let serial = run_par(&cfg, 1);
        let parallel = run_par(&cfg, 0);
        let strip = |mut r: Robustness| {
            r.parallelism = 0;
            for c in &mut r.curves {
                for p in &mut c.points {
                    p.rsql.mean_time_s = 0.0;
                    p.hsql.mean_time_s = 0.0;
                }
            }
            serde_json::to_string(&r).unwrap()
        };
        assert_eq!(strip(serial), strip(parallel));
    }
}
