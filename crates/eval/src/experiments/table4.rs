//! Table IV — QPS and QPS-decline under Performance-Schema configurations.
//!
//! A 32-client closed-loop saturation test on a 4-core instance with 20
//! tables, under three mixes (read-only / read-write / write-only) and five
//! pfs configurations. The shape to reproduce: enabling pfs costs ~10 %,
//! instruments or consumers alone a little more, and both together decline
//! QPS by ~25–30 %.

use pinsql_dbsim::{run_closed_loop, ClosedLoopConfig, PfsConfig, SimConfig};
use pinsql_workload::dag::ApiDag;
use pinsql_workload::{CostProfile, TableDef, TableId, TemplateSpec, Workload};
use serde::{Deserialize, Serialize};

/// The three sysbench-style mixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mix {
    ReadOnly,
    ReadWrite,
    WriteOnly,
}

impl Mix {
    pub const ALL: [Mix; 3] = [Mix::ReadOnly, Mix::ReadWrite, Mix::WriteOnly];

    pub fn label(&self) -> &'static str {
        match self {
            Mix::ReadOnly => "Read Only",
            Mix::ReadWrite => "Read Write",
            Mix::WriteOnly => "Write Only",
        }
    }
}

/// One configuration row: QPS and decline per mix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    pub config: String,
    /// `(qps, decline_percent)` for each of the three mixes.
    pub cells: Vec<(f64, f64)>,
}

/// The overhead study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table4 {
    pub rows: Vec<Row>,
}

/// The sysbench-style schema: 20 tables × 10 M rows.
fn bench_workload() -> Workload {
    let n_tables = 20usize;
    let tables: Vec<TableDef> =
        (0..n_tables).map(|i| TableDef::new(format!("sbtest{i}"), 10_000_000, 256)).collect();
    let mut specs = Vec::new();
    for i in 0..n_tables {
        let t = TableId(i);
        specs.push(TemplateSpec::new(
            &format!("SELECT c FROM sbtest{i} WHERE id = 5"),
            CostProfile::point_read(t),
            format!("ro.point_{i}"),
        ));
        specs.push(TemplateSpec::new(
            &format!("SELECT c FROM sbtest{i} WHERE id > 5 AND id < 105"),
            CostProfile::range_read(t, 100.0),
            format!("ro.range_{i}"),
        ));
        specs.push(TemplateSpec::new(
            &format!("UPDATE sbtest{i} SET k = 6 WHERE id = 7"),
            CostProfile::point_write(t),
            format!("wo.update_{i}"),
        ));
    }
    Workload { tables, specs, dag: ApiDag::default(), roots: vec![] }
}

fn mix_weights(mix: Mix, n_tables: usize) -> Vec<(usize, f64)> {
    let mut out = Vec::new();
    for i in 0..n_tables {
        let (point, range, update) = (3 * i, 3 * i + 1, 3 * i + 2);
        match mix {
            Mix::ReadOnly => {
                out.push((point, 3.0));
                out.push((range, 1.0));
            }
            Mix::ReadWrite => {
                out.push((point, 3.0));
                out.push((range, 1.0));
                out.push((update, 2.0));
            }
            Mix::WriteOnly => out.push((update, 1.0)),
        }
    }
    out
}

/// Runs the full grid. `measure_s` trades precision for speed.
pub fn run(measure_s: f64, seed: u64) -> Table4 {
    let workload = bench_workload();
    let configs = [
        PfsConfig::OFF,
        PfsConfig::PFS,
        PfsConfig::PFS_INS,
        PfsConfig::PFS_CON,
        PfsConfig::PFS_CON_INS,
    ];
    // Baselines per mix, from the `normal` config.
    let mut rows = Vec::new();
    let mut baselines = vec![0.0f64; Mix::ALL.len()];
    for cfg in configs {
        let mut cells = Vec::new();
        for (mi, mix) in Mix::ALL.iter().enumerate() {
            let sim = SimConfig::default().with_cores(4.0).with_seed(seed).with_pfs(cfg);
            let cl = ClosedLoopConfig {
                clients: 32,
                warmup_s: measure_s * 0.2,
                measure_s,
                mix: mix_weights(*mix, workload.tables.len()),
            };
            let res = run_closed_loop(&workload, &sim, &cl);
            if !cfg.enabled {
                baselines[mi] = res.qps;
            }
            let decline = if baselines[mi] > 0.0 {
                (1.0 - res.qps / baselines[mi]) * 100.0
            } else {
                0.0
            };
            cells.push((res.qps, decline));
        }
        rows.push(Row { config: cfg.label().to_string(), cells });
    }
    Table4 { rows }
}

impl std::fmt::Display for Table4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Table IV — QPS and decline rate under pfs configurations")?;
        write!(f, "{:<14}", "Config")?;
        for m in Mix::ALL {
            write!(f, " | {:>10} {:>7}", m.label(), "↓QPS%")?;
        }
        writeln!(f)?;
        writeln!(f, "{}", "-".repeat(14 + 3 * 21))?;
        for r in &self.rows {
            write!(f, "{:<14}", r.config)?;
            for (qps, decline) in &r.cells {
                write!(f, " | {:>10.0} {:>7.2}", qps, decline)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_shape_matches_paper() {
        let t = run(4.0, 99);
        assert_eq!(t.rows.len(), 5);
        let decline = |cfg: &str, mix: usize| -> f64 {
            t.rows.iter().find(|r| r.config == cfg).unwrap().cells[mix].1
        };
        for mix in 0..3 {
            assert_eq!(decline("normal", mix), 0.0);
            assert!(decline("pfs", mix) > 4.0, "pfs should cost noticeably: {t}");
            assert!(
                decline("pfs+con+ins", mix) > decline("pfs", mix) + 8.0,
                "combination is super-additive: {t}"
            );
            assert!(decline("pfs+con+ins", mix) < 45.0, "{t}");
        }
        // Read-only throughput exceeds write-only (cheaper statements).
        let normal = t.rows.iter().find(|r| r.config == "normal").unwrap();
        assert!(normal.cells[0].0 > normal.cells[2].0, "{t}");
    }
}
