//! Extension experiment: per-category quality breakdown.
//!
//! The paper reports aggregate numbers; this breakdown shows *where* each
//! method wins and loses across the three R-SQL categories of §II (with
//! locks split into MDL and row locks). The expected shape: business-spike
//! and poor-SQL cases are easy for everyone that looks at the right metric
//! (the root cause dominates); lock cases are where R-SQL ≠ H-SQL and the
//! baselines collapse while PinSQL keeps most of its accuracy.

use crate::caseset::{build_cases_par, CaseSetConfig};
use crate::methods::{rank_with, split_parallelism, Method};
use crate::metrics::{first_hit_rank, RankSummary};
use pinsql::PinSqlConfig;
use pinsql_baselines::TopMetric;
use pinsql_scenario::{AnomalyKind, LabeledCase};
use pinsql_timeseries::par_map;
use serde::{Deserialize, Serialize};

/// One (method, category) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cell {
    pub method: String,
    pub kind: String,
    pub n: usize,
    pub rsql: RankSummary,
}

/// The full breakdown.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Breakdown {
    pub cells: Vec<Cell>,
    pub n_cases: usize,
}

/// Runs the breakdown over a generated case set (all cores).
pub fn run(cfg: &CaseSetConfig) -> Breakdown {
    run_par(cfg, 0)
}

/// [`run`] with an explicit parallelism knob (`0` = all cores, `1` =
/// serial). Cells are identical for every value.
pub fn run_par(cfg: &CaseSetConfig, parallelism: usize) -> Breakdown {
    let (workers, _) = split_parallelism(parallelism);
    let cases = build_cases_par(cfg, workers);
    run_on_par(&cases, parallelism)
}

/// Runs the breakdown on pre-built cases (all cores).
pub fn run_on(cases: &[LabeledCase]) -> Breakdown {
    run_on_par(cases, 0)
}

/// [`run_on`] with an explicit parallelism knob.
pub fn run_on_par(cases: &[LabeledCase], parallelism: usize) -> Breakdown {
    let (workers, inner) = split_parallelism(parallelism);
    let methods = vec![
        Method::Top(TopMetric::TotalResponseTime),
        Method::PinSql(PinSqlConfig::default().with_parallelism(inner)),
    ];
    let mut cells = Vec::new();
    for method in &methods {
        for kind in AnomalyKind::ALL {
            let subset: Vec<&LabeledCase> =
                cases.iter().filter(|c| c.kind == Some(kind)).collect();
            if subset.is_empty() {
                continue;
            }
            let ranks = par_map(subset.len(), workers, |i| {
                let rk = rank_with(method, subset[i]);
                first_hit_rank(&rk.rsqls, &subset[i].truth.rsqls)
            });
            cells.push(Cell {
                method: method.label(),
                kind: kind.label().to_string(),
                n: subset.len(),
                rsql: RankSummary::from_ranks(&ranks, &[]),
            });
        }
    }
    Breakdown { cells, n_cases: cases.len() }
}

impl std::fmt::Display for Breakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Per-category R-SQL breakdown over {} cases", self.n_cases)?;
        writeln!(
            f,
            "{:<10} {:<16} {:>4} {:>7} {:>7} {:>7}",
            "Method", "Category", "n", "H@1", "H@5", "MRR"
        )?;
        writeln!(f, "{}", "-".repeat(56))?;
        for c in &self.cells {
            writeln!(
                f,
                "{:<10} {:<16} {:>4} {:>6.1}% {:>6.1}% {:>7.2}",
                c.method,
                c.kind,
                c.n,
                c.rsql.hits_at_1 * 100.0,
                c.rsql.hits_at_5 * 100.0,
                c.rsql.mrr
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_categories_separate_pinsql_from_top_rt() {
        let cfg = CaseSetConfig::default().with_cases(16).with_seed(2700);
        let b = run(&cfg);
        assert_eq!(b.cells.len(), 8); // 2 methods × 4 kinds
        let get = |m: &str, k: &str| {
            b.cells
                .iter()
                .find(|c| c.method == m && c.kind == k)
                .map(|c| c.rsql.mrr)
                .unwrap()
        };
        // MDL-lock cases are the structural separator: the blocking DDL's
        // total response time is dwarfed by the thousands of piled victims,
        // so Top-RT reliably misses it while PinSQL traces the chain back.
        assert!(
            get("PinSQL", "mdl_lock") > get("Top-RT", "mdl_lock"),
            "{b}"
        );
        // And PinSQL never trails on the easy categories.
        assert!(get("PinSQL", "business_spike") >= 0.75, "{b}");
    }
}
