//! Fig. 7 — scalability: PinSQL computing time vs the number of SQL
//! templates and vs the anomaly-period length.
//!
//! The paper's observation to reproduce: running time is clearly
//! positively correlated with the anomaly (window) length, while the
//! template count has a weaker effect; even the slowest cases stay well
//! under a minute.
//!
//! Timing doesn't need labelled ground truth, so cases here are
//! synthesized directly (random template traffic around a session
//! anomaly) — that is what lets the sweep reach the paper's thousands of
//! templates without hour-long simulations.

use pinsql::{PinSql, PinSqlConfig};
use pinsql_collector::{aggregate_case, HistoryStore};
use pinsql_detect::AnomalyWindow;
use pinsql_dbsim::probe::{ProbeLog, ProbeSample};
use pinsql_dbsim::{InstanceMetrics, QueryRecord};
use pinsql_workload::rng::{poisson, rng_from_seed};
use pinsql_workload::{CostProfile, SpecId, TableId, TemplateSpec};
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// One sweep point.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Point {
    pub n_templates: usize,
    pub anomaly_len_s: i64,
    pub window_s: i64,
    pub n_queries: usize,
    pub time_s: f64,
}

/// Both sweeps.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7 {
    pub by_templates: Vec<Point>,
    pub by_anomaly_len: Vec<Point>,
    /// Resolved worker-thread count the measured diagnoser ran with.
    #[serde(default)]
    pub parallelism: usize,
}

/// Builds a synthetic timing case: `n_templates` templates with Poisson
/// traffic over a window, a subset surging during the anomaly.
pub fn timing_case(
    n_templates: usize,
    anomaly_len_s: i64,
    seed: u64,
) -> (pinsql_collector::CaseData, AnomalyWindow) {
    let delta_s = anomaly_len_s.min(600);
    let window_s = delta_s + anomaly_len_s;
    let a_start = delta_s;
    let a_end = window_s;
    let mut rng = rng_from_seed(seed);
    let specs: Vec<TemplateSpec> = (0..n_templates)
        .map(|i| {
            TemplateSpec::new(
                &format!("SELECT col_{i} FROM t{} WHERE id = 1", i % 40),
                CostProfile::point_read(TableId(0)),
                format!("tpl_{i}"),
            )
        })
        .collect();
    // Keep total traffic fixed (~600 qps) so the sweep isolates template
    // count from record count.
    let per_tpl_rate = 600.0 / n_templates as f64;
    let mut log: Vec<QueryRecord> = Vec::new();
    let mut session = vec![0.0f64; window_s as usize];
    let mut probes = Vec::with_capacity(window_s as usize);
    for t in 0..window_s {
        let anomaly = t >= a_start;
        let mut active = 0.0;
        for i in 0..n_templates {
            let surged = anomaly && i % 10 == 0;
            let rate = per_tpl_rate * if surged { 4.0 } else { 1.0 };
            let k = poisson(&mut rng, rate);
            for _ in 0..k {
                let rt = if surged { 400.0 } else { 30.0 };
                log.push(QueryRecord {
                    spec: SpecId(i),
                    start_ms: t as f64 * 1000.0 + rng.random::<f64>() * 1000.0,
                    response_ms: rt * (0.5 + rng.random::<f64>()),
                    examined_rows: 10,
                });
            }
            active += rate * if surged { 0.4 } else { 0.03 };
        }
        session[t as usize] = active;
        probes.push(ProbeSample {
            second: t,
            active_sessions: active.round() as u32,
            true_instant_ms: t as f64 * 1000.0 + 500.0,
        });
    }
    let n = window_s as usize;
    let metrics = InstanceMetrics {
        start_second: 0,
        active_session: session,
        cpu_usage: vec![0.3; n],
        iops_usage: vec![0.1; n],
        row_lock_waits: vec![0.0; n],
        mdl_waits: vec![0.0; n],
        qps: vec![0.0; n],
        probes: ProbeLog { samples: probes },
    };
    let case = aggregate_case(&log, &specs, &metrics, 0, window_s);
    let window = AnomalyWindow { anomaly_start: a_start, anomaly_end: a_end, delta_s };
    (case, window)
}

fn measure(n_templates: usize, anomaly_len_s: i64, seed: u64, parallelism: usize) -> Point {
    let (case, window) = timing_case(n_templates, anomaly_len_s, seed);
    let pinsql = PinSql::new(PinSqlConfig::default().with_parallelism(parallelism));
    let t0 = std::time::Instant::now();
    let _ = pinsql.diagnose(&case, &window, &HistoryStore::new(), 1_000_000);
    Point {
        n_templates,
        anomaly_len_s,
        window_s: window.window_len(),
        n_queries: case.records.len(),
        time_s: t0.elapsed().as_secs_f64(),
    }
}

/// Runs both sweeps with the serial diagnoser. `scale` trims the largest
/// points for quick runs (1.0 = full paper-scale sweep).
pub fn run(scale: f64) -> Fig7 {
    run_par(scale, 1)
}

/// [`run`] with a parallelism knob for the *measured* diagnoser (`0` =
/// all cores, `1` = serial). The sweep loop itself stays serial so each
/// point is timed on an otherwise idle machine.
pub fn run_par(scale: f64, parallelism: usize) -> Fig7 {
    let template_sweep: Vec<usize> = [250usize, 500, 1000, 2000, 4000, 6000]
        .iter()
        .map(|&n| ((n as f64 * scale) as usize).max(50))
        .collect();
    let anomaly_sweep: Vec<i64> = [120i64, 300, 600, 1200, 2400, 4800]
        .iter()
        .map(|&s| ((s as f64 * scale) as i64).max(60))
        .collect();
    let by_templates = template_sweep
        .iter()
        .map(|&n| measure(n, (600.0 * scale) as i64 + 60, 7001, parallelism))
        .collect();
    let by_anomaly_len =
        anomaly_sweep.iter().map(|&s| measure(1000, s, 7002, parallelism)).collect();
    Fig7 {
        by_templates,
        by_anomaly_len,
        parallelism: pinsql_timeseries::effective_parallelism(parallelism),
    }
}

impl std::fmt::Display for Fig7 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Fig. 7 — computing time vs number of templates")?;
        writeln!(f, "{:>10} {:>12} {:>12} {:>10}", "templates", "anomaly(s)", "queries", "time(s)")?;
        for p in &self.by_templates {
            writeln!(
                f,
                "{:>10} {:>12} {:>12} {:>10.3}",
                p.n_templates, p.anomaly_len_s, p.n_queries, p.time_s
            )?;
        }
        writeln!(f, "\nFig. 7 — computing time vs anomaly period length")?;
        writeln!(f, "{:>10} {:>12} {:>12} {:>10}", "templates", "anomaly(s)", "queries", "time(s)")?;
        for p in &self.by_anomaly_len {
            writeln!(
                f,
                "{:>10} {:>12} {:>12} {:>10.3}",
                p.n_templates, p.anomaly_len_s, p.n_queries, p.time_s
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinsql_timeseries::pearson;

    #[test]
    fn time_grows_with_anomaly_length() {
        let fig = run(0.12); // small sweep for tests
        assert_eq!(fig.by_anomaly_len.len(), 6);
        let lens: Vec<f64> = fig.by_anomaly_len.iter().map(|p| p.anomaly_len_s as f64).collect();
        let times: Vec<f64> = fig.by_anomaly_len.iter().map(|p| p.time_s).collect();
        let corr = pearson(&lens, &times);
        assert!(corr > 0.5, "time should grow with anomaly length: {corr} ({times:?})");
        // Paper's first observation: even the slowest case is far under a
        // minute.
        assert!(times.iter().all(|&t| t < 60.0));
    }

    #[test]
    fn timing_case_has_expected_shape() {
        let (case, window) = timing_case(100, 120, 5);
        assert_eq!(case.templates.len(), 100);
        assert!(case.records.len() > 10_000);
        assert_eq!(window.anomaly_len(), 120);
    }
}
