//! Table I — overall R-SQL and H-SQL identification quality.
//!
//! For each case, every method produces an R-SQL ranking and an H-SQL
//! ranking, scored against the labelled sets with Hits@1/Hits@5/MRR plus
//! mean per-case running time. `Top-All` is the per-case best of the three
//! single-metric baselines, as in the paper.

use crate::caseset::{build_cases, CaseSetConfig};
use crate::methods::{rank_with, Method, Rankings};
use crate::metrics::{first_hit_rank, RankSummary};
use pinsql::PinSqlConfig;
use pinsql_baselines::TopMetric;
use pinsql_scenario::LabeledCase;
use serde::{Deserialize, Serialize};

/// One method's row (R-SQL and H-SQL summaries).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    pub method: String,
    pub rsql: RankSummary,
    pub hsql: RankSummary,
}

/// The full table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1 {
    pub rows: Vec<Row>,
    pub n_cases: usize,
}

/// Scores one method over the cases.
fn score(method: &Method, cases: &[LabeledCase]) -> Row {
    let mut r_ranks = Vec::with_capacity(cases.len());
    let mut h_ranks = Vec::with_capacity(cases.len());
    let mut times = Vec::with_capacity(cases.len());
    for case in cases {
        let out = rank_with(method, case);
        r_ranks.push(first_hit_rank(&out.rsqls, &case.truth.rsqls));
        h_ranks.push(first_hit_rank(&out.hsqls, &case.truth.hsqls));
        times.push(out.time_s);
    }
    Row {
        method: method.label(),
        rsql: RankSummary::from_ranks(&r_ranks, &times),
        hsql: RankSummary::from_ranks(&h_ranks, &times),
    }
}

/// Scores Top-All: per case, the best rank any single-metric baseline
/// achieves (the DBA pages through all three sorted views).
fn score_top_all(cases: &[LabeledCase]) -> Row {
    let mut r_ranks = Vec::with_capacity(cases.len());
    let mut h_ranks = Vec::with_capacity(cases.len());
    for case in cases {
        let outs: Vec<Rankings> =
            TopMetric::ALL.iter().map(|m| rank_with(&Method::Top(*m), case)).collect();
        let best = |f: &dyn Fn(&Rankings) -> Option<usize>| -> Option<usize> {
            outs.iter().filter_map(f).min()
        };
        r_ranks.push(best(&|o: &Rankings| first_hit_rank(&o.rsqls, &case.truth.rsqls)));
        h_ranks.push(best(&|o: &Rankings| first_hit_rank(&o.hsqls, &case.truth.hsqls)));
    }
    Row {
        method: "Top-All".to_string(),
        rsql: RankSummary::from_ranks(&r_ranks, &[]),
        hsql: RankSummary::from_ranks(&h_ranks, &[]),
    }
}

/// Runs the Table I experiment over a freshly generated case set.
pub fn run(cfg: &CaseSetConfig) -> Table1 {
    let cases = build_cases(cfg);
    run_on(&cases)
}

/// Runs the Table I experiment on pre-built cases.
pub fn run_on(cases: &[LabeledCase]) -> Table1 {
    let mut rows = Vec::new();
    for metric in TopMetric::ALL {
        rows.push(score(&Method::Top(metric), cases));
    }
    rows.push(score_top_all(cases));
    rows.push(score(&Method::PinSql(PinSqlConfig::default()), cases));
    Table1 { rows, n_cases: cases.len() }
}

impl std::fmt::Display for Table1 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Table I — overall results over {} cases (H@k in %)", self.n_cases)?;
        writeln!(
            f,
            "{:<10} | {:>6} {:>6} {:>6} {:>10} | {:>6} {:>6} {:>6} {:>10}",
            "Method", "R-H@1", "R-H@5", "R-MRR", "R-Time", "H-H@1", "H-H@5", "H-MRR", "H-Time"
        )?;
        writeln!(f, "{}", "-".repeat(88))?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<10} | {:>6.1} {:>6.1} {:>6.2} {:>9.3}s | {:>6.1} {:>6.1} {:>6.2} {:>9.3}s",
                r.method,
                r.rsql.hits_at_1 * 100.0,
                r.rsql.hits_at_5 * 100.0,
                r.rsql.mrr,
                r.rsql.mean_time_s,
                r.hsql.hits_at_1 * 100.0,
                r.hsql.hits_at_5 * 100.0,
                r.hsql.mrr,
                r.hsql.mean_time_s,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_table1_shape_holds() {
        // 8 cases (two full rounds of the four kinds) is enough to check
        // the qualitative ordering without multi-minute test times.
        let cfg = CaseSetConfig::default().with_cases(8).with_seed(500);
        let t = run(&cfg);
        assert_eq!(t.rows.len(), 5);
        let pin = t.rows.iter().find(|r| r.method == "PinSQL").unwrap();
        let top_all = t.rows.iter().find(|r| r.method == "Top-All").unwrap();
        // The headline claim: PinSQL at least matches the best baseline on
        // R-SQLs even on this 8-case smoke sample (the full 168-case run in
        // EXPERIMENTS.md shows the ~20-point margin; with 8 cases ties can
        // occur).
        assert!(
            pin.rsql.hits_at_1 >= top_all.rsql.hits_at_1,
            "PinSQL {} vs Top-All {}",
            pin.rsql.hits_at_1,
            top_all.rsql.hits_at_1
        );
        assert!(pin.rsql.hits_at_1 >= 0.5, "PinSQL R-H@1 too low: {}", pin.rsql.hits_at_1);
        assert!(pin.hsql.hits_at_1 >= top_all.hsql.hits_at_1);
        let display = t.to_string();
        assert!(display.contains("PinSQL"));
        assert!(display.contains("Top-RT"));
    }
}
