//! Table I — overall R-SQL and H-SQL identification quality.
//!
//! For each case, every method produces an R-SQL ranking and an H-SQL
//! ranking, scored against the labelled sets with Hits@1/Hits@5/MRR plus
//! mean per-case running time. `Top-All` is the per-case best of the three
//! single-metric baselines, as in the paper.

use crate::caseset::CaseSetConfig;
use crate::methods::{rank_with, split_parallelism, Method, Rankings};
use crate::metrics::{first_hit_rank, RankSummary};
use pinsql::{PinSqlConfig, StageTimings};
use pinsql_baselines::TopMetric;
use pinsql_scenario::LabeledCase;
use pinsql_timeseries::par_map;
use serde::{Deserialize, Serialize};

/// One method's row (R-SQL and H-SQL summaries).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    pub method: String,
    pub rsql: RankSummary,
    pub hsql: RankSummary,
    /// Mean per-stage timing decomposition (PinSQL rows only).
    #[serde(default)]
    pub stage: Option<StageTimings>,
}

/// The full table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1 {
    pub rows: Vec<Row>,
    pub n_cases: usize,
    /// Resolved per-case fan-out the table was produced with.
    #[serde(default)]
    pub parallelism: usize,
}

/// Scores one method over the cases, fanning out per case (`workers` ≥ 1;
/// cases are independent, merged by index, so the quality rows are
/// identical for every worker count — only wall clock changes).
fn score(method: &Method, cases: &[LabeledCase], workers: usize) -> Row {
    let per_case = par_map(cases.len(), workers, |i| {
        let case = &cases[i];
        let out = rank_with(method, case);
        (
            first_hit_rank(&out.rsqls, &case.truth.rsqls),
            first_hit_rank(&out.hsqls, &case.truth.hsqls),
            out.time_s,
            out.stage,
        )
    });
    let r_ranks: Vec<_> = per_case.iter().map(|c| c.0).collect();
    let h_ranks: Vec<_> = per_case.iter().map(|c| c.1).collect();
    let times: Vec<_> = per_case.iter().map(|c| c.2).collect();
    let stages: Vec<StageTimings> = per_case.iter().filter_map(|c| c.3).collect();
    Row {
        method: method.label(),
        rsql: RankSummary::from_ranks(&r_ranks, &times),
        hsql: RankSummary::from_ranks(&h_ranks, &times),
        stage: if stages.is_empty() { None } else { Some(StageTimings::mean_of(&stages)) },
    }
}

/// Scores Top-All: per case, the best rank any single-metric baseline
/// achieves (the DBA pages through all three sorted views).
fn score_top_all(cases: &[LabeledCase], workers: usize) -> Row {
    let per_case = par_map(cases.len(), workers, |i| {
        let case = &cases[i];
        let outs: Vec<Rankings> =
            TopMetric::ALL.iter().map(|m| rank_with(&Method::Top(*m), case)).collect();
        let best = |f: &dyn Fn(&Rankings) -> Option<usize>| -> Option<usize> {
            outs.iter().filter_map(f).min()
        };
        (
            best(&|o: &Rankings| first_hit_rank(&o.rsqls, &case.truth.rsqls)),
            best(&|o: &Rankings| first_hit_rank(&o.hsqls, &case.truth.hsqls)),
        )
    });
    let r_ranks: Vec<_> = per_case.iter().map(|c| c.0).collect();
    let h_ranks: Vec<_> = per_case.iter().map(|c| c.1).collect();
    Row {
        method: "Top-All".to_string(),
        rsql: RankSummary::from_ranks(&r_ranks, &[]),
        hsql: RankSummary::from_ranks(&h_ranks, &[]),
        stage: None,
    }
}

/// Runs the Table I experiment over a freshly generated case set, using
/// all available cores for the per-case fan-out.
pub fn run(cfg: &CaseSetConfig) -> Table1 {
    run_par(cfg, 0)
}

/// [`run`] with an explicit parallelism knob (`0` = all cores, `1` =
/// serial). Quality rows are identical for every value.
pub fn run_par(cfg: &CaseSetConfig, parallelism: usize) -> Table1 {
    let (workers, _) = split_parallelism(parallelism);
    let cases = crate::caseset::build_cases_par(cfg, workers);
    run_on_par(&cases, parallelism)
}

/// Runs the Table I experiment on pre-built cases (all cores).
pub fn run_on(cases: &[LabeledCase]) -> Table1 {
    run_on_par(cases, 0)
}

/// [`run_on`] with an explicit parallelism knob.
pub fn run_on_par(cases: &[LabeledCase], parallelism: usize) -> Table1 {
    let (workers, inner) = split_parallelism(parallelism);
    let mut rows = Vec::new();
    for metric in TopMetric::ALL {
        rows.push(score(&Method::Top(metric), cases, workers));
    }
    rows.push(score_top_all(cases, workers));
    rows.push(score(
        &Method::PinSql(PinSqlConfig::default().with_parallelism(inner)),
        cases,
        workers,
    ));
    Table1 { rows, n_cases: cases.len(), parallelism: workers }
}

impl std::fmt::Display for Table1 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Table I — overall results over {} cases (H@k in %)", self.n_cases)?;
        writeln!(
            f,
            "{:<10} | {:>6} {:>6} {:>6} {:>10} | {:>6} {:>6} {:>6} {:>10}",
            "Method", "R-H@1", "R-H@5", "R-MRR", "R-Time", "H-H@1", "H-H@5", "H-MRR", "H-Time"
        )?;
        writeln!(f, "{}", "-".repeat(88))?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<10} | {:>6.1} {:>6.1} {:>6.2} {:>9.3}s | {:>6.1} {:>6.1} {:>6.2} {:>9.3}s",
                r.method,
                r.rsql.hits_at_1 * 100.0,
                r.rsql.hits_at_5 * 100.0,
                r.rsql.mrr,
                r.rsql.mean_time_s,
                r.hsql.hits_at_1 * 100.0,
                r.hsql.hits_at_5 * 100.0,
                r.hsql.mrr,
                r.hsql.mean_time_s,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_table1_shape_holds() {
        // 8 cases (two full rounds of the four kinds) is enough to check
        // the qualitative ordering without multi-minute test times.
        let cfg = CaseSetConfig::default().with_cases(8).with_seed(500);
        let t = run(&cfg);
        assert_eq!(t.rows.len(), 5);
        let pin = t.rows.iter().find(|r| r.method == "PinSQL").unwrap();
        let top_all = t.rows.iter().find(|r| r.method == "Top-All").unwrap();
        // The headline claim: PinSQL at least matches the best baseline on
        // R-SQLs even on this 8-case smoke sample (the full 168-case run in
        // EXPERIMENTS.md shows the ~20-point margin; with 8 cases ties can
        // occur).
        assert!(
            pin.rsql.hits_at_1 >= top_all.rsql.hits_at_1,
            "PinSQL {} vs Top-All {}",
            pin.rsql.hits_at_1,
            top_all.rsql.hits_at_1
        );
        assert!(pin.rsql.hits_at_1 >= 0.5, "PinSQL R-H@1 too low: {}", pin.rsql.hits_at_1);
        assert!(pin.hsql.hits_at_1 >= top_all.hsql.hits_at_1);
        let display = t.to_string();
        assert!(display.contains("PinSQL"));
        assert!(display.contains("Top-RT"));
    }
}
