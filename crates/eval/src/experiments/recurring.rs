//! Extension experiment: recurring-workload decoys and the value of
//! History Trend Verification.
//!
//! §VI's rule (ii) exists because production workloads contain *recurring*
//! surges (nightly batch jobs, scheduled reports) that look exactly like a
//! root cause during any window that happens to contain them — except they
//! also ran yesterday, three days ago, and a week ago. This experiment
//! plants such a decoy in every case: a batch-like template that surges
//! inside the anomaly window *and has the same surge in its 1/3/7-day
//! history*. Full PinSQL must reject the decoy via rule (ii); the
//! `w/o History Trend Verification` ablation cannot.
//!
//! Reported: R-SQL quality with and without history verification, plus the
//! decoy-top-1 rate (how often the diagnoser's top pick is the decoy).

use crate::caseset::CaseSetConfig;
use crate::methods::split_parallelism;
use crate::metrics::{first_hit_rank, RankSummary};
use pinsql::{Ablation, PinSql, PinSqlConfig};
use pinsql_timeseries::par_map;
use pinsql_scenario::{
    generate_base, inject, materialize, synthesize_history, AnomalyKind, Scenario,
};
use pinsql_sqlkit::SqlId;
use pinsql_workload::dag::{Api, Call};
use pinsql_workload::{CostProfile, EventShape, RateEvent, SpecId, TemplateSpec, TrafficPattern};
use serde::{Deserialize, Serialize};

/// Scores for one configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Arm {
    pub name: String,
    pub rsql: RankSummary,
    /// Fraction of cases whose top-1 R-SQL is the planted decoy.
    pub decoy_top1_rate: f64,
}

/// The experiment's output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Recurring {
    pub with_history: Arm,
    pub without_history: Arm,
    pub n_cases: usize,
}

/// Adds the recurring decoy to an injected scenario: a report job that
/// surges in exactly the anomaly window, targeting its own table.
fn plant_decoy(scenario: &mut Scenario) -> SpecId {
    let cfg = &scenario.cfg;
    let w = &mut scenario.workload;
    let uniq = w.specs.len();
    // The decoy touches the *first* table so it stays within an existing
    // business's lock domain without blocking anything (plain reads).
    let table = pinsql_workload::TableId(0);
    let spec = SpecId(w.specs.len());
    w.specs.push(TemplateSpec::new(
        &format!("SELECT col_{uniq}, COUNT(col_z) FROM tbl_b0 WHERE day_{uniq} = 1"),
        CostProfile::range_read(table, 2_500.0),
        format!("decoy.nightly_report_{uniq}"),
    ));
    let api = w.dag.push(Api::named("decoy_report").query(Call::times(spec, 2)));
    w.roots.push((
        api,
        TrafficPattern::steady(1e-4).with_noise(0.0).with_event(RateEvent {
            start: cfg.anomaly_start,
            end: cfg.anomaly_end,
            multiplier: 6.0 / 1e-4,
            shape: EventShape::Step,
        }),
    ));
    // The decoy also recurs in history: replay it through the clean
    // workload used for history synthesis.
    let bw = &mut scenario.base_workload;
    let b_uniq = bw.specs.len();
    debug_assert!(b_uniq <= uniq);
    bw.specs.push(w.specs[spec.0].clone());
    let b_spec = SpecId(bw.specs.len() - 1);
    let b_api = bw.dag.push(Api::named("decoy_report").query(Call::times(b_spec, 2)));
    bw.roots.push((
        b_api,
        TrafficPattern::steady(1e-4).with_noise(0.0).with_event(RateEvent {
            start: cfg.anomaly_start,
            end: cfg.anomaly_end,
            multiplier: 6.0 / 1e-4,
            shape: EventShape::Step,
        }),
    ));
    spec
}

/// Runs the experiment over `n_cases` cases (all cores).
pub fn run(cfg: &CaseSetConfig, n_cases: usize) -> Recurring {
    run_par(cfg, n_cases, 0)
}

/// [`run`] with an explicit parallelism knob (`0` = all cores, `1` =
/// serial). Scores are identical for every value; cases fan out and each
/// diagnosis runs serially.
pub fn run_par(cfg: &CaseSetConfig, n_cases: usize, parallelism: usize) -> Recurring {
    struct CaseOutcome {
        r_rank_with: Option<usize>,
        r_rank_without: Option<usize>,
        decoy_top1_with: bool,
        decoy_top1_without: bool,
        time_with: f64,
    }
    let (workers, inner) = split_parallelism(parallelism);
    let outcomes = par_map(n_cases, workers, |i| {
        let kind = AnomalyKind::ALL[i % AnomalyKind::ALL.len()];
        let scenario_cfg = cfg.scenario.clone().with_seed(cfg.seed + i as u64);
        let base = generate_base(&scenario_cfg);
        let mut scenario = inject(&base, &scenario_cfg, kind);
        let decoy_spec = plant_decoy(&mut scenario);
        let mut case = materialize(&scenario, cfg.delta_s);
        // History synthesis in materialize() uses the clean workload; the
        // decoy's surge recurs there because plant_decoy added it to the
        // clean workload *with its rate event*, so each look-back day
        // replays the surge.
        let window_min = (case.window.window_len() + 59) / 60;
        case.history = synthesize_history(
            &scenario.base_workload,
            case.minutes_origin,
            window_min,
            &[1, 3, 7],
            scenario_cfg.seed,
            None,
        );
        let decoy_id: SqlId = case.case.catalog.id_of_spec(decoy_spec);

        let run_arm = |ablation: Ablation| {
            let pinsql = PinSql::new(
                PinSqlConfig::default().with_ablation(ablation).with_parallelism(inner),
            );
            let t0 = std::time::Instant::now();
            let d =
                pinsql.diagnose(&case.case, &case.window, &case.history, case.minutes_origin);
            let ids: Vec<SqlId> = d.rsqls.iter().map(|r| r.id).collect();
            (
                first_hit_rank(&ids, &case.truth.rsqls),
                ids.first() == Some(&decoy_id),
                t0.elapsed().as_secs_f64(),
            )
        };
        let (r_with, decoy_with, t_with) = run_arm(Ablation::default());
        let (r_without, decoy_without, _) =
            run_arm(Ablation { no_history_verification: true, ..Default::default() });
        CaseOutcome {
            r_rank_with: r_with,
            r_rank_without: r_without,
            decoy_top1_with: decoy_with,
            decoy_top1_without: decoy_without,
            time_with: t_with,
        }
    });

    let arm = |name: &str, ranks: Vec<Option<usize>>, decoys: usize, times: &[f64]| Arm {
        name: name.to_string(),
        rsql: RankSummary::from_ranks(&ranks, times),
        decoy_top1_rate: decoys as f64 / n_cases.max(1) as f64,
    };
    let times: Vec<f64> = outcomes.iter().map(|o| o.time_with).collect();
    Recurring {
        with_history: arm(
            "PinSQL (full)",
            outcomes.iter().map(|o| o.r_rank_with).collect(),
            outcomes.iter().filter(|o| o.decoy_top1_with).count(),
            &times,
        ),
        without_history: arm(
            "w/o History Trend Verification",
            outcomes.iter().map(|o| o.r_rank_without).collect(),
            outcomes.iter().filter(|o| o.decoy_top1_without).count(),
            &[],
        ),
        n_cases,
    }
}

impl std::fmt::Display for Recurring {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Recurring-decoy extension — {} cases with a history-recurring surge planted",
            self.n_cases
        )?;
        writeln!(
            f,
            "{:<34} {:>6} {:>6} {:>6} {:>12}",
            "Arm", "R-H@1", "R-H@5", "R-MRR", "decoy top-1"
        )?;
        writeln!(f, "{}", "-".repeat(70))?;
        for a in [&self.with_history, &self.without_history] {
            writeln!(
                f,
                "{:<34} {:>6.1} {:>6.1} {:>6.2} {:>11.1}%",
                a.name,
                a.rsql.hits_at_1 * 100.0,
                a.rsql.hits_at_5 * 100.0,
                a.rsql.mrr,
                a.decoy_top1_rate * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_verification_rejects_recurring_decoys() {
        let cfg = CaseSetConfig::default().with_seed(2600);
        let r = run(&cfg, 8);
        // The decoy must actually be a threat: without history
        // verification it tops at least one case.
        assert!(
            r.without_history.decoy_top1_rate > r.with_history.decoy_top1_rate,
            "decoy must fool the ablated system more often: {r}"
        );
        // And the full system must do better overall.
        assert!(
            r.with_history.rsql.hits_at_1 >= r.without_history.rsql.hits_at_1,
            "{r}"
        );
        assert!(r.with_history.decoy_top1_rate <= 0.25, "{r}");
    }
}
