//! Table II — long-term gains of query optimization: R-SQLs vs slow SQLs.
//!
//! Two selection policies feed the optimizer:
//!
//! * **R-SQLs** — PinSQL's top root cause, when the repairing rules
//!   suggest `OptimizeQuery` for the case (CPU/IO phenomena with an
//!   examined-rows spike);
//! * **Slow SQLs** — the classical slow-query detector: the template with
//!   the highest mean response time (with enough executions to matter).
//!
//! Each selected template's cost profile is optimized and the scenario is
//! re-simulated with the same seed; the gain is the drop in the template's
//! mean per-execution response time and examined rows. The shape to
//! reproduce: optimizing R-SQLs gains ~10 points more than optimizing slow
//! SQLs, because slow SQLs are often *victims* slowed by other statements,
//! with little intrinsic room for optimization.

use crate::caseset::CaseSetConfig;
use pinsql::repair::{optimize_spec, suggest_actions, RepairAction, RepairConfig};
use pinsql::{PinSql, PinSqlConfig};
use pinsql_collector::aggregate_case;
use pinsql_dbsim::run_open_loop;
use pinsql_scenario::{generate_base, inject, materialize, AnomalyKind, LabeledCase, Scenario};
use pinsql_sqlkit::SqlId;
use pinsql_workload::SpecId;
use serde::{Deserialize, Serialize};

/// Per-group aggregate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupGains {
    pub group: String,
    pub n_optimized: usize,
    /// Mean percentage drop of per-execution response time.
    pub tres_gain_pct: f64,
    /// Mean percentage drop of per-execution examined rows.
    pub examined_rows_gain_pct: f64,
}

/// The optimization-gain study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2 {
    pub rsql: GroupGains,
    pub slow: GroupGains,
}

/// Mean per-execution (tres, examined rows) of a template during the
/// anomaly window of a labelled case built from `scenario`.
fn template_means(case: &LabeledCase, id: SqlId) -> Option<(f64, f64)> {
    let idx = case.case.template_index(id)?;
    let t = &case.case.templates[idx];
    let lo = (case.window.anomaly_start - case.window.ts()).max(0) as usize;
    let hi =
        ((case.window.anomaly_end - case.window.ts()).max(0) as usize).min(case.case.n_seconds());
    let execs: f64 = t.series.execution_count[lo..hi].iter().sum();
    if execs < 1.0 {
        return None;
    }
    let rt: f64 = t.series.total_rt_ms[lo..hi].iter().sum();
    let rows: f64 = t.series.examined_rows[lo..hi].iter().sum();
    Some((rt / execs, rows / execs))
}

/// Re-simulates a scenario with one spec optimized; returns the template's
/// after-optimization means over the same window.
fn means_after_optimizing(
    scenario: &Scenario,
    case: &LabeledCase,
    spec: SpecId,
    id: SqlId,
) -> Option<(f64, f64)> {
    let optimized = optimize_spec(&scenario.workload, spec);
    let out = run_open_loop(&optimized, &scenario.sim, 0, scenario.cfg.window_s);
    let new_case =
        aggregate_case(&out.log, &optimized.specs, &out.metrics, case.window.ts(), case.window.te());
    let idx = new_case.template_index(id)?;
    let t = &new_case.templates[idx];
    let lo = (case.window.anomaly_start - case.window.ts()).max(0) as usize;
    let hi =
        ((case.window.anomaly_end - case.window.ts()).max(0) as usize).min(new_case.n_seconds());
    let execs: f64 = t.series.execution_count[lo..hi].iter().sum();
    if execs < 1.0 {
        return None;
    }
    let rt: f64 = t.series.total_rt_ms[lo..hi].iter().sum();
    let rows: f64 = t.series.examined_rows[lo..hi].iter().sum();
    Some((rt / execs, rows / execs))
}

/// The slow-SQL detector: highest mean response time among templates with
/// at least `min_exec` executions in the anomaly window.
fn slowest_template(case: &LabeledCase, min_exec: f64) -> Option<SqlId> {
    let lo = (case.window.anomaly_start - case.window.ts()).max(0) as usize;
    let hi =
        ((case.window.anomaly_end - case.window.ts()).max(0) as usize).min(case.case.n_seconds());
    case.case
        .templates
        .iter()
        .filter_map(|t| {
            let execs: f64 = t.series.execution_count[lo..hi].iter().sum();
            if execs < min_exec {
                return None;
            }
            let rt: f64 = t.series.total_rt_ms[lo..hi].iter().sum();
            Some((t.id, rt / execs))
        })
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(id, _)| id)
}

/// Runs the study over `n_cases` cases (kinds rotate as usual).
pub fn run(cfg: &CaseSetConfig, n_cases: usize) -> Table2 {
    let mut rsql_gains: Vec<(f64, f64)> = Vec::new();
    let mut slow_gains: Vec<(f64, f64)> = Vec::new();
    let pinsql = PinSql::new(PinSqlConfig::default());
    let repair_cfg = RepairConfig::default();

    for i in 0..n_cases {
        let kind = AnomalyKind::ALL[i % AnomalyKind::ALL.len()];
        let scenario_cfg = cfg.scenario.clone().with_seed(cfg.seed + i as u64);
        let base = generate_base(&scenario_cfg);
        let scenario = inject(&base, &scenario_cfg, kind);
        let case = materialize(&scenario, cfg.delta_s);

        // R-SQL path: only when the rules actually suggest optimization.
        let d = pinsql.diagnose(&case.case, &case.window, &case.history, case.minutes_origin);
        let suggestions =
            suggest_actions(&d, &case.case, &case.window, &case.anomaly_type, &repair_cfg);
        if let Some(s) = suggestions
            .iter()
            .find(|s| matches!(s.action, RepairAction::OptimizeQuery))
        {
            if let Some(info) = case.case.catalog.get(s.template) {
                let spec = info.specs[0];
                if let (Some(before), Some(after)) = (
                    template_means(&case, s.template),
                    means_after_optimizing(&scenario, &case, spec, s.template),
                ) {
                    rsql_gains.push(gain(before, after));
                }
            }
        }

        // Slow-SQL path: independent of PinSQL.
        if let Some(slow_id) = slowest_template(&case, 30.0) {
            if let Some(info) = case.case.catalog.get(slow_id) {
                let spec = info.specs[0];
                if let (Some(before), Some(after)) = (
                    template_means(&case, slow_id),
                    means_after_optimizing(&scenario, &case, spec, slow_id),
                ) {
                    slow_gains.push(gain(before, after));
                }
            }
        }
    }

    Table2 { rsql: aggregate("R-SQLs", &rsql_gains), slow: aggregate("Slow SQLs", &slow_gains) }
}

fn gain(before: (f64, f64), after: (f64, f64)) -> (f64, f64) {
    let pct = |b: f64, a: f64| if b > 0.0 { (b - a) / b * 100.0 } else { 0.0 };
    (pct(before.0, after.0), pct(before.1, after.1))
}

fn aggregate(group: &str, gains: &[(f64, f64)]) -> GroupGains {
    let n = gains.len();
    let (t, r) = gains
        .iter()
        .fold((0.0, 0.0), |(at, ar), &(gt, gr)| (at + gt, ar + gr));
    GroupGains {
        group: group.to_string(),
        n_optimized: n,
        tres_gain_pct: if n > 0 { t / n as f64 } else { 0.0 },
        examined_rows_gain_pct: if n > 0 { r / n as f64 } else { 0.0 },
    }
}

impl std::fmt::Display for Table2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Table II — averaged gains of query optimization")?;
        writeln!(
            f,
            "{:<12} {:>14} {:>12} {:>20}",
            "Group", "#Optimized", "tres Gain", "#examined_rows Gain"
        )?;
        writeln!(f, "{}", "-".repeat(62))?;
        for g in [&self.rsql, &self.slow] {
            writeln!(
                f,
                "{:<12} {:>14} {:>11.2}% {:>19.2}%",
                g.group, g.n_optimized, g.tres_gain_pct, g.examined_rows_gain_pct
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rsql_optimization_gains_more_than_slow_sql() {
        let cfg = CaseSetConfig::default().with_seed(4242);
        let t = run(&cfg, 8);
        assert!(t.rsql.n_optimized >= 1, "{t}");
        assert!(t.slow.n_optimized >= 2, "{t}");
        assert!(t.rsql.tres_gain_pct > 50.0, "{t}");
        assert!(
            t.rsql.tres_gain_pct > t.slow.tres_gain_pct,
            "R-SQL gains must exceed slow-SQL gains: {t}"
        );
        assert!(t.rsql.examined_rows_gain_pct > t.slow.examined_rows_gain_pct, "{t}");
    }
}
