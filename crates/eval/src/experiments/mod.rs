//! One driver per table/figure of the paper's evaluation (§VIII).

pub mod breakdown;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod recurring;
pub mod robustness;
pub mod sensitivity;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
