//! Table III — accuracy of the individual active-session estimation.
//!
//! Three estimators reconstruct the *instance* active session from query
//! logs; each is compared against the `SHOW STATUS` probe ground truth via
//! Pearson correlation and MSE. The shape to reproduce: RT-based
//! estimation correlates poorly and has an enormous MSE; the expected-
//! activity estimate is strong; sub-second buckets improve it further.

use crate::caseset::{build_case, CaseSetConfig};
use pinsql::{estimate_sessions, EstimatorKind, PinSqlConfig};
use pinsql_timeseries::{mean_squared_error, pearson};
use serde::{Deserialize, Serialize};

/// One estimator's row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    pub method: String,
    pub pearson: f64,
    pub mse: f64,
}

/// The estimation case study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3 {
    pub rows: Vec<Row>,
    pub n_cases: usize,
    /// Extra ablation: the bucket-count sweep called out in DESIGN.md.
    pub bucket_sweep: Vec<(usize, f64)>,
}

/// Runs the study over `n_cases` generated cases (averaging the metrics).
pub fn run(cfg: &CaseSetConfig, n_cases: usize) -> Table3 {
    let variants: Vec<(String, EstimatorKind, usize)> = vec![
        ("Estimate By RT".into(), EstimatorKind::ByRt, 10),
        ("Estimate w/o buckets".into(), EstimatorKind::NoBuckets, 1),
        ("Estimate (K=10)".into(), EstimatorKind::Buckets, 10),
    ];
    let cases: Vec<_> = (0..n_cases).map(|i| build_case(cfg, i)).collect();
    let mut rows = Vec::new();
    for (name, kind, k) in &variants {
        let mut corr_sum = 0.0;
        let mut mse_sum = 0.0;
        for case in &cases {
            let pcfg = PinSqlConfig::default().with_estimator(*kind).with_buckets(*k);
            let est = estimate_sessions(&case.case, &pcfg);
            let truth = case.case.instance_session();
            corr_sum += pearson(&est.instance_estimate, truth);
            mse_sum += mean_squared_error(&est.instance_estimate, truth);
        }
        rows.push(Row {
            method: name.clone(),
            pearson: corr_sum / n_cases as f64,
            mse: mse_sum / n_cases as f64,
        });
    }
    // Bucket-count sweep (design-choice ablation): correlation vs K.
    let mut bucket_sweep = Vec::new();
    for k in [1usize, 2, 5, 10, 20] {
        let mut corr_sum = 0.0;
        for case in &cases {
            let pcfg =
                PinSqlConfig::default().with_estimator(EstimatorKind::Buckets).with_buckets(k);
            let est = estimate_sessions(&case.case, &pcfg);
            corr_sum += pearson(&est.instance_estimate, case.case.instance_session());
        }
        bucket_sweep.push((k, corr_sum / n_cases as f64));
    }
    Table3 { rows, n_cases, bucket_sweep }
}

impl std::fmt::Display for Table3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Table III — estimated active session ({} cases)", self.n_cases)?;
        writeln!(f, "{:<22} {:>10} {:>14}", "Method", "Pearson", "MSE")?;
        writeln!(f, "{}", "-".repeat(48))?;
        for r in &self.rows {
            writeln!(f, "{:<22} {:>10.3} {:>14.2}", r.method, r.pearson, r.mse)?;
        }
        writeln!(f, "\nBucket-count sweep (correlation vs K):")?;
        for (k, c) in &self.bucket_sweep {
            writeln!(f, "  K = {k:>3}: {c:.4}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimation_quality_ordering_matches_paper() {
        let cfg = CaseSetConfig::default().with_seed(777);
        let t = run(&cfg, 2);
        let by_rt = &t.rows[0];
        let no_buckets = &t.rows[1];
        let k10 = &t.rows[2];
        assert!(no_buckets.pearson > by_rt.pearson, "{t}");
        assert!(k10.pearson >= no_buckets.pearson - 0.02, "{t}");
        assert!(k10.pearson > 0.85, "{t}");
        assert!(by_rt.mse > k10.mse, "{t}");
    }
}
