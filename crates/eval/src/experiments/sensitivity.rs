//! Extension experiment: hyper-parameter sensitivity.
//!
//! DESIGN.md calls out the design-choice knobs worth sweeping: the
//! clustering threshold `τ`, the cumulative threshold `τ_c`, the sigmoid
//! smooth factor `k_s`, and the bucket count `K`. Each sweep varies one
//! knob around the paper's default on a fixed case set and reports R-SQL
//! MRR, showing how flat (robust) or peaked (fragile) each choice is.

use crate::caseset::{build_cases_par, CaseSetConfig};
use crate::methods::{rank_with, split_parallelism, Method};
use crate::metrics::{first_hit_rank, mean_reciprocal_rank};
use pinsql::PinSqlConfig;
use pinsql_scenario::LabeledCase;
use pinsql_timeseries::par_map;
use serde::{Deserialize, Serialize};

/// One sweep over one knob.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sweep {
    pub knob: String,
    /// `(knob value, R-SQL MRR)` pairs.
    pub points: Vec<(f64, f64)>,
    /// The paper-default value of the knob.
    pub default_value: f64,
}

/// All sweeps.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sensitivity {
    pub sweeps: Vec<Sweep>,
    pub n_cases: usize,
}

fn mrr_with(cases: &[LabeledCase], cfg: PinSqlConfig, workers: usize) -> f64 {
    let method = Method::PinSql(cfg);
    let ranks = par_map(cases.len(), workers, |i| {
        first_hit_rank(&rank_with(&method, &cases[i]).rsqls, &cases[i].truth.rsqls)
    });
    mean_reciprocal_rank(&ranks)
}

/// Runs all four sweeps on one generated case set (all cores).
pub fn run(cfg: &CaseSetConfig) -> Sensitivity {
    run_par(cfg, 0)
}

/// [`run`] with an explicit parallelism knob (`0` = all cores, `1` =
/// serial). Sweep points are identical for every value.
pub fn run_par(cfg: &CaseSetConfig, parallelism: usize) -> Sensitivity {
    let (workers, inner) = split_parallelism(parallelism);
    let cases = build_cases_par(cfg, workers);
    let base = PinSqlConfig::default().with_parallelism(inner);

    let mut sweeps = Vec::new();

    let tau_values = [0.5, 0.65, 0.8, 0.9, 0.95];
    sweeps.push(Sweep {
        knob: "tau (clustering threshold)".into(),
        default_value: base.tau,
        points: tau_values
            .iter()
            .map(|&tau| (tau, mrr_with(&cases, PinSqlConfig { tau, ..base.clone() }, workers)))
            .collect(),
    });

    let tau_c_values = [0.7, 0.85, 0.95, 0.99];
    sweeps.push(Sweep {
        knob: "tau_c (cumulative threshold)".into(),
        default_value: base.tau_c,
        points: tau_c_values
            .iter()
            .map(|&tau_c| (tau_c, mrr_with(&cases, PinSqlConfig { tau_c, ..base.clone() }, workers)))
            .collect(),
    });

    let ks_values = [1.0, 10.0, 30.0, 120.0, 1000.0];
    sweeps.push(Sweep {
        knob: "ks (sigmoid smooth factor)".into(),
        default_value: base.ks,
        points: ks_values
            .iter()
            .map(|&ks| (ks, mrr_with(&cases, PinSqlConfig { ks, ..base.clone() }, workers)))
            .collect(),
    });

    let k_values = [1usize, 2, 5, 10, 20];
    sweeps.push(Sweep {
        knob: "K (session-estimation buckets)".into(),
        default_value: base.buckets_k as f64,
        points: k_values
            .iter()
            .map(|&k| (k as f64, mrr_with(&cases, base.clone().with_buckets(k), workers)))
            .collect(),
    });

    Sensitivity { sweeps, n_cases: cases.len() }
}

impl std::fmt::Display for Sensitivity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Hyper-parameter sensitivity (R-SQL MRR over {} cases)", self.n_cases)?;
        for s in &self.sweeps {
            writeln!(f, "\n{} (paper default {}):", s.knob, s.default_value)?;
            for (v, mrr) in &s.points {
                let marker = if (v - s.default_value).abs() < 1e-9 { "  ← default" } else { "" };
                writeln!(f, "  {v:>8.2} → MRR {mrr:.3}{marker}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_near_the_sweep_optimum() {
        let cfg = CaseSetConfig::default().with_cases(8).with_seed(3100);
        let s = run(&cfg);
        assert_eq!(s.sweeps.len(), 4);
        for sweep in &s.sweeps {
            let default_mrr = sweep
                .points
                .iter()
                .find(|(v, _)| (v - sweep.default_value).abs() < 1e-9)
                .map(|(_, m)| *m)
                .expect("default value must be in its own sweep");
            let best = sweep.points.iter().map(|(_, m)| *m).fold(f64::NEG_INFINITY, f64::max);
            // The paper defaults should be competitive (within 0.15 MRR of
            // the sweep optimum) on our case distribution.
            assert!(
                default_mrr >= best - 0.15,
                "{}: default {default_mrr} vs best {best}\n{s}",
                sweep.knob
            );
        }
    }
}
