//! The systems under evaluation.

use pinsql::{PinSql, PinSqlConfig};
use pinsql_baselines::{rank_top, TopMetric};
use pinsql_scenario::LabeledCase;
use pinsql_sqlkit::SqlId;
use std::time::Instant;

/// A method producing R-SQL and H-SQL rankings for a case.
#[derive(Debug, Clone)]
pub enum Method {
    /// Full PinSQL (or an ablated variant, via the config's switches).
    PinSql(PinSqlConfig),
    /// A single-metric Top-SQL baseline.
    Top(TopMetric),
}

impl Method {
    /// Display name.
    pub fn label(&self) -> String {
        match self {
            Method::PinSql(cfg) if cfg.ablation == Default::default() => "PinSQL".to_string(),
            Method::PinSql(_) => "PinSQL (ablated)".to_string(),
            Method::Top(m) => m.label().to_string(),
        }
    }
}

/// R-SQL and H-SQL rankings (template ids, best first) plus wall time.
#[derive(Debug, Clone)]
pub struct Rankings {
    pub rsqls: Vec<SqlId>,
    pub hsqls: Vec<SqlId>,
    pub time_s: f64,
    /// Per-stage wall-clock decomposition (PinSQL only; baselines have no
    /// stages).
    pub stage: Option<pinsql::StageTimings>,
}

/// Runs a method on one case.
pub fn rank_with(method: &Method, case: &LabeledCase) -> Rankings {
    let t0 = Instant::now();
    match method {
        Method::PinSql(cfg) => {
            let pinsql = PinSql::new(cfg.clone());
            let d = pinsql.diagnose(&case.case, &case.window, &case.history, case.minutes_origin);
            Rankings {
                rsqls: d.rsqls.iter().map(|r| r.id).collect(),
                hsqls: d.hsqls.iter().map(|r| r.id).collect(),
                time_s: t0.elapsed().as_secs_f64(),
                stage: Some(d.timings),
            }
        }
        Method::Top(metric) => {
            let ranked = rank_top(&case.case, &case.window, *metric);
            let ids: Vec<SqlId> =
                ranked.iter().map(|&(i, _)| case.case.templates[i].id).collect();
            Rankings {
                rsqls: ids.clone(),
                hsqls: ids,
                time_s: t0.elapsed().as_secs_f64(),
                stage: None,
            }
        }
    }
}

/// How an experiment splits a `parallelism` knob (`0` = all cores)
/// between its per-case fan-out and the diagnoser itself: with more than
/// one worker the cases fan out and each diagnosis runs serially (cases
/// dominate and oversubscribing threads helps nobody); with one worker
/// everything is serial — exactly the pre-knob behaviour.
pub fn split_parallelism(parallelism: usize) -> (usize, usize) {
    let resolved = pinsql_timeseries::effective_parallelism(parallelism);
    if resolved > 1 {
        (resolved, 1)
    } else {
        (1, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(Method::PinSql(PinSqlConfig::default()).label(), "PinSQL");
        assert_eq!(Method::Top(TopMetric::TotalResponseTime).label(), "Top-RT");
        let mut cfg = PinSqlConfig::default();
        cfg.ablation.no_trend_level = true;
        assert_eq!(Method::PinSql(cfg).label(), "PinSQL (ablated)");
    }
}
