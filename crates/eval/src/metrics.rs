//! Ranking metrics: Hits@k and MRR (§VIII-A).

use pinsql_sqlkit::SqlId;
use serde::{Deserialize, Serialize};

/// 1-based rank of the first ranked template that appears in the annotated
/// set; `None` when no ranked template is annotated.
pub fn first_hit_rank(ranked: &[SqlId], truth: &[SqlId]) -> Option<usize> {
    ranked.iter().position(|id| truth.contains(id)).map(|p| p + 1)
}

/// Fraction of cases whose first hit lands within the top `k`.
pub fn hits_at_k(ranks: &[Option<usize>], k: usize) -> f64 {
    if ranks.is_empty() {
        return 0.0;
    }
    let hits = ranks.iter().filter(|r| r.is_some_and(|r| r <= k)).count();
    hits as f64 / ranks.len() as f64
}

/// Mean reciprocal rank; a miss contributes 0.
pub fn mean_reciprocal_rank(ranks: &[Option<usize>]) -> f64 {
    if ranks.is_empty() {
        return 0.0;
    }
    ranks.iter().map(|r| r.map_or(0.0, |r| 1.0 / r as f64)).sum::<f64>() / ranks.len() as f64
}

/// Aggregated ranking quality over a case set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankSummary {
    pub hits_at_1: f64,
    pub hits_at_5: f64,
    pub mrr: f64,
    /// Mean wall-clock seconds per case.
    pub mean_time_s: f64,
}

impl RankSummary {
    /// Builds a summary from per-case first-hit ranks and timings.
    pub fn from_ranks(ranks: &[Option<usize>], times_s: &[f64]) -> Self {
        let mean_time_s = if times_s.is_empty() {
            0.0
        } else {
            times_s.iter().sum::<f64>() / times_s.len() as f64
        };
        Self {
            hits_at_1: hits_at_k(ranks, 1),
            hits_at_5: hits_at_k(ranks, 5),
            mrr: mean_reciprocal_rank(ranks),
            mean_time_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(x: u64) -> SqlId {
        SqlId(x)
    }

    #[test]
    fn first_hit_rank_finds_first_annotated() {
        let ranked = vec![id(10), id(20), id(30)];
        assert_eq!(first_hit_rank(&ranked, &[id(20), id(30)]), Some(2));
        assert_eq!(first_hit_rank(&ranked, &[id(10)]), Some(1));
        assert_eq!(first_hit_rank(&ranked, &[id(99)]), None);
        assert_eq!(first_hit_rank(&[], &[id(1)]), None);
    }

    #[test]
    fn hits_at_k_counts_within_k() {
        let ranks = vec![Some(1), Some(3), Some(7), None];
        assert_eq!(hits_at_k(&ranks, 1), 0.25);
        assert_eq!(hits_at_k(&ranks, 5), 0.5);
        assert_eq!(hits_at_k(&ranks, 10), 0.75);
        assert_eq!(hits_at_k(&[], 1), 0.0);
    }

    #[test]
    fn mrr_matches_definition() {
        let ranks = vec![Some(1), Some(2), None, Some(4)];
        let expect = (1.0 + 0.5 + 0.0 + 0.25) / 4.0;
        assert!((mean_reciprocal_rank(&ranks) - expect).abs() < 1e-12);
        assert_eq!(mean_reciprocal_rank(&[]), 0.0);
    }

    #[test]
    fn summary_aggregates() {
        let ranks = vec![Some(1), Some(2)];
        let s = RankSummary::from_ranks(&ranks, &[0.5, 1.5]);
        assert_eq!(s.hits_at_1, 0.5);
        assert_eq!(s.hits_at_5, 1.0);
        assert!((s.mrr - 0.75).abs() < 1e-12);
        assert_eq!(s.mean_time_s, 1.0);
    }
}
