//! Evaluation harness: metrics, methods, case sets, and one driver per
//! table/figure of the paper (see DESIGN.md's per-experiment index).
//!
//! * [`metrics`] — Hits@k and MRR exactly as §VIII-A defines them (the
//!   "correctly found template" is the first ranked template that appears
//!   in the annotated set);
//! * [`methods`] — the systems under evaluation: PinSQL (with optional
//!   ablation) and the Top-SQL baselines;
//! * [`caseset`] — reproducible ADAC-like case-set generation (round-robin
//!   over the four anomaly kinds, one seed per case);
//! * [`experiments`] — drivers that regenerate every table and figure:
//!   Table I (overall), Fig. 6 (ablations), Fig. 7 (scalability), Fig. 8
//!   (repair case study), Table II (optimization gains), Table III
//!   (session estimation), Table IV (Performance-Schema overhead), plus
//!   the robustness sweep (accuracy vs. telemetry-degradation intensity,
//!   with negative-case false-positive curves).

pub mod caseset;
pub mod experiments;
pub mod methods;
pub mod metrics;

pub use caseset::{
    build_case, build_case_perturbed, build_case_with, build_cases, build_cases_par,
    build_negative_case, CaseSetConfig,
};
pub use methods::{rank_with, split_parallelism, Method, Rankings};
pub use metrics::{first_hit_rank, hits_at_k, mean_reciprocal_rank, RankSummary};
