//! Reproducible case-set generation (the ADAC stand-in).

use pinsql_scenario::{
    generate_base, inject, inject_many, inject_none, materialize, materialize_with,
    AnomalyKind, LabeledCase, PerturbConfig, ScenarioConfig,
};
use serde::{Deserialize, Serialize};

/// Case-set sizing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CaseSetConfig {
    /// Number of cases (paper: 168). Kinds rotate round-robin.
    pub n_cases: usize,
    /// Base seed; case `i` uses `seed + i`.
    pub seed: u64,
    /// The scenario template each case varies.
    pub scenario: ScenarioConfig,
    /// Collection look-back δ_s handed to the diagnoser.
    pub delta_s: i64,
}

impl Default for CaseSetConfig {
    fn default() -> Self {
        Self { n_cases: 168, seed: 1000, scenario: ScenarioConfig::default(), delta_s: 600 }
    }
}

impl CaseSetConfig {
    /// Builder-style case-count override.
    pub fn with_cases(mut self, n: usize) -> Self {
        self.n_cases = n;
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Builds one labelled case.
pub fn build_case(cfg: &CaseSetConfig, i: usize) -> LabeledCase {
    let kind = AnomalyKind::ALL[i % AnomalyKind::ALL.len()];
    let scenario_cfg = cfg.scenario.clone().with_seed(cfg.seed + i as u64);
    let base = generate_base(&scenario_cfg);
    let scenario = inject(&base, &scenario_cfg, kind);
    materialize(&scenario, cfg.delta_s)
}

/// Builds one labelled case of the given kinds (empty = negative case,
/// two or more = overlapping anomalies), with optional telemetry chaos.
pub fn build_case_with(
    cfg: &CaseSetConfig,
    i: usize,
    kinds: &[AnomalyKind],
    perturb: Option<&PerturbConfig>,
) -> LabeledCase {
    let scenario_cfg = cfg.scenario.clone().with_seed(cfg.seed + i as u64);
    let base = generate_base(&scenario_cfg);
    let scenario = inject_many(&base, &scenario_cfg, kinds);
    materialize_with(&scenario, cfg.delta_s, perturb)
}

/// Builds one round-robin case with degraded telemetry.
pub fn build_case_perturbed(
    cfg: &CaseSetConfig,
    i: usize,
    perturb: &PerturbConfig,
) -> LabeledCase {
    let kind = AnomalyKind::ALL[i % AnomalyKind::ALL.len()];
    build_case_with(cfg, i, &[kind], Some(perturb))
}

/// Builds one negative (no-anomaly) case.
pub fn build_negative_case(cfg: &CaseSetConfig, i: usize) -> LabeledCase {
    let scenario_cfg = cfg.scenario.clone().with_seed(cfg.seed + i as u64);
    let base = generate_base(&scenario_cfg);
    let scenario = inject_none(&base, &scenario_cfg);
    materialize(&scenario, cfg.delta_s)
}

/// Builds the whole case set (sequentially; each case is independent).
pub fn build_cases(cfg: &CaseSetConfig) -> Vec<LabeledCase> {
    build_cases_par(cfg, 1)
}

/// Builds the whole case set fanning out over `workers` threads (`0` =
/// all cores). Case `i` depends only on `seed + i`, so the produced set
/// is identical for every worker count.
pub fn build_cases_par(cfg: &CaseSetConfig, workers: usize) -> Vec<LabeledCase> {
    pinsql_timeseries::par_map(cfg.n_cases, workers, |i| build_case(cfg, i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_kinds() {
        let cfg = CaseSetConfig::default().with_cases(4).with_seed(77);
        let cases = build_cases(&cfg);
        assert_eq!(cases.len(), 4);
        let kinds: Vec<_> = cases.iter().map(|c| c.kind).collect();
        assert_eq!(kinds, AnomalyKind::ALL.map(Some).to_vec());
        for c in &cases {
            assert!(!c.truth.rsqls.is_empty());
        }
    }

    #[test]
    fn negative_and_perturbed_builders() {
        let cfg = CaseSetConfig::default().with_cases(1).with_seed(78);
        let neg = build_negative_case(&cfg, 0);
        assert!(neg.is_negative());
        assert!(neg.truth.rsqls.is_empty());

        let clean = build_case(&cfg, 0);
        let noisy = build_case_perturbed(&cfg, 0, &PerturbConfig::at_intensity(780, 0.6));
        assert_eq!(noisy.truth.rsqls, clean.truth.rsqls, "truth survives degradation");
        assert_ne!(
            noisy.case.records.len(),
            clean.case.records.len(),
            "observation degrades"
        );
    }
}
