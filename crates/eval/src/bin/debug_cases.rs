//! Per-case diagnostic dump used while tuning the pipeline (not part of
//! the published experiment set).

use pinsql::{estimate_sessions, identify_rsqls, rank_hsqls, PinSqlConfig};
use pinsql_eval::caseset::{build_case, CaseSetConfig};
use pinsql_eval::first_hit_rank;

fn main() {
    if std::env::args().nth(1).as_deref() == Some("fig8") {
        scan_fig8();
        return;
    }
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let seed: u64 = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(500);
    let cfg = CaseSetConfig::default().with_cases(n).with_seed(seed);
    let pcfg = PinSqlConfig::default();
    for i in 0..n {
        let lc = build_case(&cfg, i);
        let est = estimate_sessions(&lc.case, &pcfg);
        let hsql = rank_hsqls(&lc.case, &est, &lc.window, &pcfg);
        let out = identify_rsqls(
            &lc.case,
            &est,
            &hsql,
            &lc.window,
            &lc.history,
            lc.minutes_origin,
            &pcfg,
        );
        let ids = |v: &[(usize, f64)]| -> Vec<String> {
            v.iter()
                .take(5)
                .map(|&(idx, s)| {
                    let t = &lc.case.templates[idx];
                    let label = lc.case.catalog.get(t.id).map(|i| i.label.clone()).unwrap_or_default();
                    format!("{label}:{s:.2}")
                })
                .collect()
        };
        let truth_idx: Vec<usize> =
            lc.truth.rsqls.iter().filter_map(|id| lc.case.template_index(*id)).collect();
        let truth_labels: Vec<String> = truth_idx
            .iter()
            .map(|&i| {
                lc.case
                    .catalog
                    .get(lc.case.templates[i].id)
                    .map(|x| x.label.clone())
                    .unwrap_or_default()
            })
            .collect();
        let ranked_ids: Vec<_> = out.ranked.iter().map(|&(i, _)| lc.case.templates[i].id).collect();
        let r_rank = first_hit_rank(&ranked_ids, &lc.truth.rsqls);
        let h_ids: Vec<_> = hsql.ranked.iter().map(|&(i, _)| lc.case.templates[i].id).collect();
        let h_rank = first_hit_rank(&h_ids, &lc.truth.hsqls);
        let in_cand = truth_idx.iter().any(|i| out.candidates.contains(i));
        let in_verified = truth_idx.iter().any(|i| out.verified.contains(i));
        let cluster_of_truth: Vec<Option<usize>> = truth_idx
            .iter()
            .map(|i| out.clusters.iter().position(|c| c.contains(i)))
            .collect();
        println!(
            "case {i} kind={:?} detected={} window=[{},{}] templates={} clusters={} selected={}",
            lc.kind,
            lc.detected,
            lc.window.anomaly_start,
            lc.window.anomaly_end,
            lc.case.templates.len(),
            out.clusters.len(),
            out.selected_clusters,
        );
        println!("  truth R: {truth_labels:?} cluster_of_truth={cluster_of_truth:?}");
        println!(
            "  r_rank={r_rank:?} h_rank={h_rank:?} in_candidates={in_cand} in_verified={in_verified} (cand={} verified={})",
            out.candidates.len(),
            out.verified.len()
        );
        println!("  top rsql: {:?}", ids(&out.ranked));
        println!("  top hsql: {:?}", ids(&hsql.ranked));
        println!("  alpha={:.2} beta={:.2}", hsql.alpha, hsql.beta);
    }
}

// (appended scan helper — invoked as: debug_cases fig8 <from> <to>)

/// Scans seeds for a fig8 showcase: Top-RT must be a victim (not the
/// R-SQL) and PinSQL's top-1 must be the injected batch write.
fn scan_fig8() {
    use pinsql_baselines::{rank_top, TopMetric};
    use pinsql_scenario::{generate_base, inject, materialize, AnomalyKind, ScenarioConfig};
    let from: u64 = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(100);
    let to: u64 = std::env::args().nth(3).and_then(|s| s.parse().ok()).unwrap_or(120);
    for seed in from..to {
        let scfg = ScenarioConfig::default().with_seed(seed);
        let base = generate_base(&scfg);
        let sc = inject(&base, &scfg, AnomalyKind::RowLock);
        let lc = materialize(&sc, 600);
        let top_rt = rank_top(&lc.case, &lc.window, TopMetric::TotalResponseTime);
        let top_rt_id = lc.case.templates[top_rt[0].0].id;
        let pin = pinsql::PinSql::new(PinSqlConfig::default());
        let d = pin.diagnose(&lc.case, &lc.window, &lc.history, lc.minutes_origin);
        let ranked_ids: Vec<_> = d.rsqls.iter().map(|r| r.id).collect();
        let r_rank = first_hit_rank(&ranked_ids, &lc.truth.rsqls);
        let top_rt_label = lc.case.catalog.get(top_rt_id).map(|i| i.label.clone()).unwrap_or_default();
        let distinct = !lc.truth.rsqls.contains(&top_rt_id);
        println!(
            "seed {seed}: r_rank={r_rank:?} top_rt={top_rt_label} top_rt_is_victim={distinct}"
        );
        if r_rank == Some(1) && distinct {
            println!("  ^ showcase candidate");
        }
    }
}
