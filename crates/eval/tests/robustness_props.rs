//! Property tests for the chaos layer end to end: whatever the
//! perturbation does to the telemetry, `diagnose` must neither panic nor
//! emit non-finite scores.
//!
//! Simulation is by far the expensive step, so each anomaly kind (plus a
//! negative scenario) is simulated exactly once and cached; every proptest
//! case then degrades a clone of the cached telemetry its own way and runs
//! the full pipeline on it.

use pinsql::{PinSql, PinSqlConfig};
use pinsql_dbsim::{run_open_loop, SimOutput};
use pinsql_eval::first_hit_rank;
use pinsql_scenario::{
    generate_base, inject, inject_none, materialize_telemetry, AnomalyKind, PerturbConfig,
    Scenario, ScenarioConfig,
};
use pinsql_sqlkit::SqlId;
use proptest::prelude::*;
use std::sync::OnceLock;

static SIMS: OnceLock<Vec<(Scenario, SimOutput)>> = OnceLock::new();

/// One cached simulation per anomaly kind, plus one negative (index 4).
fn sims() -> &'static [(Scenario, SimOutput)] {
    SIMS.get_or_init(|| {
        let cfg = ScenarioConfig::default()
            .with_seed(9900)
            .with_businesses(6)
            .with_window(600, 360, 480);
        let base = generate_base(&cfg);
        let mut out = Vec::new();
        for kind in AnomalyKind::ALL {
            let s = inject(&base, &cfg, kind);
            let o = run_open_loop(&s.workload, &s.sim, 0, cfg.window_s);
            out.push((s, o));
        }
        let s = inject_none(&base, &cfg);
        let o = run_open_loop(&s.workload, &s.sim, 0, cfg.window_s);
        out.push((s, o));
        out
    })
}

/// Degrades cached telemetry and runs the full pipeline, asserting the
/// structural invariants that must hold no matter what the chaos did.
fn check_diagnosis(which: usize, p: &PerturbConfig) -> Result<(), TestCaseError> {
    let (scenario, sim) = &sims()[which];
    let lc = materialize_telemetry(scenario, sim.log.clone(), sim.metrics.clone(), 240, Some(p));
    prop_assert!(lc.window.window_len() > 0, "window collapsed: {:?}", lc.window);
    prop_assert!(lc.window.anomaly_len() > 0);
    let d = PinSql::new(PinSqlConfig::default())
        .diagnose(&lc.case, &lc.window, &lc.history, lc.minutes_origin);
    for r in d.rsqls.iter().chain(d.hsqls.iter()).chain(d.reported_rsqls.iter()) {
        prop_assert!(r.score.is_finite(), "non-finite score: {r:?}");
    }
    prop_assert!(d.reported_rsqls.len() <= d.rsqls.len());
    // The evaluation path must also stay total on degraded output.
    let rids: Vec<SqlId> = d.rsqls.iter().map(|r| r.id).collect();
    let _ = first_hit_rank(&rids, &lc.truth.rsqls);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The single-knob sweep the robustness experiment uses.
    #[test]
    fn diagnose_never_panics_at_any_intensity(
        which in 0usize..5,
        intensity in 0.0f64..=1.0,
        seed in proptest::num::u64::ANY,
    ) {
        check_diagnosis(which, &PerturbConfig::at_intensity(seed, intensity))?;
    }

    /// Arbitrary hand-built configs, beyond what `at_intensity` reaches
    /// (heavier loss, bigger skews in both directions, independent knobs).
    #[test]
    fn diagnose_never_panics_on_arbitrary_perturbations(
        which in 0usize..5,
        drop_prob in 0.0f64..=1.0,
        duplicate_prob in 0.0f64..=0.5,
        jitter_ms in 0.0f64..=60_000.0,
        clock_skew_ms in -30_000.0f64..=30_000.0,
        reorder in proptest::bool::ANY,
        metric_blank_prob in 0.0f64..=1.0,
        seed in proptest::num::u64::ANY,
    ) {
        let p = PerturbConfig {
            seed,
            drop_prob,
            duplicate_prob,
            jitter_ms,
            clock_skew_ms,
            reorder,
            metric_blank_prob,
        };
        check_diagnosis(which, &p)?;
    }
}
