//! Serializable checkpoints of an [`OnlineInstance`]'s online state.
//!
//! A production fleet engine must survive process restarts and move
//! instances between ingestion shards without replaying days of telemetry.
//! Both needs reduce to the same primitive: serialize *all* of an
//! instance's mutable online state — the incremental aggregator's rings,
//! history feed, and counters plus the detector bank's rolling baselines
//! and open segments — restore it elsewhere, and continue **bit-identical**
//! to an instance that never stopped. Every `f64` travels as raw IEEE-754
//! bits (`to_bits`/`from_bits`); nothing is re-derived on restore, so
//! there is no float drift for the equivalence suites to forgive.
//!
//! ## Wire format
//!
//! A snapshot is a self-describing binary blob:
//!
//! ```text
//! magic   "PSNP"            4 bytes
//! version u16               currently 2 (future versions are rejected
//!                           with a typed `FutureVersion`, never a panic)
//! kernel  u8                detector kernel kind tag
//! cells   u8                cell-store kind tag
//! section instance meta     length-prefixed: delta_s, events ingested,
//!                           segment-open flag, case open/close counters
//! section aggregator        `IncrementalAggregator::write_snapshot` body
//! section detector bank     `OnlineDetectorBank::write_snapshot` body
//! section cut state (v2+)   `IncrementalAggregator::write_cut_state`
//!                           body: cut kind tag + running moments
//! ```
//!
//! Version 1 blobs (no cut-state section) still restore: the running
//! moments are rebuilt from the aggregator's resident rings under the
//! default [`CutKind`], so a pre-cut checkpoint resumes on the fast path
//! with nothing lost.
//!
//! The header kind tags duplicate tags inside the sections on purpose:
//! a reader can route a blob (e.g. group checkpoints by kernel) without
//! decoding megabytes of body, and restore cross-checks header against
//! body so a spliced blob fails with a typed [`WireError::Mismatch`].
//!
//! Malformed input of every shape — truncation at any byte, wrong magic,
//! future version, bad kind tags, trailing garbage, a blob from a
//! different scenario — produces a [`WireError`], never a panic and never
//! a silently wrong instance. The `snapshot_wire` suite walks every
//! truncation point of a golden blob to pin this.

use crate::wire::WireFormat;
use pinsql_collector::CellStoreKind;
use pinsql_detect::{CutKind, KernelKind};
use pinsql_timeseries::{WireError, WireReader, WireWriter};

/// The four magic bytes opening every instance snapshot.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"PSNP";
/// Newest snapshot wire version this build writes and reads.
pub const SNAPSHOT_VERSION: u16 = 2;
/// Oldest snapshot wire version this build still restores.
pub const MIN_SNAPSHOT_VERSION: u16 = 1;

/// The `PSNP` envelope identity under the shared [`WireFormat`] dialect.
const SNAPSHOT_FORMAT: WireFormat = WireFormat {
    magic: SNAPSHOT_MAGIC,
    version: SNAPSHOT_VERSION,
    min_version: MIN_SNAPSHOT_VERSION,
    version_what: "snapshot version",
};

/// Header length: magic + version + kernel tag + cell-store tag.
const HEADER_LEN: usize = 8;

/// One instance's serialized online state.
///
/// Construction always validates the header ([`from_bytes`]
/// (Self::from_bytes) for untrusted bytes; `OnlineInstance::snapshot` for
/// live state), so [`kernel`](Self::kernel) and
/// [`cellstore_kind`](Self::cellstore_kind) never fail. Body sections are
/// validated on restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceSnapshot {
    bytes: Vec<u8>,
}

impl InstanceSnapshot {
    /// Wraps untrusted bytes, validating magic, version, and kind tags.
    ///
    /// Body sections are *not* decoded here — a snapshot can be routed
    /// (shipped to its new shard, grouped by kernel) without paying for a
    /// full decode. Restore validates everything else.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, WireError> {
        let mut r = WireReader::new(&bytes);
        SNAPSHOT_FORMAT.read_magic_version(&mut r)?;
        decode_kernel(r.get_u8()?)?;
        decode_cellstore(r.get_u8()?)?;
        Ok(Self { bytes })
    }

    /// Wraps bytes the engine itself just encoded (header known good).
    pub(crate) fn from_trusted(bytes: Vec<u8>) -> Self {
        debug_assert!(bytes.len() >= HEADER_LEN && bytes[..4] == SNAPSHOT_MAGIC);
        Self { bytes }
    }

    /// The serialized blob.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Unwraps into the serialized blob.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Serialized size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Never true — a valid snapshot always carries at least its header.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The detector kernel the checkpointed instance ran.
    pub fn kernel(&self) -> KernelKind {
        decode_kernel(self.bytes[6]).expect("validated at construction")
    }

    /// The cell-store representation the checkpointed instance ran.
    pub fn cellstore_kind(&self) -> CellStoreKind {
        decode_cellstore(self.bytes[7]).expect("validated at construction")
    }

    /// The wire version the blob was written at.
    pub fn version(&self) -> u16 {
        u16::from_le_bytes([self.bytes[4], self.bytes[5]])
    }
}

/// The instance-level scalars carried alongside the aggregator and bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct InstanceMeta {
    pub delta_s: i64,
    pub events: u64,
    pub seg_open: bool,
    pub cases_opened: u64,
    pub cases_closed: u64,
}

pub(crate) fn kernel_tag(kernel: KernelKind) -> u8 {
    match kernel {
        KernelKind::Reference => 0,
        KernelKind::Fast => 1,
    }
}

pub(crate) fn decode_kernel(tag: u8) -> Result<KernelKind, WireError> {
    match tag {
        0 => Ok(KernelKind::Reference),
        1 => Ok(KernelKind::Fast),
        t => Err(WireError::BadTag { what: "kernel kind", value: t as u64 }),
    }
}

pub(crate) fn cellstore_tag(kind: CellStoreKind) -> u8 {
    match kind {
        CellStoreKind::Dense => 0,
        CellStoreKind::Hashed => 1,
    }
}

fn decode_cellstore(tag: u8) -> Result<CellStoreKind, WireError> {
    match tag {
        0 => Ok(CellStoreKind::Dense),
        1 => Ok(CellStoreKind::Hashed),
        t => Err(WireError::BadTag { what: "cellstore kind", value: t as u64 }),
    }
}

pub(crate) fn cut_tag(cut: CutKind) -> u8 {
    match cut {
        CutKind::Reference => 0,
        CutKind::Incremental => 1,
    }
}

pub(crate) fn decode_cut(tag: u8) -> Result<CutKind, WireError> {
    match tag {
        0 => Ok(CutKind::Reference),
        1 => Ok(CutKind::Incremental),
        t => Err(WireError::BadTag { what: "cut kind", value: t as u64 }),
    }
}

/// Writes the envelope header plus the instance-meta section; the caller
/// (instance.rs) appends the aggregator and bank sections.
pub(crate) fn write_header(
    w: &mut WireWriter,
    kernel: KernelKind,
    cells: CellStoreKind,
    meta: InstanceMeta,
) {
    SNAPSHOT_FORMAT.write_magic_version(w);
    w.put_u8(kernel_tag(kernel));
    w.put_u8(cellstore_tag(cells));
    w.put_section(|w| {
        w.put_i64(meta.delta_s);
        w.put_u64(meta.events);
        w.put_bool(meta.seg_open);
        w.put_u64(meta.cases_opened);
        w.put_u64(meta.cases_closed);
    });
}

/// Reads the envelope header plus the instance-meta section, returning the
/// wire version (so the caller knows which trailing sections to expect)
/// and the declared kind tags for the caller to cross-check against the
/// decoded body sections.
pub(crate) fn read_header(
    r: &mut WireReader<'_>,
) -> Result<(u16, KernelKind, CellStoreKind, InstanceMeta), WireError> {
    let version = SNAPSHOT_FORMAT.read_magic_version(r)?;
    let kernel = decode_kernel(r.get_u8()?)?;
    let cells = decode_cellstore(r.get_u8()?)?;
    let mut meta_r = r.get_section()?;
    let meta = InstanceMeta {
        delta_s: meta_r.get_i64()?,
        events: meta_r.get_u64()?,
        seg_open: meta_r.get_bool()?,
        cases_opened: meta_r.get_u64()?,
        cases_closed: meta_r.get_u64()?,
    };
    meta_r.finish("instance meta")?;
    Ok((version, kernel, cells, meta))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn golden_header() -> Vec<u8> {
        let mut w = WireWriter::new();
        write_header(
            &mut w,
            KernelKind::Fast,
            CellStoreKind::Dense,
            InstanceMeta {
                delta_s: 600,
                events: 12345,
                seg_open: true,
                cases_opened: 2,
                cases_closed: 1,
            },
        );
        w.into_bytes()
    }

    #[test]
    fn header_round_trips() {
        let bytes = golden_header();
        let mut r = WireReader::new(&bytes);
        let (version, kernel, cells, meta) = read_header(&mut r).unwrap();
        r.finish("header").unwrap();
        assert_eq!(version, SNAPSHOT_VERSION);
        assert_eq!(kernel, KernelKind::Fast);
        assert_eq!(cells, CellStoreKind::Dense);
        assert_eq!(
            meta,
            InstanceMeta {
                delta_s: 600,
                events: 12345,
                seg_open: true,
                cases_opened: 2,
                cases_closed: 1
            }
        );
    }

    #[test]
    fn header_rejects_wrong_magic_and_future_version() {
        let bytes = golden_header();

        let mut wrong = bytes.clone();
        wrong[0] = b'Q';
        assert!(matches!(
            read_header(&mut WireReader::new(&wrong)),
            Err(WireError::BadMagic { expected: SNAPSHOT_MAGIC, .. })
        ));

        let mut future = bytes.clone();
        future[4] = 0xFF; // version little-endian low byte
        assert!(matches!(
            read_header(&mut WireReader::new(&future)),
            Err(WireError::FutureVersion { supported: SNAPSHOT_VERSION, .. })
        ));

        let mut bad_kernel = bytes.clone();
        bad_kernel[6] = 7;
        assert!(matches!(
            read_header(&mut WireReader::new(&bad_kernel)),
            Err(WireError::BadTag { what: "kernel kind", value: 7 })
        ));

        let mut bad_cells = bytes;
        bad_cells[7] = 9;
        assert!(matches!(
            read_header(&mut WireReader::new(&bad_cells)),
            Err(WireError::BadTag { what: "cellstore kind", value: 9 })
        ));
    }

    #[test]
    fn header_accepts_previous_version_and_rejects_zero() {
        let mut v1 = golden_header();
        v1[4..6].copy_from_slice(&1u16.to_le_bytes());
        let (version, ..) = read_header(&mut WireReader::new(&v1)).unwrap();
        assert_eq!(version, 1);

        let mut v0 = golden_header();
        v0[4..6].copy_from_slice(&0u16.to_le_bytes());
        assert!(matches!(
            read_header(&mut WireReader::new(&v0)),
            Err(WireError::BadTag { what: "snapshot version", value: 0 })
        ));
    }

    #[test]
    fn cut_tags_round_trip() {
        for cut in [CutKind::Reference, CutKind::Incremental] {
            assert_eq!(decode_cut(cut_tag(cut)).unwrap(), cut);
        }
        assert!(matches!(
            decode_cut(9),
            Err(WireError::BadTag { what: "cut kind", value: 9 })
        ));
    }

    #[test]
    fn header_rejects_every_truncation() {
        let bytes = golden_header();
        for cut in 0..bytes.len() {
            assert!(
                read_header(&mut WireReader::new(&bytes[..cut])).is_err(),
                "cut at {cut} decoded"
            );
        }
    }

    #[test]
    fn from_bytes_validates_eagerly() {
        assert!(InstanceSnapshot::from_bytes(vec![]).is_err());
        assert!(InstanceSnapshot::from_bytes(b"JUNKJUNK".to_vec()).is_err());
        let snap = InstanceSnapshot::from_bytes(golden_header()).unwrap();
        assert_eq!(snap.kernel(), KernelKind::Fast);
        assert_eq!(snap.cellstore_kind(), CellStoreKind::Dense);
        assert!(!snap.is_empty());
        assert_eq!(snap.len(), snap.as_bytes().len());
    }
}
