//! The engine's shared wire-envelope discipline, and the `PEVT`
//! telemetry-ingest frame format built on it.
//!
//! Three framed formats cross process boundaries: `PSNP` instance
//! snapshots ([`crate::snapshot`]), `PCTL` control frames
//! ([`crate::control`]), and the `PEVT` event frames defined here. All
//! speak the same envelope dialect — little-endian, four magic bytes, a
//! `u16` version (future versions rejected with a typed
//! [`WireError::FutureVersion`], ancient ones with a typed
//! [`WireError::BadTag`]), a routing tag duplicated outside the body, and
//! one length-prefixed body section per frame — and every decoder maps
//! malformed input to a typed [`WireError`] instead of panicking.
//! [`WireFormat`] is that dialect in one place; the per-format modules
//! declare their identity (magic, version range) and inherit the
//! behavior, so the header hardening proven by one format's adversarial
//! suite is the same code path every format runs.
//!
//! ## The `PEVT` ingest wire
//!
//! [`EventFrame`] is how telemetry crosses the agent boundary: a source
//! (the collector side) streams [`TelemetryEvent`]s to a sink (the
//! [`crate::FleetDaemon`]-hosting agent) as batched, sequence-numbered
//! frames, and the sink answers with credit-carrying acknowledgements.
//!
//! * Every source → sink frame ([`Batch`](EventFrame::Batch),
//!   [`Advance`](EventFrame::Advance), [`Fin`](EventFrame::Fin)) carries
//!   one monotone sequence number. The sink applies exactly the next
//!   expected sequence, drops re-sent frames below it (already applied —
//!   a reconnect replays the unacked window), and refuses a gap with a
//!   typed error, which yields exactly-once application over a lossy
//!   connection.
//! * Sink → source frames ([`Hello`](EventFrame::Hello),
//!   [`Ack`](EventFrame::Ack)) carry the resume point, the event-time
//!   watermark, and the **credit window**: how many more events the sink
//!   is willing to buffer. Credits are what make backpressure
//!   deterministic — a source with no credits blocks, it does not guess.
//!
//! Batch bodies serialize events with the [`pinsql_dbsim::wire`] codec,
//! so the event encoding is owned by the crate that owns the type.

use pinsql_dbsim::wire::{decode_event, encode_event};
use pinsql_dbsim::TelemetryEvent;
use pinsql_timeseries::{WireError, WireReader, WireWriter};

/// One framed format's identity: magic marker plus the version range this
/// build accepts. The associated helpers are the shared envelope dialect.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WireFormat {
    pub magic: [u8; 4],
    /// Newest version this build writes; newer input is rejected with
    /// [`WireError::FutureVersion`].
    pub version: u16,
    /// Oldest version this build still reads; older input is rejected
    /// with [`WireError::BadTag`] under [`version_what`](Self::version_what).
    pub min_version: u16,
    pub version_what: &'static str,
}

impl WireFormat {
    /// Writes the `magic + version` envelope prefix.
    pub(crate) fn write_magic_version(&self, w: &mut WireWriter) {
        w.put_bytes_raw(&self.magic);
        w.put_u16(self.version);
    }

    /// Reads and range-checks the `magic + version` envelope prefix,
    /// returning the version found (so multi-version decoders know which
    /// trailing sections to expect).
    pub(crate) fn read_magic_version(&self, r: &mut WireReader<'_>) -> Result<u16, WireError> {
        r.expect_magic(self.magic)?;
        let version = r.get_u16()?;
        if version > self.version {
            return Err(WireError::FutureVersion { found: version, supported: self.version });
        }
        if version < self.min_version {
            return Err(WireError::BadTag { what: self.version_what, value: version as u64 });
        }
        Ok(version)
    }

    /// Writes a tagged frame header: `magic + version + u8 tag`. The tag
    /// sits outside the body so a router can dispatch without decoding it.
    pub(crate) fn write_frame_header(&self, w: &mut WireWriter, tag: u8) {
        self.write_magic_version(w);
        w.put_u8(tag);
    }

    /// Reads a tagged frame header, returning the routing tag.
    pub(crate) fn read_frame_header(&self, r: &mut WireReader<'_>) -> Result<u8, WireError> {
        self.read_magic_version(r)?;
        r.get_u8()
    }
}

/// `Option<u64>` as a presence bool plus the value.
pub(crate) fn put_opt_u64(w: &mut WireWriter, v: Option<u64>) {
    match v {
        Some(x) => {
            w.put_bool(true);
            w.put_u64(x);
        }
        None => w.put_bool(false),
    }
}

pub(crate) fn get_opt_u64(r: &mut WireReader<'_>) -> Result<Option<u64>, WireError> {
    Ok(if r.get_bool()? { Some(r.get_u64()?) } else { None })
}

pub(crate) fn put_opt_i64(w: &mut WireWriter, v: Option<i64>) {
    match v {
        Some(x) => {
            w.put_bool(true);
            w.put_i64(x);
        }
        None => w.put_bool(false),
    }
}

pub(crate) fn get_opt_i64(r: &mut WireReader<'_>) -> Result<Option<i64>, WireError> {
    Ok(if r.get_bool()? { Some(r.get_i64()?) } else { None })
}

pub(crate) fn put_opt_f64(w: &mut WireWriter, v: Option<f64>) {
    match v {
        Some(x) => {
            w.put_bool(true);
            w.put_f64(x);
        }
        None => w.put_bool(false),
    }
}

pub(crate) fn get_opt_f64(r: &mut WireReader<'_>) -> Result<Option<f64>, WireError> {
    Ok(if r.get_bool()? { Some(r.get_f64()?) } else { None })
}

/// Frame marker: "Pinsql EVenT".
pub const EVENT_MAGIC: [u8; 4] = *b"PEVT";

/// Ingest-wire format version. Decoders accept `<=` this and reject newer
/// frames with [`WireError::FutureVersion`] instead of misparsing them.
pub const EVENT_VERSION: u16 = 1;

/// Bytes before the body section: magic (4) + version (2) + tag (1).
pub const EVENT_HEADER_LEN: usize = 7;

pub(crate) const EVENT_FORMAT: WireFormat = WireFormat {
    magic: EVENT_MAGIC,
    version: EVENT_VERSION,
    min_version: 0,
    version_what: "event wire version",
};

/// Smallest possible serialized event (a tick: tag byte + i64) — the
/// [`WireReader::get_len`] bound that makes an absurd batch length fail
/// fast instead of driving an OOM `Vec::with_capacity`.
const MIN_EVENT_BYTES: usize = 9;

/// One `PEVT` ingest frame. See the module docs for the protocol the
/// frames carry; [`crate::transport`] implements both endpoints.
#[derive(Debug, Clone, PartialEq)]
pub enum EventFrame {
    /// Sink → source, on every (re)connect: apply from `next_seq` (frames
    /// below it were already applied), under `credits` more events of
    /// buffer, with everything strictly before `watermark` folded.
    Hello { next_seq: u64, credits: u64, watermark: i64 },
    /// Source → sink: `events`, in stream order, for `instance`.
    Batch { seq: u64, instance: u32, events: Vec<TelemetryEvent> },
    /// Source → sink: every event strictly before `boundary_s` (event
    /// time) has been sent; fold to that watermark now.
    Advance { seq: u64, boundary_s: i64 },
    /// Source → sink: the stream is complete; drain everything buffered.
    Fin { seq: u64 },
    /// Sink → source: `seq` is the highest contiguously applied source
    /// frame, `credits` more events fit in the sink's queues, and every
    /// event strictly before `watermark` has folded.
    Ack { seq: u64, credits: u64, watermark: i64 },
}

impl EventFrame {
    fn tag(&self) -> u8 {
        match self {
            EventFrame::Hello { .. } => 1,
            EventFrame::Batch { .. } => 2,
            EventFrame::Advance { .. } => 3,
            EventFrame::Fin { .. } => 4,
            EventFrame::Ack { .. } => 5,
        }
    }

    /// Encodes one framed message.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(64);
        EVENT_FORMAT.write_frame_header(&mut w, self.tag());
        w.put_section(|w| match self {
            EventFrame::Hello { next_seq, credits, watermark } => {
                w.put_u64(*next_seq);
                w.put_u64(*credits);
                w.put_i64(*watermark);
            }
            EventFrame::Batch { seq, instance, events } => {
                w.put_u64(*seq);
                w.put_u32(*instance);
                w.put_len(events.len());
                for ev in events {
                    encode_event(w, ev);
                }
            }
            EventFrame::Advance { seq, boundary_s } => {
                w.put_u64(*seq);
                w.put_i64(*boundary_s);
            }
            EventFrame::Fin { seq } => w.put_u64(*seq),
            EventFrame::Ack { seq, credits, watermark } => {
                w.put_u64(*seq);
                w.put_u64(*credits);
                w.put_i64(*watermark);
            }
        });
        w.into_bytes()
    }

    /// Decodes one framed message from untrusted bytes. Every malformed
    /// input maps to a typed [`WireError`]; this never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let tag = EVENT_FORMAT.read_frame_header(&mut r)?;
        let mut body = r.get_section()?;
        let frame = match tag {
            1 => EventFrame::Hello {
                next_seq: body.get_u64()?,
                credits: body.get_u64()?,
                watermark: body.get_i64()?,
            },
            2 => {
                let seq = body.get_u64()?;
                let instance = body.get_u32()?;
                let n = body.get_len(MIN_EVENT_BYTES)?;
                let mut events = Vec::with_capacity(n);
                for _ in 0..n {
                    events.push(decode_event(&mut body)?);
                }
                EventFrame::Batch { seq, instance, events }
            }
            3 => EventFrame::Advance { seq: body.get_u64()?, boundary_s: body.get_i64()? },
            4 => EventFrame::Fin { seq: body.get_u64()? },
            5 => EventFrame::Ack {
                seq: body.get_u64()?,
                credits: body.get_u64()?,
                watermark: body.get_i64()?,
            },
            t => return Err(WireError::BadTag { what: "event frame tag", value: t as u64 }),
        };
        body.finish("event frame body")?;
        r.finish("event frame")?;
        Ok(frame)
    }

    /// The sequence number a source → sink frame carries (`None` for the
    /// sink → source frames, which are unsequenced).
    pub fn seq(&self) -> Option<u64> {
        match self {
            EventFrame::Batch { seq, .. }
            | EventFrame::Advance { seq, .. }
            | EventFrame::Fin { seq } => Some(*seq),
            EventFrame::Hello { .. } | EventFrame::Ack { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinsql_dbsim::MetricsSample;
    use pinsql_workload::SpecId;

    fn sample_events() -> Vec<TelemetryEvent> {
        vec![
            TelemetryEvent::Query(pinsql_dbsim::QueryRecord {
                spec: SpecId(7),
                start_ms: 1234.5,
                response_ms: 88.25,
                examined_rows: 42,
            }),
            TelemetryEvent::Metrics(Box::new(MetricsSample {
                second: 12,
                active_session: 3.0,
                cpu_usage: 0.5,
                iops_usage: 0.25,
                row_lock_waits: 0.0,
                mdl_waits: 1.0,
                qps: 9.0,
                probes: vec![pinsql_dbsim::probe::ProbeSample {
                    second: 12,
                    active_sessions: 3,
                    true_instant_ms: 12_400.0,
                }],
            })),
            TelemetryEvent::Tick { second: 13 },
        ]
    }

    #[test]
    fn frames_round_trip_exactly() {
        let frames = [
            EventFrame::Hello { next_seq: 4, credits: 1024, watermark: 120 },
            EventFrame::Batch { seq: 4, instance: 2, events: sample_events() },
            EventFrame::Batch { seq: 5, instance: 0, events: Vec::new() },
            EventFrame::Advance { seq: 6, boundary_s: 300 },
            EventFrame::Fin { seq: 7 },
            EventFrame::Ack { seq: 6, credits: 512, watermark: 300 },
        ];
        for frame in frames {
            let bytes = frame.to_bytes();
            assert_eq!(&bytes[..4], &EVENT_MAGIC);
            assert_eq!(EventFrame::from_bytes(&bytes).unwrap(), frame);
        }
    }

    #[test]
    fn unknown_frame_tags_are_typed() {
        let mut bytes = EventFrame::Fin { seq: 1 }.to_bytes();
        bytes[EVENT_HEADER_LEN - 1] = 9;
        assert!(matches!(
            EventFrame::from_bytes(&bytes),
            Err(WireError::BadTag { what: "event frame tag", value: 9 })
        ));
    }

    #[test]
    fn absurd_batch_length_fails_fast() {
        let mut w = WireWriter::new();
        EVENT_FORMAT.write_frame_header(&mut w, 2);
        w.put_section(|w| {
            w.put_u64(1);
            w.put_u32(0);
            w.put_len(usize::MAX / 2);
        });
        assert!(matches!(
            EventFrame::from_bytes(&w.into_bytes()),
            Err(WireError::Truncated { .. })
        ));
    }
}
