//! Multiplexed event loop over a fleet of simulated instances.
//!
//! A production deployment watches hundreds of instances at once: telemetry
//! from all of them arrives interleaved on a shared bus, each instance's
//! events fold into its own online pipeline, and diagnosis fans out across
//! the cases that close. [`FleetEngine`] reproduces that shape over
//! simulated scenarios:
//!
//! 1. **Materialize** — each scenario's event stream is produced with the
//!    `par_map` fan-out (instances generate telemetry concurrently in the
//!    real system).
//! 2. **Multiplex** — ingestion is split across
//!    [`FleetConfig::shards`] scoped worker threads, each owning a
//!    contiguous, disjoint slice of instances and running a private
//!    time-ordered k-way merge over its slice's streams (ties broken by
//!    instance index; same-second query runs move as one chunk through the
//!    collector's amortized hot path). This is the sustained-throughput
//!    section the fleet bench measures; its wall clock is the *slowest
//!    shard's* merge, the quantity that shrinks as shards scale across
//!    cores.
//! 3. **Diagnose** — every instance's case closes in its shard, closed
//!    cases reassemble in instance-id order, and `PinSql::diagnose` fans
//!    out across them with `par_map`.
//!
//! **Determinism.** Instances are independent: no event of one instance
//! can affect another's pipeline, so outcomes depend only on each
//! instance's *own* event order — which every shard preserves (a merge
//! only interleaves across streams; each stream is consumed front to
//! back). Cases and diagnoses are therefore bit-identical for **any**
//! `shards` and `fanout` values; the workspace's `shard_equivalence` suite
//! pins this against the golden corpus.

use crate::instance::OnlineInstance;
use pinsql::{Diagnosis, PinSql, PinSqlConfig};
use pinsql_detect::KernelKind;
use pinsql_dbsim::telemetry::query_run;
use pinsql_dbsim::TelemetryEvent;
use pinsql_obs::{FleetHealth, HealthSnapshot, NoopObserver, Observer, Stage};
use pinsql_scenario::{materialize_events, LabeledCase, Scenario};
use pinsql_timeseries::par::par_map;
use serde::Serialize;
use std::time::Instant;

/// Knobs for a fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Collection look-back δ_s prepended to each selected case window.
    pub delta_s: i64,
    /// Diagnoser configuration (its `parallelism` applies *inside* each
    /// diagnosis; `fanout` below is the across-instance knob).
    pub pinsql: PinSqlConfig,
    /// Worker threads for across-instance stages (materialize, diagnose);
    /// `0` = all cores.
    pub fanout: usize,
    /// Ingestion worker threads, each owning a disjoint contiguous slice
    /// of instances. Must be ≥ 1; values above the instance count are
    /// clamped at run time. Outcomes are identical at every value.
    pub shards: usize,
    /// Detector statistics kernel for every instance's bank. Both kinds
    /// are bit-identical; the equivalence suites run the full
    /// kernel × shards × fanout matrix against the golden corpus.
    pub kernel: KernelKind,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            delta_s: 600,
            pinsql: PinSqlConfig::default(),
            fanout: 0,
            shards: 1,
            kernel: KernelKind::default(),
        }
    }
}

/// What happened on one instance, flattened for `results/fleet.json`.
#[derive(Debug, Clone, Serialize)]
pub struct InstanceOutcome {
    pub instance: usize,
    /// Injected anomaly kind label ("none" for negative scenarios).
    pub kind: String,
    pub seed: u64,
    /// Whether the online detectors raised the case (vs. hint fallback).
    pub detected: bool,
    pub anomaly_type: String,
    pub n_events: u64,
    pub n_queries: u64,
    pub case_seconds: usize,
    pub n_templates: usize,
    /// R-SQLs the diagnoser would assert (the reported list).
    pub n_reported: usize,
    /// Label of the top-ranked R-SQL, if any candidate was ranked.
    pub top_rsql: Option<String>,
    /// True when the top-ranked R-SQL is one of the ground-truth R-SQLs.
    pub truth_hit: bool,
    /// Wall-clock seconds for this instance's diagnosis call.
    pub diagnose_s: f64,
}

/// Aggregate report of one fleet run.
#[derive(Debug, Clone, Serialize)]
pub struct FleetReport {
    pub n_instances: usize,
    /// Ingestion shards actually used (after clamping to the fleet size).
    pub shards: usize,
    /// Events pushed through the multiplexed loop.
    pub events_total: u64,
    /// Wall-clock seconds of the multiplexed ingest stage — the slowest
    /// shard's merge loop (shards run concurrently).
    pub ingest_wall_s: f64,
    /// Sustained ingest throughput (events / ingest_wall_s).
    pub events_per_sec: f64,
    /// Wall-clock seconds of the across-instance diagnosis fan-out.
    pub diagnose_wall_s: f64,
    /// Mean per-case diagnosis latency.
    pub diagnose_mean_s: f64,
    /// Worst per-case diagnosis latency.
    pub diagnose_max_s: f64,
    pub outcomes: Vec<InstanceOutcome>,
}

/// A fleet run with its full per-instance artifacts, for consumers that
/// need more than the flattened report (equivalence suites compare the
/// labelled cases and diagnoses bit-for-bit across shard counts).
#[derive(Debug, Clone)]
pub struct FleetRun {
    pub report: FleetReport,
    /// Closed cases, in instance-id order.
    pub cases: Vec<LabeledCase>,
    /// Diagnoses, aligned with `cases`.
    pub diagnoses: Vec<Diagnosis>,
    /// Fleet health roll-up: one snapshot per instance (taken right before
    /// its case closed), in instance-id order, plus exact totals.
    pub health: FleetHealth,
}

/// One ingestion shard's output: per-instance counters and closed cases
/// for its contiguous slice, plus the shard's merge wall clock.
struct ShardResult {
    merge_s: f64,
    events: u64,
    /// `(events_ingested, queries)` per instance, slice order.
    stats: Vec<(u64, u64)>,
    cases: Vec<LabeledCase>,
    /// Health snapshot per instance, slice order (taken at case close).
    health: Vec<HealthSnapshot>,
}

/// The fleet orchestrator. See the module docs for the three stages.
#[derive(Debug, Clone, Default)]
pub struct FleetEngine {
    pub cfg: FleetConfig,
}

impl FleetEngine {
    /// # Panics
    /// Panics if `cfg.shards == 0`: every shard owns a disjoint slice of
    /// instances, so zero shards would silently ingest nothing.
    pub fn new(cfg: FleetConfig) -> Self {
        assert!(
            cfg.shards >= 1,
            "FleetConfig.shards must be >= 1 (got 0); use shards = 1 for unsharded ingestion"
        );
        Self { cfg }
    }

    /// Runs the full loop over one scenario per instance and reports
    /// throughput, latency, and per-instance outcomes.
    ///
    /// Outcomes are deterministic and independent of both `shards` and
    /// `fanout` (timings aside) — see the module docs.
    pub fn run(&self, scenarios: &[Scenario]) -> FleetReport {
        self.run_full(scenarios).report
    }

    /// [`run`](Self::run), additionally returning the closed cases and
    /// diagnoses in instance-id order.
    pub fn run_full(&self, scenarios: &[Scenario]) -> FleetRun {
        self.run_full_observed(scenarios, &NoopObserver)
    }

    /// [`run_full`](Self::run_full) under an explicit observer: each
    /// ingest shard records on its own forked lane (`shard{s}`), each
    /// diagnosis on a `diag{i}` lane, so the exported trace shows the real
    /// cross-thread timeline. Cases, diagnoses, and health are
    /// byte-identical whatever `O` is (pinned by `obs_equivalence`).
    pub fn run_full_observed<O: Observer>(&self, scenarios: &[Scenario], obs: &O) -> FleetRun {
        assert!(!scenarios.is_empty(), "fleet run needs at least one scenario");
        assert!(self.cfg.shards >= 1, "FleetConfig.shards must be >= 1");
        let n = scenarios.len();
        let shards = self.cfg.shards.min(n);

        let streams: Vec<Vec<TelemetryEvent>> =
            par_map(n, self.cfg.fanout, |i| materialize_events(&scenarios[i], None));

        // Contiguous near-equal slices: shard s owns instances
        // [s*n/shards, (s+1)*n/shards). Streams move into their shard;
        // scenarios are borrowed in place.
        let bounds: Vec<usize> = (0..=shards).map(|s| s * n / shards).collect();
        let mut stream_iter = streams.into_iter();
        let shard_streams: Vec<Vec<Vec<TelemetryEvent>>> = bounds
            .windows(2)
            .map(|w| (&mut stream_iter).take(w[1] - w[0]).collect())
            .collect();

        let delta_s = self.cfg.delta_s;
        let kernel = self.cfg.kernel;
        let shard_results: Vec<ShardResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = shard_streams
                .into_iter()
                .enumerate()
                .map(|(s, local_streams)| {
                    let shard_scenarios = &scenarios[bounds[s]..bounds[s + 1]];
                    let shard_obs = obs.fork(&format!("shard{s}"));
                    scope.spawn(move || {
                        run_shard(shard_scenarios, local_streams, delta_s, kernel, shard_obs)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("ingest shard panicked")).collect()
        });

        // Reassemble in instance-id order (shards own contiguous ranges,
        // so flattening in shard order is the global order). The ingest
        // wall clock is the slowest shard: shards run concurrently.
        let events_total: u64 = shard_results.iter().map(|r| r.events).sum();
        let ingest_wall_s = shard_results.iter().map(|r| r.merge_s).fold(0.0f64, f64::max);
        let mut per_instance: Vec<(u64, u64)> = Vec::with_capacity(n);
        let mut cases: Vec<LabeledCase> = Vec::with_capacity(n);
        let mut health: Vec<HealthSnapshot> = Vec::with_capacity(n);
        for r in shard_results {
            per_instance.extend(r.stats);
            cases.extend(r.cases);
            health.extend(r.health);
        }

        let t1 = Instant::now();
        let diagnoser = PinSql::new(self.cfg.pinsql.clone());
        let diagnosed = par_map(cases.len(), self.cfg.fanout, |i| {
            let lc = &cases[i];
            let t = Instant::now();
            let d = if O::ENABLED {
                let lane = obs.fork(&format!("diag{i}"));
                diagnoser.diagnose_observed(
                    &lc.case,
                    &lc.window,
                    &lc.history,
                    lc.minutes_origin,
                    &lane,
                )
            } else {
                diagnoser.diagnose(&lc.case, &lc.window, &lc.history, lc.minutes_origin)
            };
            (d, t.elapsed().as_secs_f64())
        });
        let diagnose_wall_s = t1.elapsed().as_secs_f64();

        let mut diagnoses = Vec::with_capacity(diagnosed.len());
        let mut diag_lat = Vec::with_capacity(diagnosed.len());
        for (d, lat) in diagnosed {
            diagnoses.push(d);
            diag_lat.push(lat);
        }

        let outcomes: Vec<InstanceOutcome> = diagnoses
            .iter()
            .enumerate()
            .map(|(i, d)| {
                let lc = &cases[i];
                let top = d.rsqls.first();
                InstanceOutcome {
                    instance: i,
                    kind: scenarios[i].kind.map(|k| k.label()).unwrap_or("none").to_string(),
                    seed: scenarios[i].cfg.seed,
                    detected: lc.detected,
                    anomaly_type: lc.anomaly_type.clone(),
                    n_events: per_instance[i].0,
                    n_queries: per_instance[i].1,
                    case_seconds: lc.case.n_seconds(),
                    n_templates: lc.case.templates.len(),
                    n_reported: d.reported_rsqls.len(),
                    top_rsql: top.map(|r| r.label.clone()),
                    truth_hit: top.is_some_and(|r| lc.truth.rsqls.contains(&r.id)),
                    diagnose_s: diag_lat[i],
                }
            })
            .collect();

        let lat_sum: f64 = outcomes.iter().map(|o| o.diagnose_s).sum();
        let lat_max = outcomes.iter().map(|o| o.diagnose_s).fold(0.0f64, f64::max);
        let report = FleetReport {
            n_instances: outcomes.len(),
            shards,
            events_total,
            ingest_wall_s,
            events_per_sec: if ingest_wall_s > 0.0 {
                events_total as f64 / ingest_wall_s
            } else {
                0.0
            },
            diagnose_wall_s,
            diagnose_mean_s: lat_sum / outcomes.len() as f64,
            diagnose_max_s: lat_max,
            outcomes,
        };
        FleetRun { report, cases, diagnoses, health: FleetHealth::from_instances(health) }
    }
}

/// One shard's ingest stage: a private k-way merge over its slice's
/// streams at chunk granularity, then in-shard case closing.
fn run_shard<'a, O: Observer>(
    scenarios: &'a [Scenario],
    mut streams: Vec<Vec<TelemetryEvent>>,
    delta_s: i64,
    kernel: KernelKind,
    obs: O,
) -> ShardResult {
    debug_assert_eq!(scenarios.len(), streams.len());
    let mut instances: Vec<OnlineInstance<'a, O>> = scenarios
        .iter()
        .map(|s| OnlineInstance::with_observer(s, delta_s, obs.clone()).with_kernel(kernel))
        .collect();

    let merge_n0 = if O::ENABLED { obs.now_ns() } else { 0 };
    let t0 = Instant::now();
    let mut cursors = vec![0usize; streams.len()];
    let mut events = 0u64;
    loop {
        // K-way merge head: earliest next event time, ties to the lowest
        // instance index. K is small (a fleet slice), so a linear scan
        // beats a heap's allocation churn.
        let mut head: Option<(f64, usize)> = None;
        for (j, stream) in streams.iter().enumerate() {
            if let Some(ev) = stream.get(cursors[j]) {
                let t = ev.time_ms();
                if head.is_none_or(|(best, _)| t < best) {
                    head = Some((t, j));
                }
            }
        }
        let Some((_, j)) = head else { break };
        let stream = &mut streams[j];
        let c = cursors[j];
        // Merge at chunk granularity: a same-second query run moves as one
        // unit through the amortized ingest path. Per-instance event order
        // is untouched, so outcomes match the event-level merge exactly.
        if let Some((second, len)) = query_run(stream, c) {
            instances[j].ingest_queries(second, &stream[c..c + len]);
            cursors[j] = c + len;
            events += len as u64;
        } else {
            let ev = std::mem::replace(&mut stream[c], TelemetryEvent::Tick { second: i64::MIN });
            instances[j].ingest(ev);
            cursors[j] = c + 1;
            events += 1;
        }
    }
    let merge_s = t0.elapsed().as_secs_f64();
    if O::ENABLED {
        obs.span(Stage::IngestMerge, merge_n0, obs.now_ns());
    }

    let stats =
        instances.iter().map(|inst| (inst.events_ingested(), inst.ingest_stats().queries)).collect();
    let health = instances.iter().map(OnlineInstance::health_snapshot).collect();
    let cases = instances.into_iter().map(|inst| inst.close_case()).collect();
    ShardResult { merge_s, events, stats, cases, health }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinsql_scenario::{generate_base, inject, inject_none, AnomalyKind, ScenarioConfig};

    /// A small, fast fleet: short windows, few businesses, one scenario of
    /// each kind plus a negative.
    fn small_fleet(n: usize) -> Vec<Scenario> {
        let kinds = [
            Some(AnomalyKind::BusinessSpike),
            Some(AnomalyKind::PoorSql),
            Some(AnomalyKind::MdlLock),
            Some(AnomalyKind::RowLock),
            None,
        ];
        (0..n)
            .map(|i| {
                let cfg = ScenarioConfig::default()
                    .with_seed(90 + i as u64)
                    .with_businesses(6)
                    .with_window(420, 240, 330);
                let base = generate_base(&cfg);
                match kinds[i % kinds.len()] {
                    Some(kind) => inject(&base, &cfg, kind),
                    None => inject_none(&base, &cfg),
                }
            })
            .collect()
    }

    #[test]
    fn fleet_smoke() {
        let scenarios = small_fleet(4);
        let engine = FleetEngine::new(FleetConfig {
            delta_s: 180,
            pinsql: PinSqlConfig::default(),
            fanout: 2,
            shards: 2,
            ..FleetConfig::default()
        });
        let report = engine.run(&scenarios);

        assert_eq!(report.n_instances, 4);
        assert_eq!(report.shards, 2);
        assert!(report.events_total > 0);
        assert_eq!(
            report.events_total,
            report.outcomes.iter().map(|o| o.n_events).sum::<u64>(),
            "every multiplexed event is attributed to exactly one instance"
        );
        assert!(report.events_per_sec > 0.0);
        assert!(report.diagnose_max_s >= report.diagnose_mean_s);
        for o in &report.outcomes {
            assert!(o.n_queries > 0, "instance {} saw no queries", o.instance);
            assert!(o.case_seconds > 0);
            assert!(o.n_templates > 0);
        }
        // The report must serialize (the fleet bench writes it to JSON).
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("events_per_sec"));
    }

    #[test]
    fn outcomes_are_independent_of_fanout_and_shards() {
        let scenarios = small_fleet(3);
        let run = |fanout, shards| {
            FleetEngine::new(FleetConfig {
                delta_s: 180,
                pinsql: PinSqlConfig::default(),
                fanout,
                shards,
                ..FleetConfig::default()
            })
            .run(&scenarios)
        };
        let a = run(1, 1);
        for (fanout, shards) in [(4, 1), (1, 2), (4, 3)] {
            let b = run(fanout, shards);
            assert_eq!(a.events_total, b.events_total);
            for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
                assert_eq!(x.detected, y.detected);
                assert_eq!(x.anomaly_type, y.anomaly_type);
                assert_eq!(x.n_events, y.n_events);
                assert_eq!(x.n_queries, y.n_queries);
                assert_eq!(x.case_seconds, y.case_seconds);
                assert_eq!(x.n_templates, y.n_templates);
                assert_eq!(x.n_reported, y.n_reported);
                assert_eq!(x.top_rsql, y.top_rsql);
                assert_eq!(x.truth_hit, y.truth_hit);
            }
        }
    }

    /// The CI smoke for the scaling sweep: sharded runs must reproduce the
    /// unsharded run's cases and diagnoses exactly, and the report must
    /// serialize for `results/fleet_scaling.json`.
    #[test]
    fn scaling_smoke() {
        let scenarios = small_fleet(4);
        let run = |shards| {
            FleetEngine::new(FleetConfig {
                delta_s: 180,
                pinsql: PinSqlConfig::default(),
                fanout: 1,
                shards,
                ..FleetConfig::default()
            })
            .run_full(&scenarios)
        };
        let base = run(1);
        for shards in [2usize, 4] {
            let sharded = run(shards);
            assert_eq!(sharded.report.shards, shards);
            assert_eq!(sharded.cases.len(), base.cases.len());
            for (i, (x, y)) in base.cases.iter().zip(&sharded.cases).enumerate() {
                assert_eq!(x.window, y.window, "instance {i}");
                assert_eq!(x.case.records, y.case.records, "instance {i}");
                assert_eq!(x.truth.rsqls, y.truth.rsqls, "instance {i}");
            }
            for (i, (x, y)) in base.diagnoses.iter().zip(&sharded.diagnoses).enumerate() {
                assert_eq!(x.rsqls, y.rsqls, "instance {i}");
                assert_eq!(x.hsqls, y.hsqls, "instance {i}");
                assert_eq!(x.reported_rsqls, y.reported_rsqls, "instance {i}");
            }
        }
        let json = serde_json::to_string(&base.report).unwrap();
        assert!(!json.is_empty() && json.contains("\"shards\":1"));
    }

    #[test]
    #[should_panic(expected = "shards must be >= 1")]
    fn zero_shards_is_rejected() {
        let _ = FleetEngine::new(FleetConfig {
            delta_s: 180,
            pinsql: PinSqlConfig::default(),
            fanout: 1,
            shards: 0,
            ..FleetConfig::default()
        });
    }

    #[test]
    fn oversized_shard_count_is_clamped() {
        let scenarios = small_fleet(2);
        let report = FleetEngine::new(FleetConfig {
            delta_s: 180,
            pinsql: PinSqlConfig::default(),
            fanout: 1,
            shards: 16,
            ..FleetConfig::default()
        })
        .run(&scenarios);
        assert_eq!(report.shards, 2, "shards clamp to the fleet size");
        assert_eq!(report.n_instances, 2);
    }
}
