//! Multiplexed event loop over a fleet of simulated instances.
//!
//! A production deployment watches hundreds of instances at once: telemetry
//! from all of them arrives interleaved on a shared bus, each instance's
//! events fold into its own online pipeline, and diagnosis fans out across
//! the cases that close. [`FleetEngine`] reproduces that shape over
//! simulated scenarios:
//!
//! 1. **Materialize** — each scenario's event stream is produced with the
//!    `par_map` fan-out (instances generate telemetry concurrently in the
//!    real system).
//! 2. **Multiplex** — ingestion is split across
//!    [`FleetConfig::shards`] scoped worker threads, each owning a
//!    disjoint set of instances and running a private time-ordered k-way
//!    merge over its instances' streams (same-second query runs move as
//!    one chunk through the collector's amortized hot path). This is the
//!    sustained-throughput section the fleet bench measures; its wall
//!    clock is the *slowest shard's* merge, the quantity that shrinks as
//!    shards scale across cores.
//! 3. **Diagnose** — every instance's case closes in its shard, closed
//!    cases reassemble keyed by instance id, and `PinSql::diagnose` fans
//!    out across them with `par_map`.
//!
//! ## Live resharding and crash recovery
//!
//! Because every instance's online state is checkpointable
//! ([`OnlineInstance::snapshot`]), shard ownership is not fixed for the
//! life of a run. [`run_resharded`](FleetEngine::run_resharded) executes a
//! [`ReshardPlan`]: at each step's quiesce boundary every instance is
//! serialized, re-seated on the shard the step assigns it to (possibly a
//! brand-new shard layout — shard counts can grow, shrink, or permute
//! arbitrarily), restored, and ingestion resumes with the remaining
//! events. [`checkpoint_at`](FleetEngine::checkpoint_at) /
//! [`resume_full`](FleetEngine::resume_full) use the same primitive for
//! crash recovery: serialize the whole fleet at a boundary, later replay
//! only the tail.
//!
//! **Determinism.** Instances are independent: no event of one instance
//! can affect another's pipeline, so outcomes depend only on each
//! instance's *own* event order — which every shard preserves (a merge
//! only interleaves across streams; each stream is consumed front to
//! back), and which reshard handoffs preserve too (a snapshot/restore
//! boundary is behaviorally invisible, and each phase consumes a prefix
//! of each stream in order). Cases and diagnoses are therefore
//! bit-identical for **any** `shards` / `fanout` values and **any**
//! reshard plan; the workspace's `shard_equivalence` and
//! `reshard_equivalence` suites pin this against the golden corpus.

use crate::instance::OnlineInstance;
use crate::snapshot::InstanceSnapshot;
use pinsql::{ConfigEpoch, Diagnosis, PinSql, PinSqlConfig};
use pinsql_dbsim::telemetry::query_run;
use pinsql_dbsim::TelemetryEvent;
use pinsql_detect::{CutKind, KernelKind};
use pinsql_obs::{
    Counter, FleetHealth, FleetRollup, HealthSnapshot, NoopObserver, Observer, Stage,
};
use pinsql_scenario::{materialize_events, LabeledCase, Scenario};
use pinsql_timeseries::par::par_map;
use pinsql_timeseries::WireError;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Knobs for a fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Collection look-back δ_s prepended to each selected case window.
    pub delta_s: i64,
    /// Diagnoser configuration (its `parallelism` applies *inside* each
    /// diagnosis; `fanout` below is the across-instance knob).
    pub pinsql: PinSqlConfig,
    /// Worker threads for across-instance stages (materialize, diagnose);
    /// `0` = all cores.
    pub fanout: usize,
    /// Ingestion worker threads, each owning a disjoint set of instances.
    /// Must be ≥ 1; values above the instance count are clamped at run
    /// time. Outcomes are identical at every value.
    pub shards: usize,
    /// Detector statistics kernel for every instance's bank. Both kinds
    /// are bit-identical; the equivalence suites run the full
    /// kernel × shards × fanout matrix against the golden corpus.
    pub kernel: KernelKind,
    /// Aggregation regions for the health rollup tree: instances map to
    /// regions by the same contiguous layout sharding uses, each region
    /// folds its own [`pinsql_obs::HealthRollup`], and the fleet total is
    /// the exact merge of the region rollups — `O(regions)` state at the
    /// control plane. Purely observational: outcomes never depend on it.
    /// Must be ≥ 1; values above the instance count are clamped.
    pub regions: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            delta_s: 600,
            pinsql: PinSqlConfig::default(),
            fanout: 0,
            shards: 1,
            kernel: KernelKind::default(),
            regions: 1,
        }
    }
}

/// One scheduled handoff inside a [`ReshardPlan`].
#[derive(Debug, Clone)]
pub struct ReshardStep {
    /// Quiesce boundary, in stream seconds. Every event with
    /// `time_ms() < at_second * 1000` folds *before* the handoff;
    /// everything at or after it folds on the new shard layout. The
    /// boundary is evaluated against event time, so it is exact whatever
    /// the shard count — there is no racey "drain" window.
    pub at_second: i64,
    /// `assignment[i]` = shard that owns instance `i` after the handoff.
    /// Length must equal the fleet size; shard ids may form any layout
    /// (more shards, fewer shards, permutations — empty shards are
    /// skipped).
    pub assignment: Vec<usize>,
}

/// A sequence of reshard steps with strictly increasing boundaries.
///
/// The empty plan is a plain static-sharding run; `run_full` is exactly
/// `run_resharded` with this default.
#[derive(Debug, Clone, Default)]
pub struct ReshardPlan {
    pub steps: Vec<ReshardStep>,
}

impl ReshardPlan {
    /// A one-step plan.
    pub fn single(at_second: i64, assignment: Vec<usize>) -> Self {
        Self { steps: vec![ReshardStep { at_second, assignment }] }
    }

    /// Panics on structurally invalid plans (programmer error, like
    /// `shards == 0`): boundaries not strictly increasing or an
    /// assignment whose length differs from the fleet size.
    fn validate(&self, n_instances: usize) {
        let mut prev = i64::MIN;
        for (i, step) in self.steps.iter().enumerate() {
            assert!(
                step.at_second > prev,
                "reshard step {i}: at_second {} not strictly increasing (previous {prev})",
                step.at_second
            );
            assert_eq!(
                step.assignment.len(),
                n_instances,
                "reshard step {i}: assignment covers {} instances, fleet has {n_instances}",
                step.assignment.len()
            );
            prev = step.at_second;
        }
    }
}

/// The whole fleet's online state frozen at one quiesce boundary —
/// everything needed to resume a run after a crash.
#[derive(Debug, Clone)]
pub struct FleetCheckpoint {
    /// The boundary the checkpoint was cut at: every event with
    /// `time_ms() < at_second * 1000` is inside the checkpoint; the tail
    /// from `at_second` on must be replayed.
    pub at_second: i64,
    /// One snapshot per instance, instance-id order.
    pub snapshots: Vec<InstanceSnapshot>,
}

impl FleetCheckpoint {
    /// Total serialized size in bytes.
    pub fn total_bytes(&self) -> usize {
        self.snapshots.iter().map(InstanceSnapshot::len).sum()
    }
}

/// What happened on one instance, flattened for `results/fleet.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InstanceOutcome {
    pub instance: usize,
    /// Injected anomaly kind label ("none" for negative scenarios).
    pub kind: String,
    pub seed: u64,
    /// Whether the online detectors raised the case (vs. hint fallback).
    pub detected: bool,
    pub anomaly_type: String,
    pub n_events: u64,
    pub n_queries: u64,
    pub case_seconds: usize,
    pub n_templates: usize,
    /// R-SQLs the diagnoser would assert (the reported list).
    pub n_reported: usize,
    /// Label of the top-ranked R-SQL, if any candidate was ranked.
    pub top_rsql: Option<String>,
    /// True when the top-ranked R-SQL is one of the ground-truth R-SQLs.
    pub truth_hit: bool,
    /// Wall-clock seconds for this instance's diagnosis call.
    pub diagnose_s: f64,
}

/// Aggregate report of one fleet run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetReport {
    pub n_instances: usize,
    /// Configuration epoch the run finished under: [`ConfigEpoch::INITIAL`]
    /// for cold-start runs, the last accepted push for a daemon run.
    pub config_epoch: u64,
    /// Ingestion shards the run *started* with (after clamping to the
    /// fleet size); reshard steps may change the layout mid-run.
    pub shards: usize,
    /// Events pushed through the multiplexed loop.
    pub events_total: u64,
    /// Wall-clock seconds of the multiplexed ingest stage: per phase the
    /// slowest shard's merge (shards run concurrently), summed across
    /// phases.
    pub ingest_wall_s: f64,
    /// Sustained ingest throughput (events / ingest_wall_s).
    pub events_per_sec: f64,
    /// Wall-clock seconds of the across-instance diagnosis fan-out.
    pub diagnose_wall_s: f64,
    /// Mean per-case diagnosis latency.
    pub diagnose_mean_s: f64,
    /// Worst per-case diagnosis latency.
    pub diagnose_max_s: f64,
    /// Shard → region → fleet health rollup tree (exact-merge counts per
    /// region plus the fleet total), under [`FleetConfig::regions`].
    pub rollup: FleetRollup,
    pub outcomes: Vec<InstanceOutcome>,
}

/// A fleet run with its full per-instance artifacts, for consumers that
/// need more than the flattened report (equivalence suites compare the
/// labelled cases and diagnoses bit-for-bit across shard counts and
/// reshard plans).
#[derive(Debug, Clone)]
pub struct FleetRun {
    pub report: FleetReport,
    /// Closed cases, in instance-id order.
    pub cases: Vec<LabeledCase>,
    /// Diagnoses, aligned with `cases`.
    pub diagnoses: Vec<Diagnosis>,
    /// Fleet health roll-up: one snapshot per instance (taken right before
    /// its case closed), in instance-id order, plus exact totals.
    pub health: FleetHealth,
}

/// Per-instance work moved into one shard worker for one ingest phase:
/// the instance's identity, how to (re)build its pipeline, and the slice
/// of its stream this phase consumes.
struct Work<'a> {
    idx: usize,
    scenario: &'a Scenario,
    /// `None` → fresh pipeline (first phase); `Some` → restore and resume.
    snap: Option<InstanceSnapshot>,
    events: Vec<TelemetryEvent>,
}

/// What one instance contributes to the final report, keyed by id at the
/// reassembly point.
pub(crate) struct InstanceArtifacts {
    pub(crate) events: u64,
    pub(crate) queries: u64,
    pub(crate) health: HealthSnapshot,
    pub(crate) case: LabeledCase,
}

/// What a shard worker hands back for one instance at a phase boundary.
enum PhaseOut {
    /// Intermediate boundary: the instance travels as its checkpoint.
    Snap(InstanceSnapshot),
    /// Final boundary: the instance closed its case.
    Final(Box<InstanceArtifacts>),
}

/// The fleet orchestrator. See the module docs for the three stages.
#[derive(Debug, Clone, Default)]
pub struct FleetEngine {
    pub cfg: FleetConfig,
}

impl FleetEngine {
    /// # Panics
    /// Panics if `cfg.shards == 0`: every shard owns a disjoint set of
    /// instances, so zero shards would silently ingest nothing.
    pub fn new(cfg: FleetConfig) -> Self {
        assert!(
            cfg.shards >= 1,
            "FleetConfig.shards must be >= 1 (got 0); use shards = 1 for unsharded ingestion"
        );
        Self { cfg }
    }

    /// Runs the full loop over one scenario per instance and reports
    /// throughput, latency, and per-instance outcomes.
    ///
    /// Outcomes are deterministic and independent of both `shards` and
    /// `fanout` (timings aside) — see the module docs.
    pub fn run(&self, scenarios: &[Scenario]) -> FleetReport {
        self.run_full(scenarios).report
    }

    /// [`run`](Self::run), additionally returning the closed cases and
    /// diagnoses in instance-id order.
    pub fn run_full(&self, scenarios: &[Scenario]) -> FleetRun {
        self.run_full_observed(scenarios, &NoopObserver)
    }

    /// [`run_full`](Self::run_full) under an explicit observer: each
    /// ingest shard records on its own forked lane (`shard{s}`), each
    /// diagnosis on a `diag{i}` lane, so the exported trace shows the real
    /// cross-thread timeline. Cases, diagnoses, and health are
    /// byte-identical whatever `O` is (pinned by `obs_equivalence`).
    pub fn run_full_observed<O: Observer>(&self, scenarios: &[Scenario], obs: &O) -> FleetRun {
        self.run_resharded_observed(scenarios, &ReshardPlan::default(), obs)
            .expect("static run crosses no snapshot boundary, so no decode can fail")
    }

    /// Runs the fleet under a [`ReshardPlan`]: at every step boundary the
    /// whole fleet quiesces (exactly at event time — see
    /// [`ReshardStep::at_second`]), each instance serializes its online
    /// state, moves to the shard the step assigns, restores, and resumes.
    ///
    /// Outcomes are **bit-identical** to [`run_full`](Self::run_full) on
    /// the same scenarios — a reshard handoff is behaviorally invisible —
    /// pinned by the `reshard_equivalence` matrix at the workspace root.
    ///
    /// Errors only if a snapshot fails to decode on its new shard, which
    /// would mean in-memory corruption; malformed plans (non-monotonic
    /// boundaries, wrong assignment length) panic as programmer errors.
    pub fn run_resharded(
        &self,
        scenarios: &[Scenario],
        plan: &ReshardPlan,
    ) -> Result<FleetRun, WireError> {
        self.run_resharded_observed(scenarios, plan, &NoopObserver)
    }

    /// [`run_resharded`](Self::run_resharded) under an explicit observer.
    /// Phase-0 shard lanes keep the plain `shard{s}` names; later phases
    /// fork `p{phase}shard{s}` lanes, and every handoff records a
    /// [`Stage::Reshard`] span plus [`Counter::InstancesResharded`] for
    /// instances whose shard actually changed.
    pub fn run_resharded_observed<O: Observer>(
        &self,
        scenarios: &[Scenario],
        plan: &ReshardPlan,
        obs: &O,
    ) -> Result<FleetRun, WireError> {
        assert!(!scenarios.is_empty(), "fleet run needs at least one scenario");
        assert!(self.cfg.shards >= 1, "FleetConfig.shards must be >= 1");
        let n = scenarios.len();
        plan.validate(n);
        let shards0 = self.cfg.shards.min(n);

        let mut streams: Vec<Vec<TelemetryEvent>> =
            par_map(n, self.cfg.fanout, |i| materialize_events(&scenarios[i], None));

        let mut assignment = contiguous_assignment(n, shards0);
        let mut snaps: Vec<Option<InstanceSnapshot>> = (0..n).map(|_| None).collect();
        let mut artifacts: Vec<Option<InstanceArtifacts>> = (0..n).map(|_| None).collect();
        let mut ingest_wall_s = 0.0f64;

        let n_phases = plan.steps.len() + 1;
        for phase in 0..n_phases {
            let reshard_n0 = if O::ENABLED && phase > 0 { obs.now_ns() } else { 0 };
            if phase > 0 {
                let step = &plan.steps[phase - 1];
                if O::ENABLED {
                    let moved =
                        step.assignment.iter().zip(&assignment).filter(|(a, b)| a != b).count();
                    obs.add(Counter::InstancesResharded, moved as u64);
                }
                assignment.clone_from(&step.assignment);
            }
            // This phase consumes each stream's prefix strictly before the
            // *next* boundary (the final phase drains everything).
            let boundary = plan.steps.get(phase).map(|s| s.at_second);
            let last = boundary.is_none();

            let n_shards = assignment.iter().copied().max().unwrap_or(0) + 1;
            let mut groups: Vec<Vec<Work<'_>>> = (0..n_shards).map(|_| Vec::new()).collect();
            for (i, scenario) in scenarios.iter().enumerate() {
                groups[assignment[i]].push(Work {
                    idx: i,
                    scenario,
                    snap: snaps[i].take(),
                    events: split_prefix(&mut streams[i], boundary),
                });
            }
            if O::ENABLED && phase > 0 {
                obs.span(Stage::Reshard, reshard_n0, obs.now_ns());
            }

            let delta_s = self.cfg.delta_s;
            let kernel = self.cfg.kernel;
            let cut = self.cfg.pinsql.cut;
            type ShardOut = Result<(f64, Vec<(usize, PhaseOut)>), WireError>;
            let shard_results: Vec<ShardOut> = std::thread::scope(|scope| {
                let handles: Vec<_> = groups
                    .into_iter()
                    .enumerate()
                    .filter(|(_, g)| !g.is_empty())
                    .map(|(s, group)| {
                        let lane = if phase == 0 {
                            obs.fork(&format!("shard{s}"))
                        } else {
                            obs.fork(&format!("p{phase}shard{s}"))
                        };
                        scope.spawn(move || -> ShardOut {
                            let (merge_s, done) =
                                ingest_phase_shard(group, delta_s, kernel, cut, lane)?;
                            let out = done
                                .into_iter()
                                .map(|(idx, inst)| {
                                    let po = if last {
                                        PhaseOut::Final(Box::new(finalize_instance(inst)))
                                    } else {
                                        PhaseOut::Snap(inst.snapshot())
                                    };
                                    (idx, po)
                                })
                                .collect();
                            Ok((merge_s, out))
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("ingest shard panicked")).collect()
            });

            // Scatter results back keyed by *global instance id* — shard
            // sets are arbitrary after a handoff (reversed, permuted,
            // regrouped), so nothing here may rely on contiguity or on
            // the order shards finished in.
            let mut phase_wall = 0.0f64;
            for result in shard_results {
                let (merge_s, outs) = result?;
                phase_wall = phase_wall.max(merge_s);
                for (idx, out) in outs {
                    match out {
                        PhaseOut::Snap(s) => snaps[idx] = Some(s),
                        PhaseOut::Final(a) => artifacts[idx] = Some(*a),
                    }
                }
            }
            ingest_wall_s += phase_wall;
        }

        let artifacts: Vec<InstanceArtifacts> =
            artifacts.into_iter().map(|a| a.expect("every instance finalizes exactly once")).collect();
        Ok(self.assemble(scenarios, artifacts, shards0, ingest_wall_s, ConfigEpoch::INITIAL, obs))
    }

    /// Ingests every stream's prefix strictly before `at_second` and
    /// freezes the whole fleet as a [`FleetCheckpoint`] — the
    /// crash-recovery primitive: persist the blobs, and after a crash
    /// [`resume_full`](Self::resume_full) replays only the tail.
    pub fn checkpoint_at(&self, scenarios: &[Scenario], at_second: i64) -> FleetCheckpoint {
        self.checkpoint_at_observed(scenarios, at_second, &NoopObserver)
    }

    /// [`checkpoint_at`](Self::checkpoint_at) under an explicit observer.
    pub fn checkpoint_at_observed<O: Observer>(
        &self,
        scenarios: &[Scenario],
        at_second: i64,
        obs: &O,
    ) -> FleetCheckpoint {
        assert!(!scenarios.is_empty(), "fleet checkpoint needs at least one scenario");
        let n = scenarios.len();
        let shards = self.cfg.shards.min(n);
        let mut streams: Vec<Vec<TelemetryEvent>> =
            par_map(n, self.cfg.fanout, |i| materialize_events(&scenarios[i], None));

        let assignment = contiguous_assignment(n, shards);
        let mut groups: Vec<Vec<Work<'_>>> = (0..shards).map(|_| Vec::new()).collect();
        for (i, scenario) in scenarios.iter().enumerate() {
            groups[assignment[i]].push(Work {
                idx: i,
                scenario,
                snap: None,
                events: split_prefix(&mut streams[i], Some(at_second)),
            });
        }

        let delta_s = self.cfg.delta_s;
        let kernel = self.cfg.kernel;
        let cut = self.cfg.pinsql.cut;
        let mut snapshots: Vec<Option<InstanceSnapshot>> = (0..n).map(|_| None).collect();
        let shard_results: Vec<Vec<(usize, InstanceSnapshot)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = groups
                .into_iter()
                .enumerate()
                .filter(|(_, g)| !g.is_empty())
                .map(|(s, group)| {
                    let lane = obs.fork(&format!("shard{s}"));
                    scope.spawn(move || {
                        let (_, done) = ingest_phase_shard(group, delta_s, kernel, cut, lane)
                            .expect("fresh instances carry no snapshot to decode");
                        done.into_iter().map(|(idx, inst)| (idx, inst.snapshot())).collect()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("ingest shard panicked")).collect()
        });
        for outs in shard_results {
            for (idx, snap) in outs {
                snapshots[idx] = Some(snap);
            }
        }
        FleetCheckpoint {
            at_second,
            snapshots: snapshots
                .into_iter()
                .map(|s| s.expect("every instance checkpoints exactly once"))
                .collect(),
        }
    }

    /// Resumes a run from a [`FleetCheckpoint`]: restores every instance,
    /// replays only the events at or after the checkpoint boundary, closes
    /// cases, and diagnoses. The resulting [`FleetRun`] is bit-identical
    /// to an uninterrupted [`run_full`](Self::run_full) — pinned by the
    /// `crash_recovery` suite.
    pub fn resume_full(
        &self,
        scenarios: &[Scenario],
        checkpoint: &FleetCheckpoint,
    ) -> Result<FleetRun, WireError> {
        self.resume_full_observed(scenarios, checkpoint, &NoopObserver)
    }

    /// [`resume_full`](Self::resume_full) under an explicit observer.
    pub fn resume_full_observed<O: Observer>(
        &self,
        scenarios: &[Scenario],
        checkpoint: &FleetCheckpoint,
        obs: &O,
    ) -> Result<FleetRun, WireError> {
        assert!(!scenarios.is_empty(), "fleet resume needs at least one scenario");
        assert_eq!(
            checkpoint.snapshots.len(),
            scenarios.len(),
            "checkpoint holds {} instances, fleet has {}",
            checkpoint.snapshots.len(),
            scenarios.len()
        );
        let n = scenarios.len();
        let shards = self.cfg.shards.min(n);
        let mut streams: Vec<Vec<TelemetryEvent>> =
            par_map(n, self.cfg.fanout, |i| materialize_events(&scenarios[i], None));

        let assignment = contiguous_assignment(n, shards);
        let mut groups: Vec<Vec<Work<'_>>> = (0..shards).map(|_| Vec::new()).collect();
        for (i, scenario) in scenarios.iter().enumerate() {
            // Drop the prefix the checkpoint already covers; replay the tail.
            let _covered = split_prefix(&mut streams[i], Some(checkpoint.at_second));
            groups[assignment[i]].push(Work {
                idx: i,
                scenario,
                snap: Some(checkpoint.snapshots[i].clone()),
                events: std::mem::take(&mut streams[i]),
            });
        }

        let delta_s = self.cfg.delta_s;
        let kernel = self.cfg.kernel;
        let cut = self.cfg.pinsql.cut;
        let mut artifacts: Vec<Option<InstanceArtifacts>> = (0..n).map(|_| None).collect();
        type ShardOut = Result<(f64, Vec<(usize, InstanceArtifacts)>), WireError>;
        let shard_results: Vec<ShardOut> = std::thread::scope(|scope| {
            let handles: Vec<_> = groups
                .into_iter()
                .enumerate()
                .filter(|(_, g)| !g.is_empty())
                .map(|(s, group)| {
                    let lane = obs.fork(&format!("shard{s}"));
                    scope.spawn(move || -> ShardOut {
                        let (merge_s, done) =
                            ingest_phase_shard(group, delta_s, kernel, cut, lane)?;
                        Ok((
                            merge_s,
                            done.into_iter()
                                .map(|(idx, inst)| (idx, finalize_instance(inst)))
                                .collect(),
                        ))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("ingest shard panicked")).collect()
        });
        let mut ingest_wall_s = 0.0f64;
        for result in shard_results {
            let (merge_s, outs) = result?;
            ingest_wall_s = ingest_wall_s.max(merge_s);
            for (idx, a) in outs {
                artifacts[idx] = Some(a);
            }
        }
        let artifacts: Vec<InstanceArtifacts> =
            artifacts.into_iter().map(|a| a.expect("every instance finalizes exactly once")).collect();
        Ok(self.assemble(scenarios, artifacts, shards, ingest_wall_s, ConfigEpoch::INITIAL, obs))
    }

    /// The shared back half of every run shape: fan diagnosis out across
    /// the closed cases (one `diag{i}` lane each) and fold everything into
    /// the report. `artifacts` is in instance-id order; `epoch` is the
    /// config epoch the run finished under (the daemon threads its last
    /// accepted push through here).
    pub(crate) fn assemble<O: Observer>(
        &self,
        scenarios: &[Scenario],
        artifacts: Vec<InstanceArtifacts>,
        shards: usize,
        ingest_wall_s: f64,
        epoch: ConfigEpoch,
        obs: &O,
    ) -> FleetRun {
        let events_total: u64 = artifacts.iter().map(|a| a.events).sum();
        let mut per_instance: Vec<(u64, u64)> = Vec::with_capacity(artifacts.len());
        let mut cases: Vec<LabeledCase> = Vec::with_capacity(artifacts.len());
        let mut health: Vec<HealthSnapshot> = Vec::with_capacity(artifacts.len());
        for a in artifacts {
            per_instance.push((a.events, a.queries));
            cases.push(a.case);
            health.push(a.health);
        }

        let t1 = Instant::now();
        let diagnoser = PinSql::new(self.cfg.pinsql.clone());
        let diagnosed = par_map(cases.len(), self.cfg.fanout, |i| {
            let lc = &cases[i];
            let t = Instant::now();
            let d = if O::ENABLED {
                let lane = obs.fork(&format!("diag{i}"));
                diagnoser.diagnose_observed(
                    &lc.case,
                    &lc.window,
                    &lc.history,
                    lc.minutes_origin,
                    &lane,
                )
            } else {
                diagnoser.diagnose(&lc.case, &lc.window, &lc.history, lc.minutes_origin)
            };
            (d, t.elapsed().as_secs_f64())
        });
        let diagnose_wall_s = t1.elapsed().as_secs_f64();

        let mut diagnoses = Vec::with_capacity(diagnosed.len());
        let mut diag_lat = Vec::with_capacity(diagnosed.len());
        for (d, lat) in diagnosed {
            diagnoses.push(d);
            diag_lat.push(lat);
        }

        let outcomes: Vec<InstanceOutcome> = diagnoses
            .iter()
            .enumerate()
            .map(|(i, d)| {
                let lc = &cases[i];
                let top = d.rsqls.first();
                InstanceOutcome {
                    instance: i,
                    kind: scenarios[i].kind.map(|k| k.label()).unwrap_or("none").to_string(),
                    seed: scenarios[i].cfg.seed,
                    detected: lc.detected,
                    anomaly_type: lc.anomaly_type.clone(),
                    n_events: per_instance[i].0,
                    n_queries: per_instance[i].1,
                    case_seconds: lc.case.n_seconds(),
                    n_templates: lc.case.templates.len(),
                    n_reported: d.reported_rsqls.len(),
                    top_rsql: top.map(|r| r.label.clone()),
                    truth_hit: top.is_some_and(|r| lc.truth.rsqls.contains(&r.id)),
                    diagnose_s: diag_lat[i],
                }
            })
            .collect();

        let lat_sum: f64 = outcomes.iter().map(|o| o.diagnose_s).sum();
        let lat_max = outcomes.iter().map(|o| o.diagnose_s).fold(0.0f64, f64::max);
        let regions = self.cfg.regions.clamp(1, health.len().max(1));
        let region_of = contiguous_assignment(health.len(), regions);
        let rollup = FleetRollup::from_assigned(&health, |i| region_of[i] as u32);
        let report = FleetReport {
            n_instances: outcomes.len(),
            config_epoch: epoch.0,
            shards,
            events_total,
            ingest_wall_s,
            events_per_sec: if ingest_wall_s > 0.0 {
                events_total as f64 / ingest_wall_s
            } else {
                0.0
            },
            diagnose_wall_s,
            diagnose_mean_s: lat_sum / outcomes.len() as f64,
            diagnose_max_s: lat_max,
            rollup,
            outcomes,
        };
        FleetRun { report, cases, diagnoses, health: FleetHealth::from_instances(health) }
    }
}

/// `assignment[i]` = shard for instance `i` under the static contiguous
/// layout: shard `s` owns `[s*n/shards, (s+1)*n/shards)`.
pub(crate) fn contiguous_assignment(n: usize, shards: usize) -> Vec<usize> {
    let mut assignment = vec![0usize; n];
    for s in 0..shards {
        for a in assignment.iter_mut().take((s + 1) * n / shards).skip(s * n / shards) {
            *a = s;
        }
    }
    assignment
}

/// Splits off and returns the stream's prefix strictly before
/// `boundary_s` (in event time); `None` takes the whole stream. The
/// remainder stays in `stream`. Streams are time-ordered, so this is a
/// binary search, and the same boundary yields the same split whatever
/// the shard layout.
pub(crate) fn split_prefix(
    stream: &mut Vec<TelemetryEvent>,
    boundary_s: Option<i64>,
) -> Vec<TelemetryEvent> {
    match boundary_s {
        None => std::mem::take(stream),
        Some(b) => {
            let boundary_ms = (b * 1000) as f64;
            let cut = stream.partition_point(|ev| ev.time_ms() < boundary_ms);
            let rest = stream.split_off(cut);
            std::mem::replace(stream, rest)
        }
    }
}

/// Builds one shard's instances for one phase — fresh pipelines or
/// restores from checkpoints — and runs the k-way merge over their
/// streams. Returns the merge wall clock and the live instances paired
/// with their global ids.
fn ingest_phase_shard<'a, O: Observer>(
    work: Vec<Work<'a>>,
    delta_s: i64,
    kernel: KernelKind,
    cut: CutKind,
    obs: O,
) -> Result<(f64, Vec<(usize, OnlineInstance<'a, O>)>), WireError> {
    let mut indices = Vec::with_capacity(work.len());
    let mut instances: Vec<OnlineInstance<'a, O>> = Vec::with_capacity(work.len());
    let mut streams = Vec::with_capacity(work.len());
    for w in work {
        indices.push(w.idx);
        instances.push(match &w.snap {
            // A restore resumes under the cut the checkpoint carries (the
            // daemon's config-push path re-applies its own delta after).
            Some(snap) => OnlineInstance::restore_with_observer(w.scenario, snap, obs.clone())?,
            None => OnlineInstance::with_observer(w.scenario, delta_s, obs.clone())
                .with_kernel(kernel)
                .with_cut(cut),
        });
        streams.push(w.events);
    }

    let merge_n0 = if O::ENABLED { obs.now_ns() } else { 0 };
    let t0 = Instant::now();
    merge_streams(&mut instances, streams);
    let merge_s = t0.elapsed().as_secs_f64();
    if O::ENABLED {
        obs.span(Stage::IngestMerge, merge_n0, obs.now_ns());
    }
    Ok((merge_s, indices.into_iter().zip(instances).collect()))
}

/// The k-way merge loop: earliest next event time wins, ties to the
/// lowest position (instances arrive in increasing global id, so ties
/// break by id); same-second query runs move as one chunk through the
/// collector's amortized hot path. Per-instance event order is untouched,
/// so outcomes match the event-level merge exactly.
pub(crate) fn merge_streams<'a, O: Observer>(
    instances: &mut [OnlineInstance<'a, O>],
    mut streams: Vec<Vec<TelemetryEvent>>,
) {
    debug_assert_eq!(instances.len(), streams.len());
    let mut cursors = vec![0usize; streams.len()];
    loop {
        // K is small (a fleet slice), so a linear scan beats a heap's
        // allocation churn.
        let mut head: Option<(f64, usize)> = None;
        for (j, stream) in streams.iter().enumerate() {
            if let Some(ev) = stream.get(cursors[j]) {
                let t = ev.time_ms();
                if head.is_none_or(|(best, _)| t < best) {
                    head = Some((t, j));
                }
            }
        }
        let Some((_, j)) = head else { break };
        let stream = &mut streams[j];
        let c = cursors[j];
        if let Some((second, len)) = query_run(stream, c) {
            instances[j].ingest_queries(second, &stream[c..c + len]);
            cursors[j] = c + len;
        } else {
            let ev = std::mem::replace(&mut stream[c], TelemetryEvent::Tick { second: i64::MIN });
            instances[j].ingest(ev);
            cursors[j] = c + 1;
        }
    }
}

/// Closes one instance into its report contribution.
pub(crate) fn finalize_instance<O: Observer>(inst: OnlineInstance<'_, O>) -> InstanceArtifacts {
    InstanceArtifacts {
        events: inst.events_ingested(),
        queries: inst.ingest_stats().queries,
        health: inst.health_snapshot(),
        case: inst.close_case(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinsql_scenario::{generate_base, inject, inject_none, AnomalyKind, ScenarioConfig};

    /// A small, fast fleet: short windows, few businesses, one scenario of
    /// each kind plus a negative.
    fn small_fleet(n: usize) -> Vec<Scenario> {
        let kinds = [
            Some(AnomalyKind::BusinessSpike),
            Some(AnomalyKind::PoorSql),
            Some(AnomalyKind::MdlLock),
            Some(AnomalyKind::RowLock),
            None,
        ];
        (0..n)
            .map(|i| {
                let cfg = ScenarioConfig::default()
                    .with_seed(90 + i as u64)
                    .with_businesses(6)
                    .with_window(420, 240, 330);
                let base = generate_base(&cfg);
                match kinds[i % kinds.len()] {
                    Some(kind) => inject(&base, &cfg, kind),
                    None => inject_none(&base, &cfg),
                }
            })
            .collect()
    }

    fn engine(fanout: usize, shards: usize) -> FleetEngine {
        FleetEngine::new(FleetConfig {
            delta_s: 180,
            pinsql: PinSqlConfig::default(),
            fanout,
            shards,
            ..FleetConfig::default()
        })
    }

    fn assert_run_eq(a: &FleetRun, b: &FleetRun, what: &str) {
        assert_eq!(a.cases.len(), b.cases.len(), "{what}");
        for (i, (x, y)) in a.cases.iter().zip(&b.cases).enumerate() {
            assert_eq!(x.window, y.window, "{what}: instance {i}");
            assert_eq!(x.case.records, y.case.records, "{what}: instance {i}");
            assert_eq!(x.truth.rsqls, y.truth.rsqls, "{what}: instance {i}");
        }
        for (i, (x, y)) in a.diagnoses.iter().zip(&b.diagnoses).enumerate() {
            assert_eq!(x.rsqls, y.rsqls, "{what}: instance {i}");
            assert_eq!(x.hsqls, y.hsqls, "{what}: instance {i}");
            assert_eq!(x.reported_rsqls, y.reported_rsqls, "{what}: instance {i}");
        }
        assert_eq!(a.health, b.health, "{what}");
        assert_eq!(a.report.events_total, b.report.events_total, "{what}");
    }

    #[test]
    fn fleet_smoke() {
        let scenarios = small_fleet(4);
        let report = engine(2, 2).run(&scenarios);

        assert_eq!(report.n_instances, 4);
        assert_eq!(report.shards, 2);
        assert!(report.events_total > 0);
        assert_eq!(
            report.events_total,
            report.outcomes.iter().map(|o| o.n_events).sum::<u64>(),
            "every multiplexed event is attributed to exactly one instance"
        );
        assert!(report.events_per_sec > 0.0);
        assert!(report.diagnose_max_s >= report.diagnose_mean_s);
        for o in &report.outcomes {
            assert!(o.n_queries > 0, "instance {} saw no queries", o.instance);
            assert!(o.case_seconds > 0);
            assert!(o.n_templates > 0);
        }
        // The report must serialize (the fleet bench writes it to JSON).
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("events_per_sec"));
    }

    #[test]
    fn outcomes_are_independent_of_fanout_and_shards() {
        let scenarios = small_fleet(3);
        let a = engine(1, 1).run(&scenarios);
        for (fanout, shards) in [(4, 1), (1, 2), (4, 3)] {
            let b = engine(fanout, shards).run(&scenarios);
            assert_eq!(a.events_total, b.events_total);
            for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
                assert_eq!(x.detected, y.detected);
                assert_eq!(x.anomaly_type, y.anomaly_type);
                assert_eq!(x.n_events, y.n_events);
                assert_eq!(x.n_queries, y.n_queries);
                assert_eq!(x.case_seconds, y.case_seconds);
                assert_eq!(x.n_templates, y.n_templates);
                assert_eq!(x.n_reported, y.n_reported);
                assert_eq!(x.top_rsql, y.top_rsql);
                assert_eq!(x.truth_hit, y.truth_hit);
            }
        }
    }

    /// The CI smoke for the scaling sweep: sharded runs must reproduce the
    /// unsharded run's cases and diagnoses exactly, and the report must
    /// serialize for `results/fleet_scaling.json`.
    #[test]
    fn scaling_smoke() {
        let scenarios = small_fleet(4);
        let base = engine(1, 1).run_full(&scenarios);
        for shards in [2usize, 4] {
            let sharded = engine(1, shards).run_full(&scenarios);
            assert_eq!(sharded.report.shards, shards);
            assert_run_eq(&base, &sharded, &format!("shards {shards}"));
        }
        let json = serde_json::to_string(&base.report).unwrap();
        assert!(!json.is_empty() && json.contains("\"shards\":1"));
    }

    /// A mid-stream reshard — including one that *reverses* the shard
    /// assignment — must be behaviorally invisible. This is the in-crate
    /// smoke; the full matrix runs against the golden corpus at the
    /// workspace root.
    #[test]
    fn reshard_smoke() {
        let scenarios = small_fleet(4);
        let baseline = engine(1, 2).run_full(&scenarios);

        // Reverse the contiguous {0,0,1,1} layout mid-run.
        let reversed = ReshardPlan::single(200, vec![1, 1, 0, 0]);
        let run = engine(1, 2).run_resharded(&scenarios, &reversed).unwrap();
        assert_run_eq(&baseline, &run, "reversed assignment");

        // Degenerate 1 → 4 → 1 churn.
        let churn = ReshardPlan {
            steps: vec![
                ReshardStep { at_second: 150, assignment: vec![0, 1, 2, 3] },
                ReshardStep { at_second: 300, assignment: vec![0, 0, 0, 0] },
            ],
        };
        let run = engine(1, 1).run_resharded(&scenarios, &churn).unwrap();
        assert_run_eq(&baseline, &run, "1→4→1 churn");
    }

    /// Checkpoint mid-stream, resume, and match the uninterrupted run.
    #[test]
    fn checkpoint_resume_smoke() {
        let scenarios = small_fleet(3);
        let baseline = engine(1, 2).run_full(&scenarios);
        let ckpt = engine(1, 2).checkpoint_at(&scenarios, 250);
        assert_eq!(ckpt.snapshots.len(), 3);
        assert!(ckpt.total_bytes() > 0);
        let resumed = engine(1, 2).resume_full(&scenarios, &ckpt).unwrap();
        assert_run_eq(&baseline, &resumed, "checkpoint/resume at 250");
    }

    #[test]
    #[should_panic(expected = "shards must be >= 1")]
    fn zero_shards_is_rejected() {
        let _ = FleetEngine::new(FleetConfig {
            delta_s: 180,
            pinsql: PinSqlConfig::default(),
            fanout: 1,
            shards: 0,
            ..FleetConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "not strictly increasing")]
    fn non_monotonic_plan_is_rejected() {
        let scenarios = small_fleet(2);
        let plan = ReshardPlan {
            steps: vec![
                ReshardStep { at_second: 200, assignment: vec![0, 1] },
                ReshardStep { at_second: 100, assignment: vec![1, 0] },
            ],
        };
        let _ = engine(1, 1).run_resharded(&scenarios, &plan);
    }

    #[test]
    #[should_panic(expected = "assignment covers")]
    fn wrong_assignment_length_is_rejected() {
        let scenarios = small_fleet(2);
        let plan = ReshardPlan::single(100, vec![0]);
        let _ = engine(1, 1).run_resharded(&scenarios, &plan);
    }

    #[test]
    fn oversized_shard_count_is_clamped() {
        let scenarios = small_fleet(2);
        let report = engine(1, 16).run(&scenarios);
        assert_eq!(report.shards, 2, "shards clamp to the fleet size");
        assert_eq!(report.n_instances, 2);
    }
}
