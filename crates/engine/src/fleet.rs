//! Multiplexed event loop over a fleet of simulated instances.
//!
//! A production deployment watches hundreds of instances at once: telemetry
//! from all of them arrives interleaved on a shared bus, each instance's
//! events fold into its own online pipeline, and diagnosis fans out across
//! the cases that close. [`FleetEngine`] reproduces that shape over
//! simulated scenarios:
//!
//! 1. **Materialize** — each scenario's event stream is produced with the
//!    `par_map` fan-out (instances generate telemetry concurrently in the
//!    real system).
//! 2. **Multiplex** — one serial, time-ordered k-way merge over all
//!    streams (ties broken by instance index), each event ingested by its
//!    instance. This is the sustained-throughput section the fleet bench
//!    measures.
//! 3. **Diagnose** — every instance's case closes, and `PinSql::diagnose`
//!    fans out across the closed cases, again with `par_map`, so outcomes
//!    are index-ordered and bit-identical at any fan-out.

use crate::instance::OnlineInstance;
use pinsql::{PinSql, PinSqlConfig};
use pinsql_dbsim::TelemetryEvent;
use pinsql_scenario::{materialize_events, LabeledCase, Scenario};
use pinsql_timeseries::par::par_map;
use serde::Serialize;
use std::time::Instant;

/// Knobs for a fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Collection look-back δ_s prepended to each selected case window.
    pub delta_s: i64,
    /// Diagnoser configuration (its `parallelism` applies *inside* each
    /// diagnosis; `fanout` below is the across-instance knob).
    pub pinsql: PinSqlConfig,
    /// Worker threads for across-instance stages (materialize, diagnose);
    /// `0` = all cores.
    pub fanout: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self { delta_s: 600, pinsql: PinSqlConfig::default(), fanout: 0 }
    }
}

/// What happened on one instance, flattened for `results/fleet.json`.
#[derive(Debug, Clone, Serialize)]
pub struct InstanceOutcome {
    pub instance: usize,
    /// Injected anomaly kind label ("none" for negative scenarios).
    pub kind: String,
    pub seed: u64,
    /// Whether the online detectors raised the case (vs. hint fallback).
    pub detected: bool,
    pub anomaly_type: String,
    pub n_events: u64,
    pub n_queries: u64,
    pub case_seconds: usize,
    pub n_templates: usize,
    /// R-SQLs the diagnoser would assert (the reported list).
    pub n_reported: usize,
    /// Label of the top-ranked R-SQL, if any candidate was ranked.
    pub top_rsql: Option<String>,
    /// True when the top-ranked R-SQL is one of the ground-truth R-SQLs.
    pub truth_hit: bool,
    /// Wall-clock seconds for this instance's diagnosis call.
    pub diagnose_s: f64,
}

/// Aggregate report of one fleet run.
#[derive(Debug, Clone, Serialize)]
pub struct FleetReport {
    pub n_instances: usize,
    /// Events pushed through the multiplexed loop.
    pub events_total: u64,
    /// Wall-clock seconds of the serial multiplexed ingest loop.
    pub ingest_wall_s: f64,
    /// Sustained ingest throughput (events / ingest_wall_s).
    pub events_per_sec: f64,
    /// Wall-clock seconds of the across-instance diagnosis fan-out.
    pub diagnose_wall_s: f64,
    /// Mean per-case diagnosis latency.
    pub diagnose_mean_s: f64,
    /// Worst per-case diagnosis latency.
    pub diagnose_max_s: f64,
    pub outcomes: Vec<InstanceOutcome>,
}

/// The fleet orchestrator. See the module docs for the three stages.
#[derive(Debug, Clone, Default)]
pub struct FleetEngine {
    pub cfg: FleetConfig,
}

impl FleetEngine {
    pub fn new(cfg: FleetConfig) -> Self {
        Self { cfg }
    }

    /// Runs the full loop over one scenario per instance and reports
    /// throughput, latency, and per-instance outcomes.
    ///
    /// Outcomes are deterministic: the merge order is a pure function of
    /// event timestamps (ties by instance index) and both fan-out stages
    /// use the index-ordered `par_map`, so any `fanout` value yields the
    /// same outcomes (timings aside).
    pub fn run(&self, scenarios: &[Scenario]) -> FleetReport {
        assert!(!scenarios.is_empty(), "fleet run needs at least one scenario");

        let streams: Vec<Vec<TelemetryEvent>> =
            par_map(scenarios.len(), self.cfg.fanout, |i| materialize_events(&scenarios[i], None));

        let mut instances: Vec<OnlineInstance> = scenarios
            .iter()
            .map(|s| OnlineInstance::new(s.clone(), self.cfg.delta_s))
            .collect();

        let t0 = Instant::now();
        let mut cursors = vec![0usize; streams.len()];
        let mut events_total = 0u64;
        loop {
            // K-way merge head: earliest event time, ties to the lowest
            // instance index. K is small (a fleet slice), so a linear scan
            // beats a heap's allocation churn.
            let mut head: Option<(f64, usize)> = None;
            for (i, stream) in streams.iter().enumerate() {
                if let Some(ev) = stream.get(cursors[i]) {
                    let t = ev.time_ms();
                    if head.is_none_or(|(best, _)| t < best) {
                        head = Some((t, i));
                    }
                }
            }
            let Some((_, i)) = head else { break };
            instances[i].ingest(&streams[i][cursors[i]]);
            cursors[i] += 1;
            events_total += 1;
        }
        let ingest_wall_s = t0.elapsed().as_secs_f64();

        let n_events: Vec<u64> = instances.iter().map(|inst| inst.events_ingested()).collect();
        let n_queries: Vec<u64> = instances.iter().map(|inst| inst.ingest_stats().queries).collect();
        let cases: Vec<LabeledCase> =
            instances.into_iter().map(|inst| inst.close_case()).collect();

        let t1 = Instant::now();
        let diagnoser = PinSql::new(self.cfg.pinsql.clone());
        let diagnosed = par_map(cases.len(), self.cfg.fanout, |i| {
            let lc = &cases[i];
            let t = Instant::now();
            let d = diagnoser.diagnose(&lc.case, &lc.window, &lc.history, lc.minutes_origin);
            (d, t.elapsed().as_secs_f64())
        });
        let diagnose_wall_s = t1.elapsed().as_secs_f64();

        let outcomes: Vec<InstanceOutcome> = diagnosed
            .iter()
            .enumerate()
            .map(|(i, (d, diag_s))| {
                let lc = &cases[i];
                let top = d.rsqls.first();
                InstanceOutcome {
                    instance: i,
                    kind: scenarios[i].kind.map(|k| k.label()).unwrap_or("none").to_string(),
                    seed: scenarios[i].cfg.seed,
                    detected: lc.detected,
                    anomaly_type: lc.anomaly_type.clone(),
                    n_events: n_events[i],
                    n_queries: n_queries[i],
                    case_seconds: lc.case.n_seconds(),
                    n_templates: lc.case.templates.len(),
                    n_reported: d.reported_rsqls.len(),
                    top_rsql: top.map(|r| r.label.clone()),
                    truth_hit: top.is_some_and(|r| lc.truth.rsqls.contains(&r.id)),
                    diagnose_s: *diag_s,
                }
            })
            .collect();

        let lat_sum: f64 = outcomes.iter().map(|o| o.diagnose_s).sum();
        let lat_max = outcomes.iter().map(|o| o.diagnose_s).fold(0.0f64, f64::max);
        FleetReport {
            n_instances: outcomes.len(),
            events_total,
            ingest_wall_s,
            events_per_sec: if ingest_wall_s > 0.0 { events_total as f64 / ingest_wall_s } else { 0.0 },
            diagnose_wall_s,
            diagnose_mean_s: lat_sum / outcomes.len() as f64,
            diagnose_max_s: lat_max,
            outcomes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinsql_scenario::{generate_base, inject, inject_none, AnomalyKind, ScenarioConfig};

    /// A small, fast fleet: short windows, few businesses, one scenario of
    /// each kind plus a negative.
    fn small_fleet(n: usize) -> Vec<Scenario> {
        let kinds = [
            Some(AnomalyKind::BusinessSpike),
            Some(AnomalyKind::PoorSql),
            Some(AnomalyKind::MdlLock),
            Some(AnomalyKind::RowLock),
            None,
        ];
        (0..n)
            .map(|i| {
                let cfg = ScenarioConfig::default()
                    .with_seed(90 + i as u64)
                    .with_businesses(6)
                    .with_window(420, 240, 330);
                let base = generate_base(&cfg);
                match kinds[i % kinds.len()] {
                    Some(kind) => inject(&base, &cfg, kind),
                    None => inject_none(&base, &cfg),
                }
            })
            .collect()
    }

    #[test]
    fn fleet_smoke() {
        let scenarios = small_fleet(4);
        let engine = FleetEngine::new(FleetConfig {
            delta_s: 180,
            pinsql: PinSqlConfig::default(),
            fanout: 2,
        });
        let report = engine.run(&scenarios);

        assert_eq!(report.n_instances, 4);
        assert!(report.events_total > 0);
        assert_eq!(
            report.events_total,
            report.outcomes.iter().map(|o| o.n_events).sum::<u64>(),
            "every multiplexed event is attributed to exactly one instance"
        );
        assert!(report.events_per_sec > 0.0);
        assert!(report.diagnose_max_s >= report.diagnose_mean_s);
        for o in &report.outcomes {
            assert!(o.n_queries > 0, "instance {} saw no queries", o.instance);
            assert!(o.case_seconds > 0);
            assert!(o.n_templates > 0);
        }
        // The report must serialize (the fleet bench writes it to JSON).
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("events_per_sec"));
    }

    #[test]
    fn outcomes_are_independent_of_fanout() {
        let scenarios = small_fleet(3);
        let run = |fanout| {
            FleetEngine::new(FleetConfig {
                delta_s: 180,
                pinsql: PinSqlConfig::default(),
                fanout,
            })
            .run(&scenarios)
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a.events_total, b.events_total);
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.detected, y.detected);
            assert_eq!(x.anomaly_type, y.anomaly_type);
            assert_eq!(x.n_events, y.n_events);
            assert_eq!(x.case_seconds, y.case_seconds);
            assert_eq!(x.n_templates, y.n_templates);
            assert_eq!(x.n_reported, y.n_reported);
            assert_eq!(x.top_rsql, y.top_rsql);
            assert_eq!(x.truth_hit, y.truth_hit);
        }
    }
}
