//! Typed control wire between the fleet server and its resident agent.
//!
//! The daemon splits the engine into two halves: an **agent** that owns
//! the sharded ingestion workers, and a **server** control plane that
//! steers it. Everything the server says crosses this wire as a `PCTL`
//! frame, and everything the agent answers comes back as one — there is
//! no side channel, so the daemon suites exercise exactly the bytes a
//! remote deployment would.
//!
//! Frames follow the PSNP snapshot conventions
//! ([`crate::snapshot`]): little-endian, a fixed header
//! (`magic + version + message tag`) in front of one length-prefixed
//! body section, the tag duplicated in the header so a router can
//! dispatch without decoding the body, and a typed [`WireError`] for
//! every malformed input — decoding untrusted bytes **never panics**
//! (pinned by the `control_wire` suite: truncation at every offset,
//! header flips, trailing garbage, future versions).

use crate::fleet::FleetConfig;
use crate::snapshot::{cut_tag, decode_cut, decode_kernel, kernel_tag};
use crate::wire::{
    get_opt_f64, get_opt_i64, get_opt_u64, put_opt_f64, put_opt_i64, put_opt_u64, WireFormat,
};
use pinsql::{ConfigEpoch, PinSqlDelta};
use pinsql_obs::{FleetRollup, HealthRollup, RegionRollup};
use pinsql_timeseries::{WireError, WireReader, WireWriter};

/// Frame marker: "PinSQL ConTroL".
pub const CONTROL_MAGIC: [u8; 4] = *b"PCTL";

/// Frame format version. Decoders accept `<=` this and reject newer
/// frames with [`WireError::FutureVersion`] instead of misparsing them.
pub const CONTROL_VERSION: u16 = 1;

/// Bytes before the body section: magic (4) + version (2) + tag (1).
pub const CONTROL_HEADER_LEN: usize = 7;

/// The `PCTL` envelope identity under the shared [`WireFormat`] dialect.
/// Any version at or below [`CONTROL_VERSION`] decodes (the format has
/// never broken compatibility, so there is no floor).
const CONTROL_FORMAT: WireFormat = WireFormat {
    magic: CONTROL_MAGIC,
    version: CONTROL_VERSION,
    min_version: 0,
    version_what: "control version",
};

/// Where the agent's lifecycle state machine sits. Transitions:
/// `Starting → Running ⇄ Draining`, `Running/Draining → Restarting →
/// Running`, `Draining → Stopped`. Every [`ControlResp::Ack`] reports the
/// state the handled message left the agent in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum DaemonState {
    /// Pipelines are being built; no events folded yet.
    Starting,
    /// Ingesting: `advance_to` folds stream prefixes at will.
    Running,
    /// Quiesced at the drain watermark; ingestion is paused until a
    /// restart or stop (config pushes are still accepted).
    Draining,
    /// Mid flight-restart: state serialized, pipelines being rebuilt.
    Restarting,
    /// Terminal; only [`ControlMsg::HealthQuery`] is still answered.
    Stopped,
}

impl DaemonState {
    fn tag(self) -> u8 {
        match self {
            DaemonState::Starting => 0,
            DaemonState::Running => 1,
            DaemonState::Draining => 2,
            DaemonState::Restarting => 3,
            DaemonState::Stopped => 4,
        }
    }

    fn decode(tag: u8) -> Result<Self, WireError> {
        Ok(match tag {
            0 => DaemonState::Starting,
            1 => DaemonState::Running,
            2 => DaemonState::Draining,
            3 => DaemonState::Restarting,
            4 => DaemonState::Stopped,
            t => return Err(WireError::BadTag { what: "daemon state", value: t as u64 }),
        })
    }
}

impl std::fmt::Display for DaemonState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DaemonState::Starting => "starting",
            DaemonState::Running => "running",
            DaemonState::Draining => "draining",
            DaemonState::Restarting => "restarting",
            DaemonState::Stopped => "stopped",
        })
    }
}

/// A sparse override of [`FleetConfig`] — what a config push carries.
///
/// Every field is optional; `None` keeps the running value. The fleet
/// knobs that are safe to retune live (shard/fanout layout, statistics
/// kernel, collection look-back, region map) ride alongside the
/// diagnoser's own [`PinSqlDelta`].
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FleetDelta {
    /// Ingestion shard count (must be ≥ 1 when present).
    pub shards: Option<usize>,
    /// Across-instance worker threads (`0` = all cores).
    pub fanout: Option<usize>,
    /// Detector statistics kernel (hot-swapped at the quiesce boundary).
    pub kernel: Option<pinsql_detect::KernelKind>,
    /// Collection look-back δ_s.
    pub delta_s: Option<i64>,
    /// Health-rollup region count (must be ≥ 1 when present).
    pub regions: Option<usize>,
    /// Diagnoser threshold overrides.
    pub pinsql: PinSqlDelta,
}

impl FleetDelta {
    /// True when the delta overrides nothing.
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }

    /// Applies every present override onto `cfg` in place.
    pub fn apply(&self, cfg: &mut FleetConfig) {
        if let Some(v) = self.shards {
            cfg.shards = v;
        }
        if let Some(v) = self.fanout {
            cfg.fanout = v;
        }
        if let Some(v) = self.kernel {
            cfg.kernel = v;
        }
        if let Some(v) = self.delta_s {
            cfg.delta_s = v;
        }
        if let Some(v) = self.regions {
            cfg.regions = v;
        }
        self.pinsql.apply(&mut cfg.pinsql);
    }
}

/// Server → agent control messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlMsg {
    /// Apply `delta` at the current watermark under a new, strictly
    /// greater epoch. Stale or replayed epochs are rejected, so a push
    /// either moves the whole fleet or none of it.
    ConfigPush { epoch: ConfigEpoch, delta: FleetDelta },
    /// Fold everything strictly before `to_second` (event time), then
    /// pause ingestion at that watermark.
    Drain { to_second: i64 },
    /// Serialize every pipeline, tear the workers down, revalidate and
    /// restore — a crash drill at the current watermark.
    Restart,
    /// Drain the remaining stream tails and stop; the run report is
    /// collected out of band ([`crate::FleetDaemon::finish`]).
    Stop,
    /// Ask for the shard → region → fleet health rollup tree.
    HealthQuery,
}

impl ControlMsg {
    fn tag(&self) -> u8 {
        match self {
            ControlMsg::ConfigPush { .. } => 1,
            ControlMsg::Drain { .. } => 2,
            ControlMsg::Restart => 3,
            ControlMsg::Stop => 4,
            ControlMsg::HealthQuery => 5,
        }
    }

    /// Encodes one framed message.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(64);
        write_frame_header(&mut w, self.tag());
        w.put_section(|w| match self {
            ControlMsg::ConfigPush { epoch, delta } => {
                w.put_u64(epoch.0);
                write_delta(w, delta);
            }
            ControlMsg::Drain { to_second } => w.put_i64(*to_second),
            ControlMsg::Restart | ControlMsg::Stop | ControlMsg::HealthQuery => {}
        });
        w.into_bytes()
    }

    /// Decodes one framed message from untrusted bytes. Every malformed
    /// input maps to a typed [`WireError`]; this never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let tag = read_frame_header(&mut r)?;
        let mut body = r.get_section()?;
        let msg = match tag {
            1 => {
                let epoch = ConfigEpoch(body.get_u64()?);
                let delta = read_delta(&mut body)?;
                ControlMsg::ConfigPush { epoch, delta }
            }
            2 => ControlMsg::Drain { to_second: body.get_i64()? },
            3 => ControlMsg::Restart,
            4 => ControlMsg::Stop,
            5 => ControlMsg::HealthQuery,
            t => return Err(WireError::BadTag { what: "control message tag", value: t as u64 }),
        };
        body.finish("control message body")?;
        r.finish("control frame")?;
        Ok(msg)
    }
}

/// Agent → server responses.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlResp {
    /// The message was applied; the agent now runs `epoch` in `state`.
    Ack { epoch: ConfigEpoch, state: DaemonState },
    /// Answer to [`ControlMsg::HealthQuery`].
    Rollup { epoch: ConfigEpoch, rollup: FleetRollup },
    /// The message was refused (stale epoch, bad lifecycle state); the
    /// agent's config is untouched and still at `epoch`.
    Reject { epoch: ConfigEpoch, reason: String },
}

impl ControlResp {
    fn tag(&self) -> u8 {
        match self {
            ControlResp::Ack { .. } => 1,
            ControlResp::Rollup { .. } => 2,
            ControlResp::Reject { .. } => 3,
        }
    }

    /// Encodes one framed response.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(64);
        write_frame_header(&mut w, self.tag());
        w.put_section(|w| match self {
            ControlResp::Ack { epoch, state } => {
                w.put_u64(epoch.0);
                w.put_u8(state.tag());
            }
            ControlResp::Rollup { epoch, rollup } => {
                w.put_u64(epoch.0);
                write_rollup_tree(w, rollup);
            }
            ControlResp::Reject { epoch, reason } => {
                w.put_u64(epoch.0);
                w.put_str(reason);
            }
        });
        w.into_bytes()
    }

    /// Decodes one framed response from untrusted bytes; never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let tag = read_frame_header(&mut r)?;
        let mut body = r.get_section()?;
        let resp = match tag {
            1 => ControlResp::Ack {
                epoch: ConfigEpoch(body.get_u64()?),
                state: DaemonState::decode(body.get_u8()?)?,
            },
            2 => ControlResp::Rollup {
                epoch: ConfigEpoch(body.get_u64()?),
                rollup: read_rollup_tree(&mut body)?,
            },
            3 => ControlResp::Reject {
                epoch: ConfigEpoch(body.get_u64()?),
                reason: body.get_str()?.to_string(),
            },
            t => return Err(WireError::BadTag { what: "control response tag", value: t as u64 }),
        };
        body.finish("control response body")?;
        r.finish("control frame")?;
        Ok(resp)
    }
}

fn write_frame_header(w: &mut WireWriter, tag: u8) {
    CONTROL_FORMAT.write_frame_header(w, tag);
}

fn read_frame_header(r: &mut WireReader<'_>) -> Result<u8, WireError> {
    CONTROL_FORMAT.read_frame_header(r)
}

fn write_delta(w: &mut WireWriter, d: &FleetDelta) {
    put_opt_u64(w, d.shards.map(|v| v as u64));
    put_opt_u64(w, d.fanout.map(|v| v as u64));
    match d.kernel {
        Some(k) => {
            w.put_bool(true);
            w.put_u8(kernel_tag(k));
        }
        None => w.put_bool(false),
    }
    put_opt_i64(w, d.delta_s);
    put_opt_u64(w, d.regions.map(|v| v as u64));
    put_opt_f64(w, d.pinsql.tau);
    put_opt_u64(w, d.pinsql.kc.map(|v| v as u64));
    put_opt_f64(w, d.pinsql.tau_c);
    put_opt_f64(w, d.pinsql.tukey_k);
    put_opt_f64(w, d.pinsql.rsql_score_min);
    put_opt_u64(w, d.pinsql.parallelism.map(|v| v as u64));
    match d.pinsql.cut {
        Some(c) => {
            w.put_bool(true);
            w.put_u8(cut_tag(c));
        }
        None => w.put_bool(false),
    }
}

fn read_delta(r: &mut WireReader<'_>) -> Result<FleetDelta, WireError> {
    let shards = get_opt_u64(r)?.map(|v| v as usize);
    if shards == Some(0) {
        return Err(WireError::Mismatch {
            what: "delta shards",
            detail: "must be >= 1".into(),
        });
    }
    let fanout = get_opt_u64(r)?.map(|v| v as usize);
    let kernel = if r.get_bool()? { Some(decode_kernel(r.get_u8()?)?) } else { None };
    let delta_s = get_opt_i64(r)?;
    let regions = get_opt_u64(r)?.map(|v| v as usize);
    if regions == Some(0) {
        return Err(WireError::Mismatch {
            what: "delta regions",
            detail: "must be >= 1".into(),
        });
    }
    Ok(FleetDelta {
        shards,
        fanout,
        kernel,
        delta_s,
        regions,
        pinsql: PinSqlDelta {
            tau: get_opt_f64(r)?,
            kc: get_opt_u64(r)?.map(|v| v as usize),
            tau_c: get_opt_f64(r)?,
            tukey_k: get_opt_f64(r)?,
            rsql_score_min: get_opt_f64(r)?,
            parallelism: get_opt_u64(r)?.map(|v| v as usize),
            cut: if r.get_bool()? { Some(decode_cut(r.get_u8()?)?) } else { None },
        },
    })
}

fn write_rollup(w: &mut WireWriter, r: &HealthRollup) {
    w.put_u64(r.instances);
    w.put_u64(r.events_total);
    w.put_u64(r.queries_total);
    w.put_u64(r.malformed_total);
    w.put_u64(r.late_total);
    w.put_u64(r.evictions_total);
    w.put_u64(r.cases_opened_total);
    w.put_u64(r.open_segments_total);
    w.put_u64(r.anomalies_open);
    w.put_u64(r.max_records_resident);
    w.put_u64(r.max_cell_seconds);
    w.put_i64(r.watermark_min);
}

fn read_rollup(r: &mut WireReader<'_>) -> Result<HealthRollup, WireError> {
    Ok(HealthRollup {
        instances: r.get_u64()?,
        events_total: r.get_u64()?,
        queries_total: r.get_u64()?,
        malformed_total: r.get_u64()?,
        late_total: r.get_u64()?,
        evictions_total: r.get_u64()?,
        cases_opened_total: r.get_u64()?,
        open_segments_total: r.get_u64()?,
        anomalies_open: r.get_u64()?,
        max_records_resident: r.get_u64()?,
        max_cell_seconds: r.get_u64()?,
        watermark_min: r.get_i64()?,
    })
}

fn write_rollup_tree(w: &mut WireWriter, t: &FleetRollup) {
    w.put_len(t.regions.len());
    for region in &t.regions {
        w.put_u32(region.region);
        write_rollup(w, &region.rollup);
    }
    write_rollup(w, &t.total);
}

fn read_rollup_tree(r: &mut WireReader<'_>) -> Result<FleetRollup, WireError> {
    // 4 region-id bytes + 12 fixed-width counters.
    let n = r.get_len(4 + 12 * 8)?;
    let mut regions = Vec::with_capacity(n);
    for _ in 0..n {
        let region = r.get_u32()?;
        let rollup = read_rollup(r)?;
        if let Some(prev) = regions.last().map(|p: &RegionRollup| p.region) {
            if region <= prev {
                return Err(WireError::Mismatch {
                    what: "rollup regions",
                    detail: format!("region ids not strictly ascending ({prev} then {region})"),
                });
            }
        }
        regions.push(RegionRollup { region, rollup });
    }
    let tree = FleetRollup { regions, total: read_rollup(r)? };
    if !tree.is_consistent() {
        return Err(WireError::Mismatch {
            what: "rollup tree",
            detail: "total does not equal the merge of the regions".into(),
        });
    }
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinsql_detect::{CutKind, KernelKind};
    use pinsql_obs::HealthSnapshot;

    fn full_delta() -> FleetDelta {
        FleetDelta {
            shards: Some(4),
            fanout: Some(2),
            kernel: Some(KernelKind::Fast),
            delta_s: Some(480),
            regions: Some(3),
            pinsql: PinSqlDelta {
                tau: Some(0.9),
                kc: Some(4),
                tau_c: Some(0.95),
                tukey_k: Some(2.5),
                rsql_score_min: Some(0.5),
                parallelism: Some(2),
                cut: Some(CutKind::Reference),
            },
        }
    }

    fn sample_tree() -> FleetRollup {
        let mut t = FleetRollup::default();
        for i in 0..7u64 {
            let h = HealthSnapshot {
                events_ingested: 100 + i,
                queries_ingested: 50 + i,
                watermark: 400 + i as i64,
                cases_opened: u64::from(i % 2 == 0),
                anomaly_open: i == 3,
                ..HealthSnapshot::default()
            };
            t.observe((i % 3) as u32, &h);
        }
        t
    }

    #[test]
    fn messages_round_trip_exactly() {
        let msgs = [
            ControlMsg::ConfigPush { epoch: ConfigEpoch(3), delta: full_delta() },
            ControlMsg::ConfigPush {
                epoch: ConfigEpoch(1),
                delta: FleetDelta::default(),
            },
            ControlMsg::Drain { to_second: 780 },
            ControlMsg::Restart,
            ControlMsg::Stop,
            ControlMsg::HealthQuery,
        ];
        for msg in msgs {
            let bytes = msg.to_bytes();
            assert_eq!(ControlMsg::from_bytes(&bytes).unwrap(), msg);
        }
    }

    #[test]
    fn responses_round_trip_exactly() {
        let resps = [
            ControlResp::Ack { epoch: ConfigEpoch(2), state: DaemonState::Running },
            ControlResp::Rollup { epoch: ConfigEpoch(5), rollup: sample_tree() },
            ControlResp::Reject {
                epoch: ConfigEpoch(4),
                reason: "stale epoch 2 (running epoch 4)".into(),
            },
        ];
        for resp in resps {
            let bytes = resp.to_bytes();
            assert_eq!(ControlResp::from_bytes(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn delta_applies_onto_fleet_config() {
        let mut cfg = FleetConfig::default();
        full_delta().apply(&mut cfg);
        assert_eq!(cfg.shards, 4);
        assert_eq!(cfg.fanout, 2);
        assert_eq!(cfg.kernel, KernelKind::Fast);
        assert_eq!(cfg.delta_s, 480);
        assert_eq!(cfg.regions, 3);
        assert_eq!(cfg.pinsql.tau, 0.9);
        assert_eq!(cfg.pinsql.parallelism, 2);
        assert_eq!(cfg.pinsql.cut, CutKind::Reference);

        let mut untouched = FleetConfig::default();
        FleetDelta::default().apply(&mut untouched);
        assert_eq!(untouched.shards, FleetConfig::default().shards);
        assert!(FleetDelta::default().is_empty());
        assert!(!full_delta().is_empty());
    }

    #[test]
    fn zero_shard_and_region_deltas_are_rejected() {
        let zero_shards =
            ControlMsg::ConfigPush {
                epoch: ConfigEpoch(1),
                delta: FleetDelta { shards: Some(0), ..FleetDelta::default() },
            }
            .to_bytes();
        assert!(matches!(
            ControlMsg::from_bytes(&zero_shards),
            Err(WireError::Mismatch { what: "delta shards", .. })
        ));
        let zero_regions =
            ControlMsg::ConfigPush {
                epoch: ConfigEpoch(1),
                delta: FleetDelta { regions: Some(0), ..FleetDelta::default() },
            }
            .to_bytes();
        assert!(matches!(
            ControlMsg::from_bytes(&zero_regions),
            Err(WireError::Mismatch { what: "delta regions", .. })
        ));
    }

    #[test]
    fn inconsistent_rollup_trees_are_rejected() {
        let mut tree = sample_tree();
        tree.total.events_total += 1;
        let bytes = ControlResp::Rollup { epoch: ConfigEpoch(1), rollup: tree }.to_bytes();
        assert!(matches!(
            ControlResp::from_bytes(&bytes),
            Err(WireError::Mismatch { what: "rollup tree", .. })
        ));
    }
}
