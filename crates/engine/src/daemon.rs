//! The resident fleet daemon: an agent that *stays up* between batches.
//!
//! [`FleetEngine`] runs a fleet to completion in one call. A production
//! deployment instead keeps the pipelines resident: telemetry arrives
//! forever, operators retune thresholds, swap kernels, and bounce agents
//! without losing a second of online state. [`FleetDaemon`] is that
//! shape over the same machinery:
//!
//! - **Agent** ([`FleetDaemon`]) — owns the live [`OnlineInstance`]s and
//!   the sharded ingestion workers. [`advance_to`](FleetDaemon::advance_to)
//!   folds each stream's prefix strictly before an event-time watermark
//!   (the same exact quiesce [`crate::ReshardStep`] boundaries use), so
//!   every pause point is deterministic whatever the shard layout.
//! - **Server** ([`FleetServer`]) — the control plane. Every operation
//!   crosses the typed `PCTL` wire ([`crate::control`]) as encoded
//!   frames: versioned config pushes, drains, restarts, health queries.
//!   There is no side channel; the daemon suites exercise the bytes a
//!   remote deployment would.
//!
//! ## Why a live reconfigure is byte-identical to a cold start
//!
//! A [`ControlMsg::ConfigPush`] lands at the current watermark, where the
//! fleet is quiesced. The push re-seats every instance through the full
//! untrusted snapshot path (serialize → [`InstanceSnapshot::from_bytes`]
//! → restore — exactly the reshard handoff), then applies the delta:
//!
//! - the **kernel** hot-swap is safe because detector baselines hold raw
//!   samples (median/MAD recompute on demand) and both kernel kinds are
//!   bit-identical;
//! - **`δ_s`** and every [`pinsql::PinSqlDelta`] knob are only read when
//!   a case closes / diagnoses, after the final config is in place;
//! - **shards / fanout / regions** never touch per-instance state.
//!
//! So a daemon that ends at config `F` — however many pushes and
//! restarts it took — produces the same bytes as
//! [`FleetEngine::run_full`] under `F`. The `daemon_equivalence` matrix
//! pins this against the golden corpus, including a mid-stream push and
//! a graceful restart inside an open anomaly.

use crate::control::{ControlMsg, ControlResp, DaemonState, FleetDelta};
use crate::fleet::{
    contiguous_assignment, finalize_instance, merge_streams, split_prefix, FleetConfig,
    FleetEngine, FleetRun, InstanceArtifacts,
};
use crate::instance::OnlineInstance;
use crate::snapshot::InstanceSnapshot;
use pinsql::ConfigEpoch;
use pinsql_dbsim::TelemetryEvent;
use pinsql_obs::{Counter, FleetRollup, HealthSnapshot, NoopObserver, Observer, Stage};
use pinsql_scenario::{materialize_events, Scenario};
use pinsql_timeseries::par::par_map;
use pinsql_timeseries::WireError;
use std::time::Instant;

/// The resident agent: live pipelines plus the control-plane handler.
/// See the module docs for the lifecycle and equivalence contract.
#[derive(Debug)]
pub struct FleetDaemon<'a, O: Observer = NoopObserver> {
    cfg: FleetConfig,
    epoch: ConfigEpoch,
    state: DaemonState,
    scenarios: &'a [Scenario],
    /// Live pipelines, instance-id order — the daemon's whole point.
    instances: Vec<OnlineInstance<'a, O>>,
    /// Unconsumed stream tails, aligned with `instances`.
    streams: Vec<Vec<TelemetryEvent>>,
    /// Highest quiesce boundary folded so far (`i64::MIN` before any).
    watermark: i64,
    ingest_wall_s: f64,
    /// Completed ingest rounds, for observer lane naming.
    rounds: usize,
    restarts: u64,
    obs: O,
}

impl<'a> FleetDaemon<'a> {
    /// Boots an agent over `scenarios`: materializes every stream and
    /// builds one live pipeline per instance under `cfg`.
    ///
    /// # Panics
    /// Panics on an empty fleet or `cfg.shards == 0` / `cfg.regions == 0`
    /// (programmer errors, like [`FleetEngine::new`]).
    pub fn spawn(cfg: FleetConfig, scenarios: &'a [Scenario]) -> Self {
        Self::spawn_observed(cfg, scenarios, NoopObserver)
    }

    /// Boots a **hollow** agent: live pipelines, empty streams. Telemetry
    /// arrives later over the `PEVT` ingest wire
    /// ([`offer_events`](FleetDaemon::offer_events)) instead of being
    /// materialized up front — the deployment shape behind
    /// [`crate::transport::IngestSink`].
    pub fn spawn_hollow(cfg: FleetConfig, scenarios: &'a [Scenario]) -> Self {
        Self::spawn_hollow_observed(cfg, scenarios, NoopObserver)
    }
}

impl<'a, O: Observer> FleetDaemon<'a, O> {
    /// [`spawn`](FleetDaemon::spawn) under an explicit observer; each
    /// instance records on its own `inst{i}` lane.
    pub fn spawn_observed(cfg: FleetConfig, scenarios: &'a [Scenario], obs: O) -> Self {
        Self::spawn_inner(cfg, scenarios, obs, true)
    }

    fn spawn_inner(cfg: FleetConfig, scenarios: &'a [Scenario], obs: O, materialize: bool) -> Self {
        assert!(!scenarios.is_empty(), "fleet daemon needs at least one scenario");
        assert!(cfg.shards >= 1, "FleetConfig.shards must be >= 1");
        assert!(cfg.regions >= 1, "FleetConfig.regions must be >= 1");
        let n = scenarios.len();
        // `Starting` covers this whole constructor: materialize the
        // streams (unless the agent is hollow and fed over the wire),
        // then build one live pipeline per instance.
        let streams = if materialize {
            par_map(n, cfg.fanout, |i| materialize_events(&scenarios[i], None))
        } else {
            (0..n).map(|_| Vec::new()).collect()
        };
        let instances = scenarios
            .iter()
            .enumerate()
            .map(|(i, sc)| {
                OnlineInstance::with_observer(sc, cfg.delta_s, obs.fork(&format!("inst{i}")))
                    .with_kernel(cfg.kernel)
                    .with_cut(cfg.pinsql.cut)
            })
            .collect();
        Self {
            epoch: ConfigEpoch::INITIAL,
            state: DaemonState::Running,
            scenarios,
            instances,
            streams,
            watermark: i64::MIN,
            ingest_wall_s: 0.0,
            rounds: 0,
            restarts: 0,
            obs,
            cfg,
        }
    }

    /// [`spawn_hollow`](FleetDaemon::spawn_hollow) under an explicit
    /// observer.
    pub fn spawn_hollow_observed(cfg: FleetConfig, scenarios: &'a [Scenario], obs: O) -> Self {
        Self::spawn_inner(cfg, scenarios, obs, false)
    }

    /// Appends wire-delivered telemetry to one instance's pending stream.
    /// The events fold at the next [`advance_to`](FleetDaemon::advance_to)
    /// boundary, exactly like a materialized stream's prefix.
    ///
    /// The inputs are untrusted (they crossed a process boundary):
    /// an unknown instance id or a batch that would break the stream's
    /// event-time order — the invariant the boundary split relies on —
    /// comes back as a typed error and leaves the agent untouched.
    pub fn offer_events(
        &mut self,
        instance: usize,
        events: Vec<TelemetryEvent>,
    ) -> Result<(), WireError> {
        if self.state != DaemonState::Running {
            return Err(WireError::Mismatch {
                what: "daemon state",
                detail: format!("events offered in state {}", self.state),
            });
        }
        let Some(stream) = self.streams.get_mut(instance) else {
            return Err(WireError::Mismatch {
                what: "event batch instance",
                detail: format!("instance {instance} outside fleet of {}", self.streams.len()),
            });
        };
        let mut last = stream.last().map(TelemetryEvent::time_ms);
        for ev in &events {
            let t = ev.time_ms();
            if last.is_some_and(|l| t < l) {
                return Err(WireError::Mismatch {
                    what: "event stream order",
                    detail: format!(
                        "instance {instance} event at {t}ms behind buffered tail {}ms",
                        last.unwrap_or_default()
                    ),
                });
            }
            last = Some(t);
        }
        stream.extend(events);
        Ok(())
    }

    /// Events offered (or left from materialized streams) but not yet
    /// folded by a boundary — the queue depth the ingest-wire credit
    /// window bounds.
    pub fn buffered_events(&self) -> usize {
        self.streams.iter().map(Vec::len).sum()
    }

    /// The agent's observer handle (for layers — like the ingest sink —
    /// that record alongside the daemon).
    pub(crate) fn obs(&self) -> &O {
        &self.obs
    }

    /// Fleet size (instances hosted).
    pub fn n_instances(&self) -> usize {
        self.instances.len()
    }

    /// Current lifecycle state.
    pub fn state(&self) -> DaemonState {
        self.state
    }

    /// Config epoch of the last accepted push ([`ConfigEpoch::INITIAL`]
    /// before any).
    pub fn epoch(&self) -> ConfigEpoch {
        self.epoch
    }

    /// The configuration currently in force.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Event-time watermark: every event strictly before it has folded.
    pub fn watermark(&self) -> i64 {
        self.watermark
    }

    /// Graceful restarts survived so far.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Data plane: folds every stream's prefix strictly before
    /// `boundary_s` (event time) across the sharded workers. Boundaries
    /// must be non-decreasing; a repeated boundary is a no-op.
    ///
    /// # Panics
    /// Panics when the agent is not `Running` (drain first, or restart),
    /// or when `boundary_s` moves backwards — both programmer errors.
    pub fn advance_to(&mut self, boundary_s: i64) {
        assert_eq!(
            self.state,
            DaemonState::Running,
            "advance_to requires a running agent (state: {})",
            self.state
        );
        assert!(
            boundary_s >= self.watermark,
            "advance_to boundary {boundary_s} behind watermark {}",
            self.watermark
        );
        self.ingest_prefix(Some(boundary_s));
    }

    /// Control plane entry point: one encoded `PCTL` frame in, one out.
    /// Malformed frames come back as [`ControlResp::Reject`] — decoding
    /// untrusted bytes never panics and never kills the agent.
    pub fn handle_frame(&mut self, frame: &[u8]) -> Vec<u8> {
        if O::ENABLED {
            self.obs.add(Counter::ControlFrames, 1);
        }
        let resp = match ControlMsg::from_bytes(frame) {
            Ok(msg) => self.handle(msg),
            Err(e) => self.reject(format!("malformed control frame: {e}")),
        };
        resp.to_bytes()
    }

    /// [`handle_frame`](Self::handle_frame) on a decoded message (the
    /// in-process fast path; the wire suites use the framed form).
    pub fn handle(&mut self, msg: ControlMsg) -> ControlResp {
        match msg {
            ControlMsg::ConfigPush { epoch, delta } => self.config_push(epoch, &delta),
            ControlMsg::Drain { to_second } => self.drain(to_second),
            ControlMsg::Restart => self.restart(),
            ControlMsg::Stop => self.stop(),
            // Health is answerable in every state, Stopped included.
            ControlMsg::HealthQuery => {
                ControlResp::Rollup { epoch: self.epoch, rollup: self.rollup() }
            }
        }
    }

    /// The shard → region → fleet rollup tree over the live pipelines:
    /// instances map to regions contiguously, each region folds an exact
    /// [`pinsql_obs::HealthRollup`], the total is their merge.
    pub fn rollup(&self) -> FleetRollup {
        let snaps: Vec<HealthSnapshot> =
            self.instances.iter().map(OnlineInstance::health_snapshot).collect();
        let regions = self.cfg.regions.clamp(1, snaps.len().max(1));
        let region_of = contiguous_assignment(snaps.len(), regions);
        FleetRollup::from_assigned(&snaps, |i| region_of[i] as u32)
    }

    /// Tears the agent down into a full [`FleetRun`]: drains any
    /// remaining stream tails, closes every case, diagnoses, and rolls
    /// the report up under the **final** config and epoch. The result is
    /// byte-identical to [`FleetEngine::run_full`] under that config.
    pub fn finish(mut self) -> FleetRun {
        if self.state != DaemonState::Stopped {
            self.ingest_prefix(None);
            self.state = DaemonState::Stopped;
        }
        let n = self.instances.len();
        let shards = self.cfg.shards.clamp(1, n);
        let assignment = contiguous_assignment(n, shards);
        let mut groups: Vec<Vec<(usize, OnlineInstance<'a, O>)>> =
            (0..shards).map(|_| Vec::new()).collect();
        for (i, inst) in self.instances.drain(..).enumerate() {
            groups[assignment[i]].push((i, inst));
        }
        let mut artifacts: Vec<Option<InstanceArtifacts>> = (0..n).map(|_| None).collect();
        let finals: Vec<Vec<(usize, InstanceArtifacts)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = groups
                .into_iter()
                .filter(|g| !g.is_empty())
                .map(|group| {
                    scope.spawn(move || {
                        group
                            .into_iter()
                            .map(|(i, inst)| (i, finalize_instance(inst)))
                            .collect()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("finalize shard panicked")).collect()
        });
        for outs in finals {
            for (i, a) in outs {
                artifacts[i] = Some(a);
            }
        }
        let artifacts: Vec<InstanceArtifacts> =
            artifacts.into_iter().map(|a| a.expect("every instance finalizes once")).collect();
        let engine = FleetEngine { cfg: self.cfg.clone() };
        engine.assemble(
            self.scenarios,
            artifacts,
            shards,
            self.ingest_wall_s,
            self.epoch,
            &self.obs,
        )
    }

    fn reject(&self, reason: String) -> ControlResp {
        if O::ENABLED {
            self.obs.add(Counter::ConfigRejected, 1);
        }
        ControlResp::Reject { epoch: self.epoch, reason }
    }

    fn ack(&self) -> ControlResp {
        ControlResp::Ack { epoch: self.epoch, state: self.state }
    }

    /// Applies `delta` under `epoch` at the current watermark. Epochs are
    /// strictly monotone: stale or replayed pushes are rejected whole, so
    /// a push either moves the agent or leaves it untouched.
    fn config_push(&mut self, epoch: ConfigEpoch, delta: &FleetDelta) -> ControlResp {
        if self.state == DaemonState::Stopped {
            return self.reject(format!("config push in state {}", self.state));
        }
        if epoch <= self.epoch {
            return self.reject(format!("stale {epoch} (running {})", self.epoch));
        }
        if delta.shards == Some(0) || delta.regions == Some(0) {
            return self.reject("delta shards/regions must be >= 1".into());
        }
        let n0 = if O::ENABLED { self.obs.now_ns() } else { 0 };
        // Re-seat through the untrusted snapshot path first — the same
        // handoff a reshard performs — so the new config starts from
        // revalidated state and a corrupt pipeline surfaces here.
        if let Err(e) = self.reseat() {
            return self.reject(format!("snapshot handoff failed: {e}"));
        }
        delta.apply(&mut self.cfg);
        self.epoch = epoch;
        // Kernel, δ_s, and the cut path live inside each pipeline;
        // hot-swap them at the quiesce point (bit-identical — see the
        // module docs; a cut flip rebuilds the running moments from the
        // resident rings).
        for inst in &mut self.instances {
            inst.set_kernel(self.cfg.kernel);
            inst.set_delta_s(self.cfg.delta_s);
            inst.set_cut(self.cfg.pinsql.cut);
        }
        if O::ENABLED {
            self.obs.add(Counter::ConfigPushes, 1);
            self.obs.span(Stage::ConfigApply, n0, self.obs.now_ns());
        }
        self.ack()
    }

    fn drain(&mut self, to_second: i64) -> ControlResp {
        if !matches!(self.state, DaemonState::Running | DaemonState::Draining) {
            return self.reject(format!("drain in state {}", self.state));
        }
        if to_second < self.watermark {
            return self
                .reject(format!("drain boundary {to_second} behind watermark {}", self.watermark));
        }
        self.ingest_prefix(Some(to_second));
        self.state = DaemonState::Draining;
        self.ack()
    }

    /// Graceful restart at the current watermark: serialize every
    /// pipeline, drop the live state, revalidate the blobs as untrusted
    /// bytes, restore. A crash drill — the daemon suites run it inside an
    /// open anomaly and the case must close identically.
    fn restart(&mut self) -> ControlResp {
        if !matches!(self.state, DaemonState::Running | DaemonState::Draining) {
            return self.reject(format!("restart in state {}", self.state));
        }
        let n0 = if O::ENABLED { self.obs.now_ns() } else { 0 };
        self.state = DaemonState::Restarting;
        if let Err(e) = self.reseat() {
            // Revalidation refused our own snapshot: in-memory corruption.
            // The old pipelines are still intact; stay quiesced.
            self.state = DaemonState::Draining;
            return self.reject(format!("restart handoff failed: {e}"));
        }
        self.restarts += 1;
        self.state = DaemonState::Running;
        if O::ENABLED {
            self.obs.add(Counter::DaemonRestarts, 1);
            self.obs.span(Stage::DaemonRestart, n0, self.obs.now_ns());
        }
        self.ack()
    }

    fn stop(&mut self) -> ControlResp {
        if self.state == DaemonState::Stopped {
            return self.ack(); // idempotent
        }
        self.ingest_prefix(None);
        self.state = DaemonState::Stopped;
        self.ack()
    }

    /// Serialize → revalidate ([`InstanceSnapshot::from_bytes`], the
    /// untrusted path) → restore, for every instance. All-or-nothing: on
    /// any error the live pipelines are left untouched.
    fn reseat(&mut self) -> Result<(), WireError> {
        let mut rebuilt = Vec::with_capacity(self.instances.len());
        for (i, inst) in self.instances.iter().enumerate() {
            let blob = inst.snapshot().into_bytes();
            let snap = InstanceSnapshot::from_bytes(blob)?;
            rebuilt.push(OnlineInstance::restore_with_observer(
                &self.scenarios[i],
                &snap,
                self.obs.fork(&format!("inst{i}")),
            )?);
        }
        self.instances = rebuilt;
        Ok(())
    }

    /// Folds each stream's prefix strictly before `boundary_s` (`None`
    /// drains everything) across `shards` scoped workers, exactly like
    /// one [`FleetEngine`] phase but over the *live* pipelines.
    fn ingest_prefix(&mut self, boundary_s: Option<i64>) {
        let n = self.instances.len();
        let shards = self.cfg.shards.clamp(1, n);
        let assignment = contiguous_assignment(n, shards);
        let round = self.rounds;
        let mut prefixes: Vec<Vec<TelemetryEvent>> = Vec::with_capacity(n);
        for stream in &mut self.streams {
            prefixes.push(split_prefix(stream, boundary_s));
        }
        let mut groups: Vec<Vec<(usize, OnlineInstance<'a, O>, Vec<TelemetryEvent>)>> =
            (0..shards).map(|_| Vec::new()).collect();
        for ((i, inst), events) in self.instances.drain(..).enumerate().zip(prefixes) {
            groups[assignment[i]].push((i, inst, events));
        }

        let obs = &self.obs;
        type ShardOut<'a, O> = (f64, Vec<(usize, OnlineInstance<'a, O>)>);
        let results: Vec<ShardOut<'a, O>> = std::thread::scope(|scope| {
            let handles: Vec<_> = groups
                .into_iter()
                .enumerate()
                .filter(|(_, g)| !g.is_empty())
                .map(|(s, group)| {
                    let lane = obs.fork(&format!("r{round}shard{s}"));
                    scope.spawn(move || {
                        let mut ids = Vec::with_capacity(group.len());
                        let mut insts = Vec::with_capacity(group.len());
                        let mut streams = Vec::with_capacity(group.len());
                        for (i, inst, events) in group {
                            ids.push(i);
                            insts.push(inst);
                            streams.push(events);
                        }
                        let merge_n0 = if O::ENABLED { lane.now_ns() } else { 0 };
                        let t0 = Instant::now();
                        merge_streams(&mut insts, streams);
                        let merge_s = t0.elapsed().as_secs_f64();
                        if O::ENABLED {
                            lane.span(Stage::IngestMerge, merge_n0, lane.now_ns());
                        }
                        (merge_s, ids.into_iter().zip(insts).collect())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("daemon shard panicked")).collect()
        });

        let mut slots: Vec<Option<OnlineInstance<'a, O>>> = (0..n).map(|_| None).collect();
        let mut wall = 0.0f64;
        for (merge_s, outs) in results {
            wall = wall.max(merge_s);
            for (i, inst) in outs {
                slots[i] = Some(inst);
            }
        }
        self.instances =
            slots.into_iter().map(|s| s.expect("every instance returns from its shard")).collect();
        self.ingest_wall_s += wall;
        self.rounds += 1;
        self.watermark = boundary_s.unwrap_or(i64::MAX).max(self.watermark);
    }
}

/// A typed failure at the server control plane.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlError {
    /// A frame failed to decode.
    Wire(WireError),
    /// The agent refused the message.
    Rejected {
        /// The epoch the agent still runs.
        epoch: ConfigEpoch,
        reason: String,
    },
    /// The agent answered with a response the message cannot produce.
    Protocol(&'static str),
}

impl std::fmt::Display for ControlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControlError::Wire(e) => write!(f, "control wire: {e}"),
            ControlError::Rejected { epoch, reason } => {
                write!(f, "rejected (agent at {epoch}): {reason}")
            }
            ControlError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for ControlError {}

impl From<WireError> for ControlError {
    fn from(e: WireError) -> Self {
        ControlError::Wire(e)
    }
}

/// The control plane: owns an agent and steers it **only** through
/// encoded `PCTL` frames — encode, hand to the agent, decode the reply —
/// so every server call exercises the exact bytes a remote deployment
/// would. Tracks the epoch sequence; each push mints the next one.
#[derive(Debug)]
pub struct FleetServer<'a, O: Observer = NoopObserver> {
    agent: FleetDaemon<'a, O>,
    epoch: ConfigEpoch,
}

impl<'a> FleetServer<'a> {
    /// Boots an agent under `cfg` and attaches the control plane.
    pub fn start(cfg: FleetConfig, scenarios: &'a [Scenario]) -> Self {
        Self::with_agent(FleetDaemon::spawn(cfg, scenarios))
    }
}

impl<'a, O: Observer> FleetServer<'a, O> {
    /// Attaches the control plane to an existing agent.
    pub fn with_agent(agent: FleetDaemon<'a, O>) -> Self {
        let epoch = agent.epoch();
        Self { agent, epoch }
    }

    /// The steered agent (read-only; all mutation rides the wire).
    pub fn agent(&self) -> &FleetDaemon<'a, O> {
        &self.agent
    }

    /// Data-plane passthrough: see [`FleetDaemon::advance_to`].
    pub fn advance_to(&mut self, boundary_s: i64) {
        self.agent.advance_to(boundary_s);
    }

    /// Pushes `delta` under the next epoch; returns the epoch the fleet
    /// now runs.
    pub fn push_config(&mut self, delta: FleetDelta) -> Result<ConfigEpoch, ControlError> {
        let epoch = self.epoch.next();
        match self.roundtrip(&ControlMsg::ConfigPush { epoch, delta })? {
            ControlResp::Ack { epoch, .. } => {
                self.epoch = epoch;
                Ok(epoch)
            }
            ControlResp::Reject { epoch, reason } => {
                Err(ControlError::Rejected { epoch, reason })
            }
            ControlResp::Rollup { .. } => Err(ControlError::Protocol("rollup for config push")),
        }
    }

    /// Quiesces the agent at `to_second` (event time).
    pub fn drain(&mut self, to_second: i64) -> Result<DaemonState, ControlError> {
        self.expect_ack(&ControlMsg::Drain { to_second })
    }

    /// Bounces the agent through a serialize/revalidate/restore cycle.
    pub fn restart(&mut self) -> Result<DaemonState, ControlError> {
        self.expect_ack(&ControlMsg::Restart)
    }

    /// Queries the shard → region → fleet health rollup tree.
    pub fn rollup(&mut self) -> Result<FleetRollup, ControlError> {
        match self.roundtrip(&ControlMsg::HealthQuery)? {
            ControlResp::Rollup { rollup, .. } => Ok(rollup),
            ControlResp::Reject { epoch, reason } => {
                Err(ControlError::Rejected { epoch, reason })
            }
            ControlResp::Ack { .. } => Err(ControlError::Protocol("ack for health query")),
        }
    }

    /// Stops the agent (drains everything remaining) and collects the
    /// final [`FleetRun`] — byte-identical to a cold
    /// [`FleetEngine::run_full`] under the final config.
    pub fn stop(mut self) -> Result<FleetRun, ControlError> {
        self.expect_ack(&ControlMsg::Stop)?;
        Ok(self.agent.finish())
    }

    fn expect_ack(&mut self, msg: &ControlMsg) -> Result<DaemonState, ControlError> {
        match self.roundtrip(msg)? {
            ControlResp::Ack { state, .. } => Ok(state),
            ControlResp::Reject { epoch, reason } => {
                Err(ControlError::Rejected { epoch, reason })
            }
            ControlResp::Rollup { .. } => Err(ControlError::Protocol("rollup for ack message")),
        }
    }

    fn roundtrip(&mut self, msg: &ControlMsg) -> Result<ControlResp, ControlError> {
        let frame = msg.to_bytes();
        let reply = self.agent.handle_frame(&frame);
        Ok(ControlResp::from_bytes(&reply)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinsql::PinSqlConfig;
    use pinsql_detect::KernelKind;
    use pinsql_scenario::{generate_base, inject, inject_none, AnomalyKind, ScenarioConfig};

    fn small_fleet(n: usize) -> Vec<Scenario> {
        let kinds = [Some(AnomalyKind::BusinessSpike), Some(AnomalyKind::PoorSql), None];
        (0..n)
            .map(|i| {
                let cfg = ScenarioConfig::default()
                    .with_seed(140 + i as u64)
                    .with_businesses(6)
                    .with_window(420, 240, 330);
                let base = generate_base(&cfg);
                match kinds[i % kinds.len()] {
                    Some(kind) => inject(&base, &cfg, kind),
                    None => inject_none(&base, &cfg),
                }
            })
            .collect()
    }

    fn cfg(shards: usize) -> FleetConfig {
        FleetConfig {
            delta_s: 180,
            pinsql: PinSqlConfig::default(),
            fanout: 1,
            shards,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn daemon_smoke_matches_batch_run() {
        let scenarios = small_fleet(3);
        let batch = FleetEngine::new(cfg(1)).run_full(&scenarios);

        let mut server = FleetServer::start(cfg(2), &scenarios);
        assert_eq!(server.agent().state(), DaemonState::Running);
        server.advance_to(120);
        server.advance_to(300);
        assert_eq!(server.agent().watermark(), 300);
        let run = server.stop().unwrap();

        assert_eq!(run.report.config_epoch, 0);
        assert_eq!(run.cases.len(), batch.cases.len());
        for (a, b) in run.cases.iter().zip(&batch.cases) {
            assert_eq!(a.window, b.window);
            assert_eq!(a.case.records, b.case.records);
        }
        for (a, b) in run.diagnoses.iter().zip(&batch.diagnoses) {
            assert_eq!(a.rsqls, b.rsqls);
        }
        assert_eq!(run.health, batch.health);
    }

    #[test]
    fn stale_and_replayed_epochs_are_rejected_whole() {
        let scenarios = small_fleet(2);
        let mut agent = FleetDaemon::spawn(cfg(1), &scenarios);
        agent.advance_to(60);

        let delta = FleetDelta { delta_s: Some(240), ..FleetDelta::default() };
        let push = ControlMsg::ConfigPush { epoch: ConfigEpoch(1), delta: delta.clone() };
        assert!(matches!(agent.handle(push.clone()), ControlResp::Ack { .. }));
        assert_eq!(agent.epoch(), ConfigEpoch(1));
        assert_eq!(agent.config().delta_s, 240);

        // Replay of the same epoch, and an older one: both refused, config
        // untouched.
        assert!(matches!(agent.handle(push), ControlResp::Reject { .. }));
        let stale = ControlMsg::ConfigPush {
            epoch: ConfigEpoch(0),
            delta: FleetDelta { delta_s: Some(9), ..FleetDelta::default() },
        };
        assert!(matches!(agent.handle(stale), ControlResp::Reject { .. }));
        assert_eq!(agent.config().delta_s, 240);
        assert_eq!(agent.epoch(), ConfigEpoch(1));
    }

    #[test]
    fn lifecycle_states_gate_messages() {
        let scenarios = small_fleet(2);
        let mut server = FleetServer::start(cfg(1), &scenarios);
        server.advance_to(100);

        assert_eq!(server.drain(200).unwrap(), DaemonState::Draining);
        assert_eq!(server.agent().watermark(), 200);
        // Draining pauses the data plane; a restart resumes it.
        assert_eq!(server.restart().unwrap(), DaemonState::Running);
        assert_eq!(server.agent().restarts(), 1);
        server.advance_to(250);

        // A malformed frame never kills the agent.
        let reply = {
            let agent_reply = {
                let a = &mut server.agent;
                a.handle_frame(b"PCTLgarbage")
            };
            ControlResp::from_bytes(&agent_reply).unwrap()
        };
        assert!(matches!(reply, ControlResp::Reject { .. }));
        assert_eq!(server.agent().state(), DaemonState::Running);

        let run = server.stop().unwrap();
        assert_eq!(run.report.n_instances, 2);
    }

    #[test]
    fn rollup_tree_tracks_live_state() {
        let scenarios = small_fleet(3);
        let mut server =
            FleetServer::start(FleetConfig { regions: 2, ..cfg(2) }, &scenarios);
        server.advance_to(200);
        let tree = server.rollup().unwrap();
        assert_eq!(tree.instances(), 3);
        assert!(tree.is_consistent());
        assert_eq!(tree.regions.len(), 2);
        assert!(tree.total.events_total > 0);
    }
}
