//! The online fleet engine (the production deployment shape of §VII).
//!
//! Production PinSQL is not a batch job: collectors on every RDS instance
//! publish query logs and metrics continuously, a streaming layer folds
//! them into per-template aggregates, detectors watch the metric streams,
//! and diagnosis fires when an anomaly case closes. This crate assembles
//! the online counterparts grown in the lower layers into that loop:
//!
//! * [`instance`] — [`OnlineInstance`]: one database instance's online
//!   pipeline. A [`TelemetryEvent`](pinsql_dbsim::TelemetryEvent) stream
//!   drives the incremental collector (ring-buffered cells, in-line
//!   history) and the online detector bank; when the case closes, the
//!   window is selected, a batch-bit-identical `CaseData` snapshot is cut,
//!   and the case is labelled.
//! * [`fleet`] — [`FleetEngine`]: shards N instances' event streams across
//!   scoped ingestion workers (each a private time-ordered k-way merge over
//!   a disjoint set of instances) and fans diagnosis out across instances
//!   with the deterministic `par_map` primitive, reporting sustained
//!   ingest throughput and per-case diagnosis latency. Outcomes are
//!   bit-identical at every shard/fan-out count, under any [`ReshardPlan`]
//!   mid-run, and across a checkpoint/resume cycle.
//! * [`snapshot`] — [`InstanceSnapshot`]: the versioned binary checkpoint
//!   of one instance's entire online state (aggregator rings, history,
//!   detector segments), the primitive behind live resharding and crash
//!   recovery. Malformed blobs fail with typed errors, never panics.
//! * [`daemon`] — [`FleetDaemon`] / [`FleetServer`]: the resident form of
//!   the engine. The agent keeps the pipelines live between event-time
//!   watermarks; the server control plane steers it exclusively through
//!   the typed `PCTL` wire ([`control`]) — versioned config pushes
//!   ([`FleetDelta`] under a [`pinsql::ConfigEpoch`]), drains, graceful
//!   restarts, and O(regions) health rollups. A daemon that finishes at
//!   config `F` is byte-identical to [`FleetEngine::run_full`] under `F`.
//!
//! ## Replay equivalence (the non-negotiable invariant)
//!
//! For any scenario, feeding its materialized event stream through the
//! online path yields a `Diagnosis` **bit-identical** to the batch path —
//! same golden corpus, any parallelism. See `replay_diagnose` and the
//! `online_equivalence` suite at the workspace root.

pub mod control;
pub mod daemon;
pub mod fleet;
pub mod instance;
pub mod snapshot;
pub mod transport;
pub mod wire;

pub use control::{
    ControlMsg, ControlResp, DaemonState, FleetDelta, CONTROL_HEADER_LEN, CONTROL_MAGIC,
    CONTROL_VERSION,
};
pub use daemon::{ControlError, FleetDaemon, FleetServer};
pub use fleet::{
    FleetCheckpoint, FleetConfig, FleetEngine, FleetReport, FleetRun, InstanceOutcome,
    ReshardPlan, ReshardStep,
};
pub use instance::{
    replay_diagnose, replay_diagnose_observed, replay_diagnose_with_kernel, OnlineInstance,
};
pub use snapshot::{InstanceSnapshot, MIN_SNAPSHOT_VERSION, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use transport::{
    pipe_pair, plan_frames, recv_hello, run_source, serve_agent, ByteConn, IngestSink, PipeConn,
    RegionServer, SourcePlan, SourceStats, TcpConn, TransportError,
};
pub use wire::{EventFrame, EVENT_HEADER_LEN, EVENT_MAGIC, EVENT_VERSION};
