//! One database instance's online diagnosis pipeline.
//!
//! An [`OnlineInstance`] is the event-driven counterpart of the batch
//! `materialize` path: the same telemetry, delivered one
//! [`TelemetryEvent`] at a time, flows through the incremental collector
//! (ring-buffered per-second cells, bounded retention, in-line history
//! feed) and the online detector bank (bounded rolling state per metric).
//! Closing the case runs the identical window-selection and labelling code
//! the batch path uses, over a `CaseData` snapshot that is bit-identical
//! to batch aggregation — which is what makes [`replay_diagnose`]
//! reproduce batch diagnoses exactly.
//!
//! The pipeline borrows its [`Scenario`] (instances are cheap views over
//! fleet-owned scenarios; nothing is cloned per instance) and consumes
//! events by value — a record travels from the stream into the collector's
//! ring without a single intermediate clone. Time-ordered streams should
//! arrive through [`OnlineInstance::ingest_stream`], which chunks
//! same-second query runs through the collector's amortized hot path.

use crate::snapshot::{self, InstanceMeta, InstanceSnapshot};
use pinsql::{Diagnosis, PinSql, PinSqlConfig};
use pinsql_collector::{
    CellStoreKind, HistoryStore, IncrementalAggregator, IncrementalConfig, IngestStats,
};
use pinsql_dbsim::telemetry::query_run;
use pinsql_dbsim::TelemetryEvent;
use pinsql_detect::{classify, CutKind, KernelKind, OnlineDetectorBank, PhenomenonConfig};
use pinsql_obs::{Counter, Gauge, HealthSnapshot, NoopObserver, Observer, Stage};
use pinsql_scenario::materialize::MINUTES_ORIGIN;
use pinsql_scenario::{
    case_history, label_truth, materialize_events, select_case_window, LabeledCase, Scenario,
};
use pinsql_timeseries::{WireError, WireReader, WireWriter};

/// One instance's online pipeline: incremental aggregation + streaming
/// detection, closed into a labelled case on demand.
///
/// The pipeline is generic over an [`Observer`]; the default
/// [`NoopObserver`] compiles every instrumentation site to nothing, so
/// existing call sites pay no cost (the `obs_smoke` overhead guard and
/// `obs_equivalence` byte-identity suite pin this).
#[derive(Debug, Clone)]
pub struct OnlineInstance<'a, O: Observer = NoopObserver> {
    scenario: &'a Scenario,
    delta_s: i64,
    aggregator: IncrementalAggregator,
    bank: OnlineDetectorBank,
    events: u64,
    obs: O,
    /// Whether the detector bank was inside an open segment at the last
    /// metric sample — edges of this flag count case opens/closes.
    seg_open: bool,
    cases_opened: u64,
    cases_closed: u64,
}

impl<'a> OnlineInstance<'a> {
    /// Creates the pipeline for one simulated instance.
    ///
    /// `delta_s` is the collection look-back diagnosis will use. The
    /// aggregator's retention is sized to the scenario's whole simulated
    /// window so any case window the detectors select is still resident —
    /// a real deployment would size it to `δ_s` plus the maximum anomaly
    /// duration instead.
    pub fn new(scenario: &'a Scenario, delta_s: i64) -> Self {
        Self::with_observer(scenario, delta_s, NoopObserver)
    }

    /// [`restore_with_observer`](Self::restore_with_observer) under the
    /// default no-op observer.
    pub fn restore(scenario: &'a Scenario, snap: &InstanceSnapshot) -> Result<Self, WireError> {
        Self::restore_with_observer(scenario, snap, NoopObserver)
    }
}

impl<'a, O: Observer> OnlineInstance<'a, O> {
    /// [`new`](OnlineInstance::new) with an explicit observer handle
    /// (usually a forked lane of a `RecordingObserver`).
    pub fn with_observer(scenario: &'a Scenario, delta_s: i64, obs: O) -> Self {
        let retention = scenario.cfg.window_s + 120;
        let aggregator = IncrementalAggregator::new(
            &scenario.workload.specs,
            IncrementalConfig::default().with_retention(retention),
        );
        Self {
            scenario,
            delta_s,
            aggregator,
            bank: OnlineDetectorBank::new(),
            events: 0,
            obs,
            seg_open: false,
            cases_opened: 0,
            cases_closed: 0,
        }
    }

    /// Replaces the detector bank's statistics kernel (bit-identical
    /// either way; the knob feeds the equivalence suites). Call before the
    /// first event — the bank is rebuilt empty.
    pub fn with_kernel(mut self, kernel: KernelKind) -> Self {
        debug_assert_eq!(self.events, 0, "kernel must be chosen before ingestion");
        self.bank = OnlineDetectorBank::with_kernel(kernel);
        self
    }

    /// Hot-swaps the detector statistics kernel on a **live** pipeline —
    /// the daemon's config-push path. Unlike [`with_kernel`]
    /// (Self::with_kernel) this keeps all streaming state: detector
    /// baselines store raw samples (median/MAD are recomputed per push)
    /// and the two kernels are bit-identical, so the remainder of the
    /// stream folds exactly as it would under a cold start with `kernel`
    /// (pinned by the `daemon_equivalence` matrix).
    pub fn set_kernel(&mut self, kernel: KernelKind) {
        self.bank.set_kernel(kernel);
    }

    /// Retunes the collection look-back `δ_s` on a live pipeline. The
    /// knob is only read when the case closes ([`close_case`]
    /// (Self::close_case) passes it to window selection), so a live
    /// change is exactly a cold start under the new value.
    pub fn set_delta_s(&mut self, delta_s: i64) {
        self.delta_s = delta_s;
    }

    /// Replaces the aggregator's cell-store representation (bit-identical
    /// either way; snapshots record the kind and restore rebuilds it).
    /// Call before the first event — the aggregator is rebuilt empty
    /// (preserving the cut-path choice).
    pub fn with_cell_store(mut self, kind: CellStoreKind) -> Self {
        debug_assert_eq!(self.events, 0, "cell store must be chosen before ingestion");
        let retention = self.scenario.cfg.window_s + 120;
        let cut = self.aggregator.cut();
        self.aggregator = IncrementalAggregator::new(
            &self.scenario.workload.specs,
            IncrementalConfig::default()
                .with_retention(retention)
                .with_cell_store(kind)
                .with_cut(cut),
        );
        self
    }

    /// Selects the window-cut path (bit-identical either way; the knob
    /// feeds the equivalence suites). Safe at any point — flipping on a
    /// live pipeline rebuilds the running moments from resident state.
    pub fn with_cut(mut self, cut: CutKind) -> Self {
        self.aggregator.set_cut(cut);
        self
    }

    /// Hot-swaps the window-cut path on a **live** pipeline — the daemon's
    /// config-push path. Switching to [`CutKind::Incremental`] rebuilds
    /// the running moments from the resident rings, so the next case cut
    /// is exactly what a cold start under `cut` would have produced
    /// (pinned by the `daemon_equivalence` matrix).
    pub fn set_cut(&mut self, cut: CutKind) {
        self.aggregator.set_cut(cut);
    }

    /// The active window-cut path.
    pub fn cut(&self) -> CutKind {
        self.aggregator.cut()
    }

    /// Folds one telemetry event into the pipeline: every event reaches
    /// the aggregator; metric samples additionally drive the detectors.
    ///
    /// The event is matched exactly once — each variant drops straight
    /// into the aggregator's per-variant entry point, so the dominant
    /// query case never touches the cold metrics/tick arms again
    /// downstream.
    pub fn ingest(&mut self, ev: TelemetryEvent) {
        self.events += 1;
        match ev {
            TelemetryEvent::Query(rec) => {
                let n0 = if O::ENABLED { self.obs.now_ns() } else { 0 };
                self.aggregator.ingest_query_event(rec);
                if O::ENABLED {
                    self.obs.span(Stage::CellFold, n0, self.obs.now_ns());
                }
            }
            TelemetryEvent::Metrics(sample) => {
                let n0 = if O::ENABLED { self.obs.now_ns() } else { 0 };
                self.bank.observe(&sample);
                if O::ENABLED {
                    self.obs.span(Stage::DetectorStep, n0, self.obs.now_ns());
                }
                // Segment edges arrive at metric cadence (~1/s), so this
                // check is off the per-query hot path.
                let open = self.bank.any_open();
                if open != self.seg_open {
                    if open {
                        self.cases_opened += 1;
                    } else {
                        self.cases_closed += 1;
                    }
                    self.seg_open = open;
                }
                let n0 = if O::ENABLED { self.obs.now_ns() } else { 0 };
                self.aggregator.ingest_metrics_event(*sample);
                if O::ENABLED {
                    self.obs.span(Stage::CellFold, n0, self.obs.now_ns());
                }
            }
            TelemetryEvent::Tick { second } => {
                let n0 = if O::ENABLED { self.obs.now_ns() } else { 0 };
                self.aggregator.ingest_tick(second);
                if O::ENABLED {
                    self.obs.span(Stage::CellFold, n0, self.obs.now_ns());
                }
            }
        }
    }

    /// Folds a run of query events sharing one attribution second through
    /// the collector's chunked hot path (see
    /// [`IncrementalAggregator::ingest_query_run`]).
    pub fn ingest_queries(&mut self, second: i64, events: &[TelemetryEvent]) {
        self.events += events.len() as u64;
        let n0 = if O::ENABLED { self.obs.now_ns() } else { 0 };
        self.aggregator.ingest_query_run(second, events);
        if O::ENABLED {
            self.obs.span(Stage::CellFold, n0, self.obs.now_ns());
        }
    }

    /// Consumes a stretch of a time-ordered stream, chunking same-second
    /// query runs and moving every event in by value. Equivalent to
    /// calling [`ingest`](Self::ingest) per event, bit for bit.
    pub fn ingest_stream(&mut self, mut events: Vec<TelemetryEvent>) {
        let mut i = 0;
        while i < events.len() {
            if let Some((second, len)) = query_run(&events, i) {
                self.ingest_queries(second, &events[i..i + len]);
                i += len;
            } else {
                let ev =
                    std::mem::replace(&mut events[i], TelemetryEvent::Tick { second: i64::MIN });
                self.ingest(ev);
                i += 1;
            }
        }
    }

    /// Events ingested so far.
    pub fn events_ingested(&self) -> u64 {
        self.events
    }

    /// The aggregator's ingestion counters.
    pub fn ingest_stats(&self) -> IngestStats {
        self.aggregator.stats()
    }

    /// The collector watermark (`i64::MIN` before any event).
    pub fn watermark(&self) -> i64 {
        self.aggregator.watermark()
    }

    /// True while any metric detector has an open anomalous segment.
    pub fn anomaly_open(&self) -> bool {
        self.bank.any_open()
    }

    /// The per-template 1-minute history the collector accumulated in-line
    /// from this stream (what a long-running deployment would verify
    /// against; [`close_case`](Self::close_case) uses the scenario's
    /// synthesized look-back instead, since a single window is far shorter
    /// than 1/3/7 days).
    pub fn online_history(&self) -> &HistoryStore {
        self.aggregator.history()
    }

    /// The scenario this instance replays.
    pub fn scenario(&self) -> &Scenario {
        self.scenario
    }

    /// A point-in-time read of the pipeline's counters and queue depths.
    /// Cheap (no scans over retained data, no detector flush) and safe to
    /// take mid-ingest — the `obs_health` suite pins its invariants under
    /// chaos-perturbed telemetry.
    pub fn health_snapshot(&self) -> HealthSnapshot {
        let stats = self.aggregator.stats();
        HealthSnapshot {
            events_ingested: self.events,
            queries_ingested: stats.queries,
            malformed_dropped: stats.malformed,
            late_dropped: stats.late,
            cells_folded: stats.cells,
            retention_evictions: stats.evictions,
            history_minutes: stats.history_minutes,
            cell_seconds: self.aggregator.cell_seconds(),
            records_resident: self.aggregator.record_count(),
            metric_seconds: self.aggregator.metric_seconds(),
            templates_tracked: self.aggregator.catalog().len(),
            watermark: self.aggregator.watermark(),
            detector_samples: self.bank.samples_seen(),
            open_segments: self.bank.open_segments(),
            features_closed: self.bank.feature_count(),
            cases_opened: self.cases_opened,
            anomaly_open: self.bank.any_open(),
        }
    }

    /// Serializes the instance's entire online state into a versioned
    /// checkpoint blob (see [`crate::snapshot`] for the wire format).
    ///
    /// The snapshot captures everything mutable — aggregator rings,
    /// in-line history, ingest counters, detector baselines, open
    /// segments, closed features, and the case open/close edge state — so
    /// [`restore`](Self::restore) continues **bit-identical** to an
    /// instance that never stopped. Cheap relative to ingest (one linear
    /// walk over resident state, no float re-derivation); safe to take at
    /// any event boundary, including mid-anomaly.
    pub fn snapshot(&self) -> InstanceSnapshot {
        let n0 = if O::ENABLED { self.obs.now_ns() } else { 0 };
        let mut w = WireWriter::with_capacity(4096);
        snapshot::write_header(
            &mut w,
            self.bank.kernel(),
            self.aggregator.config().cell_store,
            InstanceMeta {
                delta_s: self.delta_s,
                events: self.events,
                seg_open: self.seg_open,
                cases_opened: self.cases_opened,
                cases_closed: self.cases_closed,
            },
        );
        w.put_section(|w| self.aggregator.write_snapshot(w));
        w.put_section(|w| self.bank.write_snapshot(w));
        w.put_section(|w| self.aggregator.write_cut_state(w));
        let snap = InstanceSnapshot::from_trusted(w.into_bytes());
        if O::ENABLED {
            self.obs.span(Stage::SnapshotWrite, n0, self.obs.now_ns());
            self.obs.add(Counter::SnapshotsWritten, 1);
            self.obs.add(Counter::SnapshotBytes, snap.len() as u64);
        }
        snap
    }

    /// Rebuilds an instance from a [`snapshot`](Self::snapshot) under an
    /// explicit observer, resuming exactly where the checkpointed instance
    /// stopped. `scenario` must be the same scenario the snapshot was
    /// taken from — the restored catalog is cross-checked against the
    /// serialized slot assignment, so a wrong scenario is a typed
    /// [`WireError::Mismatch`], never silent misattribution. Malformed
    /// bytes of any shape error; restore never panics.
    pub fn restore_with_observer(
        scenario: &'a Scenario,
        snap: &InstanceSnapshot,
        obs: O,
    ) -> Result<Self, WireError> {
        let n0 = if O::ENABLED { obs.now_ns() } else { 0 };
        let mut r = WireReader::new(snap.as_bytes());
        let (version, kernel, cells, meta) = snapshot::read_header(&mut r)?;
        let mut agg_r = r.get_section()?;
        let mut aggregator =
            IncrementalAggregator::read_snapshot(&scenario.workload.specs, &mut agg_r)?;
        agg_r.finish("aggregator section")?;
        let mut bank_r = r.get_section()?;
        let bank = OnlineDetectorBank::read_snapshot(&mut bank_r)?;
        bank_r.finish("detector bank section")?;
        if version >= 2 {
            // v2+: the running cut moments travel in their own section;
            // v1 blobs fall back to the rebuild `read_snapshot` already
            // performed from the resident rings.
            let mut cut_r = r.get_section()?;
            aggregator.read_cut_state(&mut cut_r)?;
            cut_r.finish("cut state section")?;
        }
        r.finish("instance snapshot")?;
        // Header tags let readers route a blob without a body decode;
        // cross-checking them here means a spliced blob cannot restore.
        if bank.kernel() != kernel {
            return Err(WireError::Mismatch {
                what: "kernel tag",
                detail: format!("header declares {kernel:?}, bank section holds {:?}", bank.kernel()),
            });
        }
        if aggregator.config().cell_store != cells {
            return Err(WireError::Mismatch {
                what: "cellstore tag",
                detail: format!(
                    "header declares {cells:?}, aggregator section holds {:?}",
                    aggregator.config().cell_store
                ),
            });
        }
        if O::ENABLED {
            obs.span(Stage::SnapshotRestore, n0, obs.now_ns());
            obs.add(Counter::SnapshotsRestored, 1);
        }
        Ok(Self {
            scenario,
            delta_s: meta.delta_s,
            aggregator,
            bank,
            events: meta.events,
            obs,
            seg_open: meta.seg_open,
            cases_opened: meta.cases_opened,
            cases_closed: meta.cases_closed,
        })
    }

    /// Closes the anomaly case: flushes the detectors, classifies
    /// phenomena, selects the case window, cuts the batch-bit-identical
    /// snapshot, and labels ground truth — the exact sequence (and code)
    /// of the batch labelling path.
    pub fn close_case(mut self) -> LabeledCase {
        if O::ENABLED {
            // Lifetime counters roll up once, at close; the live state is
            // always readable through `health_snapshot` instead.
            let stats = self.aggregator.stats();
            self.obs.add(Counter::EventsIngested, self.events);
            self.obs.add(Counter::QueriesIngested, stats.queries);
            self.obs.add(Counter::MalformedDropped, stats.malformed);
            self.obs.add(Counter::LateDropped, stats.late);
            self.obs.add(Counter::CellsFolded, stats.cells);
            self.obs.add(Counter::RetentionEvictions, stats.evictions);
            self.obs.add(Counter::HistoryMinutes, stats.history_minutes);
            self.obs.add(Counter::CasesOpened, self.cases_opened);
            self.obs.add(Counter::CasesClosed, self.cases_closed);
            self.obs.gauge(Gauge::CellSeconds, self.aggregator.cell_seconds() as u64);
            self.obs.gauge(Gauge::RecordsResident, self.aggregator.record_count() as u64);
            self.obs.gauge(Gauge::MetricSeconds, self.aggregator.metric_seconds() as u64);
            self.obs.gauge(Gauge::TemplatesTracked, self.aggregator.catalog().len() as u64);
        }
        let n0 = if O::ENABLED { self.obs.now_ns() } else { 0 };
        self.bank.finish();
        let features = self.bank.features();
        if O::ENABLED {
            self.obs.add(Counter::FeaturesClosed, features.len() as u64);
        }
        let phenomena = classify(&features, &PhenomenonConfig::default());
        let (window, detected, anomaly_type) =
            select_case_window(&phenomena, self.scenario, self.delta_s);
        let c0 = if O::ENABLED { self.obs.now_ns() } else { 0 };
        let case = self.aggregator.snapshot(window.ts(), window.te());
        if O::ENABLED {
            let n1 = self.obs.now_ns();
            self.obs.span(Stage::CaseCut, c0, n1);
            self.obs.span(Stage::WindowCut, n0, n1);
            let (pushed, evicted) = self.aggregator.cut_moments();
            self.obs.add(Counter::CutMomentsPushed, pushed);
            self.obs.add(Counter::CutMomentsEvicted, evicted);
        }
        let truth = label_truth(self.scenario, &case, &window);
        let history = case_history(self.scenario, &window);
        LabeledCase {
            case,
            window,
            truth,
            history,
            minutes_origin: MINUTES_ORIGIN,
            kind: self.scenario.kind,
            injected: self.scenario.injected.clone(),
            detected,
            anomaly_type,
        }
    }
}

/// Replays a scenario's telemetry through the full online path and
/// diagnoses the closed case.
///
/// The returned `(LabeledCase, Diagnosis)` is bit-identical to what the
/// batch path (`materialize` + `PinSql::diagnose`) produces for the same
/// scenario and configuration — the engine's replay-equivalence contract,
/// pinned against the golden corpus in `tests/online_equivalence.rs`.
pub fn replay_diagnose(
    scenario: &Scenario,
    delta_s: i64,
    cfg: &PinSqlConfig,
) -> (LabeledCase, Diagnosis) {
    replay_diagnose_observed(scenario, delta_s, cfg, &NoopObserver)
}

/// [`replay_diagnose`] with an explicit detector-kernel choice. Both kinds
/// are bit-identical (the golden equivalence suites run the full matrix);
/// the parameter exists so those suites — and any deployment wanting the
/// scalar reference formulation — can pick.
pub fn replay_diagnose_with_kernel(
    scenario: &Scenario,
    delta_s: i64,
    cfg: &PinSqlConfig,
    kernel: KernelKind,
) -> (LabeledCase, Diagnosis) {
    let events = materialize_events(scenario, None);
    let mut inst = OnlineInstance::new(scenario, delta_s).with_kernel(kernel).with_cut(cfg.cut);
    inst.ingest_stream(events);
    let lc = inst.close_case();
    let d = PinSql::new(cfg.clone()).diagnose(&lc.case, &lc.window, &lc.history, lc.minutes_origin);
    (lc, d)
}

/// [`replay_diagnose`] under an explicit observer: the whole replay —
/// ingest folds, detector steps, window cut, and the three diagnosis
/// stages — lands in the observer's registry. The case and diagnosis are
/// byte-identical whatever `O` is.
pub fn replay_diagnose_observed<O: Observer>(
    scenario: &Scenario,
    delta_s: i64,
    cfg: &PinSqlConfig,
    obs: &O,
) -> (LabeledCase, Diagnosis) {
    let events = materialize_events(scenario, None);
    let mut inst = OnlineInstance::with_observer(scenario, delta_s, obs.clone()).with_cut(cfg.cut);
    inst.ingest_stream(events);
    let lc = inst.close_case();
    let d = PinSql::new(cfg.clone()).diagnose_observed(
        &lc.case,
        &lc.window,
        &lc.history,
        lc.minutes_origin,
        obs,
    );
    (lc, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinsql_scenario::{generate_base, inject, materialize, AnomalyKind, ScenarioConfig};

    fn assert_case_eq(a: &LabeledCase, b: &LabeledCase) {
        assert_eq!(a.window, b.window);
        assert_eq!(a.detected, b.detected);
        assert_eq!(a.anomaly_type, b.anomaly_type);
        assert_eq!(a.truth.rsqls, b.truth.rsqls);
        assert_eq!(a.truth.hsqls, b.truth.hsqls);
        assert_eq!(a.minutes_origin, b.minutes_origin);
        assert_eq!(a.case.ts, b.case.ts);
        assert_eq!(a.case.te, b.case.te);
        assert_eq!(a.case.records, b.case.records);
        assert_eq!(a.case.metrics.active_session, b.case.metrics.active_session);
        assert_eq!(a.case.metrics.qps, b.case.metrics.qps);
        assert_eq!(a.case.metrics.probes.samples, b.case.metrics.probes.samples);
        assert_eq!(a.case.templates.len(), b.case.templates.len());
        for (x, y) in a.case.templates.iter().zip(&b.case.templates) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.record_idx, y.record_idx);
            assert_eq!(x.series.execution_count, y.series.execution_count);
            assert_eq!(x.series.total_rt_ms, y.series.total_rt_ms);
            assert_eq!(x.series.examined_rows, y.series.examined_rows);
        }
    }

    fn assert_diagnosis_eq(a: &Diagnosis, b: &Diagnosis) {
        assert_eq!(a.hsqls, b.hsqls);
        assert_eq!(a.rsqls, b.rsqls);
        assert_eq!(a.reported_rsqls, b.reported_rsqls);
        assert_eq!(a.n_verified, b.n_verified);
        assert_eq!(a.n_clusters, b.n_clusters);
        assert_eq!(a.selected_clusters, b.selected_clusters);
    }

    #[test]
    fn replay_matches_batch_bit_for_bit() {
        // One spike case and one lock case cover both window-selection
        // paths; the full 16-case corpus is pinned at the workspace root.
        for (kind, seed) in [(AnomalyKind::BusinessSpike, 42), (AnomalyKind::MdlLock, 43)] {
            let cfg = ScenarioConfig::default().with_seed(seed);
            let base = generate_base(&cfg);
            let scenario = inject(&base, &cfg, kind);

            let batch_lc = materialize(&scenario, 600);
            let pin = PinSqlConfig::default();
            let batch_d = PinSql::new(pin.clone()).diagnose(
                &batch_lc.case,
                &batch_lc.window,
                &batch_lc.history,
                batch_lc.minutes_origin,
            );

            let (online_lc, online_d) = replay_diagnose(&scenario, 600, &pin);
            assert_case_eq(&online_lc, &batch_lc);
            assert_diagnosis_eq(&online_d, &batch_d);
        }
    }

    #[test]
    fn chunked_stream_matches_per_event_ingest() {
        let cfg = ScenarioConfig::default().with_seed(11).with_businesses(6);
        let base = generate_base(&cfg);
        let scenario = inject(&base, &cfg, AnomalyKind::BusinessSpike);
        let events = materialize_events(&scenario, None);

        let mut scalar = OnlineInstance::new(&scenario, 300);
        for ev in events.clone() {
            scalar.ingest(ev);
        }
        let mut chunked = OnlineInstance::new(&scenario, 300);
        chunked.ingest_stream(events);

        assert_eq!(scalar.events_ingested(), chunked.events_ingested());
        let s = scalar.ingest_stats();
        let c = chunked.ingest_stats();
        assert_eq!(s.events, c.events);
        assert_eq!(s.queries, c.queries);
        assert_eq!(s.malformed, c.malformed);
        assert_eq!(s.late, c.late);
        assert_case_eq(&scalar.close_case(), &chunked.close_case());
    }

    #[test]
    fn kernel_kinds_replay_identically() {
        let cfg = ScenarioConfig::default().with_seed(21).with_businesses(6);
        let base = generate_base(&cfg);
        let scenario = inject(&base, &cfg, AnomalyKind::BusinessSpike);
        let pin = PinSqlConfig::default();
        let (lc_fast, d_fast) =
            replay_diagnose_with_kernel(&scenario, 300, &pin, KernelKind::Fast);
        let (lc_ref, d_ref) =
            replay_diagnose_with_kernel(&scenario, 300, &pin, KernelKind::Reference);
        assert_case_eq(&lc_fast, &lc_ref);
        assert_diagnosis_eq(&d_fast, &d_ref);
    }

    #[test]
    fn instance_tracks_stream_state() {
        let cfg = ScenarioConfig::default().with_seed(7).with_businesses(6);
        let base = generate_base(&cfg);
        let scenario = inject(&base, &cfg, AnomalyKind::BusinessSpike);
        let events = materialize_events(&scenario, None);
        let n_events = events.len() as u64;
        let mut inst = OnlineInstance::new(&scenario, 300);
        inst.ingest_stream(events);
        assert_eq!(inst.events_ingested(), n_events);
        assert!(inst.watermark() >= scenario.cfg.window_s, "final tick advances the clock");
        assert!(inst.ingest_stats().queries > 0);
        assert!(!inst.online_history().is_empty(), "in-line history fed from the stream");
        let lc = inst.close_case();
        assert!(lc.window.anomaly_len() > 0);
        assert!(!lc.case.templates.is_empty());
    }

    #[test]
    fn snapshot_restore_mid_stream_is_behaviorally_exact() {
        let cfg = ScenarioConfig::default().with_seed(31).with_businesses(6);
        let base = generate_base(&cfg);
        let scenario = inject(&base, &cfg, AnomalyKind::BusinessSpike);
        let events = materialize_events(&scenario, None);

        for kernel in [KernelKind::Reference, KernelKind::Fast] {
            for split in [0, 1, events.len() / 3, events.len() / 2, events.len()] {
                let mut live = OnlineInstance::new(&scenario, 300).with_kernel(kernel);
                let mut pre = OnlineInstance::new(&scenario, 300).with_kernel(kernel);
                live.ingest_stream(events[..split].to_vec());
                pre.ingest_stream(events[..split].to_vec());

                let snap = pre.snapshot();
                assert_eq!(snap.kernel(), kernel);
                // A valid blob survives the untrusted entry point too.
                let snap =
                    crate::snapshot::InstanceSnapshot::from_bytes(snap.into_bytes()).unwrap();
                let mut restored = OnlineInstance::restore(&scenario, &snap).unwrap();

                // Re-serialization is byte-idempotent (default Dense store).
                assert_eq!(
                    restored.snapshot().as_bytes(),
                    snap.as_bytes(),
                    "split {split}: restored snapshot drifted"
                );

                live.ingest_stream(events[split..].to_vec());
                restored.ingest_stream(events[split..].to_vec());
                assert_eq!(live.events_ingested(), restored.events_ingested());
                assert_eq!(live.health_snapshot(), restored.health_snapshot());
                assert_case_eq(&live.close_case(), &restored.close_case());
            }
        }
    }

    #[test]
    fn restore_rejects_wrong_scenario_and_corrupt_blobs() {
        let cfg_a = ScenarioConfig::default().with_seed(31).with_businesses(6);
        let base_a = generate_base(&cfg_a);
        let scenario_a = inject(&base_a, &cfg_a, AnomalyKind::BusinessSpike);
        let cfg_b = ScenarioConfig::default().with_seed(77).with_businesses(5);
        let base_b = generate_base(&cfg_b);
        let scenario_b = inject(&base_b, &cfg_b, AnomalyKind::MdlLock);

        let events = materialize_events(&scenario_a, None);
        let mut inst = OnlineInstance::new(&scenario_a, 300);
        inst.ingest_stream(events);
        let snap = inst.snapshot();

        // Restoring into a different scenario is a typed mismatch.
        assert!(matches!(
            OnlineInstance::restore(&scenario_b, &snap),
            Err(WireError::Mismatch { .. })
        ));

        // Every truncation of the blob errors; none panics.
        let bytes = snap.as_bytes();
        let step = (bytes.len() / 97).max(1);
        for cut in (0..bytes.len()).step_by(step) {
            let Ok(short) = crate::snapshot::InstanceSnapshot::from_bytes(bytes[..cut].to_vec())
            else {
                continue; // header-level rejection is fine too
            };
            assert!(
                OnlineInstance::restore(&scenario_a, &short).is_err(),
                "cut at {cut} restored"
            );
        }
    }
}
