//! Cross-process ingest transport: the socketed agent/server pairing.
//!
//! Everything below [`crate::daemon`] assumed telemetry was already in
//! the agent's address space. This module is the missing production leg:
//! a telemetry **source** (the collector side of one deployment region)
//! streams [`TelemetryEvent`]s to a **sink** (a hollow
//! [`FleetDaemon`]-hosting agent) over a byte stream — `std::net` TCP in
//! deployment, an in-memory loopback pipe with byte-level fault injection
//! in the suites — and a **region server** merges health rollups from
//! many connected agents with the already-associative
//! [`FleetRollup`] algebra.
//!
//! ## Framing
//!
//! The byte stream carries length-prefixed frames (`u32` little-endian
//! length, then the frame bytes, capped by
//! [`TransportPolicy::max_frame_bytes`]). Each frame is a `PEVT`
//! [`EventFrame`] or a `PCTL` control frame — the agent routes on the
//! magic, so one connection speaks both planes. A stream that ends
//! between frames is a clean close ([`ByteConn::recv_frame`] returns
//! `None`); a stream that ends *inside* a frame is a torn connection and
//! surfaces as a typed [`TransportError::Torn`] — never a panic, never a
//! half-applied frame.
//!
//! ## Exactly-once, credits, and folds
//!
//! The source pre-plans its frame sequence ([`plan_frames`]): a global
//! event-time walk over the per-instance streams that batches runs of
//! same-instance events, flushes every open batch when the walk crosses
//! a second, and emits [`EventFrame::Advance`] marks on a fixed
//! event-time cadence. Every source frame carries one monotone sequence
//! number; the sink applies exactly `next_seq`, re-acks duplicates
//! (a reconnect replays the unacked window), and refuses gaps — so the
//! daemon's streams receive each instance's events exactly once, in
//! stream order, and [`IngestSink::finish`] is byte-identical to
//! [`crate::FleetEngine::run_full`] over the same scenarios.
//!
//! Backpressure is credit-based and deterministic. The sink's queue bound
//! is [`TransportPolicy::queue_capacity`] buffered events; every
//! [`EventFrame::Hello`]/[`EventFrame::Ack`] carries
//! `capacity − buffered` as an absolute credit grant, and the source
//! never lets its in-flight event count exceed the last grant — when a
//! batch does not fit it *blocks on acks* ([`SourceStats::credit_stalls`]
//! counts these), it does not send and hope. Credits regenerate when the
//! sink folds buffered prefixes into the pipelines: on every
//! source `Advance`, and under **pressure** — when the buffer crosses the
//! fold threshold, the sink folds at the highest boundary its received
//! [`TelemetryEvent::Tick`]s prove complete (the minimum over instances
//! of the latest tick second). Tick `s` in stream order promises every
//! event strictly before second `s` has been sent, so a pressure fold is
//! always safe, and any fold schedule yields the same final bytes — only
//! per-instance event order reaches the pipelines.

use crate::control::CONTROL_MAGIC;
use crate::daemon::FleetDaemon;
use crate::fleet::FleetRun;
use crate::wire::EventFrame;
use pinsql::TransportPolicy;
use pinsql_dbsim::TelemetryEvent;
use pinsql_obs::{Counter, FleetRollup, NoopObserver, Observer, Stage};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex};
use pinsql_timeseries::WireError;

/// A typed transport failure. Connection-level faults are recoverable —
/// the daemon keeps its state and a reconnecting source resumes from the
/// sink's `Hello` — so every variant is a value, never a panic.
#[derive(Debug, Clone, PartialEq)]
pub enum TransportError {
    /// The byte stream died inside a frame (read `got` of `want` framed
    /// bytes, then EOF): a torn frame, the signature of a mid-write
    /// disconnect.
    Torn { got: usize, want: usize },
    /// A frame length prefix exceeded the policy cap — a hostile or
    /// corrupt stream, refused before any allocation.
    FrameTooLarge { len: usize, max: usize },
    /// The peer closed the stream cleanly where the protocol still
    /// expected traffic.
    Disconnected,
    /// A frame decoded but violated the `PEVT` protocol (bad role, a
    /// sequence gap, credit overrun) or failed to decode at all.
    Wire(WireError),
    /// The agent's control plane refused a `PCTL` request.
    Rejected(String),
    /// The peer answered with a frame the protocol cannot accept here.
    Protocol(&'static str),
    /// An OS-level socket failure.
    Io(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Torn { got, want } => {
                write!(f, "torn frame: {got} of {want} bytes before EOF")
            }
            TransportError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds cap {max}")
            }
            TransportError::Disconnected => write!(f, "peer closed mid-protocol"),
            TransportError::Wire(e) => write!(f, "event wire: {e}"),
            TransportError::Rejected(reason) => write!(f, "control plane rejected: {reason}"),
            TransportError::Protocol(what) => write!(f, "protocol violation: {what}"),
            TransportError::Io(e) => write!(f, "transport io: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<WireError> for TransportError {
    fn from(e: WireError) -> Self {
        TransportError::Wire(e)
    }
}

/// One duplex framed byte stream. Implementations must deliver frames
/// whole and in order — the `PEVT` sequence discipline detects loss and
/// duplication *across* connections, not reordering inside one.
pub trait ByteConn {
    /// Writes one frame (length prefix + bytes).
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), TransportError>;
    /// Reads one frame; `Ok(None)` is a clean close *between* frames.
    fn recv_frame(&mut self) -> Result<Option<Vec<u8>>, TransportError>;
}

fn check_len(len: usize, max: usize) -> Result<(), TransportError> {
    if len > max {
        return Err(TransportError::FrameTooLarge { len, max });
    }
    Ok(())
}

/// Reads exactly `buf.len()` bytes; `Ok(false)` means a clean EOF before
/// the first byte, `Torn` an EOF after it.
fn read_full(r: &mut impl Read, buf: &mut [u8], ctx: usize) -> Result<bool, TransportError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                if got == 0 && ctx == 0 {
                    return Ok(false);
                }
                return Err(TransportError::Torn { got: got + ctx, want: buf.len() + ctx });
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(TransportError::Io(e.to_string())),
        }
    }
    Ok(true)
}

/// `std::net` TCP transport: one [`ByteConn`] per stream.
#[derive(Debug)]
pub struct TcpConn {
    stream: TcpStream,
    max_frame_bytes: usize,
}

impl TcpConn {
    /// Wraps an accepted or connected stream under a frame-size cap.
    pub fn new(stream: TcpStream, max_frame_bytes: usize) -> Self {
        // Frames are small and latency-coupled (credits ride the acks);
        // Nagle would serialize the credit loop on the RTT timer.
        let _ = stream.set_nodelay(true);
        Self { stream, max_frame_bytes }
    }

    /// Connects to an agent.
    pub fn connect(
        addr: impl std::net::ToSocketAddrs,
        max_frame_bytes: usize,
    ) -> Result<Self, TransportError> {
        let stream = TcpStream::connect(addr).map_err(|e| TransportError::Io(e.to_string()))?;
        Ok(Self::new(stream, max_frame_bytes))
    }
}

impl ByteConn for TcpConn {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), TransportError> {
        check_len(frame.len(), self.max_frame_bytes)?;
        let len = (frame.len() as u32).to_le_bytes();
        self.stream.write_all(&len).map_err(|e| TransportError::Io(e.to_string()))?;
        self.stream.write_all(frame).map_err(|e| TransportError::Io(e.to_string()))?;
        self.stream.flush().map_err(|e| TransportError::Io(e.to_string()))
    }

    fn recv_frame(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        let mut len = [0u8; 4];
        if !read_full(&mut self.stream, &mut len, 0)? {
            return Ok(None);
        }
        let len = u32::from_le_bytes(len) as usize;
        check_len(len, self.max_frame_bytes)?;
        let mut frame = vec![0u8; len];
        read_full(&mut self.stream, &mut frame, 4)?;
        Ok(Some(frame))
    }
}

/// One direction of the in-memory loopback: a byte queue plus the fault
/// plan ([`cut_after`](PipeConn::cut_outbound_after) tears the stream at
/// an exact byte offset, the knife the fault-injection suites twist).
#[derive(Debug, Default)]
struct PipeDir {
    buf: VecDeque<u8>,
    closed: bool,
    /// Remaining byte budget before this direction tears mid-stream.
    cut_after: Option<usize>,
}

#[derive(Debug, Default)]
struct PipeShared {
    dirs: [PipeDir; 2],
}

/// One end of an in-memory duplex loopback pipe — the test-harness
/// transport. Byte-faithful to TCP framing (same prefix, same caps) with
/// deterministic byte-level fault injection.
#[derive(Debug)]
pub struct PipeConn {
    shared: Arc<(Mutex<PipeShared>, Condvar)>,
    /// Index of the direction this end *writes*.
    out: usize,
    max_frame_bytes: usize,
}

/// A connected loopback pair: frames sent on one end arrive on the other.
pub fn pipe_pair(max_frame_bytes: usize) -> (PipeConn, PipeConn) {
    let shared = Arc::new((Mutex::new(PipeShared::default()), Condvar::new()));
    (
        PipeConn { shared: Arc::clone(&shared), out: 0, max_frame_bytes },
        PipeConn { shared, out: 1, max_frame_bytes },
    )
}

impl PipeConn {
    /// Arms the fault: after `bytes` more outbound bytes, this end's
    /// stream tears — later bytes are dropped on the floor and the
    /// direction closes, exactly like a socket dying mid-write. A cut
    /// landing inside a frame leaves the peer a torn frame; a cut landing
    /// on a frame boundary looks like a clean close.
    pub fn cut_outbound_after(&self, bytes: usize) {
        let (lock, cvar) = &*self.shared;
        lock.lock().unwrap().dirs[self.out].cut_after = Some(bytes);
        cvar.notify_all();
    }
}

impl ByteConn for PipeConn {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), TransportError> {
        check_len(frame.len(), self.max_frame_bytes)?;
        let (lock, cvar) = &*self.shared;
        let mut shared = lock.lock().unwrap();
        let dir = &mut shared.dirs[self.out];
        if dir.closed {
            return Err(TransportError::Io("loopback stream is cut".into()));
        }
        let mut bytes = Vec::with_capacity(4 + frame.len());
        bytes.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        bytes.extend_from_slice(frame);
        let deliver = match dir.cut_after {
            Some(budget) => budget.min(bytes.len()),
            None => bytes.len(),
        };
        dir.buf.extend(&bytes[..deliver]);
        if let Some(budget) = &mut dir.cut_after {
            *budget -= deliver;
            if *budget == 0 {
                dir.closed = true;
            }
        }
        cvar.notify_all();
        if deliver < bytes.len() {
            return Err(TransportError::Io("loopback stream cut mid-frame".into()));
        }
        Ok(())
    }

    fn recv_frame(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        let inbound = 1 - self.out;
        let (lock, cvar) = &*self.shared;
        let mut shared = lock.lock().unwrap();
        loop {
            let dir = &mut shared.dirs[inbound];
            if dir.buf.len() >= 4 {
                let mut len = [0u8; 4];
                for (i, b) in dir.buf.iter().take(4).enumerate() {
                    len[i] = *b;
                }
                let len = u32::from_le_bytes(len) as usize;
                check_len(len, self.max_frame_bytes)?;
                if dir.buf.len() >= 4 + len {
                    dir.buf.drain(..4);
                    let frame: Vec<u8> = dir.buf.drain(..len).collect();
                    cvar.notify_all();
                    return Ok(Some(frame));
                }
            }
            if dir.closed {
                return if dir.buf.is_empty() {
                    Ok(None)
                } else {
                    // Bytes short of a whole frame, then EOF: torn.
                    let got = dir.buf.len();
                    let want = if dir.buf.len() >= 4 {
                        let mut len = [0u8; 4];
                        for (i, b) in dir.buf.iter().take(4).enumerate() {
                            len[i] = *b;
                        }
                        4 + u32::from_le_bytes(len) as usize
                    } else {
                        4
                    };
                    Err(TransportError::Torn { got, want })
                };
            }
            shared = cvar.wait(shared).unwrap();
        }
    }
}

impl Drop for PipeConn {
    fn drop(&mut self) {
        let (lock, cvar) = &*self.shared;
        if let Ok(mut shared) = lock.lock() {
            shared.dirs[self.out].closed = true;
            cvar.notify_all();
        }
    }
}

/// The agent end of the ingest wire: a hollow [`FleetDaemon`] behind the
/// `PEVT` exactly-once / credit discipline. Transport-agnostic — frames
/// in, replies out — so the same sink sits behind TCP, the loopback
/// pipe, or a unit test feeding raw bytes.
#[derive(Debug)]
pub struct IngestSink<'a, O: Observer = NoopObserver> {
    daemon: FleetDaemon<'a, O>,
    policy: TransportPolicy,
    /// Buffered events at which a pressure fold triggers.
    fold_threshold: usize,
    /// Next source sequence number to apply (frames below it re-ack).
    next_seq: u64,
    /// Per instance: latest tick second received (`i64::MIN` before one).
    latest_tick: Vec<i64>,
    fin: bool,
    hellos: u64,
    peak_buffered: usize,
    obs: O,
}

impl<'a, O: Observer> IngestSink<'a, O> {
    /// Wraps a (typically hollow) daemon under `policy`.
    ///
    /// # Panics
    /// Panics on an invalid policy (a programmer error — see
    /// [`TransportPolicy::validate`]).
    pub fn new(daemon: FleetDaemon<'a, O>, policy: TransportPolicy) -> Self {
        if let Err(e) = policy.validate() {
            panic!("invalid transport policy: {e}");
        }
        let n = daemon.n_instances();
        let obs = daemon.obs().fork("wire");
        Self {
            daemon,
            policy,
            fold_threshold: policy.queue_capacity / 2,
            next_seq: 1,
            latest_tick: vec![i64::MIN; n],
            fin: false,
            hellos: 0,
            peak_buffered: 0,
            obs,
        }
    }

    /// Overrides the buffered-events level that triggers a pressure fold
    /// (default: half the queue capacity). The backpressure suite raises
    /// it to the full capacity to model the slowest legal consumer; any
    /// value changes only *when* folds happen, never the final bytes.
    pub fn with_fold_threshold(mut self, events: usize) -> Self {
        self.fold_threshold = events;
        self
    }

    /// Mints the connection handshake: resume point, credit grant,
    /// watermark. Call once per (re)connect, before reading frames.
    pub fn hello(&mut self) -> EventFrame {
        self.hellos += 1;
        if O::ENABLED && self.hellos > 1 {
            self.obs.add(Counter::TransportResumes, 1);
        }
        EventFrame::Hello {
            next_seq: self.next_seq,
            credits: self.credits(),
            watermark: self.daemon.watermark(),
        }
    }

    /// Credits the sink can grant right now: capacity minus buffered.
    pub fn credits(&self) -> u64 {
        self.policy.queue_capacity.saturating_sub(self.daemon.buffered_events()) as u64
    }

    /// Events buffered but not yet folded.
    pub fn buffered(&self) -> usize {
        self.daemon.buffered_events()
    }

    /// Highest buffered depth ever observed — the backpressure suite's
    /// memory-bound witness.
    pub fn peak_buffered(&self) -> usize {
        self.peak_buffered
    }

    /// True once the source declared its stream complete.
    pub fn fin_received(&self) -> bool {
        self.fin
    }

    /// The hosted agent.
    pub fn daemon(&self) -> &FleetDaemon<'a, O> {
        &self.daemon
    }

    /// The hosted agent, mutably — the `PCTL` control plane rides this
    /// (the serve loop routes control frames straight to
    /// [`FleetDaemon::handle_frame`]).
    pub fn daemon_mut(&mut self) -> &mut FleetDaemon<'a, O> {
        &mut self.daemon
    }

    /// Applies one `PEVT` frame and returns the encoded reply frame.
    /// Malformed bytes, protocol-role violations, sequence gaps, and
    /// credit overruns come back as typed errors — the connection dies,
    /// the daemon does not.
    pub fn handle_event_frame(&mut self, bytes: &[u8]) -> Result<Vec<u8>, WireError> {
        let n0 = if O::ENABLED { self.obs.now_ns() } else { 0 };
        let frame = EventFrame::from_bytes(bytes)?;
        if O::ENABLED {
            self.obs.add(Counter::EventFrames, 1);
        }
        let seq = match frame.seq() {
            Some(seq) => seq,
            None => {
                return Err(WireError::Mismatch {
                    what: "event frame role",
                    detail: "sink received a sink-minted frame (hello/ack)".into(),
                })
            }
        };
        if seq > self.next_seq {
            return Err(WireError::Mismatch {
                what: "event frame seq",
                detail: format!("gap: expected {}, got {seq}", self.next_seq),
            });
        }
        if seq == self.next_seq {
            self.apply(frame)?;
            self.next_seq += 1;
        }
        // A frame below `next_seq` is a reconnect replay of something
        // already applied: re-ack it so the source's window advances.
        let ack = EventFrame::Ack {
            seq: self.next_seq - 1,
            credits: self.credits(),
            watermark: self.daemon.watermark(),
        };
        if O::ENABLED {
            self.obs.span(Stage::IngestWire, n0, self.obs.now_ns());
        }
        Ok(ack.to_bytes())
    }

    /// Tears the sink down into the final [`FleetRun`] — byte-identical
    /// to [`crate::FleetEngine::run_full`] over the same scenarios once
    /// the source's whole stream was applied.
    pub fn finish(self) -> FleetRun {
        self.daemon.finish()
    }

    fn apply(&mut self, frame: EventFrame) -> Result<(), WireError> {
        match frame {
            EventFrame::Batch { instance, events, .. } => {
                let buffered = self.daemon.buffered_events();
                if buffered + events.len() > self.policy.queue_capacity {
                    return Err(WireError::Mismatch {
                        what: "transport credits",
                        detail: format!(
                            "batch of {} events overruns buffer {buffered}/{}",
                            events.len(),
                            self.policy.queue_capacity
                        ),
                    });
                }
                let mut latest = i64::MIN;
                let count = events.len() as u64;
                for ev in &events {
                    if let TelemetryEvent::Tick { second } = ev {
                        latest = latest.max(*second);
                    }
                }
                self.daemon.offer_events(instance as usize, events)?;
                if latest > i64::MIN {
                    if let Some(t) = self.latest_tick.get_mut(instance as usize) {
                        *t = (*t).max(latest);
                    }
                }
                if O::ENABLED {
                    self.obs.add(Counter::EventsWired, count);
                }
                self.peak_buffered = self.peak_buffered.max(self.daemon.buffered_events());
                self.pressure_fold();
                Ok(())
            }
            EventFrame::Advance { boundary_s, .. } => {
                self.daemon.advance_to(boundary_s.max(self.daemon.watermark()));
                Ok(())
            }
            EventFrame::Fin { .. } => {
                self.fin = true;
                Ok(())
            }
            EventFrame::Hello { .. } | EventFrame::Ack { .. } => unreachable!("seq-gated"),
        }
    }

    /// When the buffer crosses the fold threshold, folds at the highest
    /// boundary the received ticks prove complete: the minimum over
    /// instances of the latest tick second. Tick `s` arrives (in stream
    /// order) before any event of second `s`, so every instance's events
    /// strictly before that minimum are already buffered — the fold is
    /// exactly an [`FleetDaemon::advance_to`] and regenerates credits.
    fn pressure_fold(&mut self) {
        if self.daemon.buffered_events() < self.fold_threshold {
            return;
        }
        let boundary = self.latest_tick.iter().copied().min().unwrap_or(i64::MIN);
        if boundary > self.daemon.watermark() && boundary > i64::MIN {
            self.daemon.advance_to(boundary);
        }
    }
}

/// Plans a source's full frame sequence over per-instance event streams:
/// a global `(time, instance)`-ordered walk that appends each event to
/// its instance's open batch, flushes a batch at
/// [`TransportPolicy::batch_events`], flushes *all* open batches when the
/// walk crosses an event-time second (bounding how far any instance's
/// sink-side tick horizon can lag), marks an [`EventFrame::Advance`]
/// every `advance_every_s` seconds of event time, and closes with
/// [`EventFrame::Fin`]. Sequence numbers are assigned in emission order
/// starting at 1. The plan is a pure function of its inputs — two sources
/// over the same streams emit identical frames.
pub fn plan_frames(
    streams: &[Vec<TelemetryEvent>],
    policy: &TransportPolicy,
    advance_every_s: i64,
) -> Vec<EventFrame> {
    assert!(advance_every_s >= 1, "advance cadence must be at least one second");
    let n = streams.len();
    let mut idx = vec![0usize; n];
    let mut open: Vec<Vec<TelemetryEvent>> = (0..n).map(|_| Vec::new()).collect();
    let mut frames = Vec::new();
    let mut seq = 1u64;

    let mut push = |frame: EventFrame, seq: &mut u64| {
        frames.push(frame);
        *seq += 1;
    };
    macro_rules! flush {
        ($i:expr) => {
            if !open[$i].is_empty() {
                let events = std::mem::take(&mut open[$i]);
                push(EventFrame::Batch { seq, instance: $i as u32, events }, &mut seq);
            }
        };
    }

    let mut current_s = i64::MIN;
    let mut last_advance = i64::MIN;
    loop {
        // Deterministic k-way pick: earliest time, lowest instance wins.
        let mut best: Option<(f64, usize)> = None;
        for i in 0..n {
            if let Some(ev) = streams[i].get(idx[i]) {
                let t = ev.time_ms();
                if best.is_none_or(|(bt, _)| t < bt) {
                    best = Some((t, i));
                }
            }
        }
        let Some((t, i)) = best else { break };
        let s = (t / 1000.0).floor() as i64;
        if s > current_s {
            for j in 0..n {
                flush!(j);
            }
            // Everything strictly before second `s` has been emitted, so
            // `s` is a safe Advance boundary. (`saturating_sub`: before
            // the first Advance `last_advance` sits at `i64::MIN`, and
            // the first eligible crossing should always mark.)
            if current_s > i64::MIN && s.saturating_sub(last_advance) >= advance_every_s {
                push(EventFrame::Advance { seq, boundary_s: s }, &mut seq);
                last_advance = s;
            }
            current_s = s;
        }
        open[i].push(streams[i][idx[i]].clone());
        idx[i] += 1;
        if open[i].len() >= policy.batch_events {
            flush!(i);
        }
    }
    for j in 0..n {
        flush!(j);
    }
    push(EventFrame::Fin { seq }, &mut seq);
    frames
}

/// Source-side counters, accumulated across reconnects.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SourceStats {
    /// Frames sent, replays included.
    pub frames_sent: u64,
    /// Events sent inside batches, replays included.
    pub events_sent: u64,
    /// Acks received.
    pub acks: u64,
    /// Reconnects that resumed from a sink `Hello` (first connect not
    /// counted).
    pub resumes: u64,
    /// Frames the sink told us were already applied (dropped unsent from
    /// the replay window at `Hello`).
    pub replays_skipped: u64,
    /// Times the source blocked on acks because the next batch did not
    /// fit the credit window.
    pub credit_stalls: u64,
    /// Highest in-flight (sent, unacked) event count.
    pub max_inflight_events: u64,
    /// Watermark of the last sink message.
    pub last_watermark: i64,
    /// True if any sink message's watermark moved backwards (the suites
    /// assert this stays false).
    pub watermark_regressed: bool,
}

/// The source end of the ingest wire: owns the planned frame sequence,
/// the unacked replay window, and the credit accounting. One value
/// survives any number of connections — call [`run_source`] with a fresh
/// conn after each disconnect and it resumes from the sink's `Hello`.
#[derive(Debug)]
pub struct SourcePlan {
    /// Planned but unsent frames, front first.
    pending: VecDeque<EventFrame>,
    /// Sent frames awaiting ack (the reconnect replay window).
    unacked: VecDeque<EventFrame>,
    /// Events inside `unacked` batches.
    unacked_events: u64,
    /// Absolute credit grant from the last sink message.
    credits: u64,
    connects: u64,
    /// Source-side counters.
    pub stats: SourceStats,
}

fn frame_events(frame: &EventFrame) -> u64 {
    match frame {
        EventFrame::Batch { events, .. } => events.len() as u64,
        _ => 0,
    }
}

impl SourcePlan {
    /// Wraps a planned frame sequence (see [`plan_frames`]).
    pub fn new(frames: Vec<EventFrame>) -> Self {
        Self {
            pending: frames.into(),
            unacked: VecDeque::new(),
            unacked_events: 0,
            credits: 0,
            connects: 0,
            stats: SourceStats { last_watermark: i64::MIN, ..SourceStats::default() },
        }
    }

    /// True when every frame has been sent *and* acked.
    pub fn finished(&self) -> bool {
        self.pending.is_empty() && self.unacked.is_empty() && self.connects > 0
    }

    fn observe_grant(&mut self, credits: u64, watermark: i64) {
        self.credits = credits;
        if watermark < self.stats.last_watermark {
            self.stats.watermark_regressed = true;
        }
        self.stats.last_watermark = self.stats.last_watermark.max(watermark);
    }

    /// Applies the sink's connect handshake: drop already-applied frames
    /// from the replay window, queue the rest for resend, reset credits.
    fn resume(&mut self, next_seq: u64, credits: u64, watermark: i64) {
        self.connects += 1;
        if self.connects > 1 {
            self.stats.resumes += 1;
        }
        while let Some(frame) = self.unacked.pop_back() {
            if frame.seq().expect("source frames are sequenced") >= next_seq {
                self.pending.push_front(frame);
            } else {
                self.stats.replays_skipped += 1;
            }
        }
        self.unacked_events = 0;
        self.observe_grant(credits, watermark);
    }

    fn on_ack(&mut self, seq: u64, credits: u64, watermark: i64) {
        self.stats.acks += 1;
        while self
            .unacked
            .front()
            .is_some_and(|f| f.seq().expect("source frames are sequenced") <= seq)
        {
            let f = self.unacked.pop_front().expect("front checked");
            self.unacked_events -= frame_events(&f);
        }
        self.observe_grant(credits, watermark);
    }

    /// The next frame, if the credit window admits it now.
    fn pop_sendable(&mut self) -> Option<EventFrame> {
        let next = self.pending.front()?;
        if self.unacked_events + frame_events(next) > self.credits {
            return None;
        }
        self.pending.pop_front()
    }
}

/// Drives a [`SourcePlan`] over one connection until the plan completes
/// or the connection dies. On an error the plan keeps its state — open a
/// new conn and call again to resume (the fault-injection suites do this
/// across deliberate mid-frame cuts).
pub fn run_source(conn: &mut dyn ByteConn, plan: &mut SourcePlan) -> Result<(), TransportError> {
    // The sink speaks first: its Hello carries the resume point.
    match conn.recv_frame()? {
        Some(bytes) => match EventFrame::from_bytes(&bytes)? {
            EventFrame::Hello { next_seq, credits, watermark } => {
                plan.resume(next_seq, credits, watermark)
            }
            _ => return Err(TransportError::Protocol("expected hello on connect")),
        },
        None => return Err(TransportError::Disconnected),
    }
    loop {
        while let Some(frame) = plan.pop_sendable() {
            let events = frame_events(&frame);
            let bytes = frame.to_bytes();
            // Into the replay window *before* the send: a frame whose
            // write dies mid-stream is in an unknowable state at the
            // sink, which is exactly what the window is for — the resume
            // replays it and the sink's seq discipline sorts it out.
            plan.unacked.push_back(frame);
            plan.unacked_events += events;
            plan.stats.max_inflight_events =
                plan.stats.max_inflight_events.max(plan.unacked_events);
            conn.send_frame(&bytes)?;
            plan.stats.frames_sent += 1;
            plan.stats.events_sent += events;
        }
        if plan.pending.is_empty() && plan.unacked.is_empty() {
            return Ok(());
        }
        if !plan.pending.is_empty() {
            // The head frame is withheld for credits; only an ack (whose
            // grant reflects the sink's folds) can unblock it. A valid
            // policy admits one full batch, so the ack for an in-flight
            // or re-acked frame always arrives eventually.
            plan.stats.credit_stalls += 1;
        }
        match conn.recv_frame()? {
            Some(bytes) => match EventFrame::from_bytes(&bytes)? {
                EventFrame::Ack { seq, credits, watermark } => plan.on_ack(seq, credits, watermark),
                _ => return Err(TransportError::Protocol("expected ack")),
            },
            None => return Err(TransportError::Disconnected),
        }
    }
}

/// Serves one connection at the agent: sends the `Hello` handshake, then
/// routes each inbound frame by magic — `PCTL` to the daemon's control
/// plane, everything else through the `PEVT` sink — and writes the
/// reply. Returns when the peer closes cleanly; a torn stream or a
/// protocol violation surfaces as the typed error (the sink, and the
/// daemon inside it, survive for the next connection).
pub fn serve_agent<O: Observer>(
    conn: &mut dyn ByteConn,
    sink: &mut IngestSink<'_, O>,
) -> Result<(), TransportError> {
    conn.send_frame(&sink.hello().to_bytes())?;
    loop {
        match conn.recv_frame()? {
            Some(bytes) => {
                let reply = if bytes.len() >= 4 && bytes[..4] == CONTROL_MAGIC {
                    sink.daemon_mut().handle_frame(&bytes)
                } else {
                    sink.handle_event_frame(&bytes)?
                };
                conn.send_frame(&reply)?;
            }
            None => return Ok(()),
        }
    }
}

/// Reads and decodes the agent's `Hello` handshake — for clients (like a
/// region server's health poller) that connect for the control plane and
/// must consume the ingest handshake first.
pub fn recv_hello(conn: &mut dyn ByteConn) -> Result<(u64, u64, i64), TransportError> {
    match conn.recv_frame()? {
        Some(bytes) => match EventFrame::from_bytes(&bytes)? {
            EventFrame::Hello { next_seq, credits, watermark } => {
                Ok((next_seq, credits, watermark))
            }
            _ => Err(TransportError::Protocol("expected hello on connect")),
        },
        None => Err(TransportError::Disconnected),
    }
}

/// A regional aggregation point above many agents: absorbs each agent's
/// [`FleetRollup`] tree and serves the merged view. The merge is the
/// exact associative/commutative [`pinsql_obs::HealthRollup`] algebra, so
/// a region server's state is O(regions) however many agents report, and
/// any polling order yields the same tree.
#[derive(Debug, Default)]
pub struct RegionServer {
    merged: FleetRollup,
    agents: u64,
}

impl RegionServer {
    /// An empty aggregation point.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one agent's rollup tree into the regional view.
    pub fn absorb(&mut self, tree: &FleetRollup) {
        self.merged.merge(tree);
        self.agents += 1;
    }

    /// Queries one connected agent's rollup over the `PCTL` plane and
    /// absorbs it. The caller must have consumed the connection's ingest
    /// `Hello` already (see [`recv_hello`]).
    pub fn poll_agent(&mut self, conn: &mut dyn ByteConn) -> Result<FleetRollup, TransportError> {
        use crate::control::{ControlMsg, ControlResp};
        conn.send_frame(&ControlMsg::HealthQuery.to_bytes())?;
        match conn.recv_frame()? {
            Some(bytes) => match ControlResp::from_bytes(&bytes)? {
                ControlResp::Rollup { rollup, .. } => {
                    self.absorb(&rollup);
                    Ok(rollup)
                }
                ControlResp::Reject { reason, .. } => Err(TransportError::Rejected(reason)),
                ControlResp::Ack { .. } => Err(TransportError::Protocol("ack for health query")),
            },
            None => Err(TransportError::Disconnected),
        }
    }

    /// Agents folded in so far.
    pub fn agents(&self) -> u64 {
        self.agents
    }

    /// The region's merged tree.
    pub fn tree(&self) -> &FleetRollup {
        &self.merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_delivers_frames_and_clean_close() {
        let (mut a, mut b) = pipe_pair(1 << 16);
        a.send_frame(b"hello").unwrap();
        a.send_frame(b"").unwrap();
        assert_eq!(b.recv_frame().unwrap().unwrap(), b"hello");
        assert_eq!(b.recv_frame().unwrap().unwrap(), b"");
        drop(a);
        assert_eq!(b.recv_frame().unwrap(), None, "drop is a clean close");
    }

    #[test]
    fn pipe_cut_mid_frame_is_torn() {
        let (mut a, mut b) = pipe_pair(1 << 16);
        // 4-byte prefix + 5-byte body = 9 bytes; cut at 6 leaves a torn
        // frame on the floor (prefix plus 2 of 5 body bytes).
        a.cut_outbound_after(6);
        assert!(a.send_frame(b"hello").is_err());
        assert!(matches!(b.recv_frame(), Err(TransportError::Torn { got: 6, want: 9 })));
    }

    #[test]
    fn pipe_cut_on_boundary_is_clean_close() {
        let (mut a, mut b) = pipe_pair(1 << 16);
        a.cut_outbound_after(9);
        a.send_frame(b"hello").unwrap(); // the whole frame fits the budget...
        assert!(a.send_frame(b"x").is_err(), "...and the stream dies right after it");
        assert_eq!(b.recv_frame().unwrap().unwrap(), b"hello");
        assert_eq!(b.recv_frame().unwrap(), None);
    }

    #[test]
    fn oversized_frames_are_refused_both_ways() {
        let (mut a, mut b) = pipe_pair(8);
        assert!(matches!(
            a.send_frame(&[0u8; 9]),
            Err(TransportError::FrameTooLarge { len: 9, max: 8 })
        ));
        // A hostile length prefix is refused at the reader before any
        // allocation: splice raw bytes in under a permissive sender cap.
        let (mut c, d) = pipe_pair(1 << 16);
        let mut small = PipeConn { shared: d.shared.clone(), out: d.out, max_frame_bytes: 8 };
        c.send_frame(&[0u8; 100]).unwrap();
        assert!(matches!(
            small.recv_frame(),
            Err(TransportError::FrameTooLarge { len: 100, max: 8 })
        ));
    }
}
