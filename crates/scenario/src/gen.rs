//! Base-workload generation: businesses, DAGs, tables, templates.
//!
//! Each *business* owns one table and a small microservice DAG (root API →
//! child APIs), whose templates therefore share the root's traffic trend —
//! the structure §VI's clustering exploits. Templates are realistic OLTP
//! statements over the business's table, each with a distinct column name
//! so every spec is a distinct SQL template.

use pinsql_workload::dag::{Api, Call};
use pinsql_workload::{
    ApiDag, ApiId, CostProfile, SpecId, TableDef, TableId, TemplateSpec, TrafficPattern, Workload,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Scenario sizing and timing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioConfig {
    pub seed: u64,
    /// Number of independent businesses.
    pub n_business: usize,
    /// Number of *giant* businesses: stable, very-high-traffic services
    /// whose templates dominate the aggregate metrics (execution count,
    /// total response time, examined rows) without being anomaly-related —
    /// the pattern §V calls out as fooling Top-SQL rankings.
    pub n_giants: usize,
    /// Root invocation rate range (per second) per business.
    pub root_rate: (f64, f64),
    /// Root invocation rate range for giant businesses.
    pub giant_rate: (f64, f64),
    /// Simulated window `[0, window_s)`.
    pub window_s: i64,
    /// Injected anomaly period `[anomaly_start, anomaly_end)`.
    pub anomaly_start: i64,
    pub anomaly_end: i64,
    /// Instance cores (kept small so injections can saturate).
    pub cores: f64,
    /// IO channels.
    pub io_channels: f64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            n_business: 16,
            n_giants: 2,
            root_rate: (2.0, 6.0),
            giant_rate: (18.0, 32.0),
            window_s: 1200,
            anomaly_start: 720,
            anomaly_end: 960,
            cores: 2.0,
            io_channels: 4.0,
        }
    }
}

impl ScenarioConfig {
    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style business-count override.
    pub fn with_businesses(mut self, n: usize) -> Self {
        self.n_business = n;
        self
    }

    /// Builder-style window override.
    pub fn with_window(mut self, window_s: i64, anomaly_start: i64, anomaly_end: i64) -> Self {
        assert!(0 < anomaly_start && anomaly_start < anomaly_end && anomaly_end <= window_s);
        self.window_s = window_s;
        self.anomaly_start = anomaly_start;
        self.anomaly_end = anomaly_end;
        self
    }
}

/// A generated base workload plus the bookkeeping the injectors need.
#[derive(Debug, Clone)]
pub struct BaseWorkload {
    pub workload: Workload,
    /// Per-business: (root api, business table, child apis).
    pub businesses: Vec<Business>,
}

/// Bookkeeping for one business.
#[derive(Debug, Clone)]
pub struct Business {
    pub root: ApiId,
    pub table: TableId,
    pub apis: Vec<ApiId>,
    pub specs: Vec<SpecId>,
}

/// Generates the clean (anomaly-free) base workload.
pub fn generate_base(cfg: &ScenarioConfig) -> BaseWorkload {
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1));
    let mut tables = Vec::with_capacity(cfg.n_business);
    let mut specs: Vec<TemplateSpec> = Vec::new();
    let mut dag = ApiDag::default();
    let mut roots = Vec::with_capacity(cfg.n_business);
    let mut businesses = Vec::with_capacity(cfg.n_business);

    for b in 0..cfg.n_business {
        let table = TableId(tables.len());
        let rows = 1_000_000 + (rng.random::<u64>() % 9_000_000);
        tables.push(TableDef::new(format!("tbl_b{b}"), rows, 48));

        let mut biz_specs = Vec::new();
        let mut biz_apis = Vec::new();

        // Child APIs first (so the root can reference them).
        let n_children = rng.random_range(1..=3usize);
        let mut children = Vec::with_capacity(n_children);
        for c in 0..n_children {
            let mut api = Api::named(format!("b{b}_api{c}"));
            let n_templates = rng.random_range(1..=3usize);
            for _ in 0..n_templates {
                let spec = make_template(&mut rng, b, table, &tables[table.0].name, specs.len());
                let spec_id = SpecId(specs.len());
                specs.push(spec);
                biz_specs.push(spec_id);
                let count = rng.random_range(1..=2u32);
                let prob = if rng.random::<f64>() < 0.3 { 0.6 } else { 1.0 };
                api = api.query(Call { target: spec_id, count, prob });
            }
            let id = dag.push(api);
            children.push(id);
            biz_apis.push(id);
        }

        // Root API: its own template plus the children.
        let mut root = Api::named(format!("b{b}_root"));
        let spec = make_template(&mut rng, b, table, &tables[table.0].name, specs.len());
        let spec_id = SpecId(specs.len());
        specs.push(spec);
        biz_specs.push(spec_id);
        root = root.query(Call::once(spec_id));
        for &child in &children {
            let prob = if rng.random::<f64>() < 0.25 { 0.5 } else { 1.0 };
            root = root.child(Call { target: child, count: 1, prob });
        }
        let root_id = dag.push(root);
        biz_apis.push(root_id);

        // Diurnal-ish traffic, business-specific phase and period.
        let base = rng.random_range(cfg.root_rate.0..cfg.root_rate.1);
        let amplitude = rng.random_range(0.35..0.6);
        let period = rng.random_range(400.0..1400.0);
        let phase = rng.random_range(0.0..period);
        let pattern = TrafficPattern::diurnal(base, amplitude, period, phase).with_noise(0.05);
        roots.push((root_id, pattern));

        businesses.push(Business { root: root_id, table, apis: biz_apis, specs: biz_specs });
    }

    // Giant businesses: stable very-high-QPS services plus one steady
    // heavy analytical statement each. They dominate #execution, total
    // response time, and #examined_rows on the instance while having no
    // relationship with injected anomalies.
    for g in 0..cfg.n_giants {
        let table = TableId(tables.len());
        tables.push(TableDef::new(format!("tbl_g{g}"), 40_000_000, 256));
        let mut biz_specs = Vec::new();
        let mut api = Api::named(format!("g{g}_api"));
        // Chatty cheap templates (top the execution counts).
        for k in 0..3 {
            let uniq = specs.len();
            let spec_id = SpecId(uniq);
            specs.push(TemplateSpec::new(
                &format!("SELECT col_{uniq} FROM tbl_g{g} WHERE id = 1"),
                CostProfile::point_read(table),
                format!("g{g}.hot_read_{uniq}"),
            ));
            biz_specs.push(spec_id);
            api = api.query(Call::times(spec_id, 1 + (k % 2) as u32));
        }
        // A steady analytical scan (tops total RT and examined rows).
        let uniq = specs.len();
        let heavy = SpecId(uniq);
        specs.push(TemplateSpec::new(
            &format!(
                "SELECT col_{uniq}, SUM(col_x) FROM tbl_g{g} WHERE ts_{uniq} > 1 GROUP BY col_{uniq}"
            ),
            CostProfile::range_read(table, rng.random_range(25_000.0..45_000.0)),
            format!("g{g}.report_{uniq}"),
        ));
        biz_specs.push(heavy);
        api = api.query(Call::maybe(heavy, 0.08));
        let root_id = dag.push(api);
        let base = rng.random_range(cfg.giant_rate.0..cfg.giant_rate.1);
        // Giants are *stable*: tiny amplitude, long period.
        let pattern = TrafficPattern::diurnal(base, 0.08, 3600.0, rng.random_range(0.0..3600.0))
            .with_noise(0.03);
        roots.push((root_id, pattern));
        businesses.push(Business {
            root: root_id,
            table,
            apis: vec![root_id],
            specs: biz_specs,
        });
    }

    let workload = Workload { tables, specs, dag, roots };
    debug_assert!(workload.dag.validate(workload.specs.len()).is_ok());
    BaseWorkload { workload, businesses }
}

/// Builds one realistic OLTP template for a business table. `uniq` makes
/// the SQL text (and thus the SqlId) unique per spec.
fn make_template(
    rng: &mut StdRng,
    business: usize,
    table: TableId,
    table_name: &str,
    uniq: usize,
) -> TemplateSpec {
    let roll: f64 = rng.random();
    if roll < 0.45 {
        // Indexed point read.
        TemplateSpec::new(
            &format!("SELECT col_{uniq} FROM {table_name} WHERE id = 1"),
            CostProfile::point_read(table),
            format!("b{business}.point_read_{uniq}"),
        )
    } else if roll < 0.65 {
        // Range read.
        let rows = rng.random_range(200.0..4000.0);
        TemplateSpec::new(
            &format!(
                "SELECT col_{uniq}, col_x FROM {table_name} WHERE ts_{uniq} > 1 AND ts_{uniq} < 2"
            ),
            CostProfile::range_read(table, rows),
            format!("b{business}.range_read_{uniq}"),
        )
    } else if roll < 0.82 {
        // Point write (exclusive row lock on one hot slot).
        TemplateSpec::new(
            &format!("UPDATE {table_name} SET col_{uniq} = 1 WHERE id = 2"),
            CostProfile::point_write(table),
            format!("b{business}.point_write_{uniq}"),
        )
    } else {
        // Locking read (shared row lock) — the victims of the paper's
        // SALES example.
        TemplateSpec::new(
            &format!(
                "SELECT col_{uniq} FROM {table_name} WHERE id = 3 LOCK IN SHARE MODE"
            ),
            CostProfile::point_read(table).with_shared_row_locks(1),
            format!("b{business}.locking_read_{uniq}"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_workload_is_valid_and_sized() {
        let cfg = ScenarioConfig::default().with_seed(3);
        let base = generate_base(&cfg);
        let w = &base.workload;
        let total = cfg.n_business + cfg.n_giants;
        assert_eq!(w.tables.len(), total);
        assert_eq!(base.businesses.len(), total);
        assert!(w.specs.len() >= cfg.n_business * 2);
        assert!(w.dag.validate(w.specs.len()).is_ok());
        assert_eq!(w.roots.len(), total);
        // All spec SQL ids are distinct (unique column names).
        let mut ids: Vec<_> = w.specs.iter().map(|s| s.template.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), w.specs.len());
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = ScenarioConfig::default().with_seed(9);
        let a = generate_base(&cfg);
        let b = generate_base(&cfg);
        assert_eq!(a.workload.specs.len(), b.workload.specs.len());
        for (x, y) in a.workload.specs.iter().zip(&b.workload.specs) {
            assert_eq!(x.template.id, y.template.id);
        }
        let c = generate_base(&ScenarioConfig::default().with_seed(10));
        assert_ne!(
            a.workload.specs.iter().map(|s| s.template.id).collect::<Vec<_>>(),
            c.workload.specs.iter().map(|s| s.template.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn businesses_own_their_specs() {
        let base = generate_base(&ScenarioConfig::default().with_seed(4));
        let mut seen = std::collections::HashSet::new();
        for biz in &base.businesses {
            for s in &biz.specs {
                assert!(seen.insert(*s), "spec {s:?} in two businesses");
            }
            assert!(!biz.specs.is_empty());
        }
    }

    #[test]
    fn expected_rates_are_positive() {
        let base = generate_base(&ScenarioConfig::default().with_seed(5));
        let rates = base.workload.expected_spec_rates(100);
        assert!(rates.iter().all(|&r| r >= 0.0));
        assert!(rates.iter().sum::<f64>() > 1.0);
    }

    #[test]
    #[should_panic]
    fn bad_window_panics() {
        let _ = ScenarioConfig::default().with_window(100, 200, 300);
    }
}
