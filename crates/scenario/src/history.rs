//! Synthesizing per-template execution history for the look-back days.
//!
//! History-trend verification needs each template's 1-minute `#execution`
//! series 1/3/7 days before the case. Simulating whole days is wasteful:
//! the verification only reads the windows aligned with the case, so we
//! synthesize exactly those windows from the *clean* workload's expected
//! rates (evaluated at the same within-window offsets — the diurnal
//! patterns repeat) plus Poisson noise. Injected templates have no history
//! (they are new), which is precisely what rule (ii) checks.

use pinsql_collector::{HistoryStore, TemplateCatalog};
use pinsql_workload::rng::poisson;
use pinsql_workload::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Synthesizes history for the case window.
///
/// * `clean` — the workload *without* the anomaly injection;
/// * `minutes_origin` — absolute minute index of the case window start;
/// * `window_min` — case-window length in minutes;
/// * `days` — look-back days to fill (1/3/7 by default);
/// * `replay_anomaly_from` — when `Some((workload, days))`, those look-back
///   days are filled from the *injected* workload instead, making the
///   anomaly recur in history (used to test the recurring-spike rejection).
pub fn synthesize_history(
    clean: &Workload,
    minutes_origin: i64,
    window_min: i64,
    days: &[u32],
    seed: u64,
    replay_anomaly_from: Option<(&Workload, &[u32])>,
) -> HistoryStore {
    let mut store = HistoryStore::new();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x8f3a_79b1_22dd_4e01);
    for &d in days {
        let (workload, _is_replay) = match replay_anomaly_from {
            Some((w, replay_days)) if replay_days.contains(&d) => (w, true),
            _ => (clean, false),
        };
        let catalog = TemplateCatalog::from_specs(&workload.specs);
        let from = minutes_origin - d as i64 * 1440;
        for m in 0..window_min {
            // Evaluate expected per-second rates at the same within-window
            // offset (patterns are stationary across days up to phase).
            let t_s = m * 60 + 30;
            let rates = workload.expected_spec_rates(t_s);
            for (spec_idx, &rate) in rates.iter().enumerate() {
                if rate <= 0.0 {
                    continue;
                }
                let count = poisson(&mut rng, rate * 60.0) as f64;
                if count > 0.0 {
                    let id = catalog.id_of_spec(pinsql_workload::SpecId(spec_idx));
                    store.record(id, from + m, count);
                }
            }
        }
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_base, ScenarioConfig};
    use crate::inject::{inject, AnomalyKind};

    #[test]
    fn history_covers_lookback_windows() {
        let cfg = ScenarioConfig::default().with_seed(11);
        let base = generate_base(&cfg);
        let origin = 100_000i64;
        let window_min = cfg.window_s / 60;
        let store =
            synthesize_history(&base.workload, origin, window_min, &[1, 3, 7], 11, None);
        let catalog = TemplateCatalog::from_specs(&base.workload.specs);
        let id = catalog.id_of_spec(pinsql_workload::SpecId(0));
        for d in [1i64, 3, 7] {
            let from = origin - d * 1440;
            let w = store.window_filled(id, from, from + window_min);
            assert!(w.iter().sum::<f64>() > 0.0, "day {d} must have traffic");
        }
        // Nothing outside the look-back windows.
        let w = store.window_filled(id, origin, origin + window_min);
        assert_eq!(w.iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn injected_templates_have_no_history() {
        let cfg = ScenarioConfig::default().with_seed(12);
        let base = generate_base(&cfg);
        let s = inject(&base, &cfg, AnomalyKind::PoorSql);
        let origin = 100_000i64;
        let store = synthesize_history(
            &s.base_workload,
            origin,
            cfg.window_s / 60,
            &[1, 3, 7],
            12,
            None,
        );
        let catalog = TemplateCatalog::from_specs(&s.workload.specs);
        let injected = catalog.id_of_spec(s.truth_rsql_specs[0]);
        for d in [1i64, 3, 7] {
            let from = origin - d * 1440;
            let w = store.window_filled(injected, from, from + cfg.window_s / 60);
            assert_eq!(w.iter().sum::<f64>(), 0.0);
        }
    }

    #[test]
    fn replay_puts_the_anomaly_into_history() {
        let cfg = ScenarioConfig::default().with_seed(13);
        let base = generate_base(&cfg);
        let s = inject(&base, &cfg, AnomalyKind::BusinessSpike);
        let origin = 100_000i64;
        let window_min = cfg.window_s / 60;
        let store = synthesize_history(
            &s.base_workload,
            origin,
            window_min,
            &[1, 3, 7],
            13,
            Some((&s.workload, &[3])),
        );
        let catalog = TemplateCatalog::from_specs(&s.workload.specs);
        let injected = catalog.id_of_spec(s.truth_rsql_specs[0]);
        let anom_min = cfg.anomaly_start / 60;
        // Day 3 replays the spike; day 1 does not.
        let d3 = store.window_filled(injected, origin - 3 * 1440, origin - 3 * 1440 + window_min);
        let d1 = store.window_filled(injected, origin - 1440, origin - 1440 + window_min);
        assert!(d3[anom_min as usize + 1] > 0.0);
        assert_eq!(d1.iter().sum::<f64>(), 0.0);
    }
}
