//! Anomaly injection: the three R-SQL categories of §II.
//!
//! Every injector adds a *new root API* whose traffic is zero outside the
//! anomaly window (a `Step` rate event on a near-zero base), carrying the
//! root-cause template(s). Lock injectors additionally *amplify* the
//! victim business (the batch job calls the victim's APIs), reproducing
//! the real-world coupling that makes the R-SQL and its victims share a
//! business cluster.

use crate::gen::{BaseWorkload, ScenarioConfig};
use pinsql_dbsim::SimConfig;
use pinsql_workload::dag::{Api, Call};
use pinsql_workload::{
    CostProfile, EventShape, RateEvent, SpecId, TemplateSpec, TrafficPattern, Workload,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// The injected anomaly category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AnomalyKind {
    /// Category 1: business scenario change (QPS sudden increase).
    BusinessSpike,
    /// Category 2: poorly written SQL (huge scans, resource bottleneck).
    PoorSql,
    /// Category 3(i): metadata locks from a DDL stream.
    MdlLock,
    /// Category 3(ii): row locks from a batch-write stream.
    RowLock,
}

impl AnomalyKind {
    /// All four kinds, for round-robin case generation.
    pub const ALL: [AnomalyKind; 4] =
        [AnomalyKind::BusinessSpike, AnomalyKind::PoorSql, AnomalyKind::MdlLock, AnomalyKind::RowLock];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            AnomalyKind::BusinessSpike => "business_spike",
            AnomalyKind::PoorSql => "poor_sql",
            AnomalyKind::MdlLock => "mdl_lock",
            AnomalyKind::RowLock => "row_lock",
        }
    }
}

/// A fully specified scenario, ready to simulate.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The workload *with* the injected anomaly (or the clean workload for
    /// a negative scenario).
    pub workload: Workload,
    /// The clean workload (history synthesis uses this).
    pub base_workload: Workload,
    pub sim: SimConfig,
    pub cfg: ScenarioConfig,
    /// The primary injected anomaly; `None` for a negative (no-anomaly)
    /// scenario. With overlapping injections, the first kind injected.
    pub kind: Option<AnomalyKind>,
    /// Every injected anomaly, in injection order; empty for negatives.
    pub injected: Vec<AnomalyKind>,
    /// Specs whose templates are the ground-truth R-SQLs.
    pub truth_rsql_specs: Vec<SpecId>,
    /// The business whose table the lock injectors target (if any).
    pub victim_business: Option<usize>,
}

impl Scenario {
    /// True when no anomaly was injected (pure-noise negative case).
    pub fn is_negative(&self) -> bool {
        self.injected.is_empty()
    }
}

/// Builds a scenario: base workload + injected anomaly of `kind`.
pub fn inject(base: &BaseWorkload, cfg: &ScenarioConfig, kind: AnomalyKind) -> Scenario {
    inject_many(base, cfg, &[kind])
}

/// Builds a *negative* scenario: the clean workload, no injected anomaly.
/// The diagnosis pipeline should report nothing on such a case.
pub fn inject_none(base: &BaseWorkload, cfg: &ScenarioConfig) -> Scenario {
    inject_many(base, cfg, &[])
}

/// Builds a scenario with zero or more injected anomalies.
///
/// The first kind is injected over the configured anomaly window; each
/// subsequent kind over a window staggered to *overlap* the first (starting
/// at its midpoint), reproducing concurrent production incidents. With one
/// kind this is byte-identical to the historical single-kind `inject` —
/// the RNG draw order is unchanged, so existing seeds keep their scenarios.
pub fn inject_many(base: &BaseWorkload, cfg: &ScenarioConfig, kinds: &[AnomalyKind]) -> Scenario {
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_mul(0xD1B54A32D192ED03).wrapping_add(7));
    let mut w = base.workload.clone();
    let mut truth = Vec::new();
    let mut victim_business = None;

    let len = cfg.anomaly_end - cfg.anomaly_start;
    for (i, &kind) in kinds.iter().enumerate() {
        let window = if i == 0 {
            (cfg.anomaly_start, cfg.anomaly_end)
        } else {
            // Overlap: start at the first window's midpoint, run up to half
            // a window past its end (clamped to the simulated horizon).
            let start = cfg.anomaly_start + len / 2;
            let end = (cfg.anomaly_end + len / 2).min(cfg.window_s);
            (start, end.max(start + 1))
        };
        apply_injection(&mut w, base, kind, window, &mut rng, &mut truth, &mut victim_business);
    }

    debug_assert!(w.dag.validate(w.specs.len()).is_ok());
    Scenario {
        workload: w,
        base_workload: base.workload.clone(),
        sim: SimConfig {
            cores: cfg.cores,
            io_channels: cfg.io_channels,
            max_sessions: 100_000,
            pfs: Default::default(),
            seed: cfg.seed ^ 0x5bd1e995,
        },
        cfg: cfg.clone(),
        kind: kinds.first().copied(),
        injected: kinds.to_vec(),
        truth_rsql_specs: truth,
        victim_business,
    }
}

/// Adds one anomaly of `kind` over `window = (start, end)` seconds to the
/// workload, recording its ground-truth specs and (for locks) the victim
/// business.
fn apply_injection(
    w: &mut Workload,
    base: &BaseWorkload,
    kind: AnomalyKind,
    window: (i64, i64),
    rng: &mut StdRng,
    truth: &mut Vec<SpecId>,
    victim_business: &mut Option<usize>,
) {
    // The injected root is silent outside the window: near-zero base with a
    // huge step multiplier.
    let step = |mult: f64| RateEvent {
        start: window.0,
        end: window.1,
        multiplier: mult,
        shape: EventShape::Step,
    };
    let silent_base = 1e-4;
    let active_rate = |rate: f64| {
        TrafficPattern::steady(silent_base).with_noise(0.0).with_event(step(rate / silent_base))
    };

    match kind {
        AnomalyKind::BusinessSpike => {
            // A new feature launches: two new, moderately heavy templates
            // at a rate that oversubscribes the CPU.
            let biz = rng.random_range(0..base.businesses.len());
            let table = base.businesses[biz].table;
            let tname = w.tables[table.0].name.clone();
            let uniq = w.specs.len();
            let s1 = SpecId(w.specs.len());
            w.specs.push(TemplateSpec::new(
                &format!("SELECT col_{uniq}, col_y FROM {tname} WHERE k_{uniq} > 1 AND k_{uniq} < 2"),
                CostProfile::range_read(table, 14_000.0), // ~7.4 ms CPU
                format!("inject.spike_read_{uniq}"),
            ));
            let uniq2 = w.specs.len();
            let s2 = SpecId(w.specs.len());
            w.specs.push(TemplateSpec::new(
                &format!("UPDATE {tname} SET col_{uniq2} = 1 WHERE id = 4"),
                CostProfile::point_write(table),
                format!("inject.spike_write_{uniq2}"),
            ));
            let api = w.dag.push(
                Api::named("inject_spike")
                    .query(Call::once(s1))
                    .query(Call::maybe(s2, 0.5)),
            );
            // ~160 invocations/s × 7.4 ms ≈ 1.2 cores of extra CPU load on
            // a 2-core instance that idles around 15 %.
            w.roots.push((api, active_rate(rng.random_range(140.0..190.0))));
            truth.push(s1);
            truth.push(s2);
        }
        AnomalyKind::PoorSql => {
            // A bad deploy ships an unindexed scan.
            let biz = rng.random_range(0..base.businesses.len());
            let table = base.businesses[biz].table;
            let tname = w.tables[table.0].name.clone();
            let uniq = w.specs.len();
            let s = SpecId(w.specs.len());
            let scanned = rng.random_range(90_000.0..160_000.0); // ~225–400 ms CPU
            w.specs.push(TemplateSpec::new(
                &format!("SELECT col_{uniq} FROM {tname} WHERE note_{uniq} LIKE 1"),
                CostProfile::poor_scan(table, scanned),
                format!("inject.poor_scan_{uniq}"),
            ));
            let api = w.dag.push(Api::named("inject_poor").query(Call::once(s)));
            w.roots.push((api, active_rate(rng.random_range(8.0..12.0))));
            truth.push(s);
        }
        AnomalyKind::MdlLock | AnomalyKind::RowLock => {
            // A batch/maintenance job targets one busy business's table:
            // the blocker statement plus amplified calls of the victim's
            // own APIs (the job reads through the existing services).
            let biz = rng.random_range(0..base.businesses.len());
            *victim_business = Some(biz);
            let business = &base.businesses[biz];
            let table = business.table;
            let tname = w.tables[table.0].name.clone();
            let uniq = w.specs.len();
            let s = SpecId(w.specs.len());
            let (spec, blocker_prob, root_rate) = match kind {
                AnomalyKind::MdlLock => (
                    TemplateSpec::new(
                        &format!("ALTER TABLE {tname} ADD COLUMN mig_{uniq} INT"),
                        CostProfile::ddl(table, rng.random_range(2_500.0..4_500.0)),
                        format!("inject.ddl_{uniq}"),
                    ),
                    0.05,
                    rng.random_range(2.5..4.0),
                ),
                AnomalyKind::RowLock => (
                    TemplateSpec::new(
                        &format!("UPDATE {tname} SET col_{uniq} = 1 WHERE grp_{uniq} = 2"),
                        CostProfile::batch_write(table, 30, rng.random_range(500.0..900.0)),
                        format!("inject.batch_write_{uniq}"),
                    ),
                    0.35,
                    rng.random_range(2.5..4.0),
                ),
                _ => unreachable!(),
            };
            w.specs.push(spec);
            let mut api = Api::named("inject_batch").query(Call::maybe(s, blocker_prob));
            // Amplify the victim's own child APIs: the batch pipeline calls
            // them, so victim templates' #execution rises with the blocker.
            let amplified: Vec<_> = business
                .apis
                .iter()
                .filter(|&&a| a != business.root)
                .copied()
                .collect();
            for &child in amplified.iter().take(2) {
                api = api.child(Call::times(child, 2));
            }
            if amplified.is_empty() {
                api = api.child(Call::once(business.root));
            }
            let api = w.dag.push(api);
            w.roots.push((api, active_rate(root_rate)));
            truth.push(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate_base;

    fn scenario(kind: AnomalyKind, seed: u64) -> Scenario {
        let cfg = ScenarioConfig::default().with_seed(seed);
        let base = generate_base(&cfg);
        inject(&base, &cfg, kind)
    }

    #[test]
    fn injection_adds_specs_and_roots() {
        for kind in AnomalyKind::ALL {
            let cfg = ScenarioConfig::default().with_seed(1);
            let base = generate_base(&cfg);
            let s = inject(&base, &cfg, kind);
            assert!(s.workload.specs.len() > base.workload.specs.len(), "{kind:?}");
            assert_eq!(s.workload.roots.len(), base.workload.roots.len() + 1);
            assert!(!s.truth_rsql_specs.is_empty());
            assert!(s.workload.dag.validate(s.workload.specs.len()).is_ok());
        }
    }

    #[test]
    fn injected_root_is_silent_outside_window() {
        for kind in AnomalyKind::ALL {
            let s = scenario(kind, 2);
            let (_, pattern) = s.workload.roots.last().unwrap();
            assert!(pattern.mean_rate(s.cfg.anomaly_start - 10) < 0.001, "{kind:?}");
            assert!(pattern.mean_rate(s.cfg.anomaly_start + 10) > 1.0, "{kind:?}");
            assert!(pattern.mean_rate(s.cfg.anomaly_end + 10) < 0.001, "{kind:?}");
        }
    }

    #[test]
    fn lock_kinds_record_victim_business() {
        assert!(scenario(AnomalyKind::MdlLock, 3).victim_business.is_some());
        assert!(scenario(AnomalyKind::RowLock, 3).victim_business.is_some());
        assert!(scenario(AnomalyKind::PoorSql, 3).victim_business.is_none());
    }

    #[test]
    fn truth_specs_reference_new_templates() {
        for kind in AnomalyKind::ALL {
            let cfg = ScenarioConfig::default().with_seed(4);
            let base = generate_base(&cfg);
            let s = inject(&base, &cfg, kind);
            for spec in &s.truth_rsql_specs {
                assert!(spec.0 >= base.workload.specs.len(), "{kind:?}");
                assert!(spec.0 < s.workload.specs.len());
            }
        }
    }

    #[test]
    fn inject_none_is_the_clean_workload() {
        let cfg = ScenarioConfig::default().with_seed(6);
        let base = generate_base(&cfg);
        let s = inject_none(&base, &cfg);
        assert!(s.is_negative());
        assert_eq!(s.kind, None);
        assert!(s.injected.is_empty());
        assert!(s.truth_rsql_specs.is_empty());
        assert_eq!(s.workload.specs.len(), base.workload.specs.len());
        assert_eq!(s.workload.roots.len(), base.workload.roots.len());
    }

    #[test]
    fn inject_many_single_kind_matches_inject() {
        // The refactor must keep existing seeds' scenarios: inject() and
        // inject_many(&[kind]) consume the RNG identically.
        for kind in AnomalyKind::ALL {
            let cfg = ScenarioConfig::default().with_seed(7);
            let base = generate_base(&cfg);
            let a = inject(&base, &cfg, kind);
            let b = inject_many(&base, &cfg, &[kind]);
            assert_eq!(a.truth_rsql_specs, b.truth_rsql_specs, "{kind:?}");
            assert_eq!(a.victim_business, b.victim_business, "{kind:?}");
            assert_eq!(a.workload.specs.len(), b.workload.specs.len(), "{kind:?}");
            assert_eq!(a.kind, Some(kind));
            assert_eq!(b.injected, vec![kind]);
        }
    }

    #[test]
    fn overlapping_injection_staggers_the_second_window() {
        let cfg = ScenarioConfig::default().with_seed(8);
        let base = generate_base(&cfg);
        let s = inject_many(&base, &cfg, &[AnomalyKind::BusinessSpike, AnomalyKind::RowLock]);
        assert_eq!(s.injected.len(), 2);
        assert_eq!(s.kind, Some(AnomalyKind::BusinessSpike));
        assert!(s.victim_business.is_some(), "second (lock) injection records victim");
        assert_eq!(s.workload.roots.len(), base.workload.roots.len() + 2);
        assert!(s.truth_rsql_specs.len() >= 3, "both injections contribute truth specs");
        // Second root is active at the first window's midpoint AND past its
        // end — the windows overlap rather than repeat.
        let (_, second) = s.workload.roots.last().unwrap();
        let mid = (cfg.anomaly_start + cfg.anomaly_end) / 2;
        assert!(second.mean_rate(mid + 10) > 1.0);
        assert!(second.mean_rate(cfg.anomaly_end + 10) > 1.0);
        assert!(second.mean_rate(cfg.anomaly_start + 10) < 0.001);
        assert!(s.workload.dag.validate(s.workload.specs.len()).is_ok());
    }

    #[test]
    fn lock_injection_amplifies_victim_templates() {
        let s = scenario(AnomalyKind::RowLock, 5);
        let biz = s.victim_business.unwrap();
        let cfg = ScenarioConfig::default().with_seed(5);
        let base = generate_base(&cfg);
        let victim_specs = &base.businesses[biz].specs;
        // Expected victim rates rise during the anomaly relative to before.
        let before: f64 = victim_specs
            .iter()
            .map(|s2| s.workload.expected_spec_rates(100)[s2.0])
            .sum();
        let during: f64 = victim_specs
            .iter()
            .map(|s2| s.workload.expected_spec_rates(cfg.anomaly_start + 50)[s2.0])
            .sum();
        assert!(during > before * 1.2, "amplification: {before} -> {during}");
    }
}
