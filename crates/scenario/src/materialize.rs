//! Materializing a scenario into a labelled anomaly case.
//!
//! Runs the database simulator on the injected workload, aggregates the
//! collection window, runs the anomaly detector to find the case window
//! (falling back to the injected hint when detection misses), synthesizes
//! history, and labels the ground truth:
//!
//! * **R-SQLs** — the injected templates (root causes by construction);
//! * **H-SQLs** — templates whose *true* per-second active session
//!   (computed from the complete query log) inflates during the anomaly —
//!   the objective analogue of the DBAs' "direct cause" labels.

use crate::history::synthesize_history;
use crate::inject::{AnomalyKind, Scenario};
use crate::perturb::{perturb_telemetry, PerturbConfig};
use pinsql_collector::{aggregate_case, CaseData, HistoryStore};
use pinsql_detect::{
    classify, detect_features, AnomalyWindow, DetectorConfig, Phenomenon, PhenomenonConfig,
};
use pinsql_dbsim::{interleave, run_open_loop, InstanceMetrics, QueryRecord, TelemetryEvent};
use pinsql_sqlkit::SqlId;
use serde::{Deserialize, Serialize};

/// Absolute minute index assigned to every case's window start (arbitrary
/// but fixed; history addresses are relative to it).
pub const MINUTES_ORIGIN: i64 = 1_000_000;

/// DBA-style labels for one case.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroundTruth {
    pub rsqls: Vec<SqlId>,
    pub hsqls: Vec<SqlId>,
}

/// A fully materialized, labelled anomaly case.
#[derive(Debug, Clone)]
pub struct LabeledCase {
    pub case: CaseData,
    pub window: AnomalyWindow,
    pub truth: GroundTruth,
    pub history: HistoryStore,
    pub minutes_origin: i64,
    /// The primary injected anomaly; `None` for a negative case.
    pub kind: Option<AnomalyKind>,
    /// Every injected anomaly (empty for negatives).
    pub injected: Vec<AnomalyKind>,
    /// Whether the detector found the anomaly (vs. the injected hint).
    pub detected: bool,
    /// The anomaly type reported by phenomenon perception.
    pub anomaly_type: String,
}

impl LabeledCase {
    /// True when this is a no-anomaly (pure-noise) case.
    pub fn is_negative(&self) -> bool {
        self.injected.is_empty()
    }
}

/// Simulates and labels a scenario.
///
/// `delta_s` is the collection look-back the diagnoser will use; the
/// produced window is clamped so `[t_s, t_e)` fits in the simulated data.
pub fn materialize(scenario: &Scenario, delta_s: i64) -> LabeledCase {
    materialize_with(scenario, delta_s, None)
}

/// Simulates, optionally degrades the telemetry through the chaos layer,
/// and labels. Ground truth is computed from the scenario (what was
/// injected), not from the degraded observation — degradation changes what
/// the pipeline *sees*, never what is *true*.
pub fn materialize_with(
    scenario: &Scenario,
    delta_s: i64,
    perturb: Option<&PerturbConfig>,
) -> LabeledCase {
    let (log, metrics) = simulate_telemetry(scenario, perturb);
    materialize_telemetry_prepared(scenario, log, metrics, delta_s)
}

/// Runs the simulator and (optionally) the chaos layer, returning the
/// telemetry every downstream path — batch labelling or online event
/// streaming — starts from.
pub fn simulate_telemetry(
    scenario: &Scenario,
    perturb: Option<&PerturbConfig>,
) -> (Vec<QueryRecord>, InstanceMetrics) {
    let out = run_open_loop(&scenario.workload, &scenario.sim, 0, scenario.cfg.window_s);
    prepare_telemetry(out.log, out.metrics, perturb)
}

/// Applies the chaos layer (if any) and sanitizes, in place of simulation —
/// the shared tail of [`simulate_telemetry`] for callers holding telemetry.
fn prepare_telemetry(
    mut log: Vec<QueryRecord>,
    mut metrics: InstanceMetrics,
    perturb: Option<&PerturbConfig>,
) -> (Vec<QueryRecord>, InstanceMetrics) {
    if let Some(p) = perturb {
        perturb_telemetry(&mut log, &mut metrics, p);
        // Belt and braces: whatever the chaos layer did, nothing non-finite
        // reaches detection or serialization.
        metrics.sanitize();
    }
    (log, metrics)
}

/// Simulates a scenario and emits its telemetry as one time-ordered
/// [`TelemetryEvent`] stream — what this instance's collector would publish
/// to the online engine. Optionally degrades the telemetry first.
///
/// Replaying these events through the incremental collector and online
/// detectors yields the same case the batch path labels (the engine crate's
/// golden tests pin this bit-for-bit).
pub fn materialize_events(
    scenario: &Scenario,
    perturb: Option<&PerturbConfig>,
) -> Vec<TelemetryEvent> {
    let (log, metrics) = simulate_telemetry(scenario, perturb);
    interleave(&log, &metrics)
}

/// Labels a case from already-simulated telemetry (exposed so tests can
/// simulate once and degrade many ways).
pub fn materialize_telemetry(
    scenario: &Scenario,
    log: Vec<QueryRecord>,
    metrics: InstanceMetrics,
    delta_s: i64,
    perturb: Option<&PerturbConfig>,
) -> LabeledCase {
    let (log, metrics) = prepare_telemetry(log, metrics, perturb);
    materialize_telemetry_prepared(scenario, log, metrics, delta_s)
}

/// The batch labelling path over already-prepared (perturbed + sanitized)
/// telemetry: detect → select the case window → aggregate → label.
fn materialize_telemetry_prepared(
    scenario: &Scenario,
    out_log: Vec<QueryRecord>,
    out_metrics: InstanceMetrics,
    delta_s: i64,
) -> LabeledCase {
    // --- Detection over the (possibly degraded) metrics. ---
    let mut features = Vec::new();
    for (name, series) in out_metrics.iter_named() {
        let c = DetectorConfig::for_metric(name);
        features.extend(detect_features(name, series, out_metrics.start_second, &c));
    }
    let phenomena = classify(&features, &PhenomenonConfig::default());
    let (window, detected, anomaly_type) =
        select_case_window(&phenomena, scenario, delta_s);

    // --- Aggregate the collection window. ---
    let case =
        aggregate_case(&out_log, &scenario.workload.specs, &out_metrics, window.ts(), window.te());

    let truth = label_truth(scenario, &case, &window);
    let history = case_history(scenario, &window);

    LabeledCase {
        case,
        window,
        truth,
        history,
        minutes_origin: MINUTES_ORIGIN,
        kind: scenario.kind,
        injected: scenario.injected.clone(),
        detected,
        anomaly_type,
    }
}

/// Picks the anomaly case window from classified phenomena: prefer the
/// phenomenon overlapping the injected window; else the longest; else fall
/// back to the injected hint. Shared verbatim by the batch labelling path
/// and the online engine's case-close trigger (replay equivalence depends
/// on both sides choosing identically).
pub fn select_case_window(
    phenomena: &[Phenomenon],
    scenario: &Scenario,
    delta_s: i64,
) -> (AnomalyWindow, bool, String) {
    let cfg = &scenario.cfg;
    let hint = (cfg.anomaly_start, cfg.anomaly_end);
    let best = phenomena
        .iter()
        .filter(|p| p.start < hint.1 && p.end > hint.0)
        .max_by_key(|p| p.duration())
        .or_else(|| phenomena.iter().max_by_key(|p| p.duration()));
    let hint_window = AnomalyWindow { anomaly_start: hint.0, anomaly_end: hint.1, delta_s }
        .clamped(0, cfg.window_s);
    let (mut window, detected, anomaly_type) = match best {
        Some(p) => (
            AnomalyWindow::from_phenomenon(p, delta_s).clamped(0, cfg.window_s),
            true,
            p.anomaly_type.clone(),
        ),
        None => (hint_window, false, "active_session_anomaly".to_string()),
    };
    // Degraded telemetry can produce a phenomenon that clamps to nothing
    // (e.g. entirely inside a blanked tail). Aggregation needs a non-empty
    // window, so fall back to the injected hint — which the ScenarioConfig
    // guarantees is non-degenerate.
    if window.window_len() <= 0 || window.anomaly_len() <= 0 {
        window = hint_window;
    }
    (window, detected, anomaly_type)
}

/// Labels a case's ground truth: R-SQLs are the injected templates mapped
/// into the catalog; H-SQLs come from the true per-second activity in the
/// complete window records. Negative scenarios have empty truth by
/// construction.
pub fn label_truth(scenario: &Scenario, case: &CaseData, window: &AnomalyWindow) -> GroundTruth {
    let rsqls: Vec<SqlId> = scenario
        .truth_rsql_specs
        .iter()
        .map(|&s| case.catalog.id_of_spec(s))
        .collect();
    // A negative scenario has no direct causes by construction; skip the
    // labelling (its best-template fallback would fabricate one).
    let hsqls = if scenario.is_negative() { Vec::new() } else { label_hsqls(case, window) };
    GroundTruth { rsqls, hsqls }
}

/// Synthesizes the look-back history a case's diagnosis verifies against
/// (injected templates are new → absent 1/3/7 days ago).
pub fn case_history(scenario: &Scenario, window: &AnomalyWindow) -> HistoryStore {
    let window_min = (window.window_len() + 59) / 60;
    synthesize_history(
        &scenario.base_workload,
        MINUTES_ORIGIN,
        window_min,
        &[1, 3, 7],
        scenario.cfg.seed,
        None,
    )
}

/// Labels H-SQLs from the complete log: a template is a direct cause when
/// its true mean active session during the anomaly is both non-trivial and
/// a multiple of its pre-anomaly baseline.
fn label_hsqls(case: &CaseData, window: &AnomalyWindow) -> Vec<SqlId> {
    let n = case.n_seconds();
    let a_lo = ((window.anomaly_start - window.ts()).max(0) as usize).min(n);
    let a_hi = ((window.anomaly_end - window.ts()).max(0) as usize).min(n);
    if a_hi <= a_lo {
        return Vec::new();
    }
    let ts_ms = window.ts() as f64 * 1000.0;
    let mut out = Vec::new();
    let mut best: Option<(SqlId, f64)> = None;
    for tpl in &case.templates {
        // True per-second session from the full log (expected activity).
        let mut anom = 0.0;
        let mut base = 0.0;
        for &ri in &tpl.record_idx {
            let r = &case.records[ri as usize];
            anom += r.overlap_ms(ts_ms + a_lo as f64 * 1000.0, ts_ms + a_hi as f64 * 1000.0);
            base += r.overlap_ms(ts_ms, ts_ms + a_lo as f64 * 1000.0);
        }
        let anom_mean = anom / 1000.0 / (a_hi - a_lo) as f64;
        let base_mean = if a_lo > 0 { base / 1000.0 / a_lo as f64 } else { 0.0 };
        if anom_mean > 1.0 && anom_mean > 3.0 * base_mean + 0.5 {
            out.push(tpl.id);
        }
        if best.is_none() || anom_mean > best.expect("set").1 {
            best = Some((tpl.id, anom_mean));
        }
    }
    if out.is_empty() {
        if let Some((id, _)) = best {
            out.push(id);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_base, ScenarioConfig};
    use crate::inject::{inject, inject_none};
    use crate::perturb::PerturbConfig;

    fn labeled(kind: AnomalyKind, seed: u64) -> LabeledCase {
        let cfg = ScenarioConfig::default().with_seed(seed);
        let base = generate_base(&cfg);
        let s = inject(&base, &cfg, kind);
        materialize(&s, 600)
    }

    #[test]
    fn business_spike_case_is_detected_and_labelled() {
        let lc = labeled(AnomalyKind::BusinessSpike, 42);
        assert!(lc.detected, "the spike must trip the detector");
        assert!(!lc.truth.rsqls.is_empty());
        assert!(!lc.truth.hsqls.is_empty());
        assert!(lc.case.templates.len() > 20);
        // The injected template is itself a direct cause here.
        assert!(lc.truth.hsqls.contains(&lc.truth.rsqls[0]), "spike template drives session");
    }

    #[test]
    fn lock_case_labels_victims_as_hsqls() {
        let lc = labeled(AnomalyKind::MdlLock, 43);
        assert!(lc.detected, "MDL pile-up must trip the detector");
        // Victims (not the DDL) dominate the H-SQL set: at least one H-SQL
        // that is not the R-SQL.
        assert!(
            lc.truth.hsqls.iter().any(|h| !lc.truth.rsqls.contains(h)),
            "blocked victims must appear among H-SQLs: {:?}",
            lc.truth
        );
    }

    #[test]
    fn window_fits_simulated_data() {
        for kind in AnomalyKind::ALL {
            let lc = labeled(kind, 44);
            assert!(lc.window.ts() >= 0);
            assert!(lc.window.te() <= ScenarioConfig::default().window_s);
            assert!(lc.window.anomaly_len() > 0);
            assert_eq!(lc.case.ts, lc.window.ts());
            assert_eq!(lc.case.te, lc.window.te());
        }
    }

    #[test]
    fn injected_template_present_in_case() {
        for kind in AnomalyKind::ALL {
            let lc = labeled(kind, 45);
            for r in &lc.truth.rsqls {
                assert!(
                    lc.case.template_index(*r).is_some(),
                    "{kind:?}: injected template missing from case data"
                );
            }
        }
    }

    #[test]
    fn negative_case_has_empty_truth() {
        let cfg = ScenarioConfig::default().with_seed(46);
        let base = generate_base(&cfg);
        let s = inject_none(&base, &cfg);
        let lc = materialize(&s, 600);
        assert!(lc.is_negative());
        assert_eq!(lc.kind, None);
        assert!(lc.truth.rsqls.is_empty());
        assert!(lc.truth.hsqls.is_empty(), "no fabricated H-SQL on negatives");
        assert!(lc.window.anomaly_len() > 0, "window stays usable for diagnosis");
    }

    #[test]
    fn perturbed_case_keeps_ground_truth_and_stays_finite() {
        let cfg = ScenarioConfig::default().with_seed(47);
        let base = generate_base(&cfg);
        let s = inject(&base, &cfg, AnomalyKind::BusinessSpike);
        let clean = materialize(&s, 600);
        let rough =
            materialize_with(&s, 600, Some(&PerturbConfig::at_intensity(470, 0.8)));
        // Degradation never touches the truth...
        assert_eq!(rough.truth.rsqls, clean.truth.rsqls);
        assert_eq!(rough.injected, clean.injected);
        // ...but it does change the observation.
        assert!(rough.case.records.len() < clean.case.records.len());
        assert!(rough.case.instance_session().iter().all(|v| v.is_finite()));
        assert!(rough.window.window_len() > 0);
    }

    #[test]
    fn event_stream_covers_the_simulated_telemetry() {
        let cfg = ScenarioConfig::default().with_seed(49);
        let base = generate_base(&cfg);
        let s = inject(&base, &cfg, AnomalyKind::BusinessSpike);
        let (log, metrics) = simulate_telemetry(&s, None);
        let events = materialize_events(&s, None);
        let queries = events.iter().filter(|e| matches!(e, TelemetryEvent::Query(_))).count();
        let samples = events.iter().filter(|e| matches!(e, TelemetryEvent::Metrics(_))).count();
        assert_eq!(queries, log.len(), "every log record appears exactly once");
        assert_eq!(samples, metrics.len(), "every metric second appears exactly once");
        for pair in events.windows(2) {
            assert!(pair[0].time_ms() <= pair[1].time_ms(), "stream must be time-ordered");
        }
    }

    #[test]
    fn noop_perturbation_reproduces_the_clean_case() {
        let cfg = ScenarioConfig::default().with_seed(48);
        let base = generate_base(&cfg);
        let s = inject(&base, &cfg, AnomalyKind::PoorSql);
        let clean = materialize(&s, 600);
        let noop = materialize_with(&s, 600, Some(&PerturbConfig::noop(1)));
        assert_eq!(noop.case.records.len(), clean.case.records.len());
        assert_eq!(noop.window, clean.window);
        assert_eq!(noop.truth.hsqls, clean.truth.hsqls);
    }
}
