//! ADAC-like labelled anomaly-case generation.
//!
//! The paper evaluates on ADAC: 168 production anomaly cases with
//! DBA-labelled R-SQLs and H-SQLs. Production traces are not available, so
//! this crate generates cases with ground truth *by construction* (see
//! DESIGN.md):
//!
//! * [`gen`] — base workloads shaped like the paper's Fig. 4: independent
//!   businesses, each a microservice DAG over its own tables, with
//!   correlated diurnal traffic trends;
//! * [`inject`] — the three R-SQL categories of §II, as four concrete
//!   injectors: business spike (category 1), poor SQL (category 2), and
//!   MDL-lock / row-lock streams (category 3);
//! * [`materialize`] — runs the database simulator on the injected
//!   workload, aggregates the collection window, detects the anomaly, and
//!   labels ground truth (injected templates = R-SQLs; templates whose
//!   *true* per-second session inflates during the anomaly = H-SQLs); also
//!   emits the same telemetry as a time-ordered event stream
//!   ([`materialize::materialize_events`]) for the online engine;
//! * [`history`] — synthesizes the per-template 1-minute execution history
//!   for the 1/3/7-day look-back from the *clean* workload's expected
//!   rates (optionally replaying the anomaly in history, for tests of the
//!   recurring-spike rejection rule);
//! * [`perturb`] — the telemetry-chaos layer: seeded post-hoc degradation
//!   of a materialized case (drop/duplicate/jitter/skew/reorder log
//!   records, blank metric seconds), plus negative (no-anomaly) and
//!   overlapping-anomaly scenario construction via [`inject_none`] /
//!   [`inject_many`]. Degradation changes what the pipeline observes,
//!   never the ground truth.

pub mod gen;
pub mod history;
pub mod inject;
pub mod materialize;
pub mod perturb;

pub use gen::{generate_base, ScenarioConfig};
pub use history::synthesize_history;
pub use inject::{inject, inject_many, inject_none, AnomalyKind, Scenario};
pub use materialize::{
    case_history, label_truth, materialize, materialize_events, materialize_telemetry,
    materialize_with, select_case_window, simulate_telemetry, GroundTruth, LabeledCase,
};
pub use perturb::{
    perturb_log, perturb_metrics, perturb_telemetry, PerturbConfig, PerturbStats,
};
