//! Telemetry-chaos perturbation: post-hoc degradation of materialized
//! telemetry.
//!
//! Production PinSQL never sees clean inputs: query-log shippers drop and
//! duplicate records, agent clocks skew and jitter, monitoring gaps blank
//! whole seconds of metrics, and log collectors deliver out of order. This
//! module degrades a simulated case *after* the simulator ran — the ground
//! truth stays what it was, only the observation decays — so the robustness
//! experiment can sweep accuracy against degradation intensity
//! (`results/robustness.json`) and property tests can assert the pipeline
//! never panics on garbage.
//!
//! Everything is seeded and deterministic: the same `PerturbConfig` applied
//! to the same telemetry yields bit-identical output, so perturbed cases
//! are as reproducible as clean ones. Blanked metric seconds are written as
//! `0.0`, never NaN — serialized traces stay valid JSON and the hardened
//! pipeline treats zero as "no load", exactly what a production gap-filled
//! series looks like.

use pinsql_dbsim::{InstanceMetrics, QueryRecord};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// How to degrade one case's telemetry. The default is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerturbConfig {
    /// Seed for the perturbation RNG (independent of the scenario seed, so
    /// the same case can be degraded many independent ways).
    pub seed: u64,
    /// Probability of dropping each log record.
    pub drop_prob: f64,
    /// Probability of duplicating each surviving log record.
    pub duplicate_prob: f64,
    /// Uniform timestamp jitter half-width, ms (each surviving record's
    /// arrival moves by `U(-jitter_ms, jitter_ms)`).
    pub jitter_ms: f64,
    /// Constant clock skew added to every record's arrival, ms (the log
    /// shipper's clock vs the metric agent's clock).
    pub clock_skew_ms: f64,
    /// Shuffle record order (collectors deliver out of order; aggregation
    /// must not depend on input order).
    pub reorder: bool,
    /// Probability of blanking each metric second (all six series read 0.0
    /// and probe samples for that second vanish).
    pub metric_blank_prob: f64,
}

impl Default for PerturbConfig {
    fn default() -> Self {
        Self::noop(0)
    }
}

impl PerturbConfig {
    /// The identity perturbation: telemetry passes through untouched.
    pub fn noop(seed: u64) -> Self {
        Self {
            seed,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            jitter_ms: 0.0,
            clock_skew_ms: 0.0,
            reorder: false,
            metric_blank_prob: 0.0,
        }
    }

    /// A single-knob degradation sweep: `intensity` 0.0 is the identity,
    /// 1.0 is severe (35 % of log records lost, 10 % duplicated, ±1.5 s
    /// jitter, 400 ms skew, shuffled delivery, 15 % of metric seconds
    /// blank). The robustness experiment sweeps this knob per anomaly kind.
    pub fn at_intensity(seed: u64, intensity: f64) -> Self {
        let x = intensity.clamp(0.0, 1.0);
        Self {
            seed,
            drop_prob: 0.35 * x,
            duplicate_prob: 0.10 * x,
            jitter_ms: 1500.0 * x,
            clock_skew_ms: 400.0 * x,
            reorder: x > 0.0,
            metric_blank_prob: 0.15 * x,
        }
    }

    /// True when applying this config cannot change anything.
    pub fn is_noop(&self) -> bool {
        self.drop_prob <= 0.0
            && self.duplicate_prob <= 0.0
            && self.jitter_ms <= 0.0
            && self.clock_skew_ms == 0.0
            && !self.reorder
            && self.metric_blank_prob <= 0.0
    }
}

/// What a perturbation did, for experiment logging.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PerturbStats {
    pub records_dropped: usize,
    pub records_duplicated: usize,
    pub seconds_blanked: usize,
}

/// Degrades a query log in place: drop, skew, jitter, duplicate, reorder.
///
/// Deterministic for a given `(log, cfg)`; records keep finite timestamps
/// (jitter and skew are finite shifts), so the log stays serializable.
pub fn perturb_log(log: &mut Vec<QueryRecord>, cfg: &PerturbConfig) -> PerturbStats {
    let mut stats = PerturbStats::default();
    if cfg.is_noop() {
        return stats;
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x9E3779B97F4A7C15);
    let mut out = Vec::with_capacity(log.len());
    for rec in log.iter() {
        if cfg.drop_prob > 0.0 && rng.random::<f64>() < cfg.drop_prob {
            stats.records_dropped += 1;
            continue;
        }
        let mut r = *rec;
        if cfg.clock_skew_ms != 0.0 {
            r.start_ms += cfg.clock_skew_ms;
        }
        if cfg.jitter_ms > 0.0 {
            r.start_ms += rng.random_range(-cfg.jitter_ms..cfg.jitter_ms);
        }
        out.push(r);
        if cfg.duplicate_prob > 0.0 && rng.random::<f64>() < cfg.duplicate_prob {
            stats.records_duplicated += 1;
            out.push(r);
        }
    }
    if cfg.reorder {
        // Fisher–Yates with the same rng — a fully shuffled delivery order.
        for i in (1..out.len()).rev() {
            let j = rng.random_range(0..=i);
            out.swap(i, j);
        }
    }
    *log = out;
    stats
}

/// Blanks metric seconds in place: every series reads `0.0` for a blanked
/// second and probe samples taken in it disappear (the monitoring agent was
/// down). Returns how many seconds were blanked.
pub fn perturb_metrics(metrics: &mut InstanceMetrics, cfg: &PerturbConfig) -> usize {
    if cfg.metric_blank_prob <= 0.0 {
        return 0;
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xD1B54A32D192ED03);
    let n = metrics.len();
    let blanked: Vec<bool> =
        (0..n).map(|_| rng.random::<f64>() < cfg.metric_blank_prob).collect();
    for series in [
        &mut metrics.active_session,
        &mut metrics.cpu_usage,
        &mut metrics.iops_usage,
        &mut metrics.row_lock_waits,
        &mut metrics.mdl_waits,
        &mut metrics.qps,
    ] {
        for (v, &b) in series.iter_mut().zip(&blanked) {
            if b {
                *v = 0.0;
            }
        }
    }
    let start = metrics.start_second;
    metrics.probes.samples.retain(|p| {
        let off = p.second - start;
        off < 0 || off as usize >= n || !blanked[off as usize]
    });
    blanked.iter().filter(|&&b| b).count()
}

/// Applies the full chaos layer to one case's telemetry: log degradation
/// plus metric blanking.
pub fn perturb_telemetry(
    log: &mut Vec<QueryRecord>,
    metrics: &mut InstanceMetrics,
    cfg: &PerturbConfig,
) -> PerturbStats {
    let mut stats = perturb_log(log, cfg);
    stats.seconds_blanked = perturb_metrics(metrics, cfg);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinsql_dbsim::probe::{ProbeLog, ProbeSample};
    use pinsql_workload::SpecId;
    use proptest::prelude::*;

    fn record(spec: usize, start_ms: f64) -> QueryRecord {
        QueryRecord { spec: SpecId(spec), start_ms, response_ms: 50.0, examined_rows: 3 }
    }

    fn sample_log(n: usize) -> Vec<QueryRecord> {
        (0..n).map(|i| record(i % 5, i as f64 * 137.0)).collect()
    }

    fn sample_metrics(n: usize) -> InstanceMetrics {
        InstanceMetrics {
            start_second: 0,
            active_session: (0..n).map(|i| 1.0 + i as f64).collect(),
            cpu_usage: vec![0.5; n],
            iops_usage: vec![0.25; n],
            row_lock_waits: vec![0.0; n],
            mdl_waits: vec![0.0; n],
            qps: vec![10.0; n],
            probes: ProbeLog {
                samples: (0..n as i64)
                    .map(|second| ProbeSample {
                        second,
                        active_sessions: 1,
                        true_instant_ms: second as f64 * 1000.0 + 500.0,
                    })
                    .collect(),
            },
        }
    }

    fn key(r: &QueryRecord) -> (usize, u64, u64, u64) {
        (r.spec.0, r.start_ms.to_bits(), r.response_ms.to_bits(), r.examined_rows)
    }

    #[test]
    fn noop_leaves_everything_untouched() {
        let mut log = sample_log(50);
        let orig: Vec<_> = log.iter().map(key).collect();
        let mut metrics = sample_metrics(30);
        let cfg = PerturbConfig::noop(99);
        assert!(cfg.is_noop());
        assert!(PerturbConfig::at_intensity(99, 0.0).is_noop());
        let stats = perturb_telemetry(&mut log, &mut metrics, &cfg);
        assert_eq!(stats, PerturbStats::default());
        assert_eq!(log.iter().map(key).collect::<Vec<_>>(), orig);
        assert_eq!(metrics.probes.samples.len(), 30);
    }

    #[test]
    fn drop_all_empties_the_log() {
        let mut log = sample_log(40);
        let cfg = PerturbConfig { drop_prob: 1.0, ..PerturbConfig::noop(1) };
        let stats = perturb_log(&mut log, &cfg);
        assert!(log.is_empty());
        assert_eq!(stats.records_dropped, 40);
    }

    #[test]
    fn duplicate_all_doubles_the_log() {
        let mut log = sample_log(25);
        let cfg = PerturbConfig { duplicate_prob: 1.0, ..PerturbConfig::noop(1) };
        let stats = perturb_log(&mut log, &cfg);
        assert_eq!(log.len(), 50);
        assert_eq!(stats.records_duplicated, 25);
    }

    #[test]
    fn reorder_preserves_the_multiset() {
        let mut log = sample_log(60);
        let mut orig: Vec<_> = log.iter().map(key).collect();
        let cfg = PerturbConfig { reorder: true, ..PerturbConfig::noop(5) };
        perturb_log(&mut log, &cfg);
        let mut got: Vec<_> = log.iter().map(key).collect();
        orig.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, orig);
    }

    #[test]
    fn skew_and_jitter_keep_timestamps_finite() {
        let mut log = sample_log(80);
        let cfg = PerturbConfig {
            jitter_ms: 1500.0,
            clock_skew_ms: -400.0,
            ..PerturbConfig::noop(7)
        };
        perturb_log(&mut log, &cfg);
        assert_eq!(log.len(), 80);
        assert!(log.iter().all(|r| r.start_ms.is_finite()));
        // Skew alone is exact: with jitter off every record moves by -400.
        let mut log2 = sample_log(3);
        let cfg2 = PerturbConfig { clock_skew_ms: -400.0, ..PerturbConfig::noop(7) };
        perturb_log(&mut log2, &cfg2);
        assert_eq!(log2[1].start_ms, 137.0 - 400.0);
    }

    #[test]
    fn blanked_seconds_read_zero_and_lose_probes() {
        let mut metrics = sample_metrics(200);
        let cfg = PerturbConfig { metric_blank_prob: 0.5, ..PerturbConfig::noop(11) };
        let blanked = perturb_metrics(&mut metrics, &cfg);
        assert!(blanked > 50 && blanked < 150, "blanked {blanked} of 200");
        let zeros = metrics.active_session.iter().filter(|&&v| v == 0.0).count();
        assert_eq!(zeros, blanked);
        assert_eq!(metrics.probes.samples.len(), 200 - blanked);
        assert!(metrics.active_session.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn perturbation_is_deterministic() {
        let cfg = PerturbConfig::at_intensity(1234, 0.7);
        let mut a = sample_log(120);
        let mut b = sample_log(120);
        let mut ma = sample_metrics(90);
        let mut mb = sample_metrics(90);
        let sa = perturb_telemetry(&mut a, &mut ma, &cfg);
        let sb = perturb_telemetry(&mut b, &mut mb, &cfg);
        assert_eq!(sa, sb);
        assert_eq!(a.iter().map(key).collect::<Vec<_>>(), b.iter().map(key).collect::<Vec<_>>());
        assert_eq!(ma.active_session, mb.active_session);
        assert_eq!(ma.probes.samples.len(), mb.probes.samples.len());
    }

    proptest! {
        #[test]
        fn any_intensity_keeps_log_finite_and_bounded(
            seed in 0u64..10_000,
            intensity in 0.0f64..=1.0,
            n in 0usize..200,
        ) {
            let mut log = sample_log(n);
            let cfg = PerturbConfig::at_intensity(seed, intensity);
            let stats = perturb_log(&mut log, &cfg);
            prop_assert!(log.len() <= 2 * n);
            prop_assert!(log.iter().all(|r| r.start_ms.is_finite()));
            prop_assert_eq!(
                log.len(),
                n - stats.records_dropped + stats.records_duplicated
            );
        }

        #[test]
        fn any_intensity_keeps_metrics_finite(
            seed in 0u64..10_000,
            intensity in 0.0f64..=1.0,
            n in 0usize..150,
        ) {
            let mut metrics = sample_metrics(n);
            let cfg = PerturbConfig::at_intensity(seed, intensity);
            let blanked = perturb_metrics(&mut metrics, &cfg);
            prop_assert!(blanked <= n);
            prop_assert_eq!(metrics.len(), n);
            prop_assert!(metrics.active_session.iter().all(|v| v.is_finite()));
            prop_assert!(metrics.probes.samples.len() <= n);
        }
    }
}
