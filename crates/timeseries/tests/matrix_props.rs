//! Robustness properties of the correlation kernel (ISSUE 2, satellite 1c).
//!
//! Unlike `proptests.rs`, which draws from well-behaved finite ranges, these
//! suites draw raw `f64` bit patterns — NaN, ±Inf, subnormals — plus
//! deliberately constant and empty series, and assert the kernel never emits
//! anything outside `[-1, 1]` and never emits NaN. This is the contract the
//! clustering step (§VI) and the H-SQL fusion (§V) rely on when telemetry is
//! degraded.

use pinsql_timeseries::{pearson, weighted_pearson, NormalizedMatrix};
use proptest::prelude::*;

/// Arbitrary f64s including NaN, infinities and subnormals.
fn any_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(prop::num::f64::ANY, 0..max_len)
}

/// A batch of series of arbitrary (possibly zero, possibly unequal) lengths.
fn any_series_batch() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(any_vec(48), 0..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn matrix_dot_bounded_and_nan_free(batch in any_series_batch()) {
        let refs: Vec<&[f64]> = batch.iter().map(|s| s.as_slice()).collect();
        let m = NormalizedMatrix::from_series(&refs);
        prop_assert_eq!(m.len(), batch.len());
        for i in 0..m.len() {
            for j in 0..m.len() {
                let d = m.dot(i, j);
                prop_assert!(!d.is_nan(), "dot({i},{j}) is NaN");
                prop_assert!((-1.0..=1.0).contains(&d), "dot({i},{j}) = {d}");
            }
        }
    }

    #[test]
    fn matrix_rows_are_finite_or_invalid(batch in any_series_batch()) {
        let refs: Vec<&[f64]> = batch.iter().map(|s| s.as_slice()).collect();
        let m = NormalizedMatrix::from_series(&refs);
        for i in 0..m.len() {
            if let Some(row) = m.row(i) {
                prop_assert!(row.iter().all(|v| v.is_finite()), "valid row {i} not finite");
            }
        }
    }

    #[test]
    fn matrix_constant_rows_are_invalid(value in prop::num::f64::ANY, len in 0usize..32) {
        let series = vec![value; len];
        let ramp: Vec<f64> = (0..len.max(2)).map(|k| k as f64).collect();
        let m = NormalizedMatrix::from_series(&[&series, &ramp]);
        prop_assert!(!m.is_valid(0));
        prop_assert_eq!(m.dot(0, 1), 0.0);
    }

    #[test]
    fn pearson_any_input_bounded(xs in any_vec(48), ys in any_vec(48)) {
        let r = pearson(&xs, &ys);
        prop_assert!(!r.is_nan());
        prop_assert!((-1.0..=1.0).contains(&r), "r = {r}");
    }

    #[test]
    fn weighted_pearson_any_input_bounded(
        xs in any_vec(48),
        ys in any_vec(48),
        ws in any_vec(48),
    ) {
        let r = weighted_pearson(&xs, &ys, &ws);
        prop_assert!(!r.is_nan());
        prop_assert!((-1.0..=1.0).contains(&r), "r = {r}");
    }

    /// For finite inputs the matrix and the pairwise kernel must agree —
    /// hardening must not change the clean-telemetry result.
    #[test]
    fn matrix_agrees_with_pearson_on_finite_input(
        xs in prop::collection::vec(-1e6f64..1e6, 4..48),
        ys in prop::collection::vec(-1e6f64..1e6, 4..48),
    ) {
        let m = NormalizedMatrix::from_series(&[&xs, &ys]);
        let n = xs.len().min(ys.len());
        let expect = pearson(&xs[..n], &ys[..n]);
        let got = m.dot(0, 1);
        prop_assert!((got - expect).abs() < 1e-9, "{got} vs {expect}");
    }
}
