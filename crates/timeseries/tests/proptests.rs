//! Property-based tests for the time-series substrate.

use pinsql_timeseries::rolling::RollingWindow;
use pinsql_timeseries::{
    connected_components, mean_squared_error, min_max_normalize, pearson, sigmoid_window_weights,
    tukey_fences, weighted_pearson, TimeSeries,
};
use proptest::prelude::*;

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6f64, 2..max_len)
}

proptest! {
    #[test]
    fn pearson_is_symmetric(xs in finite_vec(64), ys in finite_vec(64)) {
        let a = pearson(&xs, &ys);
        let b = pearson(&ys, &xs);
        prop_assert!((a - b).abs() < 1e-9, "a={a} b={b}");
    }

    #[test]
    fn pearson_bounded(xs in finite_vec(64), ys in finite_vec(64)) {
        let r = pearson(&xs, &ys);
        prop_assert!((-1.0..=1.0).contains(&r));
        prop_assert!(!r.is_nan());
    }

    #[test]
    fn pearson_invariant_under_affine_transform(
        xs in finite_vec(32),
        scale in 0.01f64..100.0,
        shift in -1e3f64..1e3,
    ) {
        let ys: Vec<f64> = xs.iter().map(|&x| scale * x + shift).collect();
        let r = pearson(&xs, &ys);
        // Either xs is constant (r = 0) or correlation is exactly 1.
        prop_assert!(r == 0.0 || (r - 1.0).abs() < 1e-6, "r={r}");
    }

    #[test]
    fn weighted_pearson_with_uniform_weights_matches_plain(xs in finite_vec(32), ys in finite_vec(32)) {
        let n = xs.len().min(ys.len());
        let ws = vec![1.0; n];
        let a = weighted_pearson(&xs[..n], &ys[..n], &ws);
        let b = pearson(&xs[..n], &ys[..n]);
        prop_assert!((a - b).abs() < 1e-6, "a={a} b={b}");
    }

    #[test]
    fn weighted_pearson_bounded(
        xs in finite_vec(32),
        ys in finite_vec(32),
        ws in prop::collection::vec(0.0f64..1.0, 2..32),
    ) {
        let r = weighted_pearson(&xs, &ys, &ws);
        prop_assert!((-1.0..=1.0).contains(&r));
        prop_assert!(!r.is_nan());
    }

    #[test]
    fn min_max_normalize_into_unit_interval(mut xs in finite_vec(64)) {
        min_max_normalize(&mut xs);
        for &x in &xs {
            prop_assert!((0.0..=1.0).contains(&x));
        }
        // Some element attains 0 (the minimum maps there).
        prop_assert!(xs.contains(&0.0));
    }

    #[test]
    fn sigmoid_weights_in_unit_interval(
        span in 1i64..500,
        a in 0i64..400,
        len in 1i64..100,
        ks in 0.01f64..1e4,
    ) {
        let ws = sigmoid_window_weights(0, span, 1, a, a + len, ks);
        prop_assert_eq!(ws.len(), span as usize);
        for &w in &ws {
            prop_assert!((0.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn tukey_fences_contain_the_quartiles(xs in finite_vec(64)) {
        let f = tukey_fences(&xs, 1.5).unwrap();
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = sorted.len();
        // The median never lies outside the fences.
        let med = sorted[n / 2];
        prop_assert!(med >= f.lower - 1e-9 && med <= f.upper + 1e-9);
    }

    #[test]
    fn rolling_window_median_matches_naive(
        xs in prop::collection::vec(-1e3f64..1e3, 1..200),
        cap in 1usize..20,
    ) {
        let mut w = RollingWindow::new(cap);
        for (i, &x) in xs.iter().enumerate() {
            w.push(x);
            let lo = (i + 1).saturating_sub(cap);
            let mut naive: Vec<f64> = xs[lo..=i].to_vec();
            naive.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let n = naive.len();
            let expect = if n % 2 == 1 {
                naive[n / 2]
            } else {
                (naive[n / 2 - 1] + naive[n / 2]) / 2.0
            };
            prop_assert!((w.median().unwrap() - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn series_window_sum_matches_slice_sum(
        values in prop::collection::vec(-100.0f64..100.0, 0..64),
        from in -10i64..80,
        span in 0i64..80,
    ) {
        let ts = TimeSeries::from_values(0, 1, values);
        let a = ts.sum_window(from, from + span);
        let b: f64 = ts.window(from, from + span).iter().sum();
        prop_assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn mse_nonnegative_and_zero_on_self(xs in finite_vec(64)) {
        prop_assert_eq!(mean_squared_error(&xs, &xs), 0.0);
        let ys: Vec<f64> = xs.iter().map(|x| x + 1.0).collect();
        prop_assert!((mean_squared_error(&xs, &ys) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn components_partition_all_nodes(
        series in prop::collection::vec(prop::collection::vec(-100.0f64..100.0, 4..12), 0..12),
        tau in 0.0f64..1.0,
    ) {
        let refs: Vec<&[f64]> = series.iter().map(|s| s.as_slice()).collect();
        let comps = connected_components(&refs, tau);
        let mut seen: Vec<usize> = comps.iter().flatten().copied().collect();
        seen.sort_unstable();
        let expect: Vec<usize> = (0..series.len()).collect();
        prop_assert_eq!(seen, expect);
    }
}
