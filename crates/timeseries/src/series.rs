//! The fixed-interval time-series type (Definition II.1).
//!
//! A time series is a sequence of observations `x_1 … x_N` taken at a fixed
//! interval starting at a known timestamp. Following the paper, elements can
//! be addressed either by *index* or by *timestamp*; the conversion is
//! `(timestamp − start) / interval`.

use serde::{Deserialize, Serialize};

/// A fixed-interval sequence of `f64` observations.
///
/// Timestamps are expressed in seconds (Unix-epoch style, but any consistent
/// origin works — the simulator uses seconds since simulation start).
///
/// # Examples
///
/// ```
/// use pinsql_timeseries::TimeSeries;
///
/// let ts = TimeSeries::from_values(100, 1, vec![1.0, 2.0, 3.0]);
/// assert_eq!(ts.len(), 3);
/// assert_eq!(ts.at(101), Some(2.0));     // by timestamp
/// assert_eq!(ts.values()[1], 2.0);       // by index
/// assert_eq!(ts.end(), 103);             // exclusive end timestamp
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    start: i64,
    interval: u32,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series starting at `start` with the given sampling
    /// interval in seconds.
    ///
    /// # Panics
    /// Panics if `interval` is zero.
    pub fn new(start: i64, interval: u32) -> Self {
        assert!(interval > 0, "time-series interval must be positive");
        Self { start, interval, values: Vec::new() }
    }

    /// Creates a series from existing observations.
    ///
    /// # Panics
    /// Panics if `interval` is zero.
    pub fn from_values(start: i64, interval: u32, values: Vec<f64>) -> Self {
        assert!(interval > 0, "time-series interval must be positive");
        Self { start, interval, values }
    }

    /// Creates a zero-filled series covering `[start, start + n*interval)`.
    pub fn zeros(start: i64, interval: u32, n: usize) -> Self {
        Self::from_values(start, interval, vec![0.0; n])
    }

    /// Builds a series by evaluating `f` at each timestamp.
    pub fn from_fn(start: i64, interval: u32, n: usize, mut f: impl FnMut(i64) -> f64) -> Self {
        let values = (0..n).map(|i| f(start + i as i64 * interval as i64)).collect();
        Self::from_values(start, interval, values)
    }

    /// Timestamp of the first observation.
    #[inline]
    pub fn start(&self) -> i64 {
        self.start
    }

    /// Exclusive end timestamp: the instant just after the last observation's
    /// interval.
    #[inline]
    pub fn end(&self) -> i64 {
        self.start + self.values.len() as i64 * self.interval as i64
    }

    /// Sampling interval in seconds.
    #[inline]
    pub fn interval(&self) -> u32 {
        self.interval
    }

    /// Number of observations.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the series holds no observations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The raw observations.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the raw observations.
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Consumes the series, returning its observations.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Appends one observation at the next interval boundary.
    #[inline]
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Converts a timestamp to an index, if it falls within the series.
    #[inline]
    pub fn index_of(&self, timestamp: i64) -> Option<usize> {
        if timestamp < self.start {
            return None;
        }
        let idx = ((timestamp - self.start) / self.interval as i64) as usize;
        (idx < self.values.len()).then_some(idx)
    }

    /// Converts an index to the timestamp at which it was observed.
    #[inline]
    pub fn timestamp_of(&self, index: usize) -> i64 {
        self.start + index as i64 * self.interval as i64
    }

    /// Observation at `timestamp`, or `None` outside the series.
    #[inline]
    pub fn at(&self, timestamp: i64) -> Option<f64> {
        self.index_of(timestamp).map(|i| self.values[i])
    }

    /// Returns the sub-slice of observations covering `[from, to)`
    /// (timestamps), clamped to the available range. Returns an empty slice
    /// when the window does not intersect the series.
    pub fn window(&self, from: i64, to: i64) -> &[f64] {
        if self.values.is_empty() || to <= from {
            return &[];
        }
        let step = self.interval as i64;
        let lo = ((from - self.start).max(0) / step) as usize;
        // Round the exclusive end up so a partially covered interval counts.
        let hi_ts = to.min(self.end());
        if hi_ts <= self.start {
            return &[];
        }
        let hi = (((hi_ts - self.start) + step - 1) / step) as usize;
        let lo = lo.min(self.values.len());
        let hi = hi.min(self.values.len());
        &self.values[lo..hi]
    }

    /// Returns a new series restricted to `[from, to)`, clamped to the
    /// available range.
    pub fn slice(&self, from: i64, to: i64) -> TimeSeries {
        let w = self.window(from, to);
        let start = if w.is_empty() {
            from
        } else {
            // First timestamp actually covered.
            let step = self.interval as i64;
            let lo = ((from - self.start).max(0) / step) as usize;
            self.timestamp_of(lo)
        };
        TimeSeries::from_values(start, self.interval, w.to_vec())
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Sum of observations inside `[from, to)`.
    pub fn sum_window(&self, from: i64, to: i64) -> f64 {
        self.window(from, to).iter().sum()
    }

    /// Element-wise addition of another series with the *same* start and
    /// interval. Series of different lengths are added over the common prefix
    /// and the longer tail is kept from `self` (or appended from `other`).
    ///
    /// # Panics
    /// Panics if the start timestamps or intervals differ.
    pub fn add_assign(&mut self, other: &TimeSeries) {
        assert_eq!(self.start, other.start, "series starts differ");
        assert_eq!(self.interval, other.interval, "series intervals differ");
        if other.values.len() > self.values.len() {
            self.values.resize(other.values.len(), 0.0);
        }
        for (a, b) in self.values.iter_mut().zip(other.values.iter()) {
            *a += *b;
        }
    }

    /// Element-wise ratio `self / denom`, mapping divisions by values whose
    /// magnitude is below `eps` to `0.0`. Used by the scale-trend-level score
    /// `session_Q(t) / session(t)` where the instance session can be zero.
    pub fn ratio(&self, denom: &TimeSeries, eps: f64) -> TimeSeries {
        assert_eq!(self.start, denom.start, "series starts differ");
        assert_eq!(self.interval, denom.interval, "series intervals differ");
        let n = self.values.len().min(denom.values.len());
        let values = (0..n)
            .map(|i| {
                let d = denom.values[i];
                if d.abs() < eps {
                    0.0
                } else {
                    self.values[i] / d
                }
            })
            .collect();
        TimeSeries::from_values(self.start, self.interval, values)
    }

    /// Iterator over `(timestamp, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (i64, f64)> + '_ {
        let start = self.start;
        let step = self.interval as i64;
        self.values.iter().enumerate().map(move |(i, &v)| (start + i as i64 * step, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(values: Vec<f64>) -> TimeSeries {
        TimeSeries::from_values(10, 2, values)
    }

    #[test]
    fn empty_series_reports_empty() {
        let ts = TimeSeries::new(0, 1);
        assert!(ts.is_empty());
        assert_eq!(ts.len(), 0);
        assert_eq!(ts.end(), 0);
        assert_eq!(ts.at(0), None);
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_panics() {
        let _ = TimeSeries::new(0, 0);
    }

    #[test]
    fn timestamp_index_equivalence() {
        // Def II.1: X_{t1} and X_1 address the same observation.
        let ts = s(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(ts.at(10), Some(1.0));
        assert_eq!(ts.at(11), Some(1.0)); // mid-interval maps to the covering sample
        assert_eq!(ts.at(12), Some(2.0));
        assert_eq!(ts.index_of(16), Some(3));
        assert_eq!(ts.timestamp_of(3), 16);
        assert_eq!(ts.at(18), None);
        assert_eq!(ts.at(9), None);
    }

    #[test]
    fn window_clamps_to_range() {
        let ts = s(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(ts.window(12, 16), &[2.0, 3.0]);
        assert_eq!(ts.window(0, 100), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(ts.window(16, 12), &[] as &[f64]);
        assert_eq!(ts.window(100, 200), &[] as &[f64]);
        // partially covered final interval rounds up
        assert_eq!(ts.window(12, 15), &[2.0, 3.0]);
    }

    #[test]
    fn slice_preserves_interval_and_start() {
        let ts = s(vec![1.0, 2.0, 3.0, 4.0]);
        let sub = ts.slice(12, 16);
        assert_eq!(sub.start(), 12);
        assert_eq!(sub.interval(), 2);
        assert_eq!(sub.values(), &[2.0, 3.0]);
    }

    #[test]
    fn from_fn_evaluates_at_timestamps() {
        let ts = TimeSeries::from_fn(5, 1, 4, |t| t as f64 * 10.0);
        assert_eq!(ts.values(), &[50.0, 60.0, 70.0, 80.0]);
    }

    #[test]
    fn add_assign_extends_shorter_series() {
        let mut a = s(vec![1.0, 2.0]);
        let b = s(vec![10.0, 10.0, 10.0]);
        a.add_assign(&b);
        assert_eq!(a.values(), &[11.0, 12.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "starts differ")]
    fn add_assign_rejects_misaligned() {
        let mut a = TimeSeries::from_values(0, 1, vec![1.0]);
        let b = TimeSeries::from_values(1, 1, vec![1.0]);
        a.add_assign(&b);
    }

    #[test]
    fn ratio_maps_zero_denominator_to_zero() {
        let a = s(vec![2.0, 4.0, 6.0]);
        let b = s(vec![1.0, 0.0, 2.0]);
        let r = a.ratio(&b, 1e-9);
        assert_eq!(r.values(), &[2.0, 0.0, 3.0]);
    }

    #[test]
    fn sum_window_matches_manual() {
        let ts = s(vec![1.0, 2.0, 3.0, 4.0]);
        assert!((ts.sum_window(12, 18) - 9.0).abs() < 1e-12);
        assert!((ts.sum() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn iter_yields_timestamp_value_pairs() {
        let ts = s(vec![1.0, 2.0]);
        let pairs: Vec<_> = ts.iter().collect();
        assert_eq!(pairs, vec![(10, 1.0), (12, 2.0)]);
    }
}
