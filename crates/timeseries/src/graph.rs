//! Correlation graphs and connected components for SQL-template clustering.
//!
//! §VI clusters SQL templates by the trend of their execution counts: the
//! pairwise Pearson correlation of the `#execution` series is thresholded at
//! `τ` to form an adjacency relation, performance metrics are added as
//! *helper nodes* to densify the graph, and the connected components of the
//! result are the business clusters. Helper nodes are filtered from the
//! final clusters by the caller.
//!
//! The pairwise pass runs over a [`NormalizedMatrix`]: every series is
//! centered and scaled to unit norm **once**, so each of the `O(N²)` pairs
//! is a single dot product over contiguous memory instead of a fresh
//! mean/variance recomputation. Rows of the triangular pair loop are
//! independent, so the build optionally fans out across threads
//! ([`CorrelationGraph::with_parallelism`]); the resulting components are
//! identical for every parallelism level because union-find connectivity
//! does not depend on edge insertion order and [`UnionFind::components`]
//! returns a canonical ordering.

use crate::matrix::{dot_kernel, NormalizedMatrix};
use crate::par::{effective_parallelism, par_flat_map};

/// Disjoint-set union with path halving and union by size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self { parent: (0..n as u32).collect(), size: vec![1; n] }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the structure tracks no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: usize) -> usize {
        loop {
            let p = self.parent[x] as usize;
            if p == x {
                return x;
            }
            let gp = self.parent[p];
            self.parent[x] = gp; // path halving
            x = gp as usize;
        }
    }

    /// Merges the sets containing `a` and `b`; returns `true` if they were
    /// previously disjoint.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        true
    }

    /// True when `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Groups element indices by set. Sets are ordered by their smallest
    /// member; members within a set are in ascending order.
    ///
    /// The ordering is *canonical*: it depends only on the connectivity
    /// relation, never on the sequence of `union` calls that produced it —
    /// the property that lets serial and parallel graph builds return
    /// byte-identical clusterings.
    pub fn components(&mut self) -> Vec<Vec<usize>> {
        let n = self.parent.len();
        let mut by_root: Vec<Vec<usize>> = vec![Vec::new(); n];
        for i in 0..n {
            let r = self.find(i);
            by_root[r].push(i);
        }
        let mut comps: Vec<Vec<usize>> =
            by_root.into_iter().filter(|c| !c.is_empty()).collect();
        // Members are pushed in ascending order, so c[0] is the minimum.
        comps.sort_by_key(|c| c[0]);
        comps
    }
}

/// A correlation graph over a set of equally-long series.
///
/// Build one with [`CorrelationGraph::new`] (serial) or
/// [`CorrelationGraph::with_parallelism`], then extract clusters with
/// [`CorrelationGraph::components`].
pub struct CorrelationGraph {
    uf: UnionFind,
}

impl CorrelationGraph {
    /// Builds the graph serially: nodes `i, j` are adjacent when
    /// `pearson(series[i], series[j]) > tau`. Series are truncated to the
    /// shortest length present; zero-variance series are isolated nodes.
    pub fn new(series: &[&[f64]], tau: f64) -> Self {
        Self::with_parallelism(series, tau, 1)
    }

    /// Builds the graph with up to `parallelism` worker threads (`0` = all
    /// cores, `1` = serial). The clustering is identical for every value.
    pub fn with_parallelism(series: &[&[f64]], tau: f64, parallelism: usize) -> Self {
        let matrix = NormalizedMatrix::from_series(series);
        Self::from_matrix(&matrix, tau, parallelism)
    }

    /// Builds the graph from a pre-normalized matrix (callers that already
    /// hold one — e.g. to reuse it for other correlations — skip the
    /// normalization pass entirely).
    pub fn from_matrix(matrix: &NormalizedMatrix, tau: f64, parallelism: usize) -> Self {
        let n = matrix.len();
        let mut uf = UnionFind::new(n);
        if n == 0 {
            return Self { uf };
        }
        if effective_parallelism(parallelism) <= 1 {
            // Serial path: interleave dot products with unions so pairs
            // already known to be connected are skipped.
            for i in 0..n {
                let Some(ui) = matrix.row(i) else { continue };
                for j in (i + 1)..n {
                    if uf.connected(i, j) {
                        // Already in the same component: the dot product
                        // can't change the clustering, skip it.
                        continue;
                    }
                    let Some(uj) = matrix.row(j) else { continue };
                    if dot_kernel(ui, uj) > tau {
                        uf.union(i, j);
                    }
                }
            }
        } else {
            // Parallel path: rows of the triangular pair loop are
            // independent, so compute each row's above-threshold edges in
            // a fan-out and union them afterwards in index order. The
            // component structure is the same as the serial path's — extra
            // within-component edges never change connectivity.
            let edges: Vec<(u32, u32)> = par_flat_map(n, parallelism, |i| {
                let mut row_edges = Vec::new();
                let Some(ui) = matrix.row(i) else { return row_edges };
                for j in (i + 1)..n {
                    let Some(uj) = matrix.row(j) else { continue };
                    if dot_kernel(ui, uj) > tau {
                        row_edges.push((i as u32, j as u32));
                    }
                }
                row_edges
            });
            for (i, j) in edges {
                uf.union(i as usize, j as usize);
            }
        }
        Self { uf }
    }

    /// Connected components as lists of node indices (canonical order: by
    /// smallest member).
    pub fn components(mut self) -> Vec<Vec<usize>> {
        self.uf.components()
    }
}

/// One-shot convenience: clusters the series at threshold `tau`.
///
/// ```
/// use pinsql_timeseries::connected_components;
/// let a = [1.0, 2.0, 3.0, 4.0];
/// let b = [2.0, 4.0, 6.0, 8.0];   // correlated with a
/// let c = [9.0, 1.0, 8.0, 2.0];   // correlated with neither
/// let comps = connected_components(&[&a, &b, &c], 0.8);
/// assert_eq!(comps, vec![vec![0, 1], vec![2]]);
/// ```
pub fn connected_components(series: &[&[f64]], tau: f64) -> Vec<Vec<usize>> {
    CorrelationGraph::new(series, tau).components()
}

/// [`connected_components`] with a parallelism knob (`0` = all cores,
/// `1` = serial); the result is identical for every value.
pub fn connected_components_par(
    series: &[&[f64]],
    tau: f64,
    parallelism: usize,
) -> Vec<Vec<usize>> {
    CorrelationGraph::with_parallelism(series, tau, parallelism).components()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.len(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(3, 4));
        assert!(!uf.union(1, 0));
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 3));
        uf.union(1, 3);
        assert!(uf.connected(0, 4));
        let comps = uf.components();
        assert_eq!(comps, vec![vec![0, 1, 3, 4], vec![2]]);
    }

    #[test]
    fn components_order_is_union_order_independent() {
        // Two union sequences producing the same connectivity must yield
        // the same components vector, whatever roots they end up with.
        let mut a = UnionFind::new(6);
        a.union(4, 5);
        a.union(1, 2);
        a.union(0, 1);
        let mut b = UnionFind::new(6);
        b.union(0, 1);
        b.union(2, 1);
        b.union(5, 4);
        assert_eq!(a.components(), b.components());
        assert_eq!(a.components(), vec![vec![0, 1, 2], vec![3], vec![4, 5]]);
    }

    #[test]
    fn empty_graph_has_no_components() {
        let comps = connected_components(&[], 0.5);
        assert!(comps.is_empty());
    }

    #[test]
    fn flat_series_are_isolated() {
        let flat = [5.0, 5.0, 5.0, 5.0];
        let ramp = [1.0, 2.0, 3.0, 4.0];
        let comps = connected_components(&[&flat, &ramp, &flat], 0.5);
        assert_eq!(comps.len(), 3);
    }

    #[test]
    fn transitive_clustering_via_chain() {
        // a~b and b~c but a and c only weakly related: a chain still forms
        // one connected component — exactly what business clustering wants
        // (templates of one business joined through intermediaries).
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [1.1, 2.2, 2.9, 4.2, 4.9, 6.1];
        let c = [1.0, 2.5, 2.7, 4.5, 4.6, 6.5];
        let comps = connected_components(&[&a, &b, &c], 0.95);
        assert_eq!(comps.len(), 1);
    }

    #[test]
    fn threshold_splits_weak_pairs() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let noisy = [1.0, 3.5, 2.0, 4.5]; // positive but imperfect correlation
        let comps_strict = connected_components(&[&a, &noisy], 0.999);
        assert_eq!(comps_strict.len(), 2);
        let comps_loose = connected_components(&[&a, &noisy], 0.3);
        assert_eq!(comps_loose.len(), 1);
    }

    #[test]
    fn anti_correlated_series_do_not_join() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [4.0, 3.0, 2.0, 1.0];
        let comps = connected_components(&[&a, &b], 0.5);
        assert_eq!(comps.len(), 2);
    }

    #[test]
    fn different_lengths_truncate_to_common_prefix() {
        let a = [1.0, 2.0, 3.0, 4.0, 100.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        let comps = connected_components(&[&a, &b], 0.9);
        assert_eq!(comps.len(), 1);
    }

    #[test]
    fn helper_node_bridges_two_templates() {
        // Two templates that correlate with a metric but (due to noise) not
        // quite with each other still cluster together via the helper node —
        // the pattern §VI uses performance metrics for.
        let t1 = [1.0, 2.0, 1.0, 5.0, 6.0, 5.0];
        let t2 = [2.0, 1.0, 2.0, 6.0, 5.0, 6.0];
        let metric = [1.5, 1.5, 1.5, 5.5, 5.5, 5.5];
        let direct = connected_components(&[&t1, &t2], 0.9);
        assert_eq!(direct.len(), 2, "templates alone should not join at τ=0.9");
        let with_helper = connected_components(&[&t1, &t2, &metric], 0.9);
        assert_eq!(with_helper.len(), 1, "helper node should bridge them");
    }

    #[test]
    fn parallel_build_matches_serial() {
        // Deterministic pseudo-random series with a few planted clusters.
        let mut x = 0x2545F4914F6CDD1Du64;
        let mut series_data: Vec<Vec<f64>> = Vec::new();
        for i in 0..120usize {
            let base = i % 7;
            let s: Vec<f64> = (0..24)
                .map(|t| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    (t as f64 * (base as f64 + 1.0) / 3.0).sin() * 10.0
                        + (x % 100) as f64 / 100.0
                })
                .collect();
            series_data.push(s);
        }
        let refs: Vec<&[f64]> = series_data.iter().map(Vec::as_slice).collect();
        let serial = connected_components_par(&refs, 0.8, 1);
        for p in [0, 2, 4, 16] {
            assert_eq!(connected_components_par(&refs, 0.8, p), serial, "p={p}");
        }
    }
}
