//! Correlation graphs and connected components for SQL-template clustering.
//!
//! §VI clusters SQL templates by the trend of their execution counts: the
//! pairwise Pearson correlation of the `#execution` series is thresholded at
//! `τ` to form an adjacency relation, performance metrics are added as
//! *helper nodes* to densify the graph, and the connected components of the
//! result are the business clusters. Helper nodes are filtered from the
//! final clusters by the caller.
//!
//! For `N` series of length `L` the pairwise pass is `O(N²·L)` dot products
//! over pre-normalized vectors (each series is centered and scaled to unit
//! norm once), which keeps the constant small; PinSQL clusters at 1-minute
//! granularity precisely so that `L` stays tiny.

/// Disjoint-set union with path halving and union by size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self { parent: (0..n as u32).collect(), size: vec![1; n] }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the structure tracks no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: usize) -> usize {
        loop {
            let p = self.parent[x] as usize;
            if p == x {
                return x;
            }
            let gp = self.parent[p];
            self.parent[x] = gp; // path halving
            x = gp as usize;
        }
    }

    /// Merges the sets containing `a` and `b`; returns `true` if they were
    /// previously disjoint.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        true
    }

    /// True when `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Groups element indices by set. Sets are ordered by their smallest
    /// member; members within a set are in ascending order.
    pub fn components(&mut self) -> Vec<Vec<usize>> {
        let n = self.parent.len();
        let mut by_root: Vec<Vec<usize>> = vec![Vec::new(); n];
        for i in 0..n {
            let r = self.find(i);
            by_root[r].push(i);
        }
        by_root.into_iter().filter(|c| !c.is_empty()).collect()
    }
}

/// A node's series, pre-normalized for fast pairwise correlation.
struct NormalizedNode {
    /// Centered, unit-norm values; `None` when the series has no variance
    /// (such nodes correlate with nothing).
    unit: Option<Vec<f64>>,
}

fn normalize(values: &[f64], len: usize) -> NormalizedNode {
    let n = len.min(values.len());
    if n < 2 {
        return NormalizedNode { unit: None };
    }
    let mean = values[..n].iter().sum::<f64>() / n as f64;
    let mut centered: Vec<f64> = values[..n].iter().map(|&v| v - mean).collect();
    let norm = centered.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm <= f64::EPSILON {
        return NormalizedNode { unit: None };
    }
    centered.iter_mut().for_each(|v| *v /= norm);
    NormalizedNode { unit: Some(centered) }
}

/// A correlation graph over a set of equally-long series.
///
/// Build one with [`CorrelationGraph::new`], then extract clusters with
/// [`CorrelationGraph::components`].
pub struct CorrelationGraph {
    uf: UnionFind,
}

impl CorrelationGraph {
    /// Builds the graph: nodes `i, j` are adjacent when
    /// `pearson(series[i], series[j]) > tau`. Series are truncated to the
    /// shortest length present; zero-variance series are isolated nodes.
    pub fn new(series: &[&[f64]], tau: f64) -> Self {
        let n = series.len();
        let mut uf = UnionFind::new(n);
        if n == 0 {
            return Self { uf };
        }
        let min_len = series.iter().map(|s| s.len()).min().unwrap_or(0);
        let nodes: Vec<NormalizedNode> = series.iter().map(|s| normalize(s, min_len)).collect();
        for i in 0..n {
            let Some(ui) = nodes[i].unit.as_deref() else { continue };
            for (j, node_j) in nodes.iter().enumerate().skip(i + 1) {
                if uf.connected(i, j) {
                    // Already in the same component: the dot product can't
                    // change the clustering, skip it.
                    continue;
                }
                let Some(uj) = node_j.unit.as_deref() else { continue };
                let dot: f64 = ui.iter().zip(uj).map(|(a, b)| a * b).sum();
                if dot > tau {
                    uf.union(i, j);
                }
            }
        }
        Self { uf }
    }

    /// Connected components as lists of node indices.
    pub fn components(mut self) -> Vec<Vec<usize>> {
        self.uf.components()
    }
}

/// One-shot convenience: clusters the series at threshold `tau`.
///
/// ```
/// use pinsql_timeseries::connected_components;
/// let a = [1.0, 2.0, 3.0, 4.0];
/// let b = [2.0, 4.0, 6.0, 8.0];   // correlated with a
/// let c = [9.0, 1.0, 8.0, 2.0];   // correlated with neither
/// let comps = connected_components(&[&a, &b, &c], 0.8);
/// assert_eq!(comps, vec![vec![0, 1], vec![2]]);
/// ```
pub fn connected_components(series: &[&[f64]], tau: f64) -> Vec<Vec<usize>> {
    CorrelationGraph::new(series, tau).components()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.len(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(3, 4));
        assert!(!uf.union(1, 0));
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 3));
        uf.union(1, 3);
        assert!(uf.connected(0, 4));
        let comps = uf.components();
        assert_eq!(comps, vec![vec![0, 1, 3, 4], vec![2]]);
    }

    #[test]
    fn empty_graph_has_no_components() {
        let comps = connected_components(&[], 0.5);
        assert!(comps.is_empty());
    }

    #[test]
    fn flat_series_are_isolated() {
        let flat = [5.0, 5.0, 5.0, 5.0];
        let ramp = [1.0, 2.0, 3.0, 4.0];
        let comps = connected_components(&[&flat, &ramp, &flat], 0.5);
        assert_eq!(comps.len(), 3);
    }

    #[test]
    fn transitive_clustering_via_chain() {
        // a~b and b~c but a and c only weakly related: a chain still forms
        // one connected component — exactly what business clustering wants
        // (templates of one business joined through intermediaries).
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [1.1, 2.2, 2.9, 4.2, 4.9, 6.1];
        let c = [1.0, 2.5, 2.7, 4.5, 4.6, 6.5];
        let comps = connected_components(&[&a, &b, &c], 0.95);
        assert_eq!(comps.len(), 1);
    }

    #[test]
    fn threshold_splits_weak_pairs() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let noisy = [1.0, 3.5, 2.0, 4.5]; // positive but imperfect correlation
        let comps_strict = connected_components(&[&a, &noisy], 0.999);
        assert_eq!(comps_strict.len(), 2);
        let comps_loose = connected_components(&[&a, &noisy], 0.3);
        assert_eq!(comps_loose.len(), 1);
    }

    #[test]
    fn anti_correlated_series_do_not_join() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [4.0, 3.0, 2.0, 1.0];
        let comps = connected_components(&[&a, &b], 0.5);
        assert_eq!(comps.len(), 2);
    }

    #[test]
    fn different_lengths_truncate_to_common_prefix() {
        let a = [1.0, 2.0, 3.0, 4.0, 100.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        let comps = connected_components(&[&a, &b], 0.9);
        assert_eq!(comps.len(), 1);
    }

    #[test]
    fn helper_node_bridges_two_templates() {
        // Two templates that correlate with a metric but (due to noise) not
        // quite with each other still cluster together via the helper node —
        // the pattern §VI uses performance metrics for.
        let t1 = [1.0, 2.0, 1.0, 5.0, 6.0, 5.0];
        let t2 = [2.0, 1.0, 2.0, 6.0, 5.0, 6.0];
        let metric = [1.5, 1.5, 1.5, 5.5, 5.5, 5.5];
        let direct = connected_components(&[&t1, &t2], 0.9);
        assert_eq!(direct.len(), 2, "templates alone should not join at τ=0.9");
        let with_helper = connected_components(&[&t1, &t2, &metric], 0.9);
        assert_eq!(with_helper.len(), 1, "helper node should bridge them");
    }
}
