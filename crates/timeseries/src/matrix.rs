//! A z-scored, length-aligned, contiguous series matrix — the substrate
//! that turns pairwise Pearson correlation into a dot product.
//!
//! `pearson(x, y)` recomputes both series' means and norms on every call:
//! for the `O(N²)` pair loop of §VI template clustering that is
//! `O(N²·L)` *redundant* passes over the data. Building a
//! [`NormalizedMatrix`] once per case hoists the per-series moments out of
//! the pair loop entirely: each row is centered and scaled to unit norm,
//! so `pearson(x_i, x_j) == dot(row_i, row_j)` exactly, and the pair loop
//! degrades to `O(N²·L)` fused multiply-adds over one contiguous
//! allocation — cache-friendly, branch-free, and trivially splittable
//! across threads by row.
//!
//! Zero-variance rows (constant series) carry no trend information; they
//! are flagged invalid and every dot product involving them is defined as
//! `0.0`, matching [`crate::stats::pearson`]'s degenerate-input contract.
//! Rows containing non-finite samples are treated the same way: a NaN or
//! infinite sample poisons the whole centered row, so it is flagged
//! invalid rather than propagating garbage through the pair loop.

/// Row-major matrix of unit-norm centered series.
///
/// Built once per diagnosis case; all rows share one contiguous buffer and
/// a common length (input series are truncated to the shortest present,
/// like the pairwise `pearson` over common prefixes).
#[derive(Debug, Clone)]
pub struct NormalizedMatrix {
    /// `n_rows * row_len` values, row-major.
    data: Vec<f64>,
    row_len: usize,
    n_rows: usize,
    /// `false` for rows whose source series had (numerically) no variance
    /// or fewer than two samples.
    valid: Vec<bool>,
}

impl NormalizedMatrix {
    /// Builds the matrix from raw series: truncates every series to the
    /// shortest length present, centers it, and scales it to unit norm.
    pub fn from_series(series: &[&[f64]]) -> Self {
        let n_rows = series.len();
        let row_len = series.iter().map(|s| s.len()).min().unwrap_or(0);
        let mut data = vec![0.0f64; n_rows * row_len];
        let mut valid = vec![false; n_rows];
        if row_len >= 2 {
            for (i, s) in series.iter().enumerate() {
                let row = &mut data[i * row_len..(i + 1) * row_len];
                let mean = s[..row_len].iter().sum::<f64>() / row_len as f64;
                let mut norm_sq = 0.0;
                for (d, &v) in row.iter_mut().zip(&s[..row_len]) {
                    let c = v - mean;
                    *d = c;
                    norm_sq += c * c;
                }
                let norm = norm_sq.sqrt();
                // A non-finite norm means the source row held NaN/Inf —
                // degenerate, exactly like zero variance.
                if norm.is_finite() && norm > f64::EPSILON {
                    row.iter_mut().for_each(|v| *v /= norm);
                    valid[i] = true;
                }
            }
        }
        Self { data, row_len, n_rows, valid }
    }

    /// Number of rows (series).
    pub fn len(&self) -> usize {
        self.n_rows
    }

    /// True when the matrix holds no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Common (aligned) series length.
    pub fn row_len(&self) -> usize {
        self.row_len
    }

    /// The normalized row `i`, or `None` when the source series was
    /// degenerate (constant or too short).
    pub fn row(&self, i: usize) -> Option<&[f64]> {
        if self.valid[i] {
            Some(&self.data[i * self.row_len..(i + 1) * self.row_len])
        } else {
            None
        }
    }

    /// True when row `i` carries trend information.
    pub fn is_valid(&self, i: usize) -> bool {
        self.valid[i]
    }

    /// Pearson correlation of rows `i` and `j` as a plain dot product;
    /// `0.0` when either row is degenerate. Clamped to `[-1, 1]` so ulp
    /// overshoot on near-collinear rows cannot leak out of the Pearson
    /// range callers rely on.
    pub fn dot(&self, i: usize, j: usize) -> f64 {
        match (self.row(i), self.row(j)) {
            (Some(a), Some(b)) => dot_kernel(a, b).clamp(-1.0, 1.0),
            _ => 0.0,
        }
    }
}

/// The canonical deterministic dot kernel now lives with the other slice
/// kernels; re-exported here because the matrix is its defining consumer.
pub use crate::kernels::dot as dot_kernel;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::pearson;

    #[test]
    fn dot_matches_pearson() {
        let a = [1.0, 2.5, 3.0, 4.8, 5.0];
        let b = [2.0, 1.0, 4.0, 4.0, 6.5];
        let c = [9.0, 7.0, 5.0, 3.0, 1.0];
        let m = NormalizedMatrix::from_series(&[&a, &b, &c]);
        for (i, x) in [a, b, c].iter().enumerate() {
            for (j, y) in [a, b, c].iter().enumerate() {
                let expect = pearson(x, y);
                let got = m.dot(i, j);
                assert!((got - expect).abs() < 1e-12, "({i},{j}): {got} vs {expect}");
            }
        }
    }

    #[test]
    fn truncates_to_shortest_series() {
        let long = [1.0, 2.0, 3.0, 4.0, 100.0, -7.0];
        let short = [2.0, 4.0, 6.0, 8.0];
        let m = NormalizedMatrix::from_series(&[&long, &short]);
        assert_eq!(m.row_len(), 4);
        assert!((m.dot(0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_rows_are_invalid() {
        let flat = [3.0, 3.0, 3.0];
        let ramp = [1.0, 2.0, 3.0];
        let m = NormalizedMatrix::from_series(&[&flat, &ramp]);
        assert!(!m.is_valid(0));
        assert!(m.is_valid(1));
        assert!(m.row(0).is_none());
        assert_eq!(m.dot(0, 1), 0.0);
        assert!((m.dot(1, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let m = NormalizedMatrix::from_series(&[]);
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        let single = [5.0];
        let m = NormalizedMatrix::from_series(&[&single]);
        assert_eq!(m.len(), 1);
        assert!(!m.is_valid(0));
        assert_eq!(m.dot(0, 0), 0.0);
    }

    #[test]
    fn non_finite_rows_are_invalid() {
        let nan_row = [1.0, f64::NAN, 3.0];
        let inf_row = [1.0, f64::INFINITY, 3.0];
        let ramp = [1.0, 2.0, 3.0];
        let m = NormalizedMatrix::from_series(&[&nan_row, &inf_row, &ramp]);
        assert!(!m.is_valid(0));
        assert!(!m.is_valid(1));
        assert!(m.is_valid(2));
        for i in 0..3 {
            for j in 0..3 {
                let d = m.dot(i, j);
                assert!(d.is_finite(), "({i},{j}) produced {d}");
                assert!((-1.0..=1.0).contains(&d));
            }
        }
    }

    #[test]
    fn unit_norm_rows() {
        let a = [10.0, -4.0, 3.3, 8.0, 0.0];
        let m = NormalizedMatrix::from_series(&[&a]);
        let row = m.row(0).unwrap();
        let norm_sq: f64 = row.iter().map(|v| v * v).sum();
        assert!((norm_sq - 1.0).abs() < 1e-12);
        let mean: f64 = row.iter().sum::<f64>() / row.len() as f64;
        assert!(mean.abs() < 1e-12);
    }
}
