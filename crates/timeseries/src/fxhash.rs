//! A deterministic, allocation-free multiply-rotate hasher for hot paths.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3 behind a
//! per-process random seed. That is the right default against untrusted
//! keys, but every key hashed on the ingest hot path here is an in-repo
//! integer (a [`u64` SQL fingerprint](https://dev.mysql.com/doc/refman/8.0/en/performance-schema-statement-digests.html)-style
//! id or a dense slot index), so SipHash buys nothing and costs a long
//! dependency chain per lookup — and the random seed makes map iteration
//! order differ across *runs*, which every consumer then has to sort away.
//!
//! [`FxHasher`] is the word-at-a-time multiply-rotate scheme popularized
//! by rustc's `FxHashMap`: fold each 8-byte word into the state with a
//! rotate, an xor, and one multiplication by a mixing constant. Two or
//! three cycles per word, no seed, fully deterministic across runs and
//! platforms of equal endianness-normalized input (integers hash via
//! their little-endian bytes). It is **not** DoS-resistant — use it only
//! for keys an adversary cannot choose, which is every internal map in
//! this workspace.
//!
//! No external crates: the build container is offline, so this is grown
//! in-repo rather than pulled from `rustc-hash`.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The mixing constant: `2^64 / φ` rounded to odd, the same fixed-point
/// golden-ratio multiplier Fibonacci hashing uses, so consecutive small
/// integers scatter across the whole table.
const K: u64 = 0x9E37_79B9_7F4A_7C15;

/// Word-at-a-time multiply-rotate hasher (FxHash-style). Deterministic:
/// no seed, same digest in every process on every run.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.fold(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = [0u8; 8];
            word[..tail.len()].copy_from_slice(tail);
            // Fold the tail length in with the bytes so "ab" + "" and
            // "a" + "b" across two writes cannot collide trivially.
            self.fold(u64::from_le_bytes(word) ^ (tail.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.fold(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.fold(v as u64);
        self.fold((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.fold(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]; `Default` + zero-sized, so it also
/// satisfies serde's `Deserialize` bound for map types.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the deterministic [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the deterministic [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn digest<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_instances() {
        // The property SipHash's RandomState deliberately lacks.
        for v in [0u64, 1, 42, u64::MAX, 0x1234_5678_9ABC_DEF0] {
            assert_eq!(digest(&v), digest(&v));
        }
        assert_eq!(digest(&"select * from t"), digest(&"select * from t"));
    }

    #[test]
    fn small_integers_scatter() {
        // Fibonacci mixing must spread consecutive ids across high bits
        // (the bits HashMap's bucket index uses after the multiply).
        let digests: Vec<u64> = (0u64..64).map(|i| digest(&i)).collect();
        let mut top_bytes: Vec<u8> = digests.iter().map(|d| (d >> 56) as u8).collect();
        top_bytes.sort_unstable();
        top_bytes.dedup();
        assert!(top_bytes.len() > 32, "only {} distinct top bytes", top_bytes.len());
    }

    #[test]
    fn byte_stream_chunking_is_stable() {
        // One write of 11 bytes equals itself; differing lengths differ.
        let mut a = FxHasher::default();
        a.write(b"abcdefghijk");
        let mut b = FxHasher::default();
        b.write(b"abcdefghijk");
        assert_eq!(a.finish(), b.finish());

        let mut c = FxHasher::default();
        c.write(b"abcdefghij");
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut map: FxHashMap<u64, &str> = FxHashMap::default();
        map.insert(7, "seven");
        map.insert(11, "eleven");
        assert_eq!(map.get(&7), Some(&"seven"));
        assert_eq!(map.len(), 2);

        let mut set: FxHashSet<String> = FxHashSet::default();
        set.insert("a".into());
        assert!(set.contains("a"));
        assert!(!set.contains("b"));
    }
}
