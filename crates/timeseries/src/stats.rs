//! Statistical primitives: means, variance, covariance, Pearson correlation
//! (plain and weighted), min-max normalization, and MSE.
//!
//! The High-impact SQL Identification Module (§V of the paper) fuses three
//! scores that all live in `[-1, 1]`:
//!
//! * **trend-level** — a *weighted* Pearson correlation that emphasizes the
//!   anomaly window through the sigmoid weights in [`crate::weights`];
//! * **scale-level** — a min-max normalization of the per-template active
//!   session mass rescaled to `[-1, 1]`;
//! * **scale-trend-level** — a plain Pearson correlation of the template's
//!   session *share* against the instance session.
//!
//! All functions treat degenerate inputs (empty slices, zero variance, zero
//! total weight) by returning `0.0` rather than `NaN`, because a template
//! with a constant metric carries no trend information — correlating with it
//! should neither promote nor demote it in a ranking.

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; `0.0` for slices with fewer than two elements.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Population covariance over the common prefix of `xs` and `ys`.
pub fn covariance(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len().min(ys.len());
    if n < 2 {
        return 0.0;
    }
    let mx = mean(&xs[..n]);
    let my = mean(&ys[..n]);
    xs[..n]
        .iter()
        .zip(&ys[..n])
        .map(|(&x, &y)| (x - mx) * (y - my))
        .sum::<f64>()
        / n as f64
}

/// Pearson correlation coefficient over the common prefix of `xs` and `ys`.
///
/// Returns `0.0` when either side has (numerically) zero variance, so that a
/// flat series is treated as uncorrelated rather than producing `NaN`; the
/// same applies when either input contains non-finite samples (a gappy
/// metric carries no usable trend either).
///
/// ```
/// use pinsql_timeseries::pearson;
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [2.0, 4.0, 6.0, 8.0];
/// assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
/// let z = [8.0, 6.0, 4.0, 2.0];
/// assert!((pearson(&x, &z) + 1.0).abs() < 1e-12);
/// ```
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len().min(ys.len());
    if n < 2 {
        return 0.0;
    }
    let mx = mean(&xs[..n]);
    let my = mean(&ys[..n]);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs[..n].iter().zip(&ys[..n]) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    let denom = (sxx * syy).sqrt();
    if !(denom > f64::EPSILON) {
        // `!(>)` also catches a NaN denominator from non-finite inputs.
        return 0.0;
    }
    let r = sxy / denom;
    if r.is_finite() {
        r.clamp(-1.0, 1.0)
    } else {
        0.0
    }
}

/// Weighted mean `m(X; W) = Σ w_i x_i / Σ w_i`; `0.0` when the total weight
/// is (numerically) zero.
pub fn weighted_mean(xs: &[f64], ws: &[f64]) -> f64 {
    let n = xs.len().min(ws.len());
    let wsum: f64 = ws[..n].iter().sum();
    if !(wsum > f64::EPSILON) {
        return 0.0;
    }
    xs[..n].iter().zip(&ws[..n]).map(|(&x, &w)| w * x).sum::<f64>() / wsum
}

/// Weighted covariance
/// `cov(X, Y; W) = Σ w_i (x_i − m(X;W)) (y_i − m(Y;W)) / Σ w_i` (§V).
pub fn weighted_covariance(xs: &[f64], ys: &[f64], ws: &[f64]) -> f64 {
    let n = xs.len().min(ys.len()).min(ws.len());
    if n < 2 {
        return 0.0;
    }
    let wsum: f64 = ws[..n].iter().sum();
    if !(wsum > f64::EPSILON) {
        return 0.0;
    }
    let mx = weighted_mean(&xs[..n], &ws[..n]);
    let my = weighted_mean(&ys[..n], &ws[..n]);
    let mut acc = 0.0;
    for i in 0..n {
        acc += ws[i] * (xs[i] - mx) * (ys[i] - my);
    }
    acc / wsum
}

/// Weighted Pearson correlation
/// `corr(X, Y; W) = cov(X,Y;W) / sqrt(cov(X,X;W) · cov(Y,Y;W))`.
///
/// This is the trend-level score of §V: with sigmoid window weights the
/// correlation is dominated by the anomaly period while still drawing some
/// information from its surroundings. Returns `0.0` for degenerate inputs.
pub fn weighted_pearson(xs: &[f64], ys: &[f64], ws: &[f64]) -> f64 {
    let cxy = weighted_covariance(xs, ys, ws);
    let cxx = weighted_covariance(xs, xs, ws);
    let cyy = weighted_covariance(ys, ys, ws);
    let denom = (cxx * cyy).sqrt();
    if !(denom > f64::EPSILON) {
        return 0.0;
    }
    let r = cxy / denom;
    if r.is_finite() {
        r.clamp(-1.0, 1.0)
    } else {
        0.0
    }
}

/// Min-max normalizes `xs` into `[0, 1]` in place. A constant slice maps to
/// all zeros (there is no scale information to preserve). The range is taken
/// over finite samples only, and any non-finite sample is mapped to `0.0`, so
/// a single corrupted value cannot wipe out the scale of the rest.
pub fn min_max_normalize(xs: &mut [f64]) {
    if xs.is_empty() {
        return;
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &x in xs.iter() {
        if x.is_finite() {
            lo = lo.min(x);
            hi = hi.max(x);
        }
    }
    let range = hi - lo;
    if !(range > f64::EPSILON) {
        xs.iter_mut().for_each(|x| *x = 0.0);
    } else {
        xs.iter_mut().for_each(|x| {
            *x = if x.is_finite() { (*x - lo) / range } else { 0.0 };
        });
    }
}

/// Mean squared error over the common prefix of `xs` and `ys`; `0.0` for
/// empty input. Used by the Table III active-session estimation case study.
pub fn mean_squared_error(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len().min(ys.len());
    if n == 0 {
        return 0.0;
    }
    xs[..n]
        .iter()
        .zip(&ys[..n])
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum::<f64>()
        / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-10;

    #[test]
    fn mean_and_variance_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < EPS);
        assert_eq!(variance(&[5.0]), 0.0);
        assert!((variance(&[1.0, 3.0]) - 1.0).abs() < EPS);
        assert!((std_dev(&[1.0, 3.0]) - 1.0).abs() < EPS);
    }

    #[test]
    fn covariance_of_identical_is_variance() {
        let xs = [1.0, 4.0, 2.0, 8.0];
        assert!((covariance(&xs, &xs) - variance(&xs)).abs() < EPS);
    }

    #[test]
    fn pearson_perfect_and_anti_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 7.0).collect();
        let z: Vec<f64> = x.iter().map(|v| -2.0 * v + 1.0).collect();
        assert!((pearson(&x, &y) - 1.0).abs() < EPS);
        assert!((pearson(&x, &z) + 1.0).abs() < EPS);
    }

    #[test]
    fn pearson_zero_variance_is_zero() {
        let flat = [2.0, 2.0, 2.0, 2.0];
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(pearson(&flat, &x), 0.0);
        assert_eq!(pearson(&x, &flat), 0.0);
    }

    #[test]
    fn pearson_uses_common_prefix() {
        let x = [1.0, 2.0, 3.0];
        let y = [1.0, 2.0, 3.0, 100.0, -5.0];
        assert!((pearson(&x, &y) - 1.0).abs() < EPS);
    }

    #[test]
    fn weighted_mean_matches_plain_with_uniform_weights() {
        let xs = [1.0, 5.0, 9.0];
        let ws = [1.0, 1.0, 1.0];
        assert!((weighted_mean(&xs, &ws) - mean(&xs)).abs() < EPS);
    }

    #[test]
    fn weighted_mean_zero_weight_is_zero() {
        assert_eq!(weighted_mean(&[1.0, 2.0], &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn weighted_pearson_uniform_weights_matches_plain() {
        let x = [1.0, 3.0, 2.0, 5.0, 4.0];
        let y = [2.0, 2.5, 2.2, 4.0, 3.0];
        let w = [1.0; 5];
        assert!((weighted_pearson(&x, &y, &w) - pearson(&x, &y)).abs() < EPS);
    }

    #[test]
    fn weighted_pearson_focuses_on_high_weight_region() {
        // x and y agree on the second half, disagree on the first half.
        let x = [1.0, 2.0, 3.0, 4.0, 1.0, 2.0, 3.0, 4.0];
        let y = [4.0, 3.0, 2.0, 1.0, 1.0, 2.0, 3.0, 4.0];
        let early = [1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0];
        let late = [0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0];
        assert!(weighted_pearson(&x, &y, &late) > 0.99);
        assert!(weighted_pearson(&x, &y, &early) < -0.99);
    }

    #[test]
    fn min_max_normalize_range_and_constants() {
        let mut xs = [3.0, 7.0, 5.0];
        min_max_normalize(&mut xs);
        assert_eq!(xs, [0.0, 1.0, 0.5]);
        let mut flat = [4.0, 4.0];
        min_max_normalize(&mut flat);
        assert_eq!(flat, [0.0, 0.0]);
        let mut empty: [f64; 0] = [];
        min_max_normalize(&mut empty);
    }

    #[test]
    fn pearson_non_finite_inputs_yield_zero() {
        let x = [1.0, 2.0, f64::NAN, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert_eq!(pearson(&x, &y), 0.0);
        assert_eq!(pearson(&y, &x), 0.0);
        let inf = [1.0, f64::INFINITY, 3.0, 4.0];
        assert_eq!(pearson(&inf, &y), 0.0);
        assert_eq!(pearson(&inf, &inf), 0.0);
    }

    #[test]
    fn weighted_pearson_non_finite_yields_zero() {
        let x = [1.0, f64::NAN, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        let w = [1.0; 4];
        assert_eq!(weighted_pearson(&x, &y, &w), 0.0);
        let wn = [1.0, f64::NAN, 1.0, 1.0];
        assert_eq!(weighted_pearson(&y, &y, &wn), 0.0);
        assert_eq!(weighted_mean(&y, &wn), 0.0);
    }

    #[test]
    fn min_max_normalize_ignores_non_finite() {
        let mut xs = [3.0, f64::NAN, 7.0, f64::INFINITY, 5.0];
        min_max_normalize(&mut xs);
        assert_eq!(xs, [0.0, 0.0, 1.0, 0.0, 0.5]);
        let mut all_bad = [f64::NAN, f64::INFINITY];
        min_max_normalize(&mut all_bad);
        assert_eq!(all_bad, [0.0, 0.0]);
    }

    #[test]
    fn mse_basics() {
        assert_eq!(mean_squared_error(&[], &[]), 0.0);
        assert!((mean_squared_error(&[1.0, 2.0], &[1.0, 4.0]) - 2.0).abs() < EPS);
    }
}
