//! Pettitt's non-parametric change-point test (Pettitt, 1979).
//!
//! The paper's anomaly-detection component integrates several methods,
//! citing Pettitt's test among them (§IV-B, ref. [28]). The test finds the
//! most likely single change point in a series without assuming a
//! distribution: it is the rank-based analogue of a two-sample test
//! applied at every possible split.
//!
//! For a series `x_1 … x_N`, the statistic at split `t` is
//! `U_t = Σ_{i≤t} Σ_{j>t} sgn(x_i − x_j)`; the change point is the `t`
//! maximizing `|U_t|`, with approximate significance
//! `p ≈ 2·exp(−6·K² / (N³ + N²))`, `K = max|U_t|`.
//!
//! The detection layer uses it to *confirm* level shifts found by the
//! streaming detector: a confirmed shift has a significant Pettitt point
//! inside the candidate segment.

use serde::{Deserialize, Serialize};

/// Result of the Pettitt test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pettitt {
    /// Index of the most likely change point: the last index of the first
    /// segment (`0 ≤ index < N−1`).
    pub index: usize,
    /// The maximal |U_t| statistic.
    pub statistic: f64,
    /// Approximate two-sided p-value.
    pub p_value: f64,
    /// Sign of the change: +1 when the level rises after the point.
    pub direction: i8,
}

/// Runs Pettitt's test. Returns `None` for series shorter than 4 samples
/// (no meaningful split exists).
///
/// Complexity is `O(N log N)`-ish in principle, but this direct
/// implementation is `O(N²)` with a tiny constant — detection windows are
/// a few hundred samples, where the direct form is both simple and fast
/// (the incremental recurrence below avoids the naive `O(N³)`).
pub fn pettitt(xs: &[f64]) -> Option<Pettitt> {
    let n = xs.len();
    if n < 4 {
        return None;
    }
    // U_t can be computed incrementally: U_t = U_{t−1} + Σ_j sgn(x_t − x_j).
    // Σ_j sgn(x_t − x_j) over all j equals (#less − #greater); we compute it
    // per element in O(N) each, O(N²) total.
    let mut best_abs = -1.0;
    let mut best_idx = 0;
    let mut best_u = 0.0;
    let mut u = 0.0f64;
    for t in 0..n - 1 {
        let mut s = 0.0;
        for &xj in xs.iter() {
            // NB: not f64::signum — sgn(0) must be 0, while Rust's
            // `0.0f64.signum()` is 1.0.
            if xs[t] > xj {
                s += 1.0;
            } else if xs[t] < xj {
                s -= 1.0;
            }
        }
        u += s;
        if u.abs() > best_abs {
            best_abs = u.abs();
            best_idx = t;
            best_u = u;
        }
    }
    let nf = n as f64;
    let p = (2.0 * (-6.0 * best_abs * best_abs / (nf.powi(3) + nf.powi(2))).exp()).min(1.0);
    Some(Pettitt {
        index: best_idx,
        statistic: best_abs,
        p_value: p,
        // U_t sums sgn(first − second): a large *negative* U means the
        // early segment is smaller, i.e. the level rose.
        direction: if best_u < 0.0 { 1 } else { -1 },
    })
}

/// Convenience: is there a significant change point (p < alpha)?
pub fn has_change_point(xs: &[f64], alpha: f64) -> bool {
    pettitt(xs).is_some_and(|p| p.p_value < alpha)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy(level: f64, n: usize, phase: usize) -> Vec<f64> {
        (0..n).map(|i| level + ((i + phase) % 7) as f64 * 0.3).collect()
    }

    #[test]
    fn short_series_is_none() {
        assert!(pettitt(&[]).is_none());
        assert!(pettitt(&[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn clean_step_up_is_found() {
        let mut xs = noisy(10.0, 60, 0);
        xs.extend(noisy(20.0, 60, 3));
        let p = pettitt(&xs).unwrap();
        assert!((55..=64).contains(&p.index), "index {}", p.index);
        assert!(p.p_value < 0.001, "p {}", p.p_value);
        assert_eq!(p.direction, 1);
    }

    #[test]
    fn clean_step_down_is_found() {
        let mut xs = noisy(50.0, 40, 0);
        xs.extend(noisy(5.0, 40, 2));
        let p = pettitt(&xs).unwrap();
        assert!((35..=44).contains(&p.index), "index {}", p.index);
        assert!(p.p_value < 0.001);
        assert_eq!(p.direction, -1);
    }

    #[test]
    fn stationary_series_is_insignificant() {
        let xs = noisy(10.0, 120, 0);
        let p = pettitt(&xs).unwrap();
        assert!(p.p_value > 0.05, "p {} stat {}", p.p_value, p.statistic);
        assert!(!has_change_point(&xs, 0.01));
    }

    #[test]
    fn constant_series_is_insignificant() {
        let xs = vec![5.0; 100];
        let p = pettitt(&xs).unwrap();
        assert_eq!(p.statistic, 0.0);
        assert!(p.p_value >= 1.0 - 1e-9);
    }

    #[test]
    fn significance_monotone_in_shift_size() {
        let make = |delta: f64| {
            let mut xs = noisy(10.0, 30, 0);
            // Small shifts relative to the 0..1.8 noise band.
            xs.extend((0..30).map(|i| 10.0 + delta + ((i + 3) % 7) as f64 * 0.3));
            pettitt(&xs).unwrap().p_value
        };
        let p_small = make(0.3);
        let p_large = make(5.0);
        assert!(p_large < p_small, "large shift must be more significant: {p_large} vs {p_small}");
    }

    #[test]
    fn has_change_point_threshold() {
        let mut xs = noisy(10.0, 50, 0);
        xs.extend(noisy(30.0, 50, 1));
        assert!(has_change_point(&xs, 0.01));
        assert!(!has_change_point(&noisy(10.0, 100, 0), 1e-12));
    }
}
