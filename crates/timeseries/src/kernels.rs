//! Unrolled, SIMD-friendly f64 kernels and streaming moment state for the
//! per-event hot path.
//!
//! The online pipeline's cost is dominated by a handful of tiny numeric
//! loops: summing slices when matrices are normalized, re-deriving rolling
//! median/MAD on every detector step, and re-counting window aggregates at
//! snapshot time. This module concentrates those loops so they are written
//! once, with two properties the rest of the workspace leans on:
//!
//! * **Deterministic lane semantics.** The slice kernels ([`sum`],
//!   [`sumsq`], [`dot`]) accumulate in eight independent lanes with a
//!   serial tail — a *fixed* association order, identical on every call
//!   site, thread count, and build. They are not "the same rounding as a
//!   serial loop" (they differ by the usual ~1 ulp); they are the same
//!   rounding as *themselves*, everywhere, which is what byte-stable golden
//!   output needs.
//! * **Bit-identical selection statistics.** [`median_of_sorted`] /
//!   [`mad_of_sorted`] produce *exactly* the bits of the reference
//!   "collect, sort, index the middle" computation, without allocating or
//!   sorting: the rolling window already maintains its contents sorted, and
//!   the absolute deviations about the median form two implicitly sorted
//!   arrays (values below the median, read right-to-left; values at or
//!   above it, read left-to-right), so the middle deviations are order
//!   statistics reachable by an `O(log w)` two-array selection. See
//!   DESIGN.md "Kernel layer" for the rounding argument.
//!
//! [`KernelKind`] is the knob: `Reference` is the straight-line scalar
//! formulation kept for equivalence testing, `Fast` the kernels here. The
//! two are pinned bit-identical by unit tests below, `kernel_props` at the
//! workspace root, and the golden-corpus equivalence suites.

use serde::{Deserialize, Serialize};

/// Which statistics implementation the detector layers use.
///
/// Both kinds produce bit-identical output (pinned by the golden corpus
/// across shards × fanout × kernel); `Reference` exists so the equivalence
/// suites always have a straight-line scalar formulation to diff against,
/// and as the escape hatch if a future platform's rounding ever disagrees.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum KernelKind {
    /// Allocate-and-sort scalar statistics (the original formulation).
    Reference,
    /// Unrolled slice kernels + selection-based rolling median/MAD.
    #[default]
    Fast,
}

impl KernelKind {
    /// Stable lowercase label for bench output and summaries.
    pub fn label(self) -> &'static str {
        match self {
            KernelKind::Reference => "reference",
            KernelKind::Fast => "fast",
        }
    }
}

/// How a case cut assembles its per-template minute trends and gate
/// correlations.
///
/// Both kinds produce bit-identical diagnosis output (pinned by the golden
/// corpus across shards × fanout × kernel × cut): the incremental path
/// buckets the same integer execution counts into the same minute rows the
/// reference path derives by re-scanning the window, and both feed the one
/// shared [`crate::NormalizedMatrix::from_series`] normalization.
/// `Reference` exists as the re-scan formulation the equivalence suites
/// diff against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum CutKind {
    /// Rebuild minute trends by re-scanning the window at every cut.
    Reference,
    /// Assemble the cut from running per-template moments kept at ingest.
    #[default]
    Incremental,
}

impl CutKind {
    /// Stable lowercase label for bench output and summaries.
    pub fn label(self) -> &'static str {
        match self {
            CutKind::Reference => "reference",
            CutKind::Incremental => "incremental",
        }
    }
}

/// Sum of a slice in eight independent lanes plus a serial tail.
///
/// Fixed association order — deterministic across call sites and builds,
/// ~1 ulp from a serial sum. Exact (and order-independent) when every
/// partial sum is an integer below 2^53, the case for execution counts.
#[inline]
pub fn sum(xs: &[f64]) -> f64 {
    let mut acc = [0.0f64; 8];
    let mut chunks = xs.chunks_exact(8);
    for x8 in &mut chunks {
        for k in 0..8 {
            acc[k] += x8[k];
        }
    }
    let tail: f64 = chunks.remainder().iter().sum();
    acc.iter().sum::<f64>() + tail
}

/// Sum of squares of a slice, with [`sum`]'s lane semantics.
#[inline]
pub fn sumsq(xs: &[f64]) -> f64 {
    let mut acc = [0.0f64; 8];
    let mut chunks = xs.chunks_exact(8);
    for x8 in &mut chunks {
        for k in 0..8 {
            acc[k] += x8[k] * x8[k];
        }
    }
    let tail: f64 = chunks.remainder().iter().map(|x| x * x).sum();
    acc.iter().sum::<f64>() + tail
}

/// Dot product of two equally-long slices with eight independent
/// accumulators.
///
/// Strict left-to-right f64 summation forms a serial dependence chain
/// LLVM must not reorder, which blocks vectorization of the pair loop —
/// the whole point of the normalized matrix. The fixed lane split keeps
/// the result deterministic (identical for every parallelism level and
/// every call site); it merely differs from single-chain rounding by the
/// usual ~1 ulp, far below the clustering threshold's resolution.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = [0.0f64; 8];
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    for (a8, b8) in (&mut ca).zip(&mut cb) {
        for k in 0..8 {
            acc[k] += a8[k] * b8[k];
        }
    }
    let tail: f64 = ca.remainder().iter().zip(cb.remainder()).map(|(x, y)| x * y).sum();
    acc.iter().sum::<f64>() + tail
}

/// Median of an ascending-sorted slice; `None` when empty.
///
/// The exact expression of the reference rolling-window median (odd:
/// middle element; even: arithmetic mean of the two middles), so the fast
/// path is bit-identical by construction.
#[inline]
pub fn median_of_sorted(sorted: &[f64]) -> Option<f64> {
    let n = sorted.len();
    if n == 0 {
        return None;
    }
    Some(if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    })
}

/// Median absolute deviation about `med` of an ascending-sorted slice,
/// without allocating or sorting: `O(log n)` selection instead of the
/// reference's collect + `O(n log n)` sort.
///
/// The deviations `|v - med|` split at `p = #{v < med}` into two
/// implicitly sorted arrays — `med - sorted[p-1-i]` (values below the
/// median, ascending in `i`) and `sorted[p+j] - med` (values at or above
/// it, ascending in `j`). Both expressions reproduce `(v - med).abs()`
/// *bitwise*: IEEE-754 subtraction rounds sign-symmetrically, so
/// `med - v` and `-(v - med)` are the same bits, and `.abs()` of a
/// negative difference is exactly its negation. The middle deviation(s)
/// are then order statistics of the two-array merge, selected in
/// `O(log n)` by [`kth_of_two_sorted`]; the even-length case averages the
/// two middles with the reference's exact expression.
///
/// Returns `0.0` for an empty slice (callers gate on emptiness through
/// [`median_of_sorted`]).
pub fn mad_of_sorted(sorted: &[f64], med: f64) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    let p = sorted.partition_point(|&v| v < med);
    let below = |i: usize| med - sorted[p - 1 - i];
    let at_or_above = |j: usize| sorted[p + j] - med;
    let (nb, na) = (p, n - p);
    if n % 2 == 1 {
        kth_of_two_sorted(&below, nb, &at_or_above, na, n / 2 + 1)
    } else {
        let lo = kth_of_two_sorted(&below, nb, &at_or_above, na, n / 2);
        let hi = kth_of_two_sorted(&below, nb, &at_or_above, na, n / 2 + 1);
        (lo + hi) / 2.0
    }
}

/// `k`-th smallest (1-indexed) element of the merged contents of two
/// ascending arrays, given as index functions so callers need not
/// materialize them. `O(log)` comparisons: binary search on how many
/// elements the answer's prefix takes from `a`.
fn kth_of_two_sorted(
    a: &impl Fn(usize) -> f64,
    na: usize,
    b: &impl Fn(usize) -> f64,
    nb: usize,
    k: usize,
) -> f64 {
    debug_assert!(k >= 1 && k <= na + nb, "selection rank out of range");
    // i = elements taken from `a`; the prefix is valid once a(i) can no
    // longer be beaten by the b element it would displace.
    let mut lo = k.saturating_sub(nb);
    let mut hi = k.min(na);
    while lo < hi {
        let i = (lo + hi) / 2;
        if a(i) < b(k - i - 1) {
            lo = i + 1;
        } else {
            hi = i;
        }
    }
    let (i, j) = (lo, k - lo);
    let mut best = f64::NEG_INFINITY;
    if i > 0 {
        best = a(i - 1);
    }
    if j > 0 {
        let bj = b(j - 1);
        if bj > best {
            best = bj;
        }
    }
    best
}

/// Running first and second moments of a value stream with eviction.
///
/// Backs the collector's O(1)-per-template snapshot finalize: per-slot
/// window moments accumulate in one sweep over the touched cells, after
/// which each template's membership, total executions, and exact
/// `record_idx` capacity are plain field reads. Add/evict symmetry is
/// *exact* for integer-valued data below 2^53 (per-second execution
/// counts), the only data the collector feeds it.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MomentAccumulator {
    n: u64,
    sum: f64,
    sumsq: f64,
}

impl MomentAccumulator {
    /// Reconstructs an accumulator from exported sums (checkpoint restore;
    /// the inverse of reading [`count`](Self::count) / [`sum`](Self::sum) /
    /// [`sum_sq`](Self::sum_sq)).
    pub fn from_sums(n: u64, sum: f64, sumsq: f64) -> Self {
        Self { n, sum, sumsq }
    }

    /// Folds one observation in.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        self.sumsq += x * x;
    }

    /// Removes one previously-pushed observation (exact inverse of
    /// [`push`](Self::push) for integer-valued data).
    #[inline]
    pub fn evict(&mut self, x: f64) {
        debug_assert!(self.n > 0, "evict from empty accumulator");
        self.n -= 1;
        self.sum -= x;
        self.sumsq -= x * x;
    }

    /// Folds another accumulator's observations in.
    #[inline]
    pub fn merge(&mut self, other: &Self) {
        self.n += other.n;
        self.sum += other.sum;
        self.sumsq += other.sumsq;
    }

    /// Removes another accumulator's observations (exact inverse of
    /// [`merge`](Self::merge) for integer-valued data) — the complement
    /// trick: window moments are the resident total minus the out-of-window
    /// remainder, without walking the window itself.
    #[inline]
    pub fn unmerge(&mut self, other: &Self) {
        debug_assert!(self.n >= other.n, "unmerge more observations than folded in");
        self.n -= other.n;
        self.sum -= other.sum;
        self.sumsq -= other.sumsq;
    }

    /// Resets to the empty state (for scratch reuse).
    #[inline]
    pub fn clear(&mut self) {
        *self = Self::default();
    }

    /// Observations folded in.
    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of observations.
    #[inline]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Sum of squared observations.
    #[inline]
    pub fn sum_sq(&self) -> f64 {
        self.sumsq
    }

    /// Mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then(|| self.sum / self.n as f64)
    }

    /// Population variance `E[x²] − E[x]²`, floored at zero against
    /// cancellation; `None` when empty.
    pub fn variance(&self) -> Option<f64> {
        let mean = self.mean()?;
        Some((self.sumsq / self.n as f64 - mean * mean).max(0.0))
    }
}

/// Running bivariate moments of an `(x, y)` pair stream with eviction —
/// everything a Pearson correlation needs, updatable in O(1) per
/// observation.
///
/// Backs the collector's incremental cut gate: per-template co-moments of
/// (execution count, session metric) accumulate at ingest, so the
/// template↔metric correlation that gates H-SQL candidate selection is a
/// handful of field reads at cut time instead of a window scan. Push/evict
/// and merge/unmerge are exact inverses for integer-valued data; mixed
/// real-valued streams instead lean on periodic renormalization (pinned by
/// the `cut_props` drift suite).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CoMomentAccumulator {
    n: u64,
    sx: f64,
    sy: f64,
    sxx: f64,
    syy: f64,
    sxy: f64,
}

impl CoMomentAccumulator {
    /// Builds directly from raw sums (for assembling a window view out of
    /// separately maintained marginal and cross moments).
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn from_sums(n: u64, sx: f64, sy: f64, sxx: f64, syy: f64, sxy: f64) -> Self {
        Self { n, sx, sy, sxx, syy, sxy }
    }

    /// Folds one `(x, y)` observation in.
    #[inline]
    pub fn push(&mut self, x: f64, y: f64) {
        self.n += 1;
        self.sx += x;
        self.sy += y;
        self.sxx += x * x;
        self.syy += y * y;
        self.sxy += x * y;
    }

    /// Removes one previously-pushed observation.
    #[inline]
    pub fn evict(&mut self, x: f64, y: f64) {
        debug_assert!(self.n > 0, "evict from empty co-accumulator");
        self.n -= 1;
        self.sx -= x;
        self.sy -= y;
        self.sxx -= x * x;
        self.syy -= y * y;
        self.sxy -= x * y;
    }

    /// Folds another accumulator's observations in.
    #[inline]
    pub fn merge(&mut self, other: &Self) {
        self.n += other.n;
        self.sx += other.sx;
        self.sy += other.sy;
        self.sxx += other.sxx;
        self.syy += other.syy;
        self.sxy += other.sxy;
    }

    /// Removes another accumulator's observations — the complement trick,
    /// see [`MomentAccumulator::unmerge`].
    #[inline]
    pub fn unmerge(&mut self, other: &Self) {
        debug_assert!(self.n >= other.n, "unmerge more observations than folded in");
        self.n -= other.n;
        self.sx -= other.sx;
        self.sy -= other.sy;
        self.sxx -= other.sxx;
        self.syy -= other.syy;
        self.sxy -= other.sxy;
    }

    /// Resets to the empty state (for scratch reuse).
    #[inline]
    pub fn clear(&mut self) {
        *self = Self::default();
    }

    /// Observations folded in.
    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of `x` observations.
    #[inline]
    pub fn sum_x(&self) -> f64 {
        self.sx
    }

    /// Sum of `y` observations.
    #[inline]
    pub fn sum_y(&self) -> f64 {
        self.sy
    }

    /// Sum of `x²`.
    #[inline]
    pub fn sum_xx(&self) -> f64 {
        self.sxx
    }

    /// Sum of `y²`.
    #[inline]
    pub fn sum_yy(&self) -> f64 {
        self.syy
    }

    /// Sum of `x·y`.
    #[inline]
    pub fn sum_xy(&self) -> f64 {
        self.sxy
    }

    /// Pearson correlation of the folded stream, clamped to `[-1, 1]`;
    /// `0.0` for degenerate input (fewer than two observations, zero
    /// variance on either side, or cancellation-poisoned sums), matching
    /// [`crate::stats::pearson`]'s degenerate-input contract.
    pub fn pearson(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let n = self.n as f64;
        let cov = self.sxy / n - (self.sx / n) * (self.sy / n);
        let var_x = (self.sxx / n - (self.sx / n) * (self.sx / n)).max(0.0);
        let var_y = (self.syy / n - (self.sy / n) * (self.sy / n)).max(0.0);
        let denom = (var_x * var_y).sqrt();
        if !denom.is_finite() || denom <= f64::EPSILON * f64::EPSILON {
            return 0.0;
        }
        let r = cov / denom;
        if r.is_finite() {
            r.clamp(-1.0, 1.0)
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_series(seed: u64, n: usize) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as f64) / (u32::MAX as f64) * 100.0 - 20.0
            })
            .collect()
    }

    fn reference_mad(sorted: &[f64], med: f64) -> f64 {
        let mut devs: Vec<f64> = sorted.iter().map(|&v| (v - med).abs()).collect();
        devs.sort_by(|a, b| a.partial_cmp(b).expect("NaN"));
        let n = devs.len();
        if n % 2 == 1 {
            devs[n / 2]
        } else {
            (devs[n / 2 - 1] + devs[n / 2]) / 2.0
        }
    }

    #[test]
    fn slice_kernels_match_serial_within_ulps() {
        for n in [0usize, 1, 3, 7, 8, 9, 63, 64, 65, 1000] {
            let xs = lcg_series(n as u64 + 1, n);
            let serial_sum: f64 = xs.iter().sum();
            let serial_sumsq: f64 = xs.iter().map(|x| x * x).sum();
            assert!((sum(&xs) - serial_sum).abs() <= 1e-9 * (1.0 + serial_sum.abs()), "n={n}");
            assert!(
                (sumsq(&xs) - serial_sumsq).abs() <= 1e-9 * (1.0 + serial_sumsq),
                "n={n}"
            );
        }
    }

    #[test]
    fn sum_is_exact_on_integer_values() {
        // Execution counts are integer-valued f64s; lane-split summation is
        // exact there, so it equals the serial sum bit-for-bit.
        let xs: Vec<f64> = (0..999).map(|i| ((i * 37) % 1000) as f64).collect();
        let serial: f64 = xs.iter().sum();
        assert_eq!(sum(&xs).to_bits(), serial.to_bits());
    }

    #[test]
    fn dot_matches_serial_within_ulps() {
        for n in [0usize, 5, 8, 17, 200] {
            let a = lcg_series(7, n);
            let b = lcg_series(11, n);
            let serial: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((dot(&a, &b) - serial).abs() <= 1e-9 * (1.0 + serial.abs()), "n={n}");
        }
    }

    #[test]
    fn selection_mad_is_bit_identical_to_reference() {
        for trial in 0..50u64 {
            let n = 1 + (trial as usize * 7) % 130;
            let mut sorted = lcg_series(trial, n);
            // Inject duplicates and exact-median hits on some trials.
            if trial % 3 == 0 && n > 4 {
                sorted[1] = sorted[0];
                sorted[n - 1] = sorted[n - 2];
            }
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let med = median_of_sorted(&sorted).unwrap();
            let fast = mad_of_sorted(&sorted, med);
            let reference = reference_mad(&sorted, med);
            assert_eq!(
                fast.to_bits(),
                reference.to_bits(),
                "trial {trial}, n {n}: {fast} vs {reference}"
            );
        }
    }

    #[test]
    fn selection_mad_handles_constant_and_tiny_windows() {
        for sorted in [vec![4.0; 9], vec![4.0; 8], vec![1.0], vec![1.0, 1.0], vec![]] {
            match median_of_sorted(&sorted) {
                Some(med) => {
                    let fast = mad_of_sorted(&sorted, med);
                    let reference = reference_mad(&sorted, med);
                    assert_eq!(fast.to_bits(), reference.to_bits());
                    assert_eq!(fast, 0.0, "constant window has zero MAD");
                }
                None => assert!(sorted.is_empty()),
            }
        }
    }

    #[test]
    fn kth_selection_agrees_with_merged_sort() {
        for trial in 0..20u64 {
            let mut a = lcg_series(trial * 2 + 1, (trial as usize) % 9);
            let mut b = lcg_series(trial * 2 + 2, 1 + (trial as usize * 3) % 11);
            a.sort_by(|x, y| x.partial_cmp(y).unwrap());
            b.sort_by(|x, y| x.partial_cmp(y).unwrap());
            let mut merged: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
            merged.sort_by(|x, y| x.partial_cmp(y).unwrap());
            for k in 1..=merged.len() {
                let got = kth_of_two_sorted(&|i| a[i], a.len(), &|j| b[j], b.len(), k);
                assert_eq!(got.to_bits(), merged[k - 1].to_bits(), "trial {trial} k {k}");
            }
        }
    }

    #[test]
    fn moment_accumulator_push_evict_is_exact_on_counts() {
        let mut acc = MomentAccumulator::default();
        let xs: Vec<f64> = (0..500).map(|i| ((i * 13) % 97) as f64).collect();
        for &x in &xs {
            acc.push(x);
        }
        let full = acc;
        for &x in &xs[..200] {
            acc.evict(x);
        }
        let mut tail = MomentAccumulator::default();
        for &x in &xs[200..] {
            tail.push(x);
        }
        assert_eq!(acc.count(), tail.count());
        assert_eq!(acc.sum().to_bits(), tail.sum().to_bits(), "integer eviction is exact");
        assert_eq!(acc.sum_sq().to_bits(), tail.sum_sq().to_bits());

        let mut merged = acc;
        let mut head = MomentAccumulator::default();
        for &x in &xs[..200] {
            head.push(x);
        }
        merged.merge(&head);
        assert_eq!(merged.count(), full.count());
        assert_eq!(merged.sum(), full.sum());
    }

    #[test]
    fn moment_accumulator_stats() {
        let mut acc = MomentAccumulator::default();
        assert_eq!(acc.mean(), None);
        assert_eq!(acc.variance(), None);
        for x in [2.0, 4.0, 6.0] {
            acc.push(x);
        }
        assert_eq!(acc.mean(), Some(4.0));
        let var = acc.variance().unwrap();
        assert!((var - 8.0 / 3.0).abs() < 1e-12);
        acc.clear();
        assert_eq!(acc.count(), 0);
    }

    #[test]
    fn moment_accumulator_unmerge_inverts_merge_on_counts() {
        let xs: Vec<f64> = (0..300).map(|i| ((i * 29) % 83) as f64).collect();
        let mut total = MomentAccumulator::default();
        let mut head = MomentAccumulator::default();
        for (i, &x) in xs.iter().enumerate() {
            total.push(x);
            if i < 120 {
                head.push(x);
            }
        }
        let mut tail = total;
        tail.unmerge(&head);
        let mut expect = MomentAccumulator::default();
        for &x in &xs[120..] {
            expect.push(x);
        }
        assert_eq!(tail.count(), expect.count());
        assert_eq!(tail.sum().to_bits(), expect.sum().to_bits());
        assert_eq!(tail.sum_sq().to_bits(), expect.sum_sq().to_bits());
    }

    #[test]
    fn co_moments_match_direct_pearson() {
        let xs = lcg_series(3, 240);
        let ys = lcg_series(9, 240);
        let mut acc = CoMomentAccumulator::default();
        for (&x, &y) in xs.iter().zip(&ys) {
            acc.push(x, y);
        }
        let direct = crate::stats::pearson(&xs, &ys);
        assert!((acc.pearson() - direct).abs() < 1e-9, "{} vs {direct}", acc.pearson());
    }

    #[test]
    fn co_moments_evict_and_unmerge_are_exact_on_counts() {
        // Integer-valued pairs (the collector's execution counts against
        // integer-ish session samples): the inverse ops are bit-exact.
        let pairs: Vec<(f64, f64)> =
            (0..400).map(|i| (((i * 13) % 57) as f64, ((i * 7) % 91) as f64)).collect();
        let mut acc = CoMomentAccumulator::default();
        let mut head = CoMomentAccumulator::default();
        for (i, &(x, y)) in pairs.iter().enumerate() {
            acc.push(x, y);
            if i < 150 {
                head.push(x, y);
            }
        }
        let mut by_unmerge = acc;
        by_unmerge.unmerge(&head);
        let mut by_evict = acc;
        for &(x, y) in &pairs[..150] {
            by_evict.evict(x, y);
        }
        let mut expect = CoMomentAccumulator::default();
        for &(x, y) in &pairs[150..] {
            expect.push(x, y);
        }
        for got in [by_unmerge, by_evict] {
            assert_eq!(got.count(), expect.count());
            assert_eq!(got.sum_x().to_bits(), expect.sum_x().to_bits());
            assert_eq!(got.sum_y().to_bits(), expect.sum_y().to_bits());
            assert_eq!(got.sum_xx().to_bits(), expect.sum_xx().to_bits());
            assert_eq!(got.sum_yy().to_bits(), expect.sum_yy().to_bits());
            assert_eq!(got.sum_xy().to_bits(), expect.sum_xy().to_bits());
        }

        let mut merged = by_unmerge;
        merged.merge(&head);
        assert_eq!(merged, acc);

        let rebuilt = CoMomentAccumulator::from_sums(
            acc.count(),
            acc.sum_x(),
            acc.sum_y(),
            acc.sum_xx(),
            acc.sum_yy(),
            acc.sum_xy(),
        );
        assert_eq!(rebuilt, acc);
    }

    #[test]
    fn co_moments_degenerate_inputs_yield_zero() {
        let mut empty = CoMomentAccumulator::default();
        assert_eq!(empty.pearson(), 0.0);
        empty.push(1.0, 2.0);
        assert_eq!(empty.pearson(), 0.0, "a single pair has no correlation");

        let mut constant_x = CoMomentAccumulator::default();
        for i in 0..10 {
            constant_x.push(4.0, i as f64);
        }
        assert_eq!(constant_x.pearson(), 0.0, "zero variance on x");

        let mut cleared = constant_x;
        cleared.clear();
        assert_eq!(cleared, CoMomentAccumulator::default());
    }

    #[test]
    fn cut_kind_defaults_and_labels() {
        assert_eq!(CutKind::default(), CutKind::Incremental);
        assert_eq!(CutKind::Incremental.label(), "incremental");
        assert_eq!(CutKind::Reference.label(), "reference");
        let json = serde_json::to_string(&CutKind::Incremental).unwrap();
        assert_eq!(json, "\"incremental\"");
        let back: CutKind = serde_json::from_str("\"reference\"").unwrap();
        assert_eq!(back, CutKind::Reference);
    }

    #[test]
    fn kernel_kind_defaults_and_labels() {
        assert_eq!(KernelKind::default(), KernelKind::Fast);
        assert_eq!(KernelKind::Fast.label(), "fast");
        assert_eq!(KernelKind::Reference.label(), "reference");
        let json = serde_json::to_string(&KernelKind::Reference).unwrap();
        assert_eq!(json, "\"reference\"");
        let back: KernelKind = serde_json::from_str("\"fast\"").unwrap();
        assert_eq!(back, KernelKind::Fast);
    }
}
