//! The sigmoid-based anomaly-window weight function (Eq. 1 of the paper).
//!
//! The trend-level score of §V computes a weighted Pearson correlation where
//! the weight `W_t` is close to 1 inside the anomaly period `[a_s, a_e)` and
//! decays smoothly outside it:
//!
//! ```text
//! W_t = σ((t − a_s)/k_s) + σ((a_e − t)/k_s) − 1
//! ```
//!
//! As `k_s → 0` this becomes a hard indicator of the anomaly window; as
//! `k_s → ∞` every weight tends to 1 and the weighted correlation reduces to
//! the plain Pearson correlation.

/// The logistic sigmoid `σ(x) = 1 / (1 + e^(−x))`.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Computes `W_t` for every sampling instant of a series covering
/// `[ts, te)` at `interval`-second spacing, for an anomaly period
/// `[anom_start, anom_end)` and smooth factor `ks > 0`.
///
/// The returned vector has `ceil((te − ts) / interval)` entries, one per
/// sample, each in `[0, 1]` (up to floating error; values are clamped).
///
/// # Panics
/// Panics if `ks <= 0`, `interval == 0`, or `te < ts`.
pub fn sigmoid_window_weights(
    ts: i64,
    te: i64,
    interval: u32,
    anom_start: i64,
    anom_end: i64,
    ks: f64,
) -> Vec<f64> {
    assert!(ks > 0.0, "smooth factor ks must be positive");
    assert!(interval > 0, "interval must be positive");
    assert!(te >= ts, "window end precedes window start");
    let step = interval as i64;
    let n = ((te - ts) as u64).div_ceil(step as u64) as usize;
    let mut ws = Vec::with_capacity(n);
    for i in 0..n {
        let t = (ts + i as i64 * step) as f64;
        let w = sigmoid((t - anom_start as f64) / ks) + sigmoid((anom_end as f64 - t) / ks) - 1.0;
        ws.push(w.clamp(0.0, 1.0));
    }
    ws
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_basics() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(20.0) > 0.999999);
        assert!(sigmoid(-20.0) < 1e-6);
        // symmetry: σ(x) + σ(−x) = 1
        for x in [-3.0, -0.5, 0.1, 2.0] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn weights_peak_inside_anomaly_window() {
        let ws = sigmoid_window_weights(0, 100, 1, 40, 60, 2.0);
        assert_eq!(ws.len(), 100);
        // Deep inside the anomaly period the weight is ~1
        // (σ(5) + σ(5) − 1 ≈ 0.9866 at ks = 2).
        assert!(ws[50] > 0.98);
        // Far outside it is ~0.
        assert!(ws[0] < 0.01);
        assert!(ws[99] < 0.01);
        // Monotone rise approaching the window.
        assert!(ws[35] < ws[38]);
        assert!(ws[38] < ws[41]);
    }

    #[test]
    fn small_ks_approaches_hard_indicator() {
        // Eq. 1: k_s → 0 yields the indicator of [a_s, a_e).
        let ws = sigmoid_window_weights(0, 100, 1, 40, 60, 1e-3);
        for (i, &w) in ws.iter().enumerate() {
            let t = i as i64;
            if (41..60).contains(&t) {
                assert!(w > 0.999, "t={t} w={w}");
            }
            if !(40..=60).contains(&t) {
                assert!(w < 0.001, "t={t} w={w}");
            }
        }
    }

    #[test]
    fn large_ks_recovers_plain_pearson() {
        // The paper states that k_s → ∞ makes the weighted correlation equal
        // the naive Pearson correlation. (W_t itself tends to 0⁺, but it does
        // so *uniformly*, and a constant positive weight leaves the weighted
        // Pearson identical to the plain one.)
        let ws = sigmoid_window_weights(0, 100, 1, 40, 60, 1e6);
        let (lo, hi) = ws
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &w| (l.min(w), h.max(w)));
        assert!(hi - lo < 1e-9, "weights must be near-uniform: lo={lo} hi={hi}");
        assert!(lo > 0.0, "weights must stay positive");
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() + i as f64 * 0.01).collect();
        let ys: Vec<f64> = (0..100).map(|i| (i as f64 * 0.21).cos() * 2.0).collect();
        let plain = crate::stats::pearson(&xs, &ys);
        let weighted = crate::stats::weighted_pearson(&xs, &ys, &ws);
        assert!((plain - weighted).abs() < 1e-6, "plain={plain} weighted={weighted}");
    }

    #[test]
    fn weights_respect_interval() {
        let ws = sigmoid_window_weights(0, 100, 10, 40, 60, 2.0);
        assert_eq!(ws.len(), 10);
        // Sample at t=50 (index 5) is inside the anomaly.
        assert!(ws[5] > 0.98);
    }

    #[test]
    #[should_panic(expected = "ks must be positive")]
    fn nonpositive_ks_panics() {
        let _ = sigmoid_window_weights(0, 10, 1, 2, 5, 0.0);
    }
}
