//! Deterministic scoped-thread fan-out for embarrassingly parallel loops.
//!
//! Every hot loop in the diagnosis path — pairwise correlation rows,
//! per-template session accumulation, per-case experiment scoring — maps
//! an index range through a pure function and collects the results in
//! index order. [`par_map`] is that primitive: workers claim indices from
//! a shared atomic counter, compute into thread-local buffers, and the
//! results are merged *by index*, so the output is bit-identical to the
//! serial loop no matter how the OS schedules the threads.
//!
//! Built on `std::thread::scope` only — no extra dependencies, no thread
//! pool to keep alive between calls. Spawning a handful of OS threads
//! costs tens of microseconds, which is noise against the millisecond-to-
//! second loop bodies this is used for; [`par_map`] falls back to the
//! plain serial loop when `parallelism <= 1` or when there are fewer
//! items than would ever amortize a spawn.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads the machine can usefully run
/// (`std::thread::available_parallelism`, 1 if unknown).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Resolves a parallelism knob: `0` means "all available cores", any
/// other value is taken literally.
pub fn effective_parallelism(parallelism: usize) -> usize {
    if parallelism == 0 {
        available_parallelism()
    } else {
        parallelism
    }
}

/// Below this many items a fan-out cannot amortize thread spawns.
const MIN_ITEMS_PER_THREAD: usize = 2;

/// Maps `0..n` through `f` with up to `parallelism` worker threads
/// (`0` = all cores) and returns the results **in index order**.
///
/// `f` must be a pure function of the index (it may read shared state,
/// not mutate it); under that contract the output is identical to
/// `(0..n).map(f).collect()` for every `parallelism` value, which is the
/// determinism guarantee the diagnosis pipeline advertises.
///
/// Work is distributed dynamically (an atomic claim counter), so skewed
/// per-item costs — e.g. correlation rows `i` of a triangular pair loop —
/// still balance across workers.
///
/// ```
/// use pinsql_timeseries::par::par_map;
/// let serial: Vec<u64> = (0..100).map(|i| (i as u64) * 3).collect();
/// let parallel = par_map(100, 4, |i| (i as u64) * 3);
/// assert_eq!(serial, parallel);
/// ```
pub fn par_map<T, F>(n: usize, parallelism: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = effective_parallelism(parallelism).min(n / MIN_ITEMS_PER_THREAD.max(1));
    if workers <= 1 {
        return (0..n).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut chunks: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, T)> = Vec::with_capacity(n / workers + 1);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("par_map worker panicked")).collect()
    });

    // Deterministic merge: place every result at its index.
    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    for chunk in &mut chunks {
        for (i, v) in chunk.drain(..) {
            debug_assert!(out[i].is_none(), "index {i} produced twice");
            out[i] = Some(v);
        }
    }
    out.into_iter().map(|v| v.expect("par_map lost an index")).collect()
}

/// Like [`par_map`] but flattens per-index result lists, preserving index
/// order — the shape of "collect all edges of row `i`" loops.
pub fn par_flat_map<T, F>(n: usize, parallelism: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> Vec<T> + Sync,
{
    par_map(n, parallelism, f).into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_for_any_parallelism() {
        let serial: Vec<usize> = (0..257).map(|i| i * i).collect();
        for p in [0, 1, 2, 3, 8, 64] {
            assert_eq!(par_map(257, p, |i| i * i), serial, "p={p}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(par_map(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(1, 8, |i| i + 10), vec![10]);
        assert_eq!(par_map(2, 8, |i| i), vec![0, 1]);
    }

    #[test]
    fn flat_map_preserves_index_order() {
        let out = par_flat_map(10, 4, |i| vec![i * 2, i * 2 + 1]);
        assert_eq!(out, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn effective_parallelism_resolves_zero() {
        assert!(effective_parallelism(0) >= 1);
        assert_eq!(effective_parallelism(1), 1);
        assert_eq!(effective_parallelism(7), 7);
    }

    #[test]
    fn heavy_skew_still_complete() {
        // Items with wildly different costs: the atomic claim counter must
        // still hand out every index exactly once.
        let out = par_map(64, 8, |i| {
            if i % 13 == 0 {
                (0..10_000).map(|k| (k ^ i) as u64).sum::<u64>()
            } else {
                i as u64
            }
        });
        let serial: Vec<u64> = (0..64)
            .map(|i| {
                if i % 13 == 0 {
                    (0..10_000).map(|k| (k ^ i) as u64).sum::<u64>()
                } else {
                    i as u64
                }
            })
            .collect();
        assert_eq!(out, serial);
    }
}
