//! Resampling between collection granularities.
//!
//! The collector aggregates query metrics at 1-second and 1-minute intervals
//! (§IV-A). Detection runs on the fine series; clustering runs on the coarse
//! one. Downsampling must preserve the aggregation semantics of the metric:
//! counts and totals are *summed*, averages are *averaged*, and gauges
//! (like the active-session probe) can be averaged or max-pooled.

use crate::series::TimeSeries;

/// How observations combine when several fine-grained samples fold into one
/// coarse-grained sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Downsample {
    /// Sum the samples (counts, total response time).
    Sum,
    /// Average the samples (mean response time, utilization gauges).
    Mean,
    /// Take the maximum (peak-oriented gauges).
    Max,
}

/// Downsamples `series` by an integral `factor` (e.g. 60 for 1 s → 1 min).
///
/// A trailing partial bucket is aggregated over the samples it has (for
/// `Mean` this means the partial bucket averages fewer samples rather than
/// being zero-padded).
///
/// # Panics
/// Panics if `factor` is zero.
pub fn downsample(series: &TimeSeries, factor: u32, how: Downsample) -> TimeSeries {
    assert!(factor > 0, "downsample factor must be positive");
    let values = series.values();
    let out_interval = series.interval() * factor;
    let mut out = TimeSeries::new(series.start(), out_interval);
    for chunk in values.chunks(factor as usize) {
        let v = match how {
            Downsample::Sum => chunk.iter().sum(),
            Downsample::Mean => chunk.iter().sum::<f64>() / chunk.len() as f64,
            Downsample::Max => chunk.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        };
        out.push(v);
    }
    out
}

/// Aligns two series onto their overlapping timestamps, returning value
/// vectors of equal length (empty when they don't overlap or intervals
/// differ).
pub fn align(a: &TimeSeries, b: &TimeSeries) -> (Vec<f64>, Vec<f64>) {
    if a.interval() != b.interval() {
        return (Vec::new(), Vec::new());
    }
    let from = a.start().max(b.start());
    let to = a.end().min(b.end());
    if to <= from {
        return (Vec::new(), Vec::new());
    }
    (a.window(from, to).to_vec(), b.window(from, to).to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downsample_sum_and_mean() {
        let ts = TimeSeries::from_values(0, 1, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let sum = downsample(&ts, 3, Downsample::Sum);
        assert_eq!(sum.interval(), 3);
        assert_eq!(sum.values(), &[6.0, 15.0]);
        let mean = downsample(&ts, 3, Downsample::Mean);
        assert_eq!(mean.values(), &[2.0, 5.0]);
        let max = downsample(&ts, 2, Downsample::Max);
        assert_eq!(max.values(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn downsample_partial_trailing_bucket() {
        let ts = TimeSeries::from_values(0, 1, vec![2.0, 4.0, 9.0]);
        let mean = downsample(&ts, 2, Downsample::Mean);
        assert_eq!(mean.values(), &[3.0, 9.0]);
        let sum = downsample(&ts, 2, Downsample::Sum);
        assert_eq!(sum.values(), &[6.0, 9.0]);
    }

    #[test]
    fn downsample_factor_one_is_identity() {
        let ts = TimeSeries::from_values(5, 2, vec![1.0, 2.0]);
        let out = downsample(&ts, 1, Downsample::Sum);
        assert_eq!(out.values(), ts.values());
        assert_eq!(out.interval(), 2);
    }

    #[test]
    fn align_overlapping_series() {
        let a = TimeSeries::from_values(0, 1, vec![1.0, 2.0, 3.0, 4.0]);
        let b = TimeSeries::from_values(2, 1, vec![30.0, 40.0, 50.0]);
        let (va, vb) = align(&a, &b);
        assert_eq!(va, vec![3.0, 4.0]);
        assert_eq!(vb, vec![30.0, 40.0]);
    }

    #[test]
    fn align_disjoint_or_mismatched() {
        let a = TimeSeries::from_values(0, 1, vec![1.0, 2.0]);
        let b = TimeSeries::from_values(10, 1, vec![3.0]);
        assert_eq!(align(&a, &b), (vec![], vec![]));
        let c = TimeSeries::from_values(0, 2, vec![3.0]);
        assert_eq!(align(&a, &c), (vec![], vec![]));
    }
}
