//! Compact self-describing binary codec for checkpoint/restore.
//!
//! The fleet engine snapshots live per-instance state (aggregator rings,
//! detector segments) so instances can be handed between shards or revived
//! after a crash with *bit-identical* behavior. `serde_json` cannot carry
//! that contract — resident state legitimately holds non-finite `f64`s and
//! JSON round-trips floats through decimal — so snapshots use this
//! hand-rolled little-endian format instead: every `f64` travels as its raw
//! IEEE-754 bits, every sequence is length-prefixed, and malformed input
//! surfaces as a typed [`WireError`], never a panic.
//!
//! The codec lives in `pinsql-timeseries` because it is the one crate both
//! `pinsql-collector` and `pinsql-detect` already depend on; the engine
//! layers an outer envelope (magic, version, kind tags, sections) on top of
//! these primitives in `pinsql_engine::snapshot`.

use std::fmt;

/// Typed decode failure. Encoding is infallible; every variant here is a
/// property of the *input buffer*, so callers can distinguish truncation
/// from version skew from corruption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before a fixed-width read or a declared length.
    Truncated {
        /// Bytes the read needed.
        need: usize,
        /// Bytes remaining in the buffer.
        have: usize,
    },
    /// The leading magic bytes did not match the expected format marker.
    BadMagic { expected: [u8; 4], found: [u8; 4] },
    /// The buffer declares a format version newer than this build supports.
    FutureVersion { found: u16, supported: u16 },
    /// An enum tag byte (kernel kind, cellstore kind, section id, state
    /// tag...) held a value outside the known range.
    BadTag { what: &'static str, value: u64 },
    /// A declared length or invariant is inconsistent with the decoder's
    /// environment (e.g. a snapshot's template catalog does not match the
    /// scenario it is being restored into).
    Mismatch { what: &'static str, detail: String },
    /// A section or buffer decoded cleanly but left unread bytes behind.
    TrailingBytes { what: &'static str, extra: usize },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { need, have } => {
                write!(f, "truncated buffer: need {need} bytes, have {have}")
            }
            WireError::BadMagic { expected, found } => {
                write!(f, "bad magic: expected {expected:02x?}, found {found:02x?}")
            }
            WireError::FutureVersion { found, supported } => {
                write!(f, "future format version {found} (this build supports <= {supported})")
            }
            WireError::BadTag { what, value } => write!(f, "bad {what} tag: {value}"),
            WireError::Mismatch { what, detail } => write!(f, "{what} mismatch: {detail}"),
            WireError::TrailingBytes { what, extra } => {
                write!(f, "{what} left {extra} trailing bytes")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Little-endian append-only encoder over a growable byte buffer.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self { buf: Vec::with_capacity(cap) }
    }

    /// Consumes the writer and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    #[inline]
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Encodes the raw IEEE-754 bits — exact for every value including
    /// NaN payloads, infinities, and signed zeros.
    #[inline]
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    #[inline]
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// `usize` sequence length as `u64` (portable across word sizes).
    #[inline]
    pub fn put_len(&mut self, n: usize) {
        self.put_u64(n as u64);
    }

    pub fn put_bytes_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Length-prefixed byte string.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_len(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Writes a length-prefixed section: the closure fills the body, then
    /// the byte length is back-patched in front of it. Sections let a
    /// decoder verify framing (and skip or bound sub-decoders) without the
    /// encoder computing sizes up front.
    pub fn put_section(&mut self, f: impl FnOnce(&mut Self)) {
        let at = self.buf.len();
        self.put_u64(0);
        f(self);
        let len = (self.buf.len() - at - 8) as u64;
        self.buf[at..at + 8].copy_from_slice(&len.to_le_bytes());
    }
}

/// Little-endian cursor-based decoder over a borrowed byte slice.
#[derive(Debug, Clone)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated { need: n, have: self.remaining() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    #[inline]
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    #[inline]
    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len checked")))
    }

    #[inline]
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len checked")))
    }

    #[inline]
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len checked")))
    }

    #[inline]
    pub fn get_i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("len checked")))
    }

    #[inline]
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    pub fn get_bool(&mut self) -> Result<bool, WireError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(WireError::BadTag { what: "bool", value: v as u64 }),
        }
    }

    /// Sequence length; rejects lengths that could not possibly fit in the
    /// remaining buffer so corrupt prefixes fail fast instead of driving a
    /// huge loop of `Truncated` reads (or an OOM `Vec::with_capacity`).
    pub fn get_len(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        let n = self.get_u64()?;
        let need = (n as u128) * (min_elem_bytes.max(1) as u128);
        if need > self.remaining() as u128 {
            return Err(WireError::Truncated {
                need: need.min(usize::MAX as u128) as usize,
                have: self.remaining(),
            });
        }
        Ok(n as usize)
    }

    pub fn get_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.get_len(1)?;
        self.take(n)
    }

    pub fn get_str(&mut self) -> Result<&'a str, WireError> {
        let bytes = self.get_bytes()?;
        std::str::from_utf8(bytes)
            .map_err(|_| WireError::Mismatch { what: "utf-8 string", detail: "invalid encoding".into() })
    }

    /// Fixed-width magic marker.
    pub fn expect_magic(&mut self, expected: [u8; 4]) -> Result<(), WireError> {
        let found: [u8; 4] = self.take(4)?.try_into().expect("len checked");
        if found != expected {
            return Err(WireError::BadMagic { expected, found });
        }
        Ok(())
    }

    /// Reads a length-prefixed section and returns a sub-reader bounded to
    /// exactly that section's bytes; the parent cursor skips past it.
    pub fn get_section(&mut self) -> Result<WireReader<'a>, WireError> {
        let n = self.get_len(1)?;
        Ok(WireReader::new(self.take(n)?))
    }

    /// Asserts the reader consumed everything (call at end of a section or
    /// buffer to catch over-long input).
    pub fn finish(&self, what: &'static str) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes { what, extra: self.remaining() });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_primitives_exactly() {
        let mut w = WireWriter::new();
        w.put_u8(7);
        w.put_u16(65535);
        w.put_u32(123456789);
        w.put_u64(u64::MAX);
        w.put_i64(i64::MIN);
        w.put_f64(f64::NEG_INFINITY);
        w.put_f64(-0.0);
        w.put_f64(f64::from_bits(0x7ff8_dead_beef_0001)); // NaN with payload
        w.put_bool(true);
        w.put_str("snapshot");
        let bytes = w.into_bytes();

        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 65535);
        assert_eq!(r.get_u32().unwrap(), 123456789);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_i64().unwrap(), i64::MIN);
        assert_eq!(r.get_f64().unwrap(), f64::NEG_INFINITY);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.get_f64().unwrap().to_bits(), 0x7ff8_dead_beef_0001);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_str().unwrap(), "snapshot");
        r.finish("test buffer").unwrap();
    }

    #[test]
    fn sections_backpatch_and_bound() {
        let mut w = WireWriter::new();
        w.put_section(|w| {
            w.put_u32(42);
            w.put_str("inner");
        });
        w.put_u8(9);
        let bytes = w.into_bytes();

        let mut r = WireReader::new(&bytes);
        let mut sec = r.get_section().unwrap();
        assert_eq!(sec.get_u32().unwrap(), 42);
        assert_eq!(sec.get_str().unwrap(), "inner");
        sec.finish("section").unwrap();
        assert_eq!(r.get_u8().unwrap(), 9);
        r.finish("outer").unwrap();
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let mut w = WireWriter::new();
        w.put_section(|w| {
            w.put_f64(1.5);
            w.put_str("abc");
        });
        w.put_i64(-3);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = WireReader::new(&bytes[..cut]);
            let res = (|| {
                let mut sec = r.get_section()?;
                sec.get_f64()?;
                sec.get_str()?;
                sec.finish("sec")?;
                r.get_i64()?;
                r.finish("buf")
            })();
            assert!(
                matches!(res, Err(WireError::Truncated { .. })),
                "cut at {cut} gave {res:?}"
            );
        }
    }

    #[test]
    fn bad_magic_and_tags_are_typed() {
        let mut r = WireReader::new(b"XNOPrest");
        assert_eq!(
            r.expect_magic(*b"PSNP"),
            Err(WireError::BadMagic { expected: *b"PSNP", found: *b"XNOP" })
        );
        let mut r = WireReader::new(&[3u8]);
        assert_eq!(r.get_bool(), Err(WireError::BadTag { what: "bool", value: 3 }));
    }

    #[test]
    fn absurd_length_prefix_fails_fast() {
        let mut w = WireWriter::new();
        w.put_u64(u64::MAX); // declared length far beyond the buffer
        w.put_u8(1);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert!(matches!(r.get_bytes(), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn trailing_bytes_are_reported() {
        let mut w = WireWriter::new();
        w.put_u32(1);
        w.put_u8(0xEE);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        r.get_u32().unwrap();
        assert_eq!(r.finish("blob"), Err(WireError::TrailingBytes { what: "blob", extra: 1 }));
    }
}
