//! Rolling robust statistics for streaming anomaly detection.
//!
//! The Basic Perception Layer (§IV-B) watches each performance metric
//! round-the-clock. Its detectors need, at every step, a robust estimate of
//! the recent baseline — we provide a rolling median / MAD (median absolute
//! deviation) window, plus a simple rolling mean/std for cheap callers.
//!
//! The windows here are small (tens to hundreds of samples), so the median
//! is recomputed from a maintained sorted buffer: `O(w)` per step via binary
//! search + shift, which comfortably beats fancier structures at these sizes.
//! The MAD, by contrast, used to collect-and-sort the deviations on every
//! query; [`RollingWindow::median_mad`] routes that through the
//! selection-based `O(log w)` kernel ([`crate::kernels::mad_of_sorted`]) —
//! bit-identical to the reference formulation, which stays available behind
//! [`KernelKind::Reference`] for the equivalence suites.

use crate::kernels::{self, KernelKind};

/// A fixed-capacity rolling window maintaining its contents both in arrival
/// order (for eviction) and in sorted order (for quantiles).
#[derive(Debug, Clone)]
pub struct RollingWindow {
    capacity: usize,
    /// Ring buffer in arrival order.
    ring: Vec<f64>,
    head: usize,
    len: usize,
    /// The same values kept sorted.
    sorted: Vec<f64>,
}

impl RollingWindow {
    /// Creates a window holding at most `capacity` recent observations.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "rolling window capacity must be positive");
        Self {
            capacity,
            ring: vec![0.0; capacity],
            head: 0,
            len: 0,
            sorted: Vec::with_capacity(capacity),
        }
    }

    /// Number of observations currently held.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no observations are held.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True once the window holds `capacity` observations.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len == self.capacity
    }

    /// Pushes an observation, evicting the oldest when full.
    pub fn push(&mut self, x: f64) {
        debug_assert!(!x.is_nan(), "NaN pushed into rolling window");
        if self.len == self.capacity {
            let evicted = self.ring[self.head];
            let pos = self
                .sorted
                .binary_search_by(|v| v.partial_cmp(&evicted).expect("NaN in window"))
                .expect("evicted value missing from sorted buffer");
            self.sorted.remove(pos);
        } else {
            self.len += 1;
        }
        self.ring[self.head] = x;
        self.head = (self.head + 1) % self.capacity;
        let pos = self
            .sorted
            .partition_point(|&v| v < x);
        self.sorted.insert(pos, x);
    }

    /// Median of the current contents; `None` when empty.
    pub fn median(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let n = self.sorted.len();
        Some(if n % 2 == 1 {
            self.sorted[n / 2]
        } else {
            (self.sorted[n / 2 - 1] + self.sorted[n / 2]) / 2.0
        })
    }

    /// Median absolute deviation around the median; `None` when empty.
    ///
    /// A `floor` is *not* applied here; detector layers add their own floor
    /// so that flat baselines don't produce infinite z-scores.
    pub fn mad(&self) -> Option<f64> {
        let med = self.median()?;
        let mut devs: Vec<f64> = self.sorted.iter().map(|&v| (v - med).abs()).collect();
        devs.sort_by(|a, b| a.partial_cmp(b).expect("NaN in window"));
        let n = devs.len();
        Some(if n % 2 == 1 {
            devs[n / 2]
        } else {
            (devs[n / 2 - 1] + devs[n / 2]) / 2.0
        })
    }

    /// Median and MAD in one call, through the selected kernel; `None`
    /// when empty.
    ///
    /// `KernelKind::Reference` is [`median`](Self::median) +
    /// [`mad`](Self::mad) (allocate the deviations, sort, index);
    /// `KernelKind::Fast` selects the same order statistics straight from
    /// the maintained sorted buffer in `O(log w)` without allocating. The
    /// two are bit-identical (pinned by this module's tests, `kernel_props`
    /// and the golden corpus).
    pub fn median_mad(&self, kind: KernelKind) -> Option<(f64, f64)> {
        match kind {
            KernelKind::Reference => Some((self.median()?, self.mad()?)),
            KernelKind::Fast => {
                let med = kernels::median_of_sorted(&self.sorted)?;
                Some((med, kernels::mad_of_sorted(&self.sorted, med)))
            }
        }
    }

    /// Mean of the current contents; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.is_empty() {
            return None;
        }
        Some(self.sorted.iter().sum::<f64>() / self.len as f64)
    }

    /// The current contents in sorted order.
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }

    /// The configured capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The current contents in *arrival* order, oldest first.
    ///
    /// This is the checkpoint serialization order: a fresh window of the
    /// same capacity replaying these values through [`push`](Self::push)
    /// holds the same values in the same logical (eviction) order and the
    /// same sorted buffer — the ring may sit at a different rotation, which
    /// no observable operation can distinguish — so snapshot → restore is
    /// behaviorally exact and re-serialization is idempotent.
    pub fn arrival_values(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len);
        if self.len < self.capacity {
            // Never wrapped: entries live in ring[0..len] with head == len.
            out.extend_from_slice(&self.ring[..self.len]);
        } else {
            // Full ring: oldest at head, wrapping around.
            out.extend_from_slice(&self.ring[self.head..]);
            out.extend_from_slice(&self.ring[..self.head]);
        }
        out
    }
}

/// Robust z-score of `x` against a (median, mad) baseline with a MAD floor.
///
/// The constant 1.4826 rescales MAD to be comparable with a standard
/// deviation under normality. `mad_floor` guards flat baselines.
#[inline]
pub fn robust_z(x: f64, median: f64, mad: f64, mad_floor: f64) -> f64 {
    (x - median) / (1.4826 * mad.max(mad_floor))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_yields_none() {
        let w = RollingWindow::new(4);
        assert!(w.is_empty());
        assert_eq!(w.median(), None);
        assert_eq!(w.mad(), None);
        assert_eq!(w.mean(), None);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = RollingWindow::new(0);
    }

    #[test]
    fn median_odd_and_even() {
        let mut w = RollingWindow::new(5);
        for x in [3.0, 1.0, 2.0] {
            w.push(x);
        }
        assert_eq!(w.median(), Some(2.0));
        w.push(10.0);
        assert_eq!(w.median(), Some(2.5));
    }

    #[test]
    fn eviction_keeps_sorted_consistent() {
        let mut w = RollingWindow::new(3);
        for x in [5.0, 1.0, 9.0, 2.0, 2.0] {
            w.push(x);
        }
        // window now holds [9, 2, 2]
        assert_eq!(w.len(), 3);
        assert_eq!(w.sorted_values(), &[2.0, 2.0, 9.0]);
        assert_eq!(w.median(), Some(2.0));
    }

    #[test]
    fn eviction_with_duplicates() {
        let mut w = RollingWindow::new(2);
        w.push(4.0);
        w.push(4.0);
        w.push(4.0);
        w.push(7.0);
        assert_eq!(w.sorted_values(), &[4.0, 7.0]);
    }

    #[test]
    fn mad_of_constant_window_is_zero() {
        let mut w = RollingWindow::new(4);
        for _ in 0..4 {
            w.push(3.0);
        }
        assert_eq!(w.mad(), Some(0.0));
        // robust_z with a floor stays finite.
        assert!(robust_z(10.0, 3.0, 0.0, 0.5).is_finite());
    }

    #[test]
    fn mad_matches_manual_computation() {
        let mut w = RollingWindow::new(5);
        for x in [1.0, 1.0, 2.0, 2.0, 8.0] {
            w.push(x);
        }
        // median = 2, |devs| sorted = [0,0,1,1,6] → mad = 1
        assert_eq!(w.mad(), Some(1.0));
    }

    #[test]
    fn median_mad_kernels_are_bit_identical() {
        // A deterministic stream with duplicates, evictions, and values
        // landing exactly on the median.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (((state >> 40) % 1000) as f64) / 10.0
        };
        for capacity in [2usize, 3, 5, 16, 121] {
            let mut w = RollingWindow::new(capacity);
            assert_eq!(w.median_mad(KernelKind::Fast), None);
            assert_eq!(w.median_mad(KernelKind::Reference), None);
            for _ in 0..(capacity * 3 + 7) {
                w.push(next());
                let (fm, fd) = w.median_mad(KernelKind::Fast).unwrap();
                let (rm, rd) = w.median_mad(KernelKind::Reference).unwrap();
                assert_eq!(fm.to_bits(), rm.to_bits(), "median, capacity {capacity}");
                assert_eq!(fd.to_bits(), rd.to_bits(), "mad, capacity {capacity}");
                assert_eq!(rm.to_bits(), w.median().unwrap().to_bits());
                assert_eq!(rd.to_bits(), w.mad().unwrap().to_bits());
            }
        }
    }

    #[test]
    fn arrival_values_round_trip_is_behaviorally_exact() {
        for capacity in [1usize, 2, 3, 5, 8] {
            for n_pushes in 0..(capacity * 3 + 2) {
                let mut w = RollingWindow::new(capacity);
                for i in 0..n_pushes {
                    // Duplicates on purpose: eviction must stay stable.
                    w.push(((i * 7) % 5) as f64);
                }
                let arrival = w.arrival_values();
                assert_eq!(arrival.len(), w.len());
                let mut restored = RollingWindow::new(capacity);
                for &v in &arrival {
                    restored.push(v);
                }
                assert_eq!(restored.sorted_values(), w.sorted_values());
                assert_eq!(restored.arrival_values(), arrival);
                // Continue both in lockstep: eviction order must agree.
                for i in 0..capacity * 2 {
                    w.push(i as f64 * 0.5);
                    restored.push(i as f64 * 0.5);
                    assert_eq!(restored.sorted_values(), w.sorted_values());
                    assert_eq!(restored.arrival_values(), w.arrival_values());
                }
            }
        }
    }

    #[test]
    fn rolling_mean_tracks_window() {
        let mut w = RollingWindow::new(2);
        w.push(2.0);
        w.push(4.0);
        assert_eq!(w.mean(), Some(3.0));
        w.push(8.0);
        assert_eq!(w.mean(), Some(6.0));
    }
}
