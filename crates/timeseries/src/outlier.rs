//! Tukey's rule for outlier labelling (Hoaglin, Iglewicz & Tukey, 1986).
//!
//! The History Trend Verification step (§VI) must decide, cheaply, whether a
//! template's execution count shows a *sudden increase* during the anomaly
//! period — both in the current window and in the same window 1/3/7 days
//! ago. The paper applies Tukey's rule: observations outside
//! `[Q1 − k·IQR, Q3 + k·IQR]` are labelled outliers (`k = 1.5` by default,
//! `k = 3` for "far out" values).

use serde::{Deserialize, Serialize};

/// First, second (median) and third quartiles of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quantiles {
    pub q1: f64,
    pub median: f64,
    pub q3: f64,
}

impl Quantiles {
    /// Interquartile range `Q3 − Q1`.
    #[inline]
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Computes quartiles with linear interpolation between order statistics
/// (the common "R-7" definition). Non-finite samples are ignored — degraded
/// telemetry must not panic the history check. Returns `None` when no finite
/// sample remains.
pub fn quantiles(xs: &[f64]) -> Option<Quantiles> {
    let mut sorted: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(|a, b| a.total_cmp(b));
    Some(Quantiles {
        q1: interpolate(&sorted, 0.25),
        median: interpolate(&sorted, 0.5),
        q3: interpolate(&sorted, 0.75),
    })
}

fn interpolate(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// The Tukey fences for a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TukeyFences {
    pub lower: f64,
    pub upper: f64,
}

impl TukeyFences {
    /// True when `x` lies above the upper fence (a "sudden increase").
    #[inline]
    pub fn is_upper_outlier(&self, x: f64) -> bool {
        x > self.upper
    }

    /// True when `x` lies below the lower fence.
    #[inline]
    pub fn is_lower_outlier(&self, x: f64) -> bool {
        x < self.lower
    }

    /// True when `x` lies outside either fence.
    #[inline]
    pub fn is_outlier(&self, x: f64) -> bool {
        self.is_upper_outlier(x) || self.is_lower_outlier(x)
    }
}

/// Computes Tukey fences `[Q1 − k·IQR, Q3 + k·IQR]` for the sample.
/// Returns `None` for an empty sample.
///
/// ```
/// use pinsql_timeseries::tukey_fences;
/// let baseline = [10.0, 11.0, 9.0, 10.0, 12.0, 10.0, 11.0, 9.0];
/// let fences = tukey_fences(&baseline, 1.5).unwrap();
/// assert!(fences.is_upper_outlier(40.0));
/// assert!(!fences.is_upper_outlier(12.5));
/// ```
pub fn tukey_fences(xs: &[f64], k: f64) -> Option<TukeyFences> {
    let q = quantiles(xs)?;
    let iqr = q.iqr();
    Some(TukeyFences { lower: q.q1 - k * iqr, upper: q.q3 + k * iqr })
}

/// Convenience: does `window` contain any upper outlier relative to fences
/// computed from `baseline`? This is the §VI history-trend check: the
/// anomaly-period execution counts (`window`) are compared against fences
/// fit on the surrounding data (`baseline`).
///
/// Returns `false` when the baseline is empty.
pub fn has_upper_outlier(baseline: &[f64], window: &[f64], k: f64) -> bool {
    match tukey_fences(baseline, k) {
        Some(f) => window.iter().any(|&x| f.is_upper_outlier(x)),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_empty_is_none() {
        assert!(quantiles(&[]).is_none());
        assert!(tukey_fences(&[], 1.5).is_none());
    }

    #[test]
    fn quantiles_single_element() {
        let q = quantiles(&[7.0]).unwrap();
        assert_eq!(q.q1, 7.0);
        assert_eq!(q.median, 7.0);
        assert_eq!(q.q3, 7.0);
        assert_eq!(q.iqr(), 0.0);
    }

    #[test]
    fn quantiles_match_r7_definition() {
        // 1..=5: q1 = 2, median = 3, q3 = 4 under linear interpolation.
        let q = quantiles(&[5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        assert!((q.q1 - 2.0).abs() < 1e-12);
        assert!((q.median - 3.0).abs() < 1e-12);
        assert!((q.q3 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_skip_non_finite_samples() {
        let q = quantiles(&[5.0, f64::NAN, 1.0, 3.0, f64::INFINITY, 2.0, 4.0]).unwrap();
        assert!((q.q1 - 2.0).abs() < 1e-12);
        assert!((q.median - 3.0).abs() < 1e-12);
        assert!((q.q3 - 4.0).abs() < 1e-12);
        assert!(quantiles(&[f64::NAN, f64::NEG_INFINITY]).is_none());
    }

    #[test]
    fn fences_flag_a_spike() {
        let baseline: Vec<f64> = (0..50).map(|i| 10.0 + (i % 3) as f64).collect();
        let fences = tukey_fences(&baseline, 1.5).unwrap();
        assert!(fences.is_upper_outlier(25.0));
        assert!(fences.is_lower_outlier(-5.0));
        assert!(!fences.is_outlier(11.0));
    }

    #[test]
    fn constant_baseline_flags_any_change() {
        // IQR = 0, so fences collapse onto the constant: any deviation is an
        // outlier. This matches the intended history check: a template that
        // never executed before and suddenly runs is anomalous.
        let fences = tukey_fences(&[0.0; 20], 1.5).unwrap();
        assert!(fences.is_upper_outlier(1.0));
        assert!(!fences.is_upper_outlier(0.0));
    }

    #[test]
    fn has_upper_outlier_window_check() {
        let baseline: Vec<f64> = (0..60).map(|i| 5.0 + (i % 4) as f64).collect();
        assert!(has_upper_outlier(&baseline, &[5.0, 6.0, 30.0], 1.5));
        assert!(!has_upper_outlier(&baseline, &[5.0, 6.0, 7.0], 1.5));
        assert!(!has_upper_outlier(&[], &[100.0], 1.5));
    }
}
