//! Time-series substrate for the PinSQL reproduction.
//!
//! PinSQL (Liu et al., ICDE 2022) reasons about database performance anomalies
//! entirely through fixed-interval time series: per-instance performance
//! metrics and per-SQL-template metric sequences. This crate provides the
//! shared machinery every higher layer builds on:
//!
//! * [`TimeSeries`] — a fixed-interval sequence of `f64` observations with a
//!   start timestamp, addressable either by index or by timestamp
//!   (Definition II.1 of the paper).
//! * [`stats`] — means, variances, covariance, Pearson correlation, the
//!   *weighted* Pearson correlation used by the trend-level score (§V), and
//!   min-max normalization used by the scale-level score.
//! * [`weights`] — the sigmoid-based anomaly-window weight function
//!   `W_t = σ((t-a_s)/k_s) + σ((a_e-t)/k_s) − 1` (Eq. 1).
//! * [`outlier`] — Tukey's rule, used by the history-trend verification step
//!   (§VI) to decide whether a template's execution count is anomalous.
//! * [`changepoint`] — Pettitt's non-parametric change-point test, one of
//!   the methods §IV-B's detection component integrates; the detector uses
//!   it to confirm level shifts.
//! * [`rolling`] — rolling robust statistics (median / MAD / quantiles) used
//!   by the anomaly-feature detectors in the `pinsql-detect` crate.
//! * [`kernels`] — unrolled slice kernels (sum / sumsq / dot), the
//!   selection-based `O(log w)` rolling median/MAD, streaming moment
//!   accumulators, and the [`KernelKind`] fast/reference knob.
//! * [`graph`] — correlation graphs and connected components (union-find),
//!   used by SQL-template clustering (§VI).
//! * [`matrix`] — the [`NormalizedMatrix`] correlation kernel: z-scored,
//!   length-aligned contiguous rows built once per case, so pairwise
//!   Pearson degrades to a dot product.
//! * [`par`] — deterministic scoped-thread fan-out ([`par_map`]) used to
//!   parallelize the embarrassingly parallel diagnosis loops.
//! * [`fxhash`] — a seedless multiply-rotate hasher ([`FxHashMap`] /
//!   [`FxHashSet`]) for the internal integer-keyed maps on ingest hot
//!   paths, where SipHash's DoS resistance buys nothing.
//! * [`resample`] — aggregation between the 1-second and 1-minute
//!   granularities the collector maintains (§IV-A).
//!
//! Everything here is deterministic and allocation-conscious; the hot paths
//! (pairwise correlation, weighted covariance) are written against slices so
//! callers can pre-normalize once and reuse buffers.

pub mod changepoint;
pub mod fxhash;
pub mod graph;
pub mod kernels;
pub mod matrix;
pub mod outlier;
pub mod par;
pub mod resample;
pub mod rolling;
pub mod series;
pub mod stats;
pub mod weights;
pub mod wire;

pub use changepoint::{has_change_point, pettitt, Pettitt};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use kernels::{CoMomentAccumulator, CutKind, KernelKind, MomentAccumulator};
pub use graph::{
    connected_components, connected_components_par, CorrelationGraph, UnionFind,
};
pub use matrix::NormalizedMatrix;
pub use par::{available_parallelism, effective_parallelism, par_flat_map, par_map};
pub use outlier::{tukey_fences, Quantiles, TukeyFences};
pub use series::TimeSeries;
pub use stats::{
    covariance, mean, mean_squared_error, min_max_normalize, pearson, std_dev, variance,
    weighted_covariance, weighted_mean, weighted_pearson,
};
pub use weights::{sigmoid, sigmoid_window_weights};
pub use wire::{WireError, WireReader, WireWriter};
