//! Property-based tests for the SQL substrate: the templating invariants
//! that Definition II.3 relies on.

use pinsql_sqlkit::{fingerprint, normalize, tokenize, SqlTemplate, TokenKind};
use proptest::prelude::*;

/// A strategy producing simple literal values as SQL text.
fn literal() -> impl Strategy<Value = String> {
    prop_oneof![
        any::<u32>().prop_map(|n| n.to_string()),
        any::<i32>().prop_map(|n| format!("{n}")),
        (0u32..1_000_000).prop_map(|n| format!("{n}.{:02}", n % 100)),
        "[a-z]{0,12}".prop_map(|s| format!("'{s}'")),
    ]
}

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,10}"
}

proptest! {
    #[test]
    fn same_shape_same_template(
        table in ident(),
        col in ident(),
        v1 in literal(),
        v2 in literal(),
    ) {
        let q1 = format!("SELECT * FROM {table} WHERE {col} = {v1}");
        let q2 = format!("SELECT * FROM {table} WHERE {col} = {v2}");
        prop_assert_eq!(fingerprint(&q1), fingerprint(&q2));
        prop_assert_eq!(normalize(&q1), normalize(&q2));
    }

    #[test]
    fn normalization_is_idempotent(
        table in ident(),
        col in ident(),
        v in literal(),
    ) {
        let q = format!("UPDATE {table} SET {col} = {v} WHERE id = 7");
        let once = normalize(&q);
        let twice = normalize(&once);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn normalized_text_contains_no_literals(
        table in ident(),
        vs in prop::collection::vec(literal(), 1..6),
    ) {
        let list = vs.join(", ");
        let q = format!("SELECT * FROM {table} WHERE id IN ({list})");
        let norm = normalize(&q);
        for tok in tokenize(&norm) {
            prop_assert!(
                !matches!(tok.kind, TokenKind::Number | TokenKind::Str),
                "literal {:?} survived normalization: {norm}",
                tok
            );
        }
    }

    #[test]
    fn in_list_arity_is_irrelevant(
        table in ident(),
        vs1 in prop::collection::vec(any::<u32>(), 1..8),
        vs2 in prop::collection::vec(any::<u32>(), 1..8),
    ) {
        let q = |vs: &[u32]| {
            let list = vs.iter().map(u32::to_string).collect::<Vec<_>>().join(",");
            format!("SELECT * FROM {table} WHERE id IN ({list})")
        };
        prop_assert_eq!(fingerprint(&q(&vs1)), fingerprint(&q(&vs2)));
    }

    #[test]
    fn tokenizer_never_panics_on_arbitrary_input(s in "\\PC{0,200}") {
        let _ = tokenize(&s);
        let _ = SqlTemplate::of(&s);
    }

    #[test]
    fn case_of_keywords_is_irrelevant(table in ident(), col in ident()) {
        let lower = format!("select {col} from {table} where {col} > 3");
        let upper = format!("SELECT {col} FROM {table} WHERE {col} > 3");
        prop_assert_eq!(fingerprint(&lower), fingerprint(&upper));
    }

    #[test]
    fn template_tables_found_for_basic_selects(table in ident()) {
        let t = SqlTemplate::of(&format!("SELECT * FROM {table} WHERE id = 1"));
        prop_assert_eq!(t.tables, vec![table]);
    }
}
