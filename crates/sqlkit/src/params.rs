//! Literal-parameter extraction.
//!
//! Templating replaces literals with `?`; diagnosis sometimes needs to go
//! the other way — given a raw statement, list the literal values that the
//! placeholders stand for (e.g. to show a DBA a *sample* query for a
//! template, or to check whether a template's parameters are skewed). The
//! extraction mirrors [`crate::template::normalize`]'s decisions exactly:
//! the `i`-th extracted parameter corresponds to the `i`-th emitted `?`,
//! with collapsed `IN`-lists / multi-row `VALUES` contributing their
//! *full* value list to the single surviving placeholder.

use crate::lexer::{tokenize, Token, TokenKind};
use serde::{Deserialize, Serialize};

/// One extracted literal value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Literal {
    /// A numeric literal, kept as its source text (no precision loss).
    Number(String),
    /// A string literal (unescaped).
    Str(String),
    /// An explicit `?` in the source — no value available.
    Placeholder,
}

impl Literal {
    /// The literal's source-ish text.
    pub fn text(&self) -> &str {
        match self {
            Literal::Number(s) | Literal::Str(s) => s,
            Literal::Placeholder => "?",
        }
    }
}

/// A parameter slot: the literals that one template placeholder stands
/// for. Scalar positions hold exactly one literal; collapsed lists hold
/// all of their members.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamSlot {
    pub values: Vec<Literal>,
}

impl ParamSlot {
    /// True when the slot came from a collapsed list.
    pub fn is_list(&self) -> bool {
        self.values.len() > 1
    }
}

/// Extracts the parameter slots of a raw statement, in placeholder order.
pub fn extract_params(sql: &str) -> Vec<ParamSlot> {
    let tokens = tokenize(sql);
    let mut slots: Vec<ParamSlot> = Vec::new();
    let mut i = 0;
    // Mirrors template::normalize_tokens's value-position tracking.
    let mut prev_is_value = false;
    // Index (into slots) of the list currently being collapsed, if the
    // emitted tail is `( ?`.
    let mut open_list: Option<usize> = None;
    // Multi-row chaining state (`(…) , (…)` as in batched VALUES): the
    // rows all collapse into the slot of the first row.
    let mut last_closed_list: Option<usize> = None;
    let mut chain_pending = false;

    while i < tokens.len() {
        let t = &tokens[i];
        // Signed literal in value position folds into one literal.
        if t.kind == TokenKind::Operator
            && (t.text == "-" || t.text == "+")
            && !prev_is_value
            && tokens.get(i + 1).is_some_and(|n| n.kind == TokenKind::Number)
        {
            let lit = Literal::Number(format!("{}{}", t.text, tokens[i + 1].text));
            push_literal(&mut slots, &mut open_list, lit, prev_open(&tokens, i));
            prev_is_value = true;
            i += 2;
            continue;
        }
        match t.kind {
            TokenKind::Number | TokenKind::Str | TokenKind::Placeholder => {
                let lit = match t.kind {
                    TokenKind::Number => Literal::Number(t.text.clone()),
                    TokenKind::Str => Literal::Str(t.text.clone()),
                    _ => Literal::Placeholder,
                };
                push_literal(&mut slots, &mut open_list, lit, prev_open(&tokens, i));
                prev_is_value = true;
            }
            TokenKind::Punct if t.text == "(" => {
                prev_is_value = false;
                // A paren opening right after `) ,` chains a multi-row
                // list back into the previous row's slot; otherwise it may
                // start a new list.
                open_list = if chain_pending { last_closed_list } else { None };
                chain_pending = false;
            }
            TokenKind::Punct if t.text == "," => {
                prev_is_value = false;
                chain_pending = last_closed_list.is_some() && prev_was_close(&tokens, i);
                // keep open_list: `, literal` continues the collapse
            }
            TokenKind::Punct if t.text == ")" => {
                prev_is_value = true;
                last_closed_list = open_list.take();
                chain_pending = false;
            }
            TokenKind::Punct | TokenKind::Operator => {
                prev_is_value = false;
                open_list = None;
                last_closed_list = None;
                chain_pending = false;
            }
            TokenKind::Word | TokenKind::QuotedIdent => {
                prev_is_value = true;
                open_list = None;
                last_closed_list = None;
                chain_pending = false;
            }
        }
        i += 1;
    }
    slots
}

/// Was the token before index `i` (skipping nothing) an opening paren or a
/// comma chaining from one — i.e. is this literal part of a parenthesized
/// list?
fn prev_open(tokens: &[Token], i: usize) -> bool {
    matches!(
        tokens.get(i.wrapping_sub(1)),
        Some(p) if p.kind == TokenKind::Punct && (p.text == "(" || p.text == ",")
    )
}

/// Was the token before index `i` a closing paren (for `) , (` chains)?
fn prev_was_close(tokens: &[Token], i: usize) -> bool {
    matches!(
        tokens.get(i.wrapping_sub(1)),
        Some(p) if p.kind == TokenKind::Punct && p.text == ")"
    )
}

fn push_literal(
    slots: &mut Vec<ParamSlot>,
    open_list: &mut Option<usize>,
    lit: Literal,
    in_list_position: bool,
) {
    match open_list {
        Some(idx) if in_list_position => slots[*idx].values.push(lit),
        _ => {
            slots.push(ParamSlot { values: vec![lit] });
            if in_list_position {
                *open_list = Some(slots.len() - 1);
            } else {
                *open_list = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::normalize;

    /// The invariant the module promises: slot count == placeholder count
    /// of the normalized template.
    fn assert_slots_match_template(sql: &str) -> Vec<ParamSlot> {
        let slots = extract_params(sql);
        let placeholders = normalize(sql).matches('?').count();
        assert_eq!(
            slots.len(),
            placeholders,
            "slots vs placeholders for {sql:?} → {}",
            normalize(sql)
        );
        slots
    }

    #[test]
    fn scalars_extract_in_order() {
        let slots = assert_slots_match_template("SELECT * FROM t WHERE a = 5 AND b = 'x'");
        assert_eq!(slots[0].values, vec![Literal::Number("5".into())]);
        assert_eq!(slots[1].values, vec![Literal::Str("x".into())]);
        assert!(!slots[0].is_list());
    }

    #[test]
    fn in_list_collapses_into_one_slot() {
        let slots = assert_slots_match_template("SELECT * FROM t WHERE id IN (1, 2, 3)");
        assert_eq!(slots.len(), 1);
        assert!(slots[0].is_list());
        assert_eq!(
            slots[0].values.iter().map(Literal::text).collect::<Vec<_>>(),
            vec!["1", "2", "3"]
        );
    }

    #[test]
    fn signed_literals_keep_their_sign() {
        let slots = assert_slots_match_template("SELECT * FROM t WHERE a = -7 AND b = +3.5");
        assert_eq!(slots[0].values, vec![Literal::Number("-7".into())]);
        assert_eq!(slots[1].values, vec![Literal::Number("+3.5".into())]);
    }

    #[test]
    fn explicit_placeholders_are_recorded() {
        let slots = assert_slots_match_template("SELECT * FROM t WHERE a = ? AND b = 9");
        assert_eq!(slots[0].values, vec![Literal::Placeholder]);
        assert_eq!(slots[1].values, vec![Literal::Number("9".into())]);
    }

    #[test]
    fn mixed_expression_literals() {
        let slots = assert_slots_match_template("SELECT a - 1 FROM t WHERE b > 2");
        // `a - 1` is binary minus: literal is plain 1.
        assert_eq!(slots[0].values, vec![Literal::Number("1".into())]);
        assert_eq!(slots[1].values, vec![Literal::Number("2".into())]);
    }

    #[test]
    fn multi_row_values_collapse_into_one_slot() {
        let slots =
            assert_slots_match_template("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y'), (3, 'z')");
        assert_eq!(slots.len(), 1);
        assert_eq!(
            slots[0].values.iter().map(Literal::text).collect::<Vec<_>>(),
            vec!["1", "x", "2", "y", "3", "z"]
        );
    }

    #[test]
    fn nested_tuple_in_list() {
        let slots = assert_slots_match_template("SELECT * FROM t WHERE (a, b) IN ((1, 2), (3, 4))");
        assert_eq!(slots.len(), 1);
        assert_eq!(slots[0].values.len(), 4);
    }

    #[test]
    fn no_literals_no_slots() {
        assert!(extract_params("SELECT a FROM t").is_empty());
        assert!(extract_params("").is_empty());
    }
}
