//! SQL templates: literal normalization and fingerprinting (Definition II.3).
//!
//! A template replaces every literal with `?`, collapses `IN (?, ?, …)`
//! lists to `IN (?)` (so queries differing only in list arity share a
//! template, matching MySQL digest behaviour), uppercases keywords, and
//! joins tokens with canonical spacing. The 64-bit FNV-1a hash of the
//! canonical text is the template's [`SqlId`].

use crate::classify::{classify, StatementKind};
use crate::lexer::{tokenize, Token, TokenKind};
use crate::tables::extract_tables;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique identifier of a SQL template (the "SQL ID" of Fig. 1).
///
/// Displays as upper-case hex; [`SqlId::short`] yields the 4-hex-digit
/// abbreviation the paper uses in figures (`E6DC`, `2304`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SqlId(pub u64);

impl SqlId {
    /// The four most significant hex digits, as shown in the paper's figures.
    pub fn short(&self) -> String {
        format!("{:04X}", self.0 >> 48)
    }
}

impl fmt::Display for SqlId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016X}", self.0)
    }
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// A set of keywords that get uppercased in the canonical template text.
/// Identifiers keep their case so `user_table` and `USER_TABLE` remain
/// distinct templates (they are different objects on case-sensitive
/// filesystems, which is MySQL's default on Linux).
const KEYWORDS: &[&str] = &[
    "select", "from", "where", "and", "or", "not", "in", "insert", "into", "values", "update",
    "set", "delete", "join", "inner", "left", "right", "outer", "cross", "on", "as", "group",
    "by", "order", "having", "limit", "offset", "distinct", "union", "all", "exists", "between",
    "like", "is", "null", "case", "when", "then", "else", "end", "create", "alter", "drop",
    "table", "index", "truncate", "rename", "begin", "commit", "rollback", "start",
    "transaction", "for", "share", "lock", "mode", "show", "status", "call", "replace", "desc",
    "asc", "count", "sum", "avg", "min", "max", "force", "use", "ignore", "straight_join",
];

fn is_keyword(word: &str) -> bool {
    KEYWORDS.iter().any(|k| word.eq_ignore_ascii_case(k))
}

/// Normalizes a token stream into canonical template tokens: literals become
/// `?`, keywords are uppercased, and `IN ( ? , ? , … )` collapses to
/// `IN ( ? )`.
fn normalize_tokens(tokens: &[Token]) -> Vec<String> {
    let mut out: Vec<String> = Vec::with_capacity(tokens.len());
    // True when the previously *emitted* token can be the left operand of a
    // binary operator (identifier, `?`, `)`): used to tell the unary minus
    // of a signed literal (`a = -1`) apart from binary subtraction
    // (`a - 1`) so both `-1` and `1` normalize to the same `?`.
    let mut prev_is_value = false;
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        // Fold a sign in literal position into the literal.
        if t.kind == TokenKind::Operator
            && (t.text == "-" || t.text == "+")
            && !prev_is_value
            && tokens.get(i + 1).is_some_and(|n| n.kind == TokenKind::Number)
        {
            if !ends_with_open_placeholder(&out) {
                out.push("?".to_string());
                prev_is_value = true;
            }
            i += 2;
            continue;
        }
        match t.kind {
            TokenKind::Number | TokenKind::Str | TokenKind::Placeholder => {
                // Collapse a literal list `(?,?,?)` as we emit: if the tail
                // is `( ?` the additional literal is dropped.
                if !ends_with_open_placeholder(&out) {
                    out.push("?".to_string());
                }
                prev_is_value = true;
            }
            TokenKind::Punct if t.text == "," => {
                // If the tail is `( ?` and a literal/placeholder follows,
                // skip the comma and the literal: the list collapses.
                if ends_with_open_placeholder(&out)
                    && matches!(
                        tokens.get(i + 1).map(|n| n.kind),
                        Some(TokenKind::Number | TokenKind::Str | TokenKind::Placeholder)
                    )
                {
                    i += 2; // skip comma and the literal
                    prev_is_value = true; // tail is still `( ?`
                    continue;
                }
                // A signed literal inside a collapsing list: `( ? , -5`.
                if ends_with_open_placeholder(&out)
                    && tokens.get(i + 1).is_some_and(|n| {
                        n.kind == TokenKind::Operator && (n.text == "-" || n.text == "+")
                    })
                    && tokens.get(i + 2).is_some_and(|n| n.kind == TokenKind::Number)
                {
                    i += 3; // skip comma, sign and the literal
                    prev_is_value = true;
                    continue;
                }
                out.push(",".to_string());
                prev_is_value = false;
            }
            TokenKind::Word => {
                if is_keyword(&t.text) {
                    out.push(t.text.to_ascii_uppercase());
                    prev_is_value = false;
                } else {
                    out.push(t.text.clone());
                    prev_is_value = true;
                }
            }
            TokenKind::QuotedIdent => {
                out.push(format!("`{}`", t.text));
                prev_is_value = true;
            }
            _ => {
                prev_is_value = t.text == ")";
                out.push(t.text.clone());
            }
        }
        i += 1;
    }
    collapse_row_lists(&mut out);
    out
}

/// Collapses multi-row literal lists — `( ? ) , ( ? ) , ( ? )` → `( ? )` —
/// so `INSERT … VALUES (1,2),(3,4),(5,6)` shares a template with the
/// single-row form, matching MySQL digest behaviour for batched inserts.
fn collapse_row_lists(out: &mut Vec<String>) {
    let mut i = 0;
    while out.len() >= i + 7 {
        let row = ["(", "?", ")"];
        let first_is_row = out[i..i + 3].iter().map(String::as_str).eq(row);
        if first_is_row {
            // Delete every following `, ( ? )` group.
            while out.len() >= i + 7
                && out[i + 3] == ","
                && out[i + 4..i + 7].iter().map(String::as_str).eq(row)
            {
                out.drain(i + 3..i + 7);
            }
        }
        i += 1;
    }
}

/// True when the emitted tail is `( ?` — i.e. we are inside a literal list
/// whose first element was already emitted and further elements collapse.
fn ends_with_open_placeholder(out: &[String]) -> bool {
    let n = out.len();
    n >= 2 && out[n - 1] == "?" && out[n - 2] == "("
}

/// Joins canonical tokens with template spacing: no space before commas,
/// closing parens, dots, or semicolons; no space after opening parens/dots.
fn join_tokens(tokens: &[String]) -> String {
    let mut s = String::new();
    for (i, tok) in tokens.iter().enumerate() {
        let no_space_before = matches!(tok.as_str(), "," | ")" | ";" | ".");
        let prev_no_space_after =
            i > 0 && matches!(tokens[i - 1].as_str(), "(" | ".");
        if i > 0 && !no_space_before && !prev_no_space_after {
            s.push(' ');
        }
        s.push_str(tok);
    }
    s
}

/// Normalizes a raw SQL statement into canonical template text.
///
/// ```
/// use pinsql_sqlkit::normalize;
/// assert_eq!(
///     normalize("select * from user_table where uid = 123456"),
///     "SELECT * FROM user_table WHERE uid = ?"
/// );
/// assert_eq!(
///     normalize("SELECT a FROM t WHERE id IN (1, 2, 3)"),
///     "SELECT a FROM t WHERE id IN (?)"
/// );
/// ```
pub fn normalize(sql: &str) -> String {
    join_tokens(&normalize_tokens(&tokenize(sql)))
}

/// Fingerprints a raw SQL statement to its template's [`SqlId`].
pub fn fingerprint(sql: &str) -> SqlId {
    let tokens = normalize_tokens(&tokenize(sql));
    let mut hash = FNV_OFFSET;
    for tok in &tokens {
        hash = fnv1a(tok.as_bytes(), hash);
        hash = fnv1a(&[0x1f], hash); // token separator
    }
    SqlId(hash)
}

/// A SQL template: canonical text, fingerprint, statement kind, and the
/// tables the statement references.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SqlTemplate {
    pub id: SqlId,
    pub text: String,
    pub kind: StatementKind,
    pub tables: Vec<String>,
}

impl SqlTemplate {
    /// Builds the template of a raw SQL statement.
    pub fn of(sql: &str) -> Self {
        let tokens = tokenize(sql);
        let norm = normalize_tokens(&tokens);
        let mut hash = FNV_OFFSET;
        for tok in &norm {
            hash = fnv1a(tok.as_bytes(), hash);
            hash = fnv1a(&[0x1f], hash);
        }
        Self {
            id: SqlId(hash),
            text: join_tokens(&norm),
            kind: classify(&tokens),
            tables: extract_tables(&tokens),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_become_placeholders() {
        assert_eq!(
            normalize("SELECT * FROM t WHERE a = 5 AND b = 'x' AND c = 2.5"),
            "SELECT * FROM t WHERE a = ? AND b = ? AND c = ?"
        );
    }

    #[test]
    fn keywords_uppercase_identifiers_preserved() {
        assert_eq!(
            normalize("select MyCol from MyTable where MyCol > 1"),
            "SELECT MyCol FROM MyTable WHERE MyCol > ?"
        );
    }

    #[test]
    fn in_list_collapses() {
        let a = normalize("SELECT * FROM t WHERE id IN (1,2,3)");
        let b = normalize("SELECT * FROM t WHERE id IN (9)");
        let c = normalize("SELECT * FROM t WHERE id IN (1, 2, 3, 4, 5, 6, 7)");
        assert_eq!(a, "SELECT * FROM t WHERE id IN (?)");
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(fingerprint("SELECT * FROM t WHERE id IN (1,2)"), fingerprint(&c));
    }

    #[test]
    fn values_row_collapses_like_mysql_digest() {
        let a = normalize("INSERT INTO t (a, b) VALUES (1, 'x')");
        // MySQL collapses each literal; our IN-list collapse also folds the
        // VALUES row, which keeps arity-insensitive templates. Structural
        // columns are preserved.
        assert_eq!(a, "INSERT INTO t (a, b) VALUES (?)");
    }

    #[test]
    fn mixed_placeholders_and_literals_share_template() {
        assert_eq!(
            fingerprint("SELECT * FROM t WHERE a = ? AND b = 3"),
            fingerprint("SELECT * FROM t WHERE a = 1 AND b = ?")
        );
    }

    #[test]
    fn column_lists_are_not_collapsed() {
        // `(a, b, c)` is a column list, not a literal list: preserved.
        assert_eq!(
            normalize("INSERT INTO t (a, b, c) VALUES (1, 2, 3)"),
            "INSERT INTO t (a, b, c) VALUES (?)"
        );
    }

    #[test]
    fn multi_row_values_collapse() {
        let one = normalize("INSERT INTO t (a, b) VALUES (1, 2)");
        let three = normalize("INSERT INTO t (a, b) VALUES (1, 2), (3, 4), (5, 6)");
        assert_eq!(one, "INSERT INTO t (a, b) VALUES (?)");
        assert_eq!(one, three);
        assert_eq!(
            fingerprint("INSERT INTO t (a) VALUES (1)"),
            fingerprint("INSERT INTO t (a) VALUES (1), (2), (3), (4)")
        );
        // Tuple comparisons elsewhere are unaffected: `(a, b)` is a column
        // list, not a literal row.
        assert_eq!(
            normalize("SELECT * FROM t WHERE (a, b) IN ((1, 2))"),
            "SELECT * FROM t WHERE (a, b) IN ((?))"
        );
    }

    #[test]
    fn signed_literals_share_template_with_unsigned() {
        assert_eq!(
            fingerprint("SELECT * FROM t WHERE a = -1"),
            fingerprint("SELECT * FROM t WHERE a = 0")
        );
        assert_eq!(
            normalize("SELECT * FROM t WHERE a = -1.5"),
            "SELECT * FROM t WHERE a = ?"
        );
        assert_eq!(
            normalize("SELECT * FROM t WHERE a IN (-1, 2, -3)"),
            "SELECT * FROM t WHERE a IN (?)"
        );
        // Binary subtraction keeps its operator.
        assert_eq!(normalize("SELECT a - 1 FROM t"), "SELECT a - ? FROM t");
        assert_eq!(normalize("SELECT * FROM t WHERE a - 1 > 0"), "SELECT * FROM t WHERE a - ? > ?");
    }

    #[test]
    fn short_id_is_four_hex_digits() {
        let id = fingerprint("SELECT 1");
        assert_eq!(id.short().len(), 4);
        assert!(id.short().chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(id.to_string().len(), 16);
    }

    #[test]
    fn whitespace_and_comments_do_not_change_template() {
        let a = fingerprint("SELECT a FROM t WHERE x = 1");
        let b = fingerprint("  SELECT /* hint */ a\n FROM t -- c\n WHERE x = 99  ");
        assert_eq!(a, b);
    }

    #[test]
    fn fingerprint_separates_token_boundaries() {
        // "ab, c" vs "a, bc" must hash differently despite equal
        // concatenated text.
        assert_ne!(fingerprint("SELECT ab, c FROM t"), fingerprint("SELECT a, bc FROM t"));
    }

    #[test]
    fn empty_statement() {
        let t = SqlTemplate::of("");
        assert_eq!(t.text, "");
        assert_eq!(t.kind, StatementKind::Other);
        assert!(t.tables.is_empty());
    }

    #[test]
    fn quoted_identifiers_kept_distinct_from_bare() {
        assert_ne!(fingerprint("SELECT `a` FROM t"), fingerprint("SELECT a FROM t"));
    }
}
