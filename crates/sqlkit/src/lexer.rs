//! A hand-written SQL tokenizer.
//!
//! The tokenizer is deliberately forgiving: its job is templating and
//! classification, not validation, so malformed input degrades to `Other`
//! tokens rather than errors. It understands:
//!
//! * line comments (`-- …`, `# …`) and block comments (`/* … */`);
//! * single- and double-quoted strings with doubled-quote (`''`) and
//!   backslash escapes;
//! * backquoted identifiers (`` `order` ``);
//! * integer, decimal, and exponent numeric literals, plus `0x…` hex;
//! * multi-character operators (`<=`, `>=`, `<>`, `!=`, `||`, `:=`).

use serde::{Deserialize, Serialize};

/// The lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TokenKind {
    /// Bare word: keyword, function, or identifier. Case is preserved in the
    /// token text; comparison helpers are case-insensitive.
    Word,
    /// Backquoted identifier; text excludes the backquotes.
    QuotedIdent,
    /// Numeric literal.
    Number,
    /// String literal; text excludes the quotes.
    Str,
    /// An explicit `?` placeholder already present in the input.
    Placeholder,
    /// Operator such as `=`, `<=`, `||`.
    Operator,
    /// Punctuation: parentheses, commas, semicolons, dots.
    Punct,
}

/// A lexed token: kind plus its (possibly unescaped) text.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
}

impl Token {
    fn new(kind: TokenKind, text: impl Into<String>) -> Self {
        Self { kind, text: text.into() }
    }

    /// Case-insensitive comparison against a keyword (for `Word` tokens).
    pub fn is_word(&self, word: &str) -> bool {
        self.kind == TokenKind::Word && self.text.eq_ignore_ascii_case(word)
    }
}

/// Tokenizes `sql`, skipping whitespace and comments.
pub fn tokenize(sql: &str) -> Vec<Token> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'-' if bytes.get(i + 1) == Some(&b'-') => i = skip_line_comment(bytes, i + 2),
            b'#' => i = skip_line_comment(bytes, i + 1),
            b'/' if bytes.get(i + 1) == Some(&b'*') => i = skip_block_comment(bytes, i + 2),
            b'\'' | b'"' => {
                let (text, next) = lex_quoted(bytes, i, c);
                tokens.push(Token::new(TokenKind::Str, text));
                i = next;
            }
            b'`' => {
                let (text, next) = lex_quoted(bytes, i, b'`');
                tokens.push(Token::new(TokenKind::QuotedIdent, text));
                i = next;
            }
            b'?' => {
                tokens.push(Token::new(TokenKind::Placeholder, "?"));
                i += 1;
            }
            b'0'..=b'9' => {
                let (text, next) = lex_number(bytes, i);
                tokens.push(Token::new(TokenKind::Number, text));
                i = next;
            }
            // A leading dot starting a decimal like `.5`.
            b'.' if bytes.get(i + 1).is_some_and(u8::is_ascii_digit) => {
                let (text, next) = lex_number(bytes, i);
                tokens.push(Token::new(TokenKind::Number, text));
                i = next;
            }
            b'(' | b')' | b',' | b';' | b'.' => {
                tokens.push(Token::new(TokenKind::Punct, (c as char).to_string()));
                i += 1;
            }
            _ if is_word_start(c) => {
                let (text, next) = lex_word(bytes, i);
                tokens.push(Token::new(TokenKind::Word, text));
                i = next;
            }
            _ => {
                let (text, next) = lex_operator(bytes, i);
                tokens.push(Token::new(TokenKind::Operator, text));
                i = next;
            }
        }
    }
    tokens
}

fn skip_line_comment(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && bytes[i] != b'\n' {
        i += 1;
    }
    i
}

fn skip_block_comment(bytes: &[u8], mut i: usize) -> usize {
    while i + 1 < bytes.len() {
        if bytes[i] == b'*' && bytes[i + 1] == b'/' {
            return i + 2;
        }
        i += 1;
    }
    bytes.len()
}

fn lex_quoted(bytes: &[u8], start: usize, quote: u8) -> (String, usize) {
    let mut text = String::new();
    let mut i = start + 1;
    while i < bytes.len() {
        let c = bytes[i];
        if c == b'\\' && quote != b'`' && i + 1 < bytes.len() {
            text.push(bytes[i + 1] as char);
            i += 2;
        } else if c == quote {
            if bytes.get(i + 1) == Some(&quote) {
                // doubled quote escape: '' or `` or ""
                text.push(quote as char);
                i += 2;
            } else {
                return (text, i + 1);
            }
        } else {
            text.push(c as char);
            i += 1;
        }
    }
    // Unterminated quote: take the rest (forgiving mode).
    (text, bytes.len())
}

fn lex_number(bytes: &[u8], start: usize) -> (String, usize) {
    let mut i = start;
    // hex literal
    if bytes[i] == b'0' && matches!(bytes.get(i + 1), Some(b'x') | Some(b'X')) {
        i += 2;
        while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
            i += 1;
        }
        return (ascii(bytes, start, i), i);
    }
    let mut seen_dot = false;
    let mut seen_exp = false;
    while i < bytes.len() {
        let c = bytes[i];
        if c.is_ascii_digit() {
            i += 1;
        } else if c == b'.' && !seen_dot && !seen_exp {
            seen_dot = true;
            i += 1;
        } else if (c == b'e' || c == b'E')
            && !seen_exp
            && bytes.get(i + 1).is_some_and(|&n| n.is_ascii_digit() || n == b'+' || n == b'-')
        {
            seen_exp = true;
            i += 1;
            if matches!(bytes.get(i), Some(b'+') | Some(b'-')) {
                i += 1;
            }
        } else {
            break;
        }
    }
    (ascii(bytes, start, i), i)
}

fn is_word_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c == b'$' || c == b'@' || c >= 0x80
}

fn is_word_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c == b'$' || c >= 0x80
}

fn lex_word(bytes: &[u8], start: usize) -> (String, usize) {
    let mut i = start + 1;
    while i < bytes.len() && is_word_continue(bytes[i]) {
        i += 1;
    }
    (ascii(bytes, start, i), i)
}

const MULTI_OPS: &[&str] = &["<=>", "<=", ">=", "<>", "!=", "||", "&&", ":=", "<<", ">>"];

fn lex_operator(bytes: &[u8], start: usize) -> (String, usize) {
    for op in MULTI_OPS {
        let end = start + op.len();
        if bytes.len() >= end && &bytes[start..end] == op.as_bytes() {
            return ((*op).to_string(), end);
        }
    }
    ((bytes[start] as char).to_string(), start + 1)
}

fn ascii(bytes: &[u8], start: usize, end: usize) -> String {
    String::from_utf8_lossy(&bytes[start..end]).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).into_iter().map(|t| t.kind).collect()
    }

    fn texts(sql: &str) -> Vec<String> {
        tokenize(sql).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn basic_select_tokenizes() {
        let toks = tokenize("SELECT a, b FROM t WHERE x = 10");
        assert_eq!(
            toks.iter().map(|t| t.text.as_str()).collect::<Vec<_>>(),
            vec!["SELECT", "a", ",", "b", "FROM", "t", "WHERE", "x", "=", "10"]
        );
        assert_eq!(toks[9].kind, TokenKind::Number);
        assert_eq!(toks[8].kind, TokenKind::Operator);
    }

    #[test]
    fn strings_with_escapes() {
        let toks = tokenize(r#"SELECT 'it''s', "a\"b", 'c\'d'"#);
        let strs: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, vec!["it's", "a\"b", "c'd"]);
    }

    #[test]
    fn unterminated_string_is_forgiven() {
        let toks = tokenize("SELECT 'oops");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1].kind, TokenKind::Str);
        assert_eq!(toks[1].text, "oops");
    }

    #[test]
    fn backquoted_identifiers() {
        let toks = tokenize("SELECT `order` FROM `my``table`");
        assert_eq!(toks[1].kind, TokenKind::QuotedIdent);
        assert_eq!(toks[1].text, "order");
        assert_eq!(toks[3].text, "my`table");
    }

    #[test]
    fn numbers_variants() {
        let toks = tokenize("SELECT 1, 2.5, .5, 1e10, 3.2E-4, 0xFF");
        let nums: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["1", "2.5", ".5", "1e10", "3.2E-4", "0xFF"]);
    }

    #[test]
    fn comments_are_skipped() {
        let toks = texts("SELECT 1 -- trailing\n, 2 /* block */ , 3 # hash");
        assert_eq!(toks, vec!["SELECT", "1", ",", "2", ",", "3"]);
    }

    #[test]
    fn unterminated_block_comment_consumes_rest() {
        assert_eq!(texts("SELECT 1 /* never closed SELECT 2"), vec!["SELECT", "1"]);
    }

    #[test]
    fn multi_char_operators() {
        let toks = texts("a <= b >= c <> d != e || f := g <=> h");
        assert!(toks.contains(&"<=".to_string()));
        assert!(toks.contains(&">=".to_string()));
        assert!(toks.contains(&"<>".to_string()));
        assert!(toks.contains(&"!=".to_string()));
        assert!(toks.contains(&"||".to_string()));
        assert!(toks.contains(&":=".to_string()));
        assert!(toks.contains(&"<=>".to_string()));
    }

    #[test]
    fn placeholders_are_recognized() {
        let ks = kinds("SELECT * FROM t WHERE a = ? AND b = ?");
        assert_eq!(ks.iter().filter(|&&k| k == TokenKind::Placeholder).count(), 2);
    }

    #[test]
    fn dots_split_qualified_names() {
        let toks = texts("SELECT db.t.col FROM db.t");
        assert_eq!(toks, vec!["SELECT", "db", ".", "t", ".", "col", "FROM", "db", ".", "t"]);
    }

    #[test]
    fn empty_and_whitespace_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \n\t ").is_empty());
    }

    #[test]
    fn word_is_case_insensitive() {
        let toks = tokenize("select");
        assert!(toks[0].is_word("SELECT"));
        assert!(toks[0].is_word("select"));
        assert!(!toks[0].is_word("UPDATE"));
    }
}
