//! SQL substrate for the PinSQL reproduction.
//!
//! PinSQL aggregates raw SQL queries into *SQL templates* (Definition II.3,
//! also called digests): statements that are structurally identical but
//! differ in literal values share a template, identified by a unique SQL ID.
//! This crate implements that machinery from scratch:
//!
//! * [`lexer`] — a hand-written SQL tokenizer (strings, numbers, quoted
//!   identifiers, comments, operators) sufficient for templating the OLTP
//!   dialect the paper's workloads use;
//! * [`template`] — literal normalization (`WHERE uid = 123456` →
//!   `WHERE uid = ?`), `IN`-list collapsing, canonical text, and the 64-bit
//!   FNV-1a fingerprint that becomes the [`SqlId`];
//! * [`classify`] — statement-kind classification (SELECT / UPDATE / DDL /
//!   transaction control…), which the lock model and the repairing module
//!   both key off;
//! * [`tables`] — best-effort referenced-table extraction (FROM / JOIN /
//!   UPDATE / INSERT INTO …), used by the simulator's lock managers.

pub mod classify;
pub mod lexer;
pub mod params;
pub mod tables;
pub mod template;

pub use classify::{DdlKind, StatementKind};
pub use lexer::{tokenize, Token, TokenKind};
pub use params::{extract_params, Literal, ParamSlot};
pub use template::{fingerprint, normalize, SqlId, SqlTemplate};

#[cfg(test)]
mod integration {
    use super::*;

    #[test]
    fn paper_example_templates_share_an_id() {
        // Definition II.3's example: three SELECTs on user_table differing
        // only in the uid literal share one template.
        let qs = [
            "SELECT * FROM user_table WHERE uid = 123456",
            "SELECT * FROM user_table WHERE uid = 654321",
            "select * from user_table where uid = 123321",
        ];
        let ids: Vec<SqlId> = qs.iter().map(|q| SqlTemplate::of(q).id).collect();
        assert_eq!(ids[0], ids[1]);
        assert_eq!(ids[1], ids[2]);
        let t = SqlTemplate::of(qs[0]);
        assert_eq!(t.text, "SELECT * FROM user_table WHERE uid = ?");
        assert_eq!(t.kind, StatementKind::Select);
        assert_eq!(t.tables, vec!["user_table"]);
    }

    #[test]
    fn different_structure_gets_different_id() {
        let a = SqlTemplate::of("SELECT * FROM t WHERE a = 1");
        let b = SqlTemplate::of("SELECT * FROM t WHERE b = 1");
        assert_ne!(a.id, b.id);
    }
}
