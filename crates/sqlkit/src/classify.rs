//! Statement-kind classification.
//!
//! PinSQL's lock model and repairing module behave differently per statement
//! class: DDL statements take metadata locks (§II, category 3-i), DML writes
//! take row locks (3-ii), reads are blockable victims, and transaction
//! control (`ROLLBACK` in Fig. 1) is tracked but never a lock holder.

use crate::lexer::{Token, TokenKind};
use serde::{Deserialize, Serialize};

/// Sub-kinds of DDL. All of them take an exclusive metadata lock in the
/// simulator; the repairing module reports them distinctly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DdlKind {
    Create,
    Alter,
    Drop,
    Truncate,
    Rename,
}

/// Coarse statement classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StatementKind {
    Select,
    /// `SELECT … FOR UPDATE` / `LOCK IN SHARE MODE`: a locking read.
    SelectLocking,
    Insert,
    Update,
    Delete,
    Replace,
    Ddl(DdlKind),
    Begin,
    Commit,
    Rollback,
    Set,
    Show,
    Call,
    Other,
}

impl StatementKind {
    /// True for statements that modify rows (take exclusive row locks).
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            StatementKind::Insert
                | StatementKind::Update
                | StatementKind::Delete
                | StatementKind::Replace
        )
    }

    /// True for DDL (takes an exclusive metadata lock).
    pub fn is_ddl(&self) -> bool {
        matches!(self, StatementKind::Ddl(_))
    }

    /// True for reads, locking or not.
    pub fn is_read(&self) -> bool {
        matches!(self, StatementKind::Select | StatementKind::SelectLocking)
    }
}

/// Classifies a tokenized statement by its leading keyword (and, for
/// SELECT, by a trailing locking clause).
pub fn classify(tokens: &[Token]) -> StatementKind {
    let first = tokens.iter().find(|t| t.kind == TokenKind::Word);
    let Some(first) = first else {
        return StatementKind::Other;
    };
    let up = first.text.to_ascii_uppercase();
    match up.as_str() {
        "SELECT" => {
            if has_locking_clause(tokens) {
                StatementKind::SelectLocking
            } else {
                StatementKind::Select
            }
        }
        "INSERT" => StatementKind::Insert,
        "UPDATE" => StatementKind::Update,
        "DELETE" => StatementKind::Delete,
        "REPLACE" => StatementKind::Replace,
        "CREATE" => StatementKind::Ddl(DdlKind::Create),
        "ALTER" => StatementKind::Ddl(DdlKind::Alter),
        "DROP" => StatementKind::Ddl(DdlKind::Drop),
        "TRUNCATE" => StatementKind::Ddl(DdlKind::Truncate),
        "RENAME" => StatementKind::Ddl(DdlKind::Rename),
        "BEGIN" | "START" => StatementKind::Begin,
        "COMMIT" => StatementKind::Commit,
        "ROLLBACK" => StatementKind::Rollback,
        "SET" => StatementKind::Set,
        "SHOW" => StatementKind::Show,
        "CALL" => StatementKind::Call,
        _ => StatementKind::Other,
    }
}

/// Detects `FOR UPDATE` / `FOR SHARE` / `LOCK IN SHARE MODE` suffixes.
fn has_locking_clause(tokens: &[Token]) -> bool {
    let words: Vec<String> = tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Word)
        .map(|t| t.text.to_ascii_uppercase())
        .collect();
    words.windows(2).any(|w| w[0] == "FOR" && (w[1] == "UPDATE" || w[1] == "SHARE"))
        || words
            .windows(4)
            .any(|w| w[0] == "LOCK" && w[1] == "IN" && w[2] == "SHARE" && w[3] == "MODE")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn kind(sql: &str) -> StatementKind {
        classify(&tokenize(sql))
    }

    #[test]
    fn dml_kinds() {
        assert_eq!(kind("SELECT 1"), StatementKind::Select);
        assert_eq!(kind("insert into t values (1)"), StatementKind::Insert);
        assert_eq!(kind("UPDATE t SET a = 1"), StatementKind::Update);
        assert_eq!(kind("DELETE FROM t"), StatementKind::Delete);
        assert_eq!(kind("REPLACE INTO t VALUES (1)"), StatementKind::Replace);
    }

    #[test]
    fn locking_reads() {
        assert_eq!(kind("SELECT * FROM t WHERE id = 1 FOR UPDATE"), StatementKind::SelectLocking);
        assert_eq!(kind("SELECT * FROM t FOR SHARE"), StatementKind::SelectLocking);
        assert_eq!(
            kind("SELECT * FROM t WHERE a = 1 LOCK IN SHARE MODE"),
            StatementKind::SelectLocking
        );
        assert!(StatementKind::SelectLocking.is_read());
    }

    #[test]
    fn ddl_kinds() {
        assert_eq!(kind("CREATE TABLE t (a INT)"), StatementKind::Ddl(DdlKind::Create));
        assert_eq!(kind("ALTER TABLE t ADD COLUMN b INT"), StatementKind::Ddl(DdlKind::Alter));
        assert_eq!(kind("DROP TABLE t"), StatementKind::Ddl(DdlKind::Drop));
        assert_eq!(kind("TRUNCATE TABLE t"), StatementKind::Ddl(DdlKind::Truncate));
        assert_eq!(kind("RENAME TABLE t TO u"), StatementKind::Ddl(DdlKind::Rename));
        assert!(kind("ALTER TABLE t ADD KEY (a)").is_ddl());
    }

    #[test]
    fn transaction_control() {
        assert_eq!(kind("BEGIN"), StatementKind::Begin);
        assert_eq!(kind("START TRANSACTION"), StatementKind::Begin);
        assert_eq!(kind("COMMIT"), StatementKind::Commit);
        assert_eq!(kind("ROLLBACK"), StatementKind::Rollback);
    }

    #[test]
    fn misc_kinds() {
        assert_eq!(kind("SET autocommit = 0"), StatementKind::Set);
        assert_eq!(kind("SHOW STATUS"), StatementKind::Show);
        assert_eq!(kind("CALL proc(1)"), StatementKind::Call);
        assert_eq!(kind("EXPLAIN SELECT 1"), StatementKind::Other);
        assert_eq!(kind(""), StatementKind::Other);
        assert_eq!(kind("/* just a comment */"), StatementKind::Other);
    }

    #[test]
    fn write_read_predicates() {
        assert!(StatementKind::Update.is_write());
        assert!(StatementKind::Insert.is_write());
        assert!(!StatementKind::Select.is_write());
        assert!(StatementKind::Select.is_read());
        assert!(!StatementKind::Ddl(DdlKind::Alter).is_read());
    }

    #[test]
    fn leading_comment_does_not_confuse_classifier() {
        assert_eq!(kind("/* route=primary */ UPDATE t SET a = 1"), StatementKind::Update);
    }
}
