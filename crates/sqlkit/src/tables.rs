//! Best-effort extraction of the tables a statement references.
//!
//! The simulator's lock managers key on table names: an `UPDATE sales …`
//! takes row locks on `sales`; an `ALTER TABLE sales …` takes the `sales`
//! metadata lock and blocks every other statement touching `sales`
//! (the propagation pattern behind the paper's motivating example).
//!
//! This is a heuristic scan, not a parser: it collects identifiers that
//! follow `FROM`, `JOIN`, `UPDATE`, `INTO`, and `TABLE` keywords, including
//! comma-separated `FROM a, b` lists and `db.table` qualification (the last
//! path segment is kept). Sub-queries simply contribute their own `FROM`
//! targets, which is the right behaviour for lock-footprint purposes.

use crate::lexer::{Token, TokenKind};

/// Keywords after which a table name (or name list) appears.
fn introduces_table(word: &str) -> bool {
    word.eq_ignore_ascii_case("from")
        || word.eq_ignore_ascii_case("join")
        || word.eq_ignore_ascii_case("update")
        || word.eq_ignore_ascii_case("into")
        || word.eq_ignore_ascii_case("table")
}

/// Words that can legally sit between `JOIN`-ish keywords and the name and
/// should be skipped (`INNER JOIN`, `LEFT OUTER JOIN`, `TABLE IF EXISTS`).
fn is_skippable(word: &str) -> bool {
    ["if", "exists", "ignore", "low_priority", "delayed", "quick"]
        .iter()
        .any(|w| word.eq_ignore_ascii_case(w))
}

/// Returns the distinct referenced tables in first-appearance order.
pub fn extract_tables(tokens: &[Token]) -> Vec<String> {
    let mut tables: Vec<String> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind == TokenKind::Word && introduces_table(&t.text) {
            // `DELETE FROM`, `INSERT INTO`, `UPDATE`, `FROM a, b`, …
            let mut j = i + 1;
            loop {
                // Skip noise words.
                while j < tokens.len()
                    && tokens[j].kind == TokenKind::Word
                    && is_skippable(&tokens[j].text)
                {
                    j += 1;
                }
                let Some(name_tok) = tokens.get(j) else { break };
                if !matches!(name_tok.kind, TokenKind::Word | TokenKind::QuotedIdent) {
                    break;
                }
                // A keyword here (e.g. `FROM SELECT` in a subquery) is not a
                // table name.
                if name_tok.kind == TokenKind::Word && is_clause_keyword(&name_tok.text) {
                    break;
                }
                let mut name = name_tok.text.clone();
                j += 1;
                // Qualified name: keep the last segment.
                while j + 1 < tokens.len()
                    && tokens[j].kind == TokenKind::Punct
                    && tokens[j].text == "."
                    && matches!(tokens[j + 1].kind, TokenKind::Word | TokenKind::QuotedIdent)
                {
                    name = tokens[j + 1].text.clone();
                    j += 2;
                }
                if !tables.iter().any(|t| t == &name) {
                    tables.push(name);
                }
                // Optional alias: `FROM t a` / `FROM t AS a`.
                if let Some(next) = tokens.get(j) {
                    if next.is_word("as") {
                        j += 2; // skip AS + alias
                    } else if next.kind == TokenKind::Word && !is_clause_keyword(&next.text) {
                        j += 1; // bare alias
                    }
                }
                // Comma-separated list continues.
                match tokens.get(j) {
                    Some(tok) if tok.kind == TokenKind::Punct && tok.text == "," => j += 1,
                    _ => break,
                }
            }
            i = j;
        } else {
            i += 1;
        }
    }
    tables
}

/// Keywords that terminate a table list (so aliases aren't confused with
/// further clauses).
fn is_clause_keyword(word: &str) -> bool {
    [
        "select", "where", "set", "values", "value", "join", "inner", "left", "right", "outer",
        "cross", "on", "group", "order", "having", "limit", "union", "for", "lock", "as", "use",
        "force", "ignore", "straight_join", "natural",
    ]
    .iter()
    .any(|w| word.eq_ignore_ascii_case(w))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn tables(sql: &str) -> Vec<String> {
        extract_tables(&tokenize(sql))
    }

    #[test]
    fn simple_statements() {
        assert_eq!(tables("SELECT * FROM sales WHERE id = 1"), vec!["sales"]);
        assert_eq!(tables("UPDATE sales SET qty = 2 WHERE id = 1"), vec!["sales"]);
        assert_eq!(tables("DELETE FROM orders WHERE id = 3"), vec!["orders"]);
        assert_eq!(tables("INSERT INTO audit_log (a) VALUES (1)"), vec!["audit_log"]);
    }

    #[test]
    fn joins_collect_all_tables() {
        assert_eq!(
            tables("SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y"),
            vec!["a", "b", "c"]
        );
    }

    #[test]
    fn comma_separated_from_list() {
        assert_eq!(tables("SELECT * FROM a, b, c WHERE a.x = b.x"), vec!["a", "b", "c"]);
    }

    #[test]
    fn aliases_are_not_tables() {
        assert_eq!(tables("SELECT * FROM orders o WHERE o.id = 1"), vec!["orders"]);
        assert_eq!(tables("SELECT * FROM orders AS o JOIN items AS i ON 1"), vec!["orders", "items"]);
    }

    #[test]
    fn qualified_names_keep_last_segment() {
        assert_eq!(tables("SELECT * FROM mydb.sales"), vec!["sales"]);
    }

    #[test]
    fn ddl_statements() {
        assert_eq!(tables("ALTER TABLE sales ADD COLUMN x INT"), vec!["sales"]);
        assert_eq!(tables("DROP TABLE IF EXISTS tmp_1"), vec!["tmp_1"]);
        assert_eq!(tables("CREATE TABLE new_t (a INT)"), vec!["new_t"]);
        assert_eq!(tables("TRUNCATE TABLE logs"), vec!["logs"]);
    }

    #[test]
    fn subquery_tables_are_collected() {
        assert_eq!(
            tables("SELECT * FROM a WHERE x IN (SELECT y FROM b)"),
            vec!["a", "b"]
        );
    }

    #[test]
    fn duplicates_are_deduplicated() {
        assert_eq!(tables("SELECT * FROM t JOIN t ON 1"), vec!["t"]);
    }

    #[test]
    fn quoted_table_names() {
        assert_eq!(tables("SELECT * FROM `order` WHERE id = 1"), vec!["order"]);
    }

    #[test]
    fn no_tables() {
        assert_eq!(tables("SELECT 1 + 1"), Vec::<String>::new());
        assert_eq!(tables("BEGIN"), Vec::<String>::new());
        assert_eq!(tables(""), Vec::<String>::new());
    }
}
