//! Root-cause SQL identification (§VI).
//!
//! Walking the propagation chain backwards from the H-SQLs:
//!
//! 1. **Template clustering** — templates whose `#execution` trends
//!    correlate above `τ` belong to the same business (microservice DAG);
//!    performance metrics join the graph as temporary *helper nodes* that
//!    densify it, and connected components are the clusters.
//! 2. **Cluster ranking** — a cluster inherits the max H-SQL impact of its
//!    members: if a cluster contains an H-SQL, its R-SQL is likely inside.
//! 3. **Cumulative threshold** — clusters are taken in impact order until
//!    the summed estimated session of the selected templates correlates
//!    with the instance session at ≥ `τ_c` (or `K_c` clusters), covering
//!    anomalies driven by multiple independent businesses.
//! 4. **History trend verification** — a real R-SQL's execution count
//!    rises abruptly *now* (Tukey upper outlier inside the anomaly window)
//!    but did not rise in the same window 1/3/7 days ago.
//! 5. **Ranking** — survivors are ranked by the correlation of their
//!    execution count with the instance session.

use crate::config::PinSqlConfig;
use crate::hsql::{anomaly_bounds, HsqlRanking};
use crate::session_estimate::SessionEstimates;
use pinsql_collector::{CaseData, HistoryStore};
use pinsql_detect::AnomalyWindow;
use pinsql_timeseries::resample::{downsample, Downsample};
use pinsql_timeseries::{
    par_map, pearson, tukey_fences, CorrelationGraph, CutKind, NormalizedMatrix, TimeSeries,
};

/// Everything the R-SQL stage produces (kept for diagnostics and tests).
#[derive(Debug, Clone)]
pub struct RsqlOutcome {
    /// `(template index, score)`, descending — the R-SQL ranking.
    pub ranked: Vec<(usize, f64)>,
    /// Business clusters (template indices; helper nodes removed).
    pub clusters: Vec<Vec<usize>>,
    /// Number of top clusters chosen by the cumulative threshold.
    pub selected_clusters: usize,
    /// Candidate template indices after cluster selection.
    pub candidates: Vec<usize>,
    /// Candidates surviving history verification.
    pub verified: Vec<usize>,
}

/// Runs the full R-SQL identification stage.
///
/// `minutes_origin` is the absolute minute index of the collection-window
/// start, used to address the history store (`N_d` days = `N_d · 1440`
/// minutes back).
pub fn identify_rsqls(
    case: &CaseData,
    est: &SessionEstimates,
    hsql: &HsqlRanking,
    window: &AnomalyWindow,
    history: &HistoryStore,
    minutes_origin: i64,
    cfg: &PinSqlConfig,
) -> RsqlOutcome {
    let n = case.templates.len();
    if n == 0 {
        return RsqlOutcome {
            ranked: Vec::new(),
            clusters: Vec::new(),
            selected_clusters: 0,
            candidates: Vec::new(),
            verified: Vec::new(),
        };
    }
    let session = case.instance_session();
    let parallelism = cfg.effective_parallelism();

    // --- 1. Clustering on 1-minute execution trends + metric helpers. ---
    // The per-minute resampling and the pairwise correlation graph are the
    // dominant cost at paper-scale template counts; both fan out over
    // independent units (templates / pair-loop rows) with index-ordered
    // merges, so the clustering is identical at every parallelism level.
    //
    // With the incremental cut the per-template minute rows arrive
    // precomputed on the case — assembled from running ingest-time moments
    // during the snapshot's single cell sweep, bit-identical to
    // `per_minute` — so the O(templates × window) resampling pass (and its
    // n transient allocations) disappears. Either way the series normalize
    // into ONE `NormalizedMatrix` handed to the graph build, instead of
    // re-collecting slice refs inside every clustering call.
    let cut = (cfg.cut == CutKind::Incremental)
        .then(|| case.cut.as_deref())
        .flatten()
        .filter(|c| c.minute_rows.len() == n);
    let tpl_minutes: Vec<Vec<f64>> = match cut {
        Some(_) => Vec::new(),
        None => par_map(n, parallelism, |i| case.templates[i].series.per_minute()),
    };
    let tpl_rows: Vec<&[f64]> = match cut {
        Some(c) => c.minute_rows.iter().map(|r| r.as_slice()).collect(),
        None => tpl_minutes.iter().map(|v| v.as_slice()).collect(),
    };
    let helper_series: Vec<Vec<f64>> = helper_nodes(case);
    let mut series_refs: Vec<&[f64]> = Vec::with_capacity(n + helper_series.len());
    series_refs.extend(tpl_rows.iter().copied());
    series_refs.extend(helper_series.iter().map(|v| v.as_slice()));
    let matrix = NormalizedMatrix::from_series(&series_refs);
    let raw_components =
        CorrelationGraph::from_matrix(&matrix, cfg.tau, parallelism).components();
    let mut clusters: Vec<Vec<usize>> = raw_components
        .into_iter()
        .map(|c| c.into_iter().filter(|&i| i < n).collect::<Vec<_>>())
        .filter(|c: &Vec<usize>| !c.is_empty())
        .collect();

    // --- 2. Rank clusters. ---
    let cluster_score = |c: &[usize]| -> f64 {
        if cfg.ablation.no_direct_cause_ranking {
            // Top-RT stand-in: total response time over the anomaly window.
            // Both bounds clamped to the case length (see `rank_hsqls`).
            let (a_lo, a_hi) = anomaly_bounds(case, window);
            c.iter()
                .map(|&i| {
                    case.templates[i].series.total_rt_ms[a_lo..a_hi.max(a_lo)]
                        .iter()
                        .sum::<f64>()
                })
                .fold(f64::NEG_INFINITY, f64::max)
        } else {
            c.iter().map(|&i| hsql.impact_of(i)).fold(f64::NEG_INFINITY, f64::max)
        }
    };
    clusters.sort_by(|a, b| cluster_score(b).total_cmp(&cluster_score(a)));

    // --- 3. Cumulative threshold. ---
    let n_secs = case.n_seconds();
    let k_limit = if cfg.ablation.no_cumulative_threshold { 1 } else { cfg.kc.max(1) };
    let mut selected_clusters = 0usize;
    let mut cumulative = vec![0.0f64; n_secs];
    for cluster in clusters.iter().take(k_limit.min(clusters.len())) {
        for &i in cluster {
            for (acc, v) in cumulative.iter_mut().zip(est.of(i)) {
                *acc += *v;
            }
        }
        selected_clusters += 1;
        if cfg.ablation.no_cumulative_threshold {
            break;
        }
        if pearson(&cumulative, session) >= cfg.tau_c {
            break;
        }
    }
    let mut candidates: Vec<usize> =
        clusters.iter().take(selected_clusters).flatten().copied().collect();
    candidates.sort_unstable();

    // --- 4. History trend verification. ---
    let verified: Vec<usize> = if cfg.ablation.no_history_verification {
        candidates.clone()
    } else {
        let keep = par_map(candidates.len(), parallelism, |ci| {
            let i = candidates[ci];
            verify_history(case, i, tpl_rows[i], window, history, minutes_origin, cfg)
        });
        candidates.iter().zip(keep).filter(|(_, k)| *k).map(|(&i, _)| i).collect()
    };
    // The paper keeps only verified templates; if verification empties the
    // set (e.g. no history at all and a flat current trend), fall back to
    // the unverified candidates so a ranking is always produced.
    let final_set: &[usize] = if verified.is_empty() { &candidates } else { &verified };

    // --- 5. Final ranking: corr(#execution, session). ---
    // Both series are taken at 1-minute granularity: root-cause templates
    // are often sparse (a DDL stream fires a few times per minute), and at
    // 1-second granularity their Bernoulli-like execution counts drown the
    // correlation in discretization noise.
    let session_min = downsample(
        &TimeSeries::from_values(case.ts, 1, session.to_vec()),
        60,
        Downsample::Mean,
    )
    .into_values();
    let mut ranked: Vec<(usize, f64)> = par_map(final_set.len(), parallelism, |fi| {
        let i = final_set[fi];
        (i, pearson(tpl_rows[i], &session_min))
    });
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));

    RsqlOutcome { ranked, clusters, selected_clusters, candidates, verified }
}

/// Helper (metric) node series at 1-minute granularity.
fn helper_nodes(case: &CaseData) -> Vec<Vec<f64>> {
    case.metrics
        .iter_named()
        .map(|(_, series)| {
            downsample(
                &TimeSeries::from_values(case.ts, 1, series.to_vec()),
                60,
                Downsample::Mean,
            )
            .into_values()
        })
        .collect()
}

/// §VI's two-rule history check for one template, over its 1-minute
/// execution counts `per_min` (precomputed by the caller — either the
/// case's incremental cut rows or a fresh `per_minute` derivation; they
/// are bit-identical).
///
/// Rule (i): the execution count has an upward Tukey outlier inside the
/// anomaly window, relative to the rest of the collection window.
/// Rule (ii): no such outlier in the same relative window `N_d` days ago,
/// for every configured `N_d`.
fn verify_history(
    case: &CaseData,
    idx: usize,
    per_min: &[f64],
    window: &AnomalyWindow,
    history: &HistoryStore,
    minutes_origin: i64,
    cfg: &PinSqlConfig,
) -> bool {
    let total_min = per_min.len() as i64;
    let am_lo = ((window.anomaly_start - window.ts()) / 60).clamp(0, total_min);
    let am_hi = ((window.anomaly_end - window.ts() + 59) / 60).clamp(am_lo, total_min);
    let (baseline, anomaly) = split_window(&per_min, am_lo as usize, am_hi as usize);
    if !upper_outlier(&baseline, &anomaly, cfg.tukey_k) {
        return false; // rule (i) failed: no abrupt rise now
    }
    let id = case.templates[idx].id;
    for &days in &cfg.history_days {
        let shift = days as i64 * 1440;
        let from = minutes_origin - shift;
        let hist = history.window_filled(id, from, from + total_min);
        let (h_base, h_anom) = split_window(&hist, am_lo as usize, am_hi as usize);
        if upper_outlier(&h_base, &h_anom, cfg.tukey_k) {
            return false; // rule (ii) failed: the same rise existed before
        }
    }
    true
}

/// Splits a minute series into (outside-anomaly, inside-anomaly) parts.
fn split_window(series: &[f64], lo: usize, hi: usize) -> (Vec<f64>, Vec<f64>) {
    let mut baseline = Vec::with_capacity(series.len());
    baseline.extend_from_slice(&series[..lo.min(series.len())]);
    if hi < series.len() {
        baseline.extend_from_slice(&series[hi..]);
    }
    let anomaly = series[lo.min(series.len())..hi.min(series.len())].to_vec();
    (baseline, anomaly)
}

fn upper_outlier(baseline: &[f64], window: &[f64], k: f64) -> bool {
    match tukey_fences(baseline, k) {
        Some(f) => window.iter().any(|&x| f.is_upper_outlier(x)),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EstimatorKind;
    use crate::hsql::rank_hsqls;
    use crate::session_estimate::estimate_sessions;
    use pinsql_collector::aggregate_case;
    use pinsql_dbsim::probe::ProbeLog;
    use pinsql_dbsim::{InstanceMetrics, QueryRecord};
    use pinsql_workload::{CostProfile, SpecId, TableId, TemplateSpec};

    /// Two businesses over a 10-minute window (600 s), anomaly [360, 480):
    ///
    /// Business A (R-SQL scenario): spec 0 is the *root cause* — a batch
    /// job whose execution count jumps during the anomaly; spec 1 is the
    /// *victim* H-SQL (steady execution count but exploding response time /
    /// session). Their execution trends correlate (same business): both
    /// follow a shared diurnal-ish base, spec 0 additionally spikes.
    ///
    /// Business B: spec 2, steady unrelated traffic with its own trend.
    fn rsql_case() -> (CaseData, AnomalyWindow) {
        let c = CostProfile::point_read(TableId(0));
        let specs = vec![
            TemplateSpec::new("UPDATE sales SET q = 1 WHERE id = 2", c.clone(), "batch"),
            TemplateSpec::new("SELECT * FROM sales WHERE id = 3", c.clone(), "victim"),
            TemplateSpec::new("SELECT * FROM users WHERE id = 4", c, "other"),
        ];
        let n = 600usize;
        let mut log = Vec::new();
        let mut session = vec![0.0; n];
        for t in 0..n as i64 {
            let anomaly = (360..480).contains(&t);
            // Shared business-A base trend: slow sine.
            let base_a = 6.0 + 3.0 * ((t as f64) / 90.0).sin();
            // Root cause: base trend + surge during the anomaly.
            let batch_rate = base_a + if anomaly { 25.0 } else { 0.0 };
            // Victim: follows the business trend only.
            let victim_rate = 2.0 * base_a;
            // Business B: different periodicity.
            let other_rate = 20.0 + 8.0 * ((t as f64) / 37.0).cos();
            let push = |log: &mut Vec<QueryRecord>, spec: usize, rate: f64, rt: f64| {
                let k = rate.round() as usize;
                for j in 0..k {
                    log.push(QueryRecord {
                        spec: SpecId(spec),
                        start_ms: t as f64 * 1000.0 + j as f64 * (990.0 / k.max(1) as f64),
                        response_ms: rt,
                        examined_rows: 3,
                    });
                }
            };
            // Victim response time explodes during the anomaly (blocked).
            let victim_rt = if anomaly { 3000.0 } else { 30.0 };
            push(&mut log, 0, batch_rate, if anomaly { 800.0 } else { 40.0 });
            push(&mut log, 1, victim_rate, victim_rt);
            push(&mut log, 2, other_rate, 25.0);
            // Instance session ≈ sum of (rate × rt) per second.
            session[t as usize] = batch_rate * (if anomaly { 0.8 } else { 0.04 })
                + victim_rate * (victim_rt / 1000.0)
                + other_rate * 0.025;
        }
        let metrics = InstanceMetrics {
            start_second: 0,
            active_session: session,
            cpu_usage: vec![0.1; n],
            iops_usage: vec![0.1; n],
            row_lock_waits: vec![0.0; n],
            mdl_waits: vec![0.0; n],
            qps: vec![0.0; n],
            probes: ProbeLog::default(),
        };
        let case = aggregate_case(&log, &specs, &metrics, 0, n as i64);
        let window = AnomalyWindow { anomaly_start: 360, anomaly_end: 480, delta_s: 360 };
        (case, window)
    }

    fn idx_of(case: &CaseData, spec: usize) -> usize {
        case.template_index(case.catalog.id_of_spec(SpecId(spec))).unwrap()
    }

    fn run(case: &CaseData, window: &AnomalyWindow, cfg: &PinSqlConfig) -> RsqlOutcome {
        let est = estimate_sessions(case, cfg);
        let hsql = rank_hsqls(case, &est, window, cfg);
        identify_rsqls(case, &est, &hsql, window, &HistoryStore::new(), 1_000_000, cfg)
    }

    fn test_cfg() -> PinSqlConfig {
        PinSqlConfig::default().with_estimator(EstimatorKind::NoBuckets)
    }

    #[test]
    fn pinpoints_the_batch_job_as_top_rsql() {
        let (case, window) = rsql_case();
        let out = run(&case, &window, &test_cfg());
        let batch = idx_of(&case, 0);
        assert_eq!(out.ranked.first().map(|&(i, _)| i), Some(batch), "{out:?}");
    }

    #[test]
    fn clusters_separate_the_two_businesses() {
        let (case, window) = rsql_case();
        let out = run(&case, &window, &test_cfg());
        let batch = idx_of(&case, 0);
        let victim = idx_of(&case, 1);
        let other = idx_of(&case, 2);
        let cluster_of = |i: usize| out.clusters.iter().position(|c| c.contains(&i)).unwrap();
        assert_ne!(cluster_of(batch), cluster_of(other), "independent businesses split");
        // The victim belongs with its business or at minimum not with B.
        assert_ne!(cluster_of(victim), cluster_of(other));
    }

    #[test]
    fn history_verification_rejects_recurring_spikes() {
        let (case, window) = rsql_case();
        let cfg = test_cfg();
        let est = estimate_sessions(&case, &cfg);
        let hsql = rank_hsqls(&case, &est, &window, &cfg);
        // Build a history where the batch job had the *same* spike shape
        // 1/3/7 days ago → rule (ii) must reject it.
        let batch = idx_of(&case, 0);
        let id = case.templates[batch].id;
        let origin = 1_000_000i64;
        let mut history = HistoryStore::new();
        let current: Vec<f64> = case.templates[batch].series.per_minute();
        for days in [1i64, 3, 7] {
            let from = origin - days * 1440;
            for (m, &v) in current.iter().enumerate() {
                history.record(id, from + m as i64, v);
            }
        }
        let out = identify_rsqls(&case, &est, &hsql, &window, &history, origin, &cfg);
        assert!(
            !out.verified.contains(&batch),
            "recurring spike must fail verification: {out:?}"
        );
    }

    #[test]
    fn empty_history_treats_template_as_new() {
        // No history at all: rule (ii) passes trivially (the template did
        // not exist before), rule (i) still requires a current rise.
        let (case, window) = rsql_case();
        let out = run(&case, &window, &test_cfg());
        let batch = idx_of(&case, 0);
        assert!(out.verified.contains(&batch));
    }

    #[test]
    fn steady_template_fails_rule_one() {
        let (case, window) = rsql_case();
        let cfg = test_cfg();
        let other = idx_of(&case, 2);
        let per_min = case.templates[other].series.per_minute();
        assert!(!verify_history(
            &case,
            other,
            &per_min,
            &window,
            &HistoryStore::new(),
            1_000_000,
            &cfg
        ));
    }

    #[test]
    fn cumulative_threshold_can_select_multiple_clusters() {
        let (case, window) = rsql_case();
        let mut cfg = test_cfg();
        // An impossible threshold forces the iteration to K_c clusters.
        cfg.tau_c = 1.1;
        cfg.kc = 5;
        let out = run(&case, &window, &cfg);
        assert!(out.selected_clusters >= 2, "{out:?}");
        // Default config stops earlier (the first cluster usually passes).
        let out_default = run(&case, &window, &test_cfg());
        assert!(out_default.selected_clusters <= out.selected_clusters);
    }

    #[test]
    fn ablation_top1_cluster_only() {
        let (case, window) = rsql_case();
        let mut cfg = test_cfg();
        cfg.ablation.no_cumulative_threshold = true;
        let out = run(&case, &window, &cfg);
        assert_eq!(out.selected_clusters, 1);
    }

    #[test]
    fn ablation_skips_history_verification() {
        let (case, window) = rsql_case();
        let mut cfg = test_cfg();
        cfg.ablation.no_history_verification = true;
        let out = run(&case, &window, &cfg);
        assert_eq!(out.verified, out.candidates);
    }

    #[test]
    fn window_beyond_case_does_not_panic_in_rt_ranking() {
        // Regression: the Top-RT ablation sliced `total_rt_ms[a_lo..]` with
        // an unclamped lower bound, panicking when the anomaly window lay
        // outside the aggregated data.
        let (case, _) = rsql_case();
        let mut cfg = test_cfg();
        cfg.ablation.no_direct_cause_ranking = true;
        let beyond = AnomalyWindow { anomaly_start: 5000, anomaly_end: 5100, delta_s: 4000 };
        let out = run(&case, &beyond, &cfg);
        assert!(out.ranked.iter().all(|&(_, s)| s.is_finite()));
    }

    #[test]
    fn empty_case_is_handled() {
        let metrics = InstanceMetrics {
            start_second: 0,
            active_session: vec![0.0; 60],
            cpu_usage: vec![0.0; 60],
            iops_usage: vec![0.0; 60],
            row_lock_waits: vec![0.0; 60],
            mdl_waits: vec![0.0; 60],
            qps: vec![0.0; 60],
            probes: ProbeLog::default(),
        };
        let case = aggregate_case(&[], &[], &metrics, 0, 60);
        let cfg = test_cfg();
        let est = estimate_sessions(&case, &cfg);
        let window = AnomalyWindow { anomaly_start: 30, anomaly_end: 50, delta_s: 30 };
        let hsql = rank_hsqls(&case, &est, &window, &cfg);
        let out = identify_rsqls(&case, &est, &hsql, &window, &HistoryStore::new(), 0, &cfg);
        assert!(out.ranked.is_empty());
        assert!(out.clusters.is_empty());
    }
}
